//! Integration tests asserting the paper's *qualitative claims* hold on
//! small, fast configurations — the shape guarantees EXPERIMENTS.md reports
//! at full scale.

use superpage::flash_model::{FlashArray, FlashConfig};
use superpage::pvcheck::analysis;
use superpage::pvcheck::assembly::{
    Assembler, LatencySortAssembly, QstrMed, RandomAssembly, RankAssembly, RankStrategy,
    SequentialAssembly, SortKey,
};
use superpage::pvcheck::{BlockPool, Characterizer, ExtraLatency, Superblock};

fn pool(seed: u64, blocks: u32) -> BlockPool {
    let config = FlashConfig::builder().blocks_per_plane(blocks).pwl_layers(48).build();
    let array = FlashArray::new(config.clone(), seed);
    Characterizer::new(&config).snapshot(array.latency_model(), 0)
}

fn avg_pgm(pool: &BlockPool, sbs: &[Superblock]) -> f64 {
    sbs.iter().map(|sb| ExtraLatency::of_superblock(pool, sb).unwrap().program_us).sum::<f64>()
        / sbs.len() as f64
}

fn avg_ers(pool: &BlockPool, sbs: &[Superblock]) -> f64 {
    sbs.iter().map(|sb| ExtraLatency::of_superblock(pool, sb).unwrap().erase_us).sum::<f64>()
        / sbs.len() as f64
}

/// Table I's core finding: every proposed direction beats random.
#[test]
fn every_direction_beats_random() {
    let pool = pool(1, 96);
    let baseline = avg_pgm(&pool, &RandomAssembly::new(5).assemble(&pool));
    let mut schemes: Vec<Box<dyn Assembler>> = vec![
        Box::new(SequentialAssembly::new()),
        Box::new(LatencySortAssembly::new(SortKey::Erase)),
        Box::new(LatencySortAssembly::new(SortKey::Program)),
        Box::new(RankAssembly::new(RankStrategy::Lwl, 4)),
        Box::new(RankAssembly::new(RankStrategy::Pwl, 4)),
        Box::new(RankAssembly::new(RankStrategy::Str, 4)),
        Box::new(RankAssembly::new(RankStrategy::StrMedian, 4)),
        Box::new(QstrMed::with_candidates(4)),
    ];
    for s in &mut schemes {
        let v = avg_pgm(&pool, &s.assemble(&pool));
        assert!(v < baseline, "{} ({v}) should beat random ({baseline})", s.name());
    }
}

/// Table II's trend: wider STR-RANK windows reduce extra program latency.
#[test]
fn window_trend_is_monotonic_in_the_aggregate() {
    // Average over seeds to suppress single-pool noise, like the paper
    // averages over chips and P/E points.
    let mut avg = [0.0f64; 3];
    let windows = [2usize, 4, 8];
    for seed in 0..6 {
        let pool = pool(seed, 128);
        for (i, &w) in windows.iter().enumerate() {
            avg[i] += avg_pgm(&pool, &RankAssembly::new(RankStrategy::Str, w).assemble(&pool));
        }
    }
    // The full-scale trend (Table II) is strictly monotonic; at this test
    // scale allow w8 to tie w4 within noise, but both must beat w2.
    assert!(avg[2] <= avg[1] * 1.01, "w8 {} vs w4 {}", avg[2], avg[1]);
    assert!(avg[1] < avg[0], "w4 {} < w2 {}", avg[1], avg[0]);
    assert!(avg[2] < avg[0], "w8 {} < w2 {}", avg[2], avg[0]);
}

/// §VI-B: STR-MED and QSTR-MED perform equivalently while QSTR-MED does
/// two orders of magnitude fewer checks.
#[test]
fn qstr_matches_str_med_at_a_fraction_of_the_checks() {
    let pool = pool(2, 128);
    let str_med = avg_pgm(&pool, &RankAssembly::new(RankStrategy::StrMedian, 4).assemble(&pool));
    let mut q = QstrMed::with_candidates(4);
    let sbs = q.assemble(&pool);
    let qstr = avg_pgm(&pool, &sbs);
    assert!((qstr - str_med).abs() / str_med < 0.08, "STR-MED {str_med} vs QSTR {qstr}");
    let checks_per_sb = q.distance_checks() as f64 / sbs.len() as f64;
    assert!(checks_per_sb <= 12.0);
}

/// Table V's erase column: program-latency-driven organization also
/// unifies erase latency, through the erase-program correlation.
#[test]
fn program_sorting_unifies_erase_latency() {
    let pool = pool(3, 96);
    let rnd = avg_ers(&pool, &RandomAssembly::new(2).assemble(&pool));
    let qstr = avg_ers(&pool, &QstrMed::with_candidates(4).assemble(&pool));
    // Full-scale runs show ~38 % reduction; demand a clear win here too.
    assert!(qstr < rnd * 0.9, "QSTR erase {qstr} vs random {rnd}");
}

/// §III's observation pair: chips differ (variation) but same-offset blocks
/// resemble each other (similarity) — the premise behind sequential
/// assembly working at all.
#[test]
fn process_variation_and_similarity_coexist() {
    let pool = pool(4, 128);
    let stats = analysis::pool_statistics(&pool);
    assert!(stats.offset_similarity_holds());
    // Erase-program correlation exists but is far from perfect.
    assert!(stats.bers_pgm_correlation > 0.2 && stats.bers_pgm_correlation < 0.95);
}

/// Figure 15's stability claim: the QSTR-MED improvement neither vanishes
/// nor degrades catastrophically as wear accumulates.
#[test]
fn improvement_is_stable_across_wear() {
    let config = FlashConfig::builder().blocks_per_plane(96).pwl_layers(48).build();
    let array = FlashArray::new(config.clone(), 5);
    let chr = Characterizer::new(&config);
    let mut improvements = Vec::new();
    for pe in [0u32, 1000, 2000, 3000] {
        let pool = chr.snapshot(array.latency_model(), pe);
        let rnd = avg_pgm(&pool, &RandomAssembly::new(1).assemble(&pool));
        let qstr = avg_pgm(&pool, &QstrMed::with_candidates(4).assemble(&pool));
        improvements.push(1.0 - qstr / rnd);
    }
    let min = improvements.iter().copied().fold(f64::INFINITY, f64::min);
    let max = improvements.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(min > 0.05, "improvement holds at every P/E point: {improvements:?}");
    assert!(max - min < 0.15, "improvement is stable: {improvements:?}");
}
