//! Workspace integration tests: the full pipeline across all three crates
//! through the `superpage` facade.

use superpage::flash_model::{FlashArray, FlashConfig};
use superpage::ftl::{FtlConfig, OrganizationScheme, Ssd, Workload};
use superpage::pvcheck::assembly::{
    Assembler, OptimalAssembly, QstrMed, RandomAssembly, RankAssembly, RankStrategy, SpeedClass,
};
use superpage::pvcheck::{overhead, BlockPool, Characterizer, ExtraLatency, Superblock};

fn test_config() -> FlashConfig {
    FlashConfig::builder().blocks_per_plane(64).pwl_layers(24).build()
}

fn characterize(seed: u64) -> (FlashConfig, BlockPool) {
    let config = test_config();
    let array = FlashArray::new(config.clone(), seed);
    let pool = Characterizer::new(&config).snapshot(array.latency_model(), 0);
    (config, pool)
}

fn avg_extra(pool: &BlockPool, sbs: &[Superblock]) -> (f64, f64) {
    let mut pgm = 0.0;
    let mut ers = 0.0;
    for sb in sbs {
        let e = ExtraLatency::of_superblock(pool, sb).unwrap();
        pgm += e.program_us;
        ers += e.erase_us;
    }
    (pgm / sbs.len() as f64, ers / sbs.len() as f64)
}

#[test]
fn characterization_through_real_operations_matches_snapshot() {
    let config = test_config();
    let mut array = FlashArray::new(config.clone(), 5);
    let chr = Characterizer::new(&config);
    let via_ops = chr.characterize_array(&mut array).unwrap();
    let via_model = chr.snapshot(array.latency_model(), 0);
    for p in via_ops.iter() {
        assert_eq!(p.tprog_us(), via_model.profile(p.addr()).unwrap().tprog_us());
    }
}

#[test]
fn paper_headline_ordering_holds_on_a_small_group() {
    let (_, pool) = characterize(3);
    let (rnd_pgm, rnd_ers) = avg_extra(&pool, &RandomAssembly::new(1).assemble(&pool));
    let (qstr_pgm, qstr_ers) = avg_extra(&pool, &QstrMed::with_candidates(4).assemble(&pool));
    let (opt_pgm, _) = avg_extra(&pool, &OptimalAssembly::new(4).assemble(&pool));
    // The paper's story: optimal < QSTR-MED < random on extra PGM latency,
    // and QSTR-MED also unifies erase latency.
    assert!(opt_pgm < rnd_pgm);
    assert!(qstr_pgm < rnd_pgm);
    assert!(qstr_ers < rnd_ers);
}

#[test]
fn qstr_med_approximates_str_med() {
    let (_, pool) = characterize(8);
    let (str_pgm, _) =
        avg_extra(&pool, &RankAssembly::new(RankStrategy::StrMedian, 4).assemble(&pool));
    let (qstr_pgm, _) = avg_extra(&pool, &QstrMed::with_candidates(4).assemble(&pool));
    // Figure 14: "their capabilities ... are equivalent". Allow a few percent.
    let rel = (qstr_pgm - str_pgm).abs() / str_pgm;
    assert!(rel < 0.10, "STR-MED {str_pgm} vs QSTR-MED {qstr_pgm} ({rel:.3} apart)");
}

#[test]
fn runtime_gathering_equals_offline_characterization() {
    // Program a block through the FTL-visible path and check the gathered
    // summary equals the offline profile's summary.
    let config = test_config();
    let mut array = FlashArray::new(config.clone(), 4);
    let chr = Characterizer::new(&config);
    let pool = chr.characterize_array(&mut array).unwrap();
    let profile = pool.iter().next().unwrap();
    let offline = profile.summary(config.geometry.strings());

    let mut gatherer = superpage::pvcheck::gather::BlockGatherer::new(
        profile.addr(),
        config.geometry.strings(),
        config.geometry.pwl_layers(),
    );
    for (i, &t) in profile.tprog_us().iter().enumerate() {
        gatherer.record(i as u32, t).unwrap();
    }
    let online = gatherer.finish().unwrap();
    assert_eq!(online.eigen, offline.eigen);
    assert!((online.pgm_sum_us - offline.pgm_sum_us).abs() < 1e-6);
}

#[test]
fn on_demand_classes_route_by_speed() {
    let (_, pool) = characterize(2);
    let mut q = QstrMed::with_candidates(4);
    let strings = pool.strings();
    for p in 0..pool.pool_count() {
        for b in pool.pool(p) {
            q.insert(p, b.summary(strings));
        }
    }
    let fast = q.assemble_on_demand(SpeedClass::Fast).unwrap();
    let slow = q.assemble_on_demand(SpeedClass::Slow).unwrap();
    let sum = |sb: &Superblock| -> f64 {
        sb.members.iter().map(|&m| pool.profile(m).unwrap().pgm_sum_us()).sum()
    };
    assert!(sum(&fast) < sum(&slow));
}

#[test]
fn ssd_end_to_end_prefers_qstr_med() {
    let run = |scheme| {
        let mut config = FtlConfig::small_test();
        config.scheme = scheme;
        let mut ssd = Ssd::new(config, 17).unwrap();
        let reqs = Workload::hot_cold_80_20().generate(&ssd.geometry_info(), 20_000, 3);
        ssd.run(&reqs).unwrap();
        (ssd.stats().extra_program_per_op_us(), ssd.stats().extra_erase_per_op_us())
    };
    let (rnd_pgm, _rnd_ers) = run(OrganizationScheme::Random);
    let (qstr_pgm, _qstr_ers) = run(OrganizationScheme::QstrMed { candidates: 4 });
    assert!(qstr_pgm < rnd_pgm, "end-to-end extra PGM per op: QSTR {qstr_pgm} vs random {rnd_pgm}");
}

#[test]
fn overhead_constants_match_paper() {
    assert_eq!(overhead::str_med_distance_checks(4, 4), 1536);
    assert_eq!(overhead::qstr_med_distance_checks(4, 4), 12);
    assert!((overhead::check_reduction_percent(4, 4, 4) - 99.22).abs() < 0.01);
    assert_eq!(overhead::per_block_metadata_bytes(384), 52);
}

#[test]
fn wear_does_not_break_qstr_advantage() {
    // Figure 15's claim: the improvement persists across P/E cycles.
    let config = test_config();
    let array = FlashArray::new(config.clone(), 6);
    let chr = Characterizer::new(&config);
    for pe in [0u32, 1500, 3000] {
        let pool = chr.snapshot(array.latency_model(), pe);
        let (rnd, _) = avg_extra(&pool, &RandomAssembly::new(1).assemble(&pool));
        let (qstr, _) = avg_extra(&pool, &QstrMed::with_candidates(4).assemble(&pool));
        assert!(qstr < rnd, "at PE {pe}: QSTR {qstr} vs random {rnd}");
    }
}
