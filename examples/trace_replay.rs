//! Replay a block trace (embedded sample, or a file given as the first
//! argument) against two organization schemes and compare host latencies.
//!
//! ```text
//! cargo run --release --example trace_replay [trace.csv]
//! ```
//!
//! Trace format: `W|R|T,lpn[,len]` per line; `#` comments allowed.

use std::io::BufReader;
use superpage::ftl::trace::{fold_to_capacity, parse_trace};
use superpage::ftl::{poisson_arrivals, FtlConfig, OrganizationScheme, Ssd};

/// A small bursty sample: sequential prefill, hot overwrites, reads.
const SAMPLE: &str = "\
# sample trace: prefill, hot overwrite loop, read-back
W,0,64
W,0,16
W,16,16
W,0,16
R,0,32
W,0,16
T,48,8
W,48,8
R,0,64
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let raw = match std::env::args().nth(1) {
        Some(path) => parse_trace(BufReader::new(std::fs::File::open(path)?))?,
        None => parse_trace(SAMPLE.as_bytes())?,
    };
    println!("{} trace requests", raw.len());
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "write mean", "write p99", "read mean", "WAF"
    );
    for (name, scheme) in [
        ("Random", OrganizationScheme::Random),
        ("QSTR-MED(4)", OrganizationScheme::QstrMed { candidates: 4 }),
    ] {
        let mut config = FtlConfig::small_test();
        config.scheme = scheme;
        let mut ssd = Ssd::new(config, 11)?;
        let requests = fold_to_capacity(&raw, ssd.geometry_info().logical_pages);
        // Open-loop replay at a moderate arrival rate so queueing matters.
        ssd.run_timed(&poisson_arrivals(&requests, 500.0, 3))?;
        let s = ssd.stats();
        println!(
            "{:<12} {:>10.1}us {:>10.1}us {:>10.1}us {:>8.3}",
            name,
            s.write_latency.mean_us(),
            s.write_latency.quantile_us(0.99),
            s.read_latency.mean_us(),
            s.waf(),
        );
    }
    Ok(())
}
