//! Quickstart: characterize a small flash array, organize superblocks with
//! QSTR-MED, and compare its extra latency against the random baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use superpage::flash_model::{FlashArray, FlashConfig};
use superpage::pvcheck::assembly::{Assembler, QstrMed, RandomAssembly};
use superpage::pvcheck::{BlockPool, Characterizer, ExtraLatency, Superblock};

fn average_extra(pool: &BlockPool, sbs: &[Superblock]) -> (f64, f64) {
    let mut pgm = 0.0;
    let mut ers = 0.0;
    for sb in sbs {
        let e = ExtraLatency::of_superblock(pool, sb).expect("members come from the pool");
        pgm += e.program_us;
        ers += e.erase_us;
    }
    (pgm / sbs.len() as f64, ers / sbs.len() as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-chip TLC array with 96-layer blocks (the paper's shape, fewer
    // blocks so the example runs in a second).
    let config = FlashConfig::builder().blocks_per_plane(200).build();
    let mut array = FlashArray::new(config.clone(), 42);

    // 1. Characterize: erase + fully program every block, recording tBERS
    //    and every word-line's tPROG (the paper's §VI methodology).
    let pool = Characterizer::new(&config).characterize_array(&mut array)?;
    println!(
        "characterized {} blocks across {} pools ({} word-lines each)",
        pool.len(),
        pool.pool_count(),
        pool.wl_count()
    );

    // 2. Organize superblocks two ways.
    let random_sbs = RandomAssembly::new(7).assemble(&pool);
    let mut qstr = QstrMed::with_candidates(4);
    let qstr_sbs = qstr.assemble(&pool);

    // 3. Compare extra latency (the paper's optimization target).
    let (rnd_pgm, rnd_ers) = average_extra(&pool, &random_sbs);
    let (q_pgm, q_ers) = average_extra(&pool, &qstr_sbs);
    println!("\n{:<12} {:>16} {:>16}", "scheme", "extra PGM (us)", "extra ERS (us)");
    println!("{:<12} {:>16.2} {:>16.2}", "random", rnd_pgm, rnd_ers);
    println!("{:<12} {:>16.2} {:>16.2}", "QSTR-MED(4)", q_pgm, q_ers);
    println!(
        "\nQSTR-MED reduced extra program latency by {:.2}% and erase by {:.2}%",
        (1.0 - q_pgm / rnd_pgm) * 100.0,
        (1.0 - q_ers / rnd_ers) * 100.0
    );
    println!(
        "eigen distance checks: {} ({} per superblock)",
        qstr.distance_checks(),
        qstr.distance_checks() / qstr_sbs.len() as u64
    );
    Ok(())
}
