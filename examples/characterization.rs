//! Characterization curves (the paper's Figure 5): per-block erase latency
//! across two chips and per-word-line program latency, printed as CSV.
//!
//! ```text
//! cargo run --release --example characterization > fig5.csv
//! ```
//!
//! A flat run of equal values is a group of process-similar blocks; spikes
//! are outlier blocks; the two chips show visibly different word-line
//! profiles (chip-to-chip process variation).

use superpage::flash_model::{FlashArray, FlashConfig};

fn main() {
    let config = FlashConfig::builder().chips(2).planes_per_chip(4).blocks_per_plane(400).build();
    let array = FlashArray::new(config.clone(), 1);
    let model = array.latency_model();

    println!("kind,chip,plane,block,lwl,latency_us");
    for addr in config.geometry.blocks() {
        let tbers = model.erase_latency_us(addr, 0);
        println!("erase,{},{},{},,{:.1}", addr.chip.0, addr.plane.0, addr.block.0, tbers);
    }
    // One block per plane: the per-word-line program profile.
    for addr in config.geometry.blocks().filter(|a| a.block.0 == 25) {
        for lwl in config.geometry.lwls() {
            let t = model.program_latency_us(addr.wl(lwl), 1);
            println!(
                "program,{},{},{},{},{:.1}",
                addr.chip.0, addr.plane.0, addr.block.0, lwl.0, t
            );
        }
    }
    // A summary a human can eyeball without plotting.
    let mut per_chip: Vec<(f64, u32)> = vec![(0.0, 0); 2];
    for addr in config.geometry.blocks() {
        let e = model.erase_latency_us(addr, 0);
        let c = addr.chip.0 as usize;
        per_chip[c].0 += e;
        per_chip[c].1 += 1;
    }
    for (c, (sum, n)) in per_chip.iter().enumerate() {
        eprintln!("chip {c}: mean tBERS {:.1} us over {n} blocks", sum / f64::from(*n));
    }

    // Persist the full characterization so later runs can skip it
    // (reload with `pvcheck::io::read_pool`).
    let pool = superpage::pvcheck::Characterizer::new(&config).snapshot(model, 0);
    let file = std::fs::File::create("characterization_pool.csv")
        .expect("create characterization_pool.csv");
    superpage::pvcheck::io::write_pool(&pool, std::io::BufWriter::new(file))
        .expect("write pool CSV");
    eprintln!("wrote characterization_pool.csv ({} blocks)", pool.len());
}
