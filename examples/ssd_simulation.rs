//! End-to-end SSD simulation (the paper's §V-D): the same hot/cold host
//! workload against random, sequential and QSTR-MED superblock
//! organization with function-based placement.
//!
//! ```text
//! cargo run --release --example ssd_simulation
//! ```

use superpage::ftl::{FtlConfig, OrganizationScheme, Ssd, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schemes = [
        ("Random", OrganizationScheme::Random),
        ("Sequential", OrganizationScheme::Sequential),
        ("QSTR-MED(4)", OrganizationScheme::QstrMed { candidates: 4 }),
    ];

    println!(
        "{:<12} {:>12} {:>12} {:>8} {:>14} {:>14} {:>10}",
        "scheme", "write mean", "write p99", "WAF", "extra PGM/op", "extra ERS/op", "checks"
    );
    for (name, scheme) in schemes {
        let mut config = FtlConfig::small_test();
        config.flash = superpage::flash_model::FlashConfig::builder()
            .blocks_per_plane(48)
            .pwl_layers(24)
            .build();
        config.scheme = scheme;
        let mut ssd = Ssd::new(config, 7)?;
        let reqs = Workload::hot_cold_80_20().generate(&ssd.geometry_info(), 60_000, 99);
        ssd.run(&reqs)?;
        let s = ssd.stats();
        println!(
            "{:<12} {:>10.1}us {:>10.1}us {:>8.3} {:>12.2}us {:>12.2}us {:>10}",
            name,
            s.write_latency.mean_us(),
            s.write_latency.quantile_us(0.99),
            s.waf(),
            s.extra_program_per_op_us(),
            s.extra_erase_per_op_us(),
            ssd.distance_checks(),
        );
    }
    println!("\nQSTR-MED reduces the extra-latency columns with only a handful of");
    println!("XOR/popcount checks per assembled superblock.");
    Ok(())
}
