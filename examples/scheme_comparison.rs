//! Mini Table I: run all eight organization directions on one chip group
//! and print their extra program latency against the random baseline.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use superpage::flash_model::{FlashArray, FlashConfig};
use superpage::pvcheck::assembly::{
    Assembler, LatencySortAssembly, OptimalAssembly, QstrMed, RandomAssembly, RankAssembly,
    RankStrategy, SequentialAssembly, SortKey,
};
use superpage::pvcheck::{BlockPool, Characterizer, ExtraLatency};

fn avg_extra_pgm(pool: &BlockPool, assembler: &mut dyn Assembler) -> f64 {
    let sbs = assembler.assemble(pool);
    sbs.iter()
        .map(|sb| ExtraLatency::of_superblock(pool, sb).expect("valid members").program_us)
        .sum::<f64>()
        / sbs.len() as f64
}

fn main() {
    let config = FlashConfig::builder().blocks_per_plane(400).build();
    let array = FlashArray::new(config.clone(), 0);
    let pool = Characterizer::new(&config).snapshot(array.latency_model(), 0);

    let mut schemes: Vec<Box<dyn Assembler>> = vec![
        Box::new(RandomAssembly::new(9)),
        Box::new(SequentialAssembly::new()),
        Box::new(LatencySortAssembly::new(SortKey::Erase)),
        Box::new(LatencySortAssembly::new(SortKey::Program)),
        Box::new(OptimalAssembly::new(8)),
        Box::new(RankAssembly::new(RankStrategy::Lwl, 8)),
        Box::new(RankAssembly::new(RankStrategy::Pwl, 8)),
        Box::new(RankAssembly::new(RankStrategy::Str, 8)),
        Box::new(RankAssembly::new(RankStrategy::StrMedian, 4)),
        Box::new(QstrMed::with_candidates(4)),
    ];

    let baseline = avg_extra_pgm(&pool, schemes[0].as_mut());
    println!("{:<14} {:>16} {:>10}", "Method", "PGM LTN (us)", "Imp. %");
    println!("{:-<42}", "");
    println!("{:<14} {:>16.2} {:>10}", "Random", baseline, "-");
    for s in schemes.iter_mut().skip(1) {
        let v = avg_extra_pgm(&pool, s.as_mut());
        println!("{:<14} {:>16.2} {:>9.2}%", s.name(), v, (1.0 - v / baseline) * 100.0);
    }
}
