//! # superpage
//!
//! Facade crate for the reproduction of *"Are Superpages Super-fast?
//! Distilling Flash Blocks to Unify Flash Pages of a Superpage in an SSD"*
//! (HPCA 2024).
//!
//! This crate re-exports the three layers of the system:
//!
//! * [`flash_model`] — a deterministic process-variation model of 3D NAND
//!   flash (geometry, latency synthesis, stateful chips and multi-plane
//!   commands);
//! * [`pvcheck`] — the paper's contribution: extra-latency metrics, block
//!   characterization, the eight superblock assembly directions, and the
//!   practical QSTR-MED runtime scheme;
//! * [`ftl`] — an SSD/FTL simulator substrate that exercises QSTR-MED's
//!   gather/assemble/allocate pipeline under host workloads.
//!
//! # Quickstart
//!
//! ```
//! use superpage::flash_model::{FlashConfig, FlashArray};
//! use superpage::pvcheck::{Characterizer, ExtraLatency, assembly::{Assembler, QstrMed, SpeedClass}};
//!
//! // A small geometry keeps the doctest fast; `FlashConfig::paper_platform()`
//! // matches the paper's 4-pool, 96-layer TLC setup.
//! let config = FlashConfig::small_test();
//! let mut array = FlashArray::new(config.clone(), 42);
//! let pool = Characterizer::new(&config).characterize_array(&mut array).expect("characterize");
//!
//! let mut qstr = QstrMed::with_candidates(4);
//! let sbs = qstr.assemble(&pool);
//! assert!(!sbs.is_empty());
//! let extra = ExtraLatency::of_superblock(&pool, &sbs[0]).expect("members come from the pool");
//! assert!(extra.program_us >= 0.0);
//! ```

pub use flash_model;
pub use ftl;
pub use pvcheck;
