//! Fault-injection regression tests.
//!
//! Two contracts guard the fault layer:
//!
//! 1. **Bit-identity with faults disabled.** The injector must be a strict
//!    no-op by default: the end-to-end SSD experiment reproduces the exact
//!    bit patterns recorded before the fault layer existed. Any extra RNG
//!    draw, reordered latency fold or gated-path drift breaks these
//!    constants.
//! 2. **Graceful degradation with faults enabled.** At a 2% per-cycle
//!    block-kill rate every scheme completes, blocks retire, lost pages
//!    remap, and QSTR-MED keeps its extra-program-latency win over the
//!    random baseline (the §VI-C claim).

use flash_model::{CellType, Geometry};
use repro_bench::experiments::{resilience_experiment, ssd_experiment};

/// One scheme's pre-fault-layer golden output, recorded as IEEE-754 bit
/// patterns so the comparison is exact.
struct Golden {
    scheme: &'static str,
    write_mean_us: u64,
    write_p99_us: u64,
    waf: u64,
    extra_pgm_per_op_us: u64,
    extra_ers_per_op_us: u64,
    busy_us: u64,
    distance_checks: u64,
}

/// Golden outputs of
/// `ssd_experiment(&Geometry::new(4, 1, 24, 8, 4, Tlc), 20_000, 7)`
/// recorded before the fault layer existed.
const GOLDEN: [Golden; 3] = [
    Golden {
        scheme: "Random",
        write_mean_us: 0x4067d09e6a7eb329,
        write_p99_us: 0x409d7b3333333333,
        waf: 0x3ff16bb98c7e2824,
        extra_pgm_per_op_us: 0x403de9eef61582de,
        extra_ers_per_op_us: 0x4046a08ad8f2fba9,
        busy_us: 0x414d122960ffa9b4,
        distance_checks: 0,
    },
    Golden {
        scheme: "Sequential",
        write_mean_us: 0x4067d0ef371465e8,
        write_p99_us: 0x409d7b3333333333,
        waf: 0x3ff16bb98c7e2824,
        extra_pgm_per_op_us: 0x403dbe3f4b71febc,
        extra_ers_per_op_us: 0x4045d0456c797dd5,
        busy_us: 0x414d128c02bc6666,
        distance_checks: 0,
    },
    Golden {
        scheme: "QstrMed { candidates: 4 }",
        write_mean_us: 0x4067cbd1f3be9ca9,
        write_p99_us: 0x409d7b3333333333,
        waf: 0x3ff16bb98c7e2824,
        extra_pgm_per_op_us: 0x403c6b0969c7a2b0,
        extra_ers_per_op_us: 0x4044a4e1a08ad8f3,
        busy_us: 0x414d0c4dca0a2e3c,
        distance_checks: 519,
    },
];

#[test]
fn disabled_faults_reproduce_prefault_goldens_bit_for_bit() {
    let geo = Geometry::new(4, 1, 24, 8, 4, CellType::Tlc);
    let rows = ssd_experiment(&geo, 20_000, 7);
    assert_eq!(rows.len(), GOLDEN.len());
    for (row, golden) in rows.iter().zip(&GOLDEN) {
        let scheme = golden.scheme;
        assert_eq!(row.scheme, scheme);
        assert_eq!(
            row.write_mean_us.to_bits(),
            golden.write_mean_us,
            "{scheme} write mean drifted"
        );
        assert_eq!(row.write_p99_us.to_bits(), golden.write_p99_us, "{scheme} write p99 drifted");
        assert_eq!(row.waf.to_bits(), golden.waf, "{scheme} WAF drifted");
        assert_eq!(
            row.extra_pgm_per_op_us.to_bits(),
            golden.extra_pgm_per_op_us,
            "{scheme} extra PGM drifted"
        );
        assert_eq!(
            row.extra_ers_per_op_us.to_bits(),
            golden.extra_ers_per_op_us,
            "{scheme} extra ERS drifted"
        );
        assert_eq!(row.busy_us.to_bits(), golden.busy_us, "{scheme} busy time drifted");
        assert_eq!(row.distance_checks, golden.distance_checks, "{scheme} distance checks drifted");
    }
}

#[test]
fn spor_machinery_is_bit_identical_to_a_device_without_it() {
    // OOB programs, seal records, the allocation journal and checkpoints
    // are all free in simulated time and draw no RNG: a device with SPOR
    // disabled must behave bit-for-bit like the default (enabled) device
    // that produced `disabled_faults_reproduce_prefault_goldens_bit_for_bit`
    // — which itself still matches goldens recorded before SPOR existed.
    use ftl::{FtlConfig, OrganizationScheme, Ssd, Workload};
    let run = |spor: bool| {
        let mut config = FtlConfig::small_test();
        config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
        config.spor.enabled = spor;
        let mut dev = Ssd::new(config, 7).unwrap();
        let info = dev.geometry_info();
        let reqs = Workload::hot_cold_80_20().generate(&info, 20_000, 7 ^ 0xabc);
        dev.run(&reqs).unwrap();
        let s = dev.stats();
        (
            s.write_latency.mean_us().to_bits(),
            s.write_latency.quantile_us(0.99).to_bits(),
            s.waf().to_bits(),
            s.busy_us.to_bits(),
            s.gc_runs,
            s.gc_relocations,
            dev.distance_checks(),
        )
    };
    assert_eq!(run(true), run(false), "SPOR bookkeeping must cost nothing");
}

#[test]
fn two_percent_faults_degrade_gracefully_and_preserve_scheme_ordering() {
    let geo = Geometry::new(4, 1, 24, 8, 4, CellType::Tlc);
    let rows = resilience_experiment(&geo, 20_000, 7, &[0.0, 0.02]);
    assert_eq!(rows.len(), 6, "two rates x three schemes");
    let (clean, faulty) = rows.split_at(3);
    for r in clean {
        assert_eq!(r.retired_blocks, 0, "{}: clean media retires nothing", r.scheme);
        assert_eq!(r.remapped_writes, 0);
        assert_eq!(r.refresh_relocations, 0);
        assert_eq!(r.degraded_superblocks, 0);
    }
    for r in faulty {
        assert!(r.retired_blocks > 0, "{}: 2% faults must retire blocks", r.scheme);
        assert!(r.remapped_writes > 0, "{}: failed programs must remap pages", r.scheme);
        assert!(r.waf >= 1.0, "{}: WAF stays sane", r.scheme);
    }
    // The paper's ordering survives faulty media: QSTR-MED still beats the
    // random baseline on extra program latency.
    let pgm = |scheme: &str| {
        faulty
            .iter()
            .find(|r| r.scheme.starts_with(scheme))
            .map(|r| r.extra_pgm_per_op_us)
            .expect("scheme present")
    };
    let random = pgm("Random");
    let qstr = pgm("QstrMed");
    assert!(qstr < random, "QSTR-MED {qstr} must beat random {random} under faults");
}
