//! The caching + work-queue harness must be a pure optimization: its
//! [`SchemeStats`] are required to be *exactly* equal (`==`, not
//! approximately) to a fresh, uncached, fully sequential run, and a
//! Table-I-shaped batch must characterize each `(group_seed, pe)` pool
//! exactly once.

use flash_model::FlashConfig;
use repro_bench::experiments::ComparisonResult;
use repro_bench::runner::{
    measure, run_scheme, run_scheme_with, run_schemes_parallel_with, ExperimentParams, SchemeKind,
    SchemeStats,
};

/// Parameters small enough to afford several fresh characterizations but
/// shaped like the real sweeps: two groups, two P/E points.
fn small_params() -> ExperimentParams {
    let config = FlashConfig::builder().blocks_per_plane(16).pwl_layers(8).build();
    ExperimentParams { config, group_seeds: vec![0, 1], pe_points: vec![0, 600] }
}

/// The pre-cache sequential harness, re-implemented verbatim from public
/// pieces: characterize every group fresh at each P/E point, assemble,
/// measure, and accumulate in pe-major group order.
fn reference_sequential(params: &ExperimentParams, kind: SchemeKind) -> SchemeStats {
    let mut total_pgm = 0.0;
    let mut total_ers = 0.0;
    let mut total_n = 0usize;
    for &pe in &params.pe_points {
        for (gi, pool) in params.pools_at(pe).iter().enumerate() {
            let mut asm = kind.assembler(params.group_seeds[gi] ^ u64::from(pe));
            let sbs = asm.assemble(pool);
            let stats = measure(pool, &sbs, &asm.name());
            total_pgm += stats.extra_pgm_us * stats.superblocks as f64;
            total_ers += stats.extra_ers_us * stats.superblocks as f64;
            total_n += stats.superblocks;
        }
    }
    let n = total_n.max(1) as f64;
    SchemeStats {
        name: kind.name(),
        extra_pgm_us: total_pgm / n,
        extra_ers_us: total_ers / n,
        superblocks: total_n,
    }
}

const ROSTER_A: [SchemeKind; 3] =
    [SchemeKind::Sequential, SchemeKind::PgmLatency, SchemeKind::QstrMed(4)];
const ROSTER_B: [SchemeKind; 3] =
    [SchemeKind::Random, SchemeKind::StrRank(4), SchemeKind::StrMed(4)];

#[test]
fn cached_run_scheme_equals_fresh_sequential() {
    let params = small_params();
    let cache = params.cache();
    for kind in ROSTER_A.into_iter().chain(ROSTER_B) {
        let fresh = reference_sequential(&params, kind);
        let cached = run_scheme_with(&params, &cache, kind);
        assert_eq!(fresh, cached, "{kind:?}");
        // The convenience wrapper (private cache) agrees too.
        assert_eq!(fresh, run_scheme(&params, kind), "{kind:?}");
    }
}

#[test]
fn work_queue_equals_fresh_sequential_for_both_rosters() {
    let params = small_params();
    for roster in [&ROSTER_A[..], &ROSTER_B[..]] {
        let expected: Vec<SchemeStats> =
            roster.iter().map(|&k| reference_sequential(&params, k)).collect();
        let cache = params.cache();
        let got = run_schemes_parallel_with(&params, &cache, roster);
        assert_eq!(expected, got);
    }
}

#[test]
fn comparison_run_equals_fresh_sequential() {
    let params = small_params();
    let cache = params.cache();
    let r = ComparisonResult::run_with(&params, &cache, &ROSTER_A);
    assert_eq!(r.baseline, reference_sequential(&params, SchemeKind::Random));
    for (kind, stats) in ROSTER_A.into_iter().zip(&r.schemes) {
        assert_eq!(*stats, reference_sequential(&params, kind), "{kind:?}");
    }
}

#[test]
fn table_shaped_batch_characterizes_each_pool_exactly_once() {
    let params = small_params();
    let cache = params.cache();
    let roster = SchemeKind::table1_roster();
    let _ = ComparisonResult::run_with(&params, &cache, &roster);
    let pools = params.group_seeds.len() * params.pe_points.len();
    assert_eq!(cache.builds(), pools, "one characterization per (group, pe)");
    assert_eq!(cache.len(), pools);
    // A second table over the same cache re-characterizes nothing.
    let _ = ComparisonResult::run_with(&params, &cache, &roster);
    assert_eq!(cache.builds(), pools);
}
