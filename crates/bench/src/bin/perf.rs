//! Before/after wall-clock for the characterization/pool layer rework.
//!
//! "Before" reproduces the pre-cache pipeline faithfully: every scheme
//! re-characterizes each group at each P/E point with the single-threaded
//! snapshot, and the roster is parallelized one-thread-per-scheme (so it is
//! straggler-bound by `Optimal(8)`). "After" is the shipped pipeline: one
//! shared [`PoolCache`], multi-threaded snapshots and a work queue over
//! `(scheme, group, pe)` cells. Both produce bit-identical `SchemeStats`
//! (asserted here on every run).
//!
//! Usage: `cargo run --release -p repro-bench --bin perf [--out BENCH_1.json]`

use flash_model::{CellType, FlashArray, FlashConfig, Geometry};
use pvcheck::Characterizer;
use repro_bench::experiments::{table1_with, ComparisonResult};
use repro_bench::runner::{measure, ExperimentParams, SchemeKind, SchemeStats};
use std::time::Instant;

/// The old `ExperimentParams::pools_at`: fresh pools, serial snapshot.
fn pools_at_serial(params: &ExperimentParams, pe: u32) -> Vec<pvcheck::BlockPool> {
    let chr = Characterizer::new(&params.config);
    params
        .group_seeds
        .iter()
        .map(|&seed| {
            let array = FlashArray::new(params.config.clone(), seed);
            chr.snapshot_serial(array.latency_model(), pe)
        })
        .collect()
}

/// The old `run_scheme`: characterizes inside the scheme loop.
fn run_scheme_before(params: &ExperimentParams, kind: SchemeKind) -> SchemeStats {
    let mut total_pgm = 0.0;
    let mut total_ers = 0.0;
    let mut total_n = 0usize;
    for &pe in &params.pe_points {
        for (gi, pool) in pools_at_serial(params, pe).iter().enumerate() {
            let mut asm = kind.assembler(params.group_seeds[gi] ^ u64::from(pe));
            let sbs = asm.assemble(pool);
            let stats = measure(pool, &sbs, &asm.name());
            total_pgm += stats.extra_pgm_us * stats.superblocks as f64;
            total_ers += stats.extra_ers_us * stats.superblocks as f64;
            total_n += stats.superblocks;
        }
    }
    let n = total_n.max(1) as f64;
    SchemeStats {
        name: kind.name(),
        extra_pgm_us: total_pgm / n,
        extra_ers_us: total_ers / n,
        superblocks: total_n,
    }
}

/// The old `ComparisonResult::run` for Table I: sequential baseline, then
/// one thread per roster scheme.
fn table1_before(params: &ExperimentParams) -> ComparisonResult {
    let baseline = run_scheme_before(params, SchemeKind::Random);
    let roster = SchemeKind::table1_roster();
    let schemes = std::thread::scope(|scope| {
        let handles: Vec<_> =
            roster.iter().map(|&k| scope.spawn(move || run_scheme_before(params, k))).collect();
        handles.into_iter().map(|h| h.join().expect("scheme thread panicked")).collect()
    });
    ComparisonResult { baseline, schemes }
}

struct Timing {
    name: &'static str,
    before_s: f64,
    after_s: f64,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.before_s / self.after_s
    }
}

fn time_table1(name: &'static str, params: &ExperimentParams) -> Timing {
    let t = Instant::now();
    let before = table1_before(params);
    let before_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let cache = params.cache();
    let after = table1_with(params, &cache);
    let after_s = t.elapsed().as_secs_f64();

    // The speedup only counts if the numbers are untouched.
    assert_eq!(before.baseline, after.baseline, "{name}: baseline drifted");
    assert_eq!(before.schemes, after.schemes, "{name}: scheme stats drifted");
    let pools = params.group_seeds.len() * params.pe_points.len();
    assert_eq!(cache.builds(), pools, "{name}: cache built pools more than once");

    eprintln!("{name}: before {before_s:.2}s, after {after_s:.2}s ({:.2}x)", before_s / after_s);
    Timing { name, before_s, after_s }
}

fn main() {
    let out = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.iter().position(|a| a == "--out") {
            Some(i) => args.get(i + 1).cloned().expect("--out takes a path"),
            None => "BENCH_1.json".to_string(),
        }
    };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!("timing Table I (9 schemes) on {threads} threads ...");

    // The smoke-test shape every PR gate runs ...
    let quick = time_table1("table1_quick", &ExperimentParams::quick());
    // ... and the `repro --quick` CLI shape: 2 groups x 2 P/E points on a
    // 4 x 400-block, 96-layer array — the full Table I roster with real
    // characterization volume.
    let mut full = ExperimentParams {
        group_seeds: vec![0, 1],
        pe_points: vec![0, 3000],
        ..ExperimentParams::default()
    };
    full.config.geometry = Geometry::new(4, 1, 400, 96, 4, CellType::Tlc);
    full.config.variation = FlashConfig::paper_platform().variation;
    let full = time_table1("table1_full_roster", &full);

    let runs: Vec<String> = [&quick, &full]
        .iter()
        .map(|t| {
            format!(
                "    {{\"name\": \"{}\", \"before_s\": {:.3}, \"after_s\": {:.3}, \"speedup\": {:.2}}}",
                t.name,
                t.before_s,
                t.after_s,
                t.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"table1 wall-clock: per-scheme serial characterization + \
         thread-per-scheme (before) vs shared PoolCache + parallel snapshot + work queue (after)\",\n  \
         \"command\": \"cargo run --release -p repro-bench --bin perf\",\n  \
         \"host_threads\": {threads},\n  \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_1.json");
    eprintln!("wrote {out}");

    assert!(
        quick.speedup() >= 2.0 || full.speedup() >= 2.0,
        "expected >= 2x on a multi-core host: quick {:.2}x, full {:.2}x",
        quick.speedup(),
        full.speedup()
    );
}
