//! Before/after wall-clock for the mapping/GC hot-path rework.
//!
//! "Before" is the original `HashMap`-backed reverse map: every per-block
//! validity query scans all mapped pages, so GC victim selection rescans
//! the whole device once per candidate superblock and every relocation pass
//! collects-and-sorts. "After" is the shipped dense store: a flat `Vec`
//! reverse map indexed by the flattened physical-page index plus per-block
//! valid counters maintained incrementally, making the same queries O(1).
//! Both stores make identical decisions — asserted here on every run: host
//! counters, GC work and latency stats must match bit for bit.
//!
//! Usage: `cargo run --release -p repro-bench --bin perf_replay [--out BENCH_2.json]`

use flash_model::{CellType, FlashConfig, Geometry};
use ftl::{FtlConfig, IoRequest, Ssd};
use std::time::Instant;

/// Everything that must be identical between the two stores.
#[derive(Debug, PartialEq, Eq)]
struct Snapshot {
    host_writes: u64,
    gc_runs: u64,
    gc_relocations: u64,
    valid_pages: usize,
    write_mean_bits: u64,
    waf_bits: u64,
    busy_bits: u64,
}

/// Replays a GC-heavy stream (a small hot set overwritten `cycles`x the
/// device capacity) and returns the wall-clock seconds plus the result
/// snapshot.
fn replay(config: &FtlConfig, seed: u64, naive: bool, cycles: u64) -> (f64, Snapshot) {
    let mut ssd = Ssd::new(config.clone(), seed).expect("valid config");
    if naive {
        ssd.use_naive_mapping_for_benchmarks();
    }
    let capacity = ssd.geometry_info().logical_pages;
    // Scattered overwrites across most of the logical space: victims keep
    // plenty of valid pages, so GC relocates (not just erases) constantly.
    let span = (capacity * 3 / 4).max(1);
    let reqs: Vec<IoRequest> = (0..capacity * cycles)
        .map(|i| IoRequest::write((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % span))
        .collect();
    let t = Instant::now();
    ssd.run(&reqs).expect("workload fits the device");
    let elapsed = t.elapsed().as_secs_f64();
    let stats = ssd.stats();
    let snap = Snapshot {
        host_writes: stats.host_writes,
        gc_runs: stats.gc_runs,
        gc_relocations: stats.gc_relocations,
        valid_pages: ssd.valid_pages(),
        write_mean_bits: stats.write_latency.mean_us().to_bits(),
        waf_bits: stats.waf().to_bits(),
        busy_bits: stats.busy_us.to_bits(),
    };
    (elapsed, snap)
}

struct Timing {
    name: &'static str,
    before_s: f64,
    after_s: f64,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.before_s / self.after_s
    }
}

fn time_replay(name: &'static str, config: &FtlConfig, cycles: u64) -> Timing {
    let (before_s, before) = replay(config, 11, true, cycles);
    let (after_s, after) = replay(config, 11, false, cycles);
    // The speedup only counts if the decisions are untouched.
    assert_eq!(before, after, "{name}: naive and dense stores diverged");
    eprintln!(
        "{name}: naive {before_s:.2}s, dense {after_s:.2}s ({:.2}x); \
         {} GC runs, {} relocations",
        before_s / after_s,
        after.gc_runs,
        after.gc_relocations
    );
    Timing { name, before_s, after_s }
}

fn main() {
    let out = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.iter().position(|a| a == "--out") {
            Some(i) => args.get(i + 1).cloned().expect("--out takes a path"),
            None => "BENCH_2.json".to_string(),
        }
    };

    // The test-suite device shape ...
    let small = FtlConfig::small_test();
    let small = time_replay("small_test_x6", &small, 6);
    // ... and the `repro ssd` device shape (4 chips x 48 blocks x 96 LWLs),
    // where the naive per-block scans cover ~41k mapped pages each.
    let mut large = FtlConfig::small_test();
    large.flash = FlashConfig {
        geometry: Geometry::new(4, 1, 48, 24, 4, CellType::Tlc),
        variation: flash_model::VariationConfig::default(),
    };
    let large = time_replay("ssd_shape_x3", &large, 3);

    let runs: Vec<String> = [&small, &large]
        .iter()
        .map(|t| {
            format!(
                "    {{\"name\": \"{}\", \"before_s\": {:.3}, \"after_s\": {:.3}, \"speedup\": {:.2}}}",
                t.name,
                t.before_s,
                t.after_s,
                t.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"GC-heavy replay wall-clock: HashMap reverse map with per-block \
         scans (before) vs dense p2l + incremental valid counters (after); identical decisions \
         asserted bit-for-bit\",\n  \
         \"command\": \"cargo run --release -p repro-bench --bin perf_replay\",\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_2.json");
    eprintln!("wrote {out}");

    assert!(
        small.speedup() >= 3.0 || large.speedup() >= 3.0,
        "expected >= 3x from O(1) per-block queries: small {:.2}x, large {:.2}x",
        small.speedup(),
        large.speedup()
    );
}
