//! Fleet replay throughput vs worker count (BENCH_4).
//!
//! Replays one sharded multi-user fleet workload — the `repro fleet`
//! shape: GC-active batched devices behind the three-tenant QoS frontend —
//! at several worker-pool sizes and reports fleet ops/sec for each. The
//! determinism contract is asserted before any number counts: every
//! worker count must produce a bit-identical [`fleet::FleetReport`]
//! (fleet quantiles, per-device stats and the full per-device sample
//! vectors), so the sweep measures pure wall-clock scaling, never a
//! results drift.
//!
//! The JSON records the machine's core count alongside the worker sweep:
//! on a single-core host the oversubscribed rows show scheduling overhead
//! rather than speedup, and the `speedup_vs_1w` column says so honestly.
//!
//! Usage: `cargo run --release -p repro-bench --bin perf_fleet [--quick] [--out BENCH_4.json]`

use fleet::{run_fleet, FleetConfig, FleetReport, FleetWorkload};
use ftl::{EngineMode, FtlConfig, GcBudget, OrganizationScheme, QueueModel};
use host::Arbitration;
use std::time::Instant;

/// The `repro fleet` device shape: GC-active sliced collection on the
/// batched engine with QSTR-MED placement.
fn device_config() -> FtlConfig {
    FtlConfig {
        scheme: OrganizationScheme::QstrMed { candidates: 4 },
        queue_model: QueueModel::PerChip,
        engine: EngineMode::Batched,
        idle_gc: true,
        gc_budget: GcBudget::Sliced { slice_us: 300.0 },
        overprovision: 0.45,
        gc_low_watermark: 3,
        gc_high_watermark: 5,
        ..FtlConfig::small_test()
    }
}

/// Everything that must match across worker counts, down to the bit: the
/// fleet quantiles plus every device's stats and full sample vector.
#[derive(Debug, PartialEq, Eq)]
struct FleetSnapshot {
    total_commands: u64,
    p99_bits: u64,
    p999_bits: u64,
    p9999_bits: u64,
    max_bits: u64,
    max_device_p99_bits: u64,
    median_device_p99_bits: u64,
    devices: Vec<(u64, u64, u64, u64, u64, Vec<u64>)>,
}

impl FleetSnapshot {
    fn of(report: &FleetReport) -> Self {
        FleetSnapshot {
            total_commands: report.total_commands,
            p99_bits: report.p99_us.to_bits(),
            p999_bits: report.p999_us.to_bits(),
            p9999_bits: report.p9999_us.to_bits(),
            max_bits: report.max_us.to_bits(),
            max_device_p99_bits: report.max_device_p99_us.to_bits(),
            median_device_p99_bits: report.median_device_p99_us.to_bits(),
            devices: report
                .devices
                .iter()
                .map(|d| {
                    (
                        d.completed,
                        d.backpressured,
                        d.gc_slices,
                        d.gc_stall_us.to_bits(),
                        d.makespan_us.to_bits(),
                        d.latency.samples_us().iter().map(|s| s.to_bits()).collect(),
                    )
                })
                .collect(),
        }
    }
}

/// One timed row of the output JSON.
struct Timing {
    workers: usize,
    ops: u64,
    elapsed_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = match args.iter().position(|a| a == "--out") {
        Some(i) => args.get(i + 1).cloned().expect("--out takes a path"),
        None => "BENCH_4.json".to_string(),
    };

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (users, devices, reps) = if quick { (10_000u64, 4usize, 1) } else { (120_000, 8, 3) };
    let mut workload = FleetWorkload::new(users, devices);
    // The `repro fleet` pacing: a stationary ~900µs aggregate gap per
    // device, with user starts spread over one stream length so the
    // replay measures steady-state throughput, not a t = 0 backlog drain.
    workload.mean_gap_us = 900.0 * users as f64 / devices as f64;
    workload.start_spread_us = workload.mean_gap_us * workload.mean_ops_per_user;

    // Worker counts: serial, pairwise, and one-per-core — deduped so a
    // single-core machine still produces at least two rows (1 and 2; the
    // oversubscribed row is what determinism must survive anyway).
    let mut worker_counts = vec![1usize, 2];
    if !worker_counts.contains(&cores) {
        worker_counts.push(cores);
    }

    let mut baseline: Option<FleetSnapshot> = None;
    let mut timings: Vec<Timing> = Vec::new();
    for &workers in &worker_counts {
        let config = FleetConfig {
            device_config: device_config(),
            workload: workload.clone(),
            fleet_seed: 11,
            arbitration: Arbitration::WeightedRoundRobin,
            workers,
        };
        let mut best = f64::INFINITY;
        let mut ops = 0u64;
        for _ in 0..reps {
            let t = Instant::now();
            let report = run_fleet(&config).expect("fleet workload fits the devices");
            best = best.min(t.elapsed().as_secs_f64());
            ops = report.total_commands;
            let snap = FleetSnapshot::of(&report);
            match &baseline {
                Some(prev) => assert_eq!(
                    prev, &snap,
                    "fleet report diverged at {workers} workers — determinism broken"
                ),
                None => baseline = Some(snap),
            }
        }
        eprintln!("workers {workers}: {ops} ops in {best:.2}s ({:.0} ops/s)", ops as f64 / best);
        timings.push(Timing { workers, ops, elapsed_s: best });
    }

    let one_worker_s = timings[0].elapsed_s;
    let runs: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"name\": \"workers_{}\", \"workers\": {}, \"ops\": {}, \
                 \"elapsed_s\": {:.3}, \"ops_per_s\": {:.0}, \"speedup_vs_1w\": {:.2}}}",
                t.workers,
                t.workers,
                t.ops,
                t.elapsed_s,
                t.ops as f64 / t.elapsed_s,
                one_worker_s / t.elapsed_s,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"Fleet-scale parallel replay: a sharded multi-user workload over \
         {devices} GC-active devices, replayed at several worker-pool sizes; the FleetReport \
         (quantiles, per-device stats, full sample vectors) is asserted bit-identical across \
         worker counts before any throughput number counts\",\n  \
         \"command\": \"cargo run --release -p repro-bench --bin perf_fleet\",\n  \
         \"quick\": {quick},\n  \
         \"cores\": {cores},\n  \
         \"devices\": {devices},\n  \
         \"users\": {users},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_4.json");
    eprintln!("wrote {out}");
}
