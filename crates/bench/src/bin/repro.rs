//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p repro-bench --bin repro -- all
//! cargo run --release -p repro-bench --bin repro -- table1 table5 --quick
//! ```
//!
//! Outputs aligned text to stdout and CSV files under `results/`.
//!
//! Flags:
//! * `--quick`       small geometry, 2 groups, 1 P/E point (smoke run)
//! * `--groups N`    independent 4-pool groups to average (default 3; the paper's 24 chips correspond to 6)
//! * `--blocks N`    blocks per pool (default 1600)
//! * `--pe-step N`   P/E sweep step for table experiments (default 1500)
//! * `--engine E`    replay engine for `queueing`/`tenants`: `stepper` (default) or `batched` (bit-identical rows, faster)
//! * `--gc MODE`     `tenants` collector: `off` (default; volume below the GC watermarks) or `on` (GC-active volume + sliced preemptive collection)
//! * `--out DIR`     output directory (default `results`)

use flash_model::{CellType, Geometry};
use ftl::{EngineMode, GcBudget};
use repro_bench::experiments as exp;
use repro_bench::report::{pct, us, TextTable};
use repro_bench::runner::ExperimentParams;
use std::path::{Path, PathBuf};

struct Cli {
    commands: Vec<String>,
    params: ExperimentParams,
    out: PathBuf,
    quick: bool,
    engine: EngineMode,
    gc: bool,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut commands = Vec::new();
    let mut groups = 3u64;
    let mut blocks = 1600u32;
    let mut pe_step = 1500u32;
    let mut quick = false;
    let mut engine = EngineMode::Stepper;
    let mut gc = false;
    let mut out = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--engine" => {
                i += 1;
                engine = match args[i].as_str() {
                    "stepper" => EngineMode::Stepper,
                    "batched" => EngineMode::Batched,
                    other => panic!("--engine takes 'stepper' or 'batched', got {other:?}"),
                };
            }
            "--gc" => {
                i += 1;
                gc = match args[i].as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--gc takes 'on' or 'off', got {other:?}"),
                };
            }
            "--groups" => {
                i += 1;
                groups = args[i].parse().expect("--groups takes a number");
            }
            "--blocks" => {
                i += 1;
                blocks = args[i].parse().expect("--blocks takes a number");
            }
            "--pe-step" => {
                i += 1;
                pe_step = args[i].parse().expect("--pe-step takes a number");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            cmd => commands.push(cmd.to_string()),
        }
        i += 1;
    }
    if quick {
        groups = 2;
        blocks = 400;
        pe_step = 3000;
    }
    if commands.is_empty() {
        commands.push("all".to_string());
    }
    const KNOWN: [&str; 22] = [
        "all",
        "resilience",
        "parity",
        "recovery",
        "integrity",
        "queueing",
        "tenants",
        "fleet",
        "table1",
        "table2",
        "table5",
        "fig5",
        "fig6",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "overhead",
        "ablation",
        "stats",
        "qstr-sweep",
        "ers-corr",
    ];
    for c in &commands {
        assert!(
            KNOWN.contains(&c.as_str()) || c == "retry" || c == "ssd",
            "unknown command {c:?}; known: {KNOWN:?}, retry, ssd"
        );
    }
    let mut params = ExperimentParams {
        group_seeds: (0..groups).collect(),
        pe_points: (0..=3000).step_by(pe_step as usize).collect(),
        ..ExperimentParams::default()
    };
    params.config.geometry = Geometry::new(4, 1, blocks, 96, 4, CellType::Tlc);
    Cli { commands, params, out, quick, engine, gc }
}

fn comparison_table(title: &str, r: &exp::ComparisonResult, out: &Path, file: &str) {
    let mut t = TextTable::new(["Method", "Extra PGM LTN", "Extra ERS LTN", "PGM LTN ↓", "Imp. %"]);
    t.row([
        r.baseline.name.clone(),
        us(r.baseline.extra_pgm_us),
        us(r.baseline.extra_ers_us),
        "-".into(),
        "-".into(),
    ]);
    for s in &r.schemes {
        t.row([
            s.name.clone(),
            us(s.extra_pgm_us),
            us(s.extra_ers_us),
            us(s.pgm_reduction_us(&r.baseline)),
            pct(s.pgm_improvement_pct(&r.baseline)),
        ]);
    }
    println!("== {title} ==\n{}", t.render());
    t.write_csv(out.join(file)).expect("write csv");
}

fn main() {
    let cli = parse_cli();
    std::fs::create_dir_all(&cli.out).expect("create output dir");
    // One characterization cache shared by every command in this invocation:
    // `table1 table5 fig13` characterize each (group, P/E) pool once total.
    let cache = cli.params.cache();
    let t0 = std::time::Instant::now();
    for cmd in &cli.commands {
        let run_all = cmd == "all";
        if run_all || cmd == "table1" {
            eprintln!("[{:?}] running table1 ...", t0.elapsed());
            comparison_table(
                "Table I: eight directions",
                &exp::table1_with(&cli.params, &cache),
                &cli.out,
                "table1.csv",
            );
        }
        if run_all || cmd == "table2" {
            eprintln!("[{:?}] running table2 ...", t0.elapsed());
            comparison_table(
                "Table II: STR-RANK window sizes",
                &exp::table2_with(&cli.params, &cache),
                &cli.out,
                "table2.csv",
            );
        }
        if run_all || cmd == "table5" || cmd == "fig12" {
            eprintln!("[{:?}] running table5/fig12 ...", t0.elapsed());
            let r = exp::table5_with(&cli.params, &cache);
            comparison_table(
                "Table V: extra program and erase latency",
                &r,
                &cli.out,
                "table5.csv",
            );
            // Figure 12: improvement percentages.
            let mut t = TextTable::new(["Method", "PGM Imp. %", "ERS Imp. %"]);
            for s in &r.schemes {
                t.row([
                    s.name.clone(),
                    pct(s.pgm_improvement_pct(&r.baseline)),
                    pct(s.ers_improvement_pct(&r.baseline)),
                ]);
            }
            println!("== Figure 12: improvement over random ==\n{}", t.render());
            t.write_csv(cli.out.join("fig12.csv")).expect("write csv");
        }
        if run_all || cmd == "fig5" {
            eprintln!("[{:?}] running fig5 ...", t0.elapsed());
            let d =
                exp::fig5(cli.params.group_seeds[0], cli.params.config.geometry.blocks_per_plane());
            let mut e = TextTable::new(["chip", "plane", "block", "tBERS_us"]);
            for (c, p, b, t) in &d.erase_rows {
                e.row([c.to_string(), p.to_string(), b.to_string(), format!("{t:.1}")]);
            }
            e.write_csv(cli.out.join("fig5_erase.csv")).expect("write csv");
            let mut pr = TextTable::new(["chip", "plane", "block", "lwl", "tPROG_us"]);
            for (c, p, b, w, t) in &d.program_rows {
                pr.row([
                    c.to_string(),
                    p.to_string(),
                    b.to_string(),
                    w.to_string(),
                    format!("{t:.1}"),
                ]);
            }
            pr.write_csv(cli.out.join("fig5_program.csv")).expect("write csv");
            let mean_bers =
                d.erase_rows.iter().map(|r| r.3).sum::<f64>() / d.erase_rows.len() as f64;
            println!(
                "== Figure 5 == wrote {} erase rows and {} program rows (mean tBERS {}); see fig5_*.csv\n",
                d.erase_rows.len(),
                d.program_rows.len(),
                us(mean_bers)
            );
        }
        if run_all || cmd == "fig6" {
            eprintln!("[{:?}] running fig6 ...", t0.elapsed());
            let d = exp::fig6_with(&cli.params, &cache);
            let mut t = TextTable::new(["superblock", "extra_pgm_us", "extra_ers_us"]);
            for (i, p, e) in &d.per_superblock {
                t.row([i.to_string(), format!("{p:.1}"), format!("{e:.1}")]);
            }
            t.write_csv(cli.out.join("fig6_superblocks.csv")).expect("write csv");
            let mut t2 = TextTable::new(["pe", "extra_pgm_us", "extra_ers_us"]);
            for (pe, p, e) in &d.per_pe {
                t2.row([pe.to_string(), format!("{p:.1}"), format!("{e:.1}")]);
            }
            println!("== Figure 6: random assembly extra latency ==\n{}", t2.render());
            t2.write_csv(cli.out.join("fig6_pe.csv")).expect("write csv");
        }
        if run_all || cmd == "fig13" {
            eprintln!("[{:?}] running fig13 ...", t0.elapsed());
            let hists = exp::fig13_with(&cli.params, &cache, 500.0);
            let max_bins = hists.iter().map(|h| h.counts.len()).max().unwrap_or(0);
            let mut header = vec!["bin_lo_us".to_string()];
            header.extend(hists.iter().map(|h| h.name.clone()));
            let mut t = TextTable::new(header);
            for bin in 0..max_bins {
                let mut row = vec![format!("{:.0}", bin as f64 * 500.0)];
                for h in &hists {
                    row.push(h.counts.get(bin).copied().unwrap_or(0).to_string());
                }
                t.row(row);
            }
            println!("== Figure 13: extra PGM latency distribution ==\n{}", t.render());
            t.write_csv(cli.out.join("fig13.csv")).expect("write csv");
        }
        if run_all || cmd == "fig14" {
            eprintln!("[{:?}] running fig14 ...", t0.elapsed());
            let d = exp::fig14_with(&cli.params, &cache);
            let mut t = TextTable::new(["rank", "str_med_us", "qstr_med_us", "random_us"]);
            for (i, s, q, r) in &d.rows {
                t.row([i.to_string(), format!("{s:.1}"), format!("{q:.1}"), format!("{r:.1}")]);
            }
            t.write_csv(cli.out.join("fig14.csv")).expect("write csv");
            let mean = |f: fn(&(usize, f64, f64, f64)) -> f64| {
                d.rows.iter().map(f).sum::<f64>() / d.rows.len() as f64
            };
            println!(
                "== Figure 14 == mean extra PGM: STR-MED {} vs QSTR-MED {} vs random {} ({} superblocks); fig14.csv\n",
                us(mean(|r| r.1)),
                us(mean(|r| r.2)),
                us(mean(|r| r.3)),
                d.rows.len()
            );
        }
        if run_all || cmd == "fig15" {
            eprintln!("[{:?}] running fig15 ...", t0.elapsed());
            let pe_points: Vec<u32> = (0..=3000).step_by(300).collect();
            let d = exp::fig15_with(&cli.params, &cache, &pe_points);
            let mut t = TextTable::new(["pe", "random_pgm", "qstr_pgm", "random_ers", "qstr_ers"]);
            for (pe, rp, qp, re, qe) in &d.rows {
                t.row([
                    pe.to_string(),
                    format!("{rp:.1}"),
                    format!("{qp:.1}"),
                    format!("{re:.2}"),
                    format!("{qe:.2}"),
                ]);
            }
            println!("== Figure 15: P/E sensitivity ==\n{}", t.render());
            t.write_csv(cli.out.join("fig15.csv")).expect("write csv");
        }
        if run_all || cmd == "overhead" {
            eprintln!("[{:?}] running overhead ...", t0.elapsed());
            let o = exp::overhead_analysis_with(&cli.params, &cache);
            println!("== Overhead (§VI-B-2, §VI-D) ==");
            println!("STR-MED(4) distance checks / superblock : {}", o.str_med_checks);
            println!("QSTR-MED(4) distance checks / superblock: {}", o.qstr_med_checks);
            println!("reduction                               : {}", pct(o.reduction_pct));
            println!(
                "measured QSTR checks per superblock     : {:.2}",
                o.measured_checks_per_superblock
            );
            let mut t = TextTable::new(["capacity_B", "block_B", "lwls", "metadata_B"]);
            for (cap, blk, lwls, bytes) in &o.space_rows {
                t.row([cap.to_string(), blk.to_string(), lwls.to_string(), bytes.to_string()]);
            }
            println!("{}", t.render());
            t.write_csv(cli.out.join("overhead.csv")).expect("write csv");
        }
        if run_all || cmd == "ablation" {
            eprintln!("[{:?}] running ablation ...", t0.elapsed());
            let rows = exp::ablation(&cli.params);
            let mut t = TextTable::new(["model variant", "random extra PGM", "random extra ERS"]);
            for (name, p, e) in &rows {
                t.row([name.clone(), us(*p), us(*e)]);
            }
            println!("== Ablation: variation sources ==\n{}", t.render());
            t.write_csv(cli.out.join("ablation.csv")).expect("write csv");
        }
        if run_all || cmd == "stats" {
            eprintln!("[{:?}] running stats ...", t0.elapsed());
            let s = exp::pool_stats_with(&cli.params, &cache);
            println!("== Characterization statistics (§III) ==");
            println!("erase-program correlation          : {:.3}", s.bers_pgm_correlation);
            println!("same-offset eigen distance (norm.) : {:.4}", s.same_offset_eigen_distance);
            println!("random-pair eigen distance (norm.) : {:.4}", s.random_pair_eigen_distance);
            println!(
                "offset similarity premise          : {}",
                if s.offset_similarity_holds() { "holds" } else { "violated" }
            );
            let mut t =
                TextTable::new(["pool", "mean PGM sum", "std PGM sum", "mean tBERS", "std tBERS"]);
            for (i, p) in s.per_pool.iter().enumerate() {
                t.row([
                    i.to_string(),
                    us(p.mean_pgm_sum_us),
                    us(p.std_pgm_sum_us),
                    us(p.mean_tbers_us),
                    us(p.std_tbers_us),
                ]);
            }
            println!("{}", t.render());
            t.write_csv(cli.out.join("stats.csv")).expect("write csv");
        }
        if run_all || cmd == "qstr-sweep" {
            eprintln!("[{:?}] running qstr-sweep ...", t0.elapsed());
            let rows = exp::qstr_candidate_sweep_with(&cli.params, &cache);
            let mut t = TextTable::new(["candidates", "extra PGM LTN", "checks/superblock"]);
            for (c, pgm, checks) in &rows {
                t.row([c.to_string(), us(*pgm), format!("{checks:.1}")]);
            }
            println!("== Ablation: QSTR-MED candidate depth ==\n{}", t.render());
            t.write_csv(cli.out.join("qstr_sweep.csv")).expect("write csv");
        }
        if run_all || cmd == "ers-corr" {
            eprintln!("[{:?}] running ers-corr ...", t0.elapsed());
            let rows = exp::ers_corr_ablation(&cli.params);
            let mut t = TextTable::new(["ers_pgm_corr", "random ERS", "QSTR-MED ERS"]);
            for (corr, rnd, qstr) in &rows {
                t.row([format!("{corr:.2}"), us(*rnd), us(*qstr)]);
            }
            println!("== Ablation: erase-program correlation ==\n{}", t.render());
            t.write_csv(cli.out.join("ers_corr.csv")).expect("write csv");
        }
        if run_all || cmd == "retry" {
            eprintln!("[{:?}] running retry ...", t0.elapsed());
            let rows = exp::retry_sensitivity(cli.params.group_seeds[0]);
            let mut t = TextTable::new(["pe", "retention_h", "mean read us", "mean retries"]);
            for (pe, ret, lat, retries) in &rows {
                t.row([
                    pe.to_string(),
                    format!("{ret:.0}"),
                    format!("{lat:.1}"),
                    format!("{retries:.2}"),
                ]);
            }
            println!("== Read-retry sensitivity (wear + retention) ==\n{}", t.render());
            t.write_csv(cli.out.join("retry.csv")).expect("write csv");
        }
        if run_all || cmd == "resilience" {
            eprintln!("[{:?}] running resilience ...", t0.elapsed());
            // Small enough that the write stream cycles every block several
            // times — wear is what makes the fault axis bite.
            let geo = Geometry::new(4, 1, 24, 8, 4, CellType::Tlc);
            let (writes, rates): (usize, &[f64]) = if cli.quick {
                (20_000, &[0.0, 0.01, 0.02])
            } else {
                (60_000, &[0.0, 0.002, 0.005, 0.01, 0.02])
            };
            let rows = exp::resilience_experiment(&geo, writes, 7, rates);
            let mut t = TextTable::new([
                "fault rate",
                "Scheme",
                "write mean",
                "write p99",
                "WAF",
                "extra PGM/op",
                "retired",
                "remapped",
                "refreshed",
                "degraded SBs",
            ]);
            for r in &rows {
                t.row([
                    format!("{:.3}", r.fault_rate),
                    r.scheme.clone(),
                    us(r.write_mean_us),
                    us(r.write_p99_us),
                    format!("{:.3}", r.waf),
                    us(r.extra_pgm_per_op_us),
                    r.retired_blocks.to_string(),
                    r.remapped_writes.to_string(),
                    r.refresh_relocations.to_string(),
                    r.degraded_superblocks.to_string(),
                ]);
            }
            println!("== Resilience: fault-rate sweep (§VI-C) ==\n{}", t.render());
            t.write_csv(cli.out.join("resilience.csv")).expect("write csv");
        }
        if run_all || cmd == "parity" {
            eprintln!("[{:?}] running parity ...", t0.elapsed());
            // Same small geometry as the resilience sweep; the experiment
            // retunes the fault injector to page-granular losses (weak-block
            // MSB pages just past the retry ladder) — the regime where a
            // single parity page per super word-line can actually rebuild.
            let geo = Geometry::new(4, 1, 24, 8, 4, CellType::Tlc);
            // 40k writes: enough wear that the fault axis bites, while the
            // highest-rate parity cell (whose stripe stream programs 12
            // physical pages per 11 logical) still keeps GC ahead of
            // block retirement.
            let (writes, rates): (usize, &[f64]) = if cli.quick {
                (20_000, &[0.0, 0.01, 0.02])
            } else {
                (40_000, &[0.0, 0.005, 0.01, 0.015, 0.02])
            };
            let rows = exp::parity_experiment(&geo, writes, 7, rates);
            let mut t = TextTable::new([
                "fault rate",
                "Scheme",
                "parity",
                "logical pages",
                "capacity",
                "uncorrectable",
                "rebuilt",
                "dbl-fail",
                "sweep unc",
                "sweep lost",
                "mean rebuild",
                "rebuild ok",
                "straggler",
                "refreshed",
                "read p99",
                "write p99",
            ]);
            for r in &rows {
                t.row([
                    format!("{:.3}", r.fault_rate),
                    r.scheme.clone(),
                    if r.parity { "on" } else { "off" }.to_string(),
                    r.logical_pages.to_string(),
                    format!("{:.3}", r.capacity_ratio),
                    r.uncorrectable_reads.to_string(),
                    r.rebuilds_ok.to_string(),
                    r.rebuilds_failed.to_string(),
                    r.sweep_uncorrectable.to_string(),
                    r.sweep_lost.to_string(),
                    us(r.mean_rebuild_us),
                    us(r.mean_rebuild_ok_us),
                    us(r.mean_rebuild_straggler_us),
                    r.refresh_relocations.to_string(),
                    us(r.read_p99_us),
                    us(r.write_p99_us),
                ]);
            }
            println!("== Superpage parity: off/on × scheme × fault rate ==\n{}", t.render());
            t.write_csv(cli.out.join("parity.csv")).expect("write csv");
            // Capacity cost is exactly the reserved stripe slot, never more.
            for r in rows.iter().filter(|r| r.parity) {
                assert!(
                    r.capacity_ratio > 0.90 && r.capacity_ratio < 1.0,
                    "parity reserve should cost one page per super word-line, got ratio {:.3}",
                    r.capacity_ratio
                );
            }
            // Headline (a): on the identical final read-back sweep,
            // wherever the parity-off device lost pages, the parity-on
            // twin rebuilt some and lost strictly fewer.
            for off in rows.iter().filter(|r| !r.parity && r.sweep_lost > 0) {
                let on = rows
                    .iter()
                    .find(|r| r.parity && r.scheme == off.scheme && r.fault_rate == off.fault_rate)
                    .expect("every off cell has an on twin");
                assert!(
                    on.rebuilds_ok > 0,
                    "{} @ {}: parity must rebuild some of the {} lost pages",
                    off.scheme,
                    off.fault_rate,
                    off.sweep_lost
                );
                assert!(
                    on.sweep_lost < off.sweep_lost,
                    "{} @ {}: parity-on swept {} lost pages vs parity-off {}",
                    off.scheme,
                    off.fault_rate,
                    on.sweep_lost,
                    off.sweep_lost
                );
            }
            // Headline (b): a rebuild fans its sibling reads out across the
            // stripe members and waits for the slowest chain, so its wall
            // time is the stripe's mean chain plus a straggler cost.
            // QSTR-MED's unified tBR bounds that straggler below PV-blind
            // sequential assembly's. Measured over successful rebuilds —
            // failed attempts read rotten siblings at the full retry
            // ladder — and as critical-minus-mean so that *which* pool the
            // rebuilt stripes sit in (wear, hot/cold skew) cancels out.
            let straggler = |scheme: &str| -> f64 {
                let cells: Vec<&exp::ParityRow> =
                    rows.iter().filter(|r| r.parity && r.scheme == scheme).collect();
                let ok: u64 = cells.iter().map(|r| r.rebuilds_ok).sum();
                let total: f64 =
                    cells.iter().map(|r| r.mean_rebuild_straggler_us * r.rebuilds_ok as f64).sum();
                total / ok.max(1) as f64
            };
            let (seq, med) = (straggler("Sequential"), straggler("QstrMed { candidates: 4 }"));
            println!(
                "mean rebuild straggler cost (critical path over the stripe's mean member \
                 chain): PV-blind sequential {} vs QSTR-MED {} ({} lower)",
                us(seq),
                us(med),
                pct(100.0 * (seq - med) / seq.max(1e-9)),
            );
            assert!(
                med < seq,
                "QSTR-MED's unified tBR must bound the rebuild straggler cost below \
                 PV-blind sequential's slowest member ({med:.2} vs {seq:.2} µs)"
            );
            // Fleet soak leg: the stripe active on every shard, the patrol
            // verifying parity during its existing scan, and the hardened
            // no-data-loss invariant (which now also demands zero failed
            // rebuilds) holding end to end.
            let (users, devices) = if cli.quick { (3_000, 2) } else { (6_000, 3) };
            let soak = exp::parity_soak_experiment(users, devices, 23, 0);
            let mismatches: u64 = soak.devices.iter().map(|d| d.parity_mismatch).sum();
            println!(
                "parity fleet soak: {} devices, {} live pages, {} unreadable, {} stripes \
                 parity-verified ({} mismatches), {} rebuilds ok / {} failed — no data loss: {}\n",
                soak.devices.len(),
                soak.live_lpns,
                soak.unreadable_lpns,
                soak.parity_verified,
                mismatches,
                soak.rebuilds_ok,
                soak.rebuilds_failed,
                soak.no_data_loss(),
            );
            assert!(
                soak.parity_verified > 0,
                "the patrol pass must verify sealed stripes' parity during its scan"
            );
            assert_eq!(mismatches, 0, "a sealed stripe's XOR no longer closed to zero");
            assert!(
                soak.no_data_loss(),
                "parity fleet soak lost data: an unreadable page or a failed rebuild"
            );
        }
        if run_all || cmd == "recovery" {
            eprintln!("[{:?}] running recovery ...", t0.elapsed());
            // Same small geometry as the resilience sweep: the write stream
            // cycles the device several times, so the crash lands in a
            // steady state with sealed superblocks and live GC.
            let geo = Geometry::new(4, 1, 24, 8, 4, CellType::Tlc);
            let (writes, intervals): (usize, &[u64]) =
                if cli.quick { (20_000, &[0, 64, 256]) } else { (60_000, &[0, 16, 64, 256, 1024]) };
            let rows = exp::recovery_experiment(&geo, writes, 7, intervals);
            let mut t = TextTable::new([
                "Scheme",
                "ckpt interval",
                "crashed at req",
                "scan pages",
                "recovered",
                "torn discarded",
                "recovery_us",
                "known blocks",
                "durable",
            ]);
            for r in &rows {
                t.row([
                    r.scheme.clone(),
                    r.checkpoint_interval.to_string(),
                    r.crashed_at_request.to_string(),
                    r.scan_pages.to_string(),
                    r.recovered_mappings.to_string(),
                    r.torn_writes_discarded.to_string(),
                    format!("{:.0}", r.recovery_time_us),
                    r.known_blocks_after.to_string(),
                    if r.durable_ok { "ok".into() } else { "LOST DATA".to_string() },
                ]);
            }
            println!("== Crash recovery: checkpoint-interval sweep ==\n{}", t.render());
            t.write_csv(cli.out.join("recovery.csv")).expect("write csv");
            assert!(rows.iter().all(|r| r.durable_ok), "recovery must be exact");
        }
        if run_all || cmd == "queueing" {
            eprintln!("[{:?}] running queueing ...", t0.elapsed());
            // Saturating arrival rate (mean gap well under the mean per-op
            // service time) so the serial and per-chip clocks separate.
            let geo = Geometry::new(4, 1, 48, 24, 4, CellType::Tlc);
            let writes = if cli.quick { 20_000 } else { 60_000 };
            let rows = exp::queueing_experiment(&geo, writes, 7, 30.0, cli.engine);
            let mut t = TextTable::new([
                "Scheme",
                "Model",
                "write mean",
                "write p99",
                "makespan_us",
                "service_us",
                "peak QD",
                "mean util",
                "peak util",
            ]);
            for r in &rows {
                t.row([
                    r.scheme.clone(),
                    r.queue_model.clone(),
                    us(r.write_mean_us),
                    us(r.write_p99_us),
                    format!("{:.0}", r.makespan_us),
                    format!("{:.0}", r.service_us),
                    r.queue_depth_max.to_string(),
                    format!("{:.3}", r.mean_chip_utilization),
                    format!("{:.3}", r.peak_chip_utilization),
                ]);
            }
            println!("== Queueing: timing model sweep (scheme x queue model) ==\n{}", t.render());
            t.write_csv(cli.out.join("queueing.csv")).expect("write csv");
        }
        if run_all || cmd == "tenants" {
            eprintln!("[{:?}] running tenants ...", t0.elapsed());
            // Small geometry (as in the resilience sweep). With --gc off
            // the write volume stays below the GC watermarks so tail
            // latency reflects where each tenant's programs land; with
            // --gc on the volume exceeds the watermarks and the sliced
            // preemptive collector keeps the LC tail monotone anyway.
            let geo = Geometry::new(4, 1, 24, 8, 4, CellType::Tlc);
            let (per_tenant, budget) = if cli.gc {
                let n = if cli.quick { 8_000 } else { 14_000 };
                (n, GcBudget::Sliced { slice_us: 300.0 })
            } else {
                eprintln!(
                    "warning: tenants --gc off (default): write volume is sized below the GC \
                     watermarks, so collection never runs; pass --gc on for the GC-active sweep"
                );
                (if cli.quick { 1_200 } else { 2_000 }, GcBudget::Unbounded)
            };
            let (rows, gc) =
                exp::tenants_experiment(&geo, per_tenant, 7, 2500.0, cli.engine, budget);
            let gc_label = if cli.gc { "on" } else { "off" };
            let mut t = TextTable::new([
                "Scheme",
                "Arb",
                "GC",
                "Tenant",
                "QoS",
                "weight",
                "completed",
                "write p50",
                "write p99",
                "read p99",
                "mean wait",
                "peak depth",
                "backpressured",
            ]);
            for r in &rows {
                t.row([
                    r.scheme.clone(),
                    r.arbitration.clone(),
                    gc_label.to_string(),
                    r.tenant.clone(),
                    r.qos.clone(),
                    r.weight.to_string(),
                    r.completed.to_string(),
                    us(r.write_p50_us),
                    us(r.write_p99_us),
                    us(r.read_p99_us),
                    us(r.mean_queue_wait_us),
                    r.depth_high_water.to_string(),
                    r.backpressured.to_string(),
                ]);
            }
            println!("== Multi-tenant QoS: tenant mix x arbitration x scheme ==\n{}", t.render());
            t.write_csv(cli.out.join("tenants.csv")).expect("write csv");
            // Headline: QSTR-MED's fast/slow split should widen the p99
            // write-latency gap between the background and latency-critical
            // tenants beyond what PV-blind sequential assembly shows.
            let p99 = |scheme: &str, tenant: &str| -> f64 {
                rows.iter()
                    .filter(|r| r.scheme.starts_with(scheme) && r.tenant == tenant)
                    .map(|r| r.write_p99_us)
                    .sum::<f64>()
                    / 2.0
            };
            let seq_gap = p99("Sequential", "bg") - p99("Sequential", "lc");
            let qstr_gap = p99("QstrMed", "bg") - p99("QstrMed", "lc");
            println!(
                "bg-vs-lc write p99 gap (mean over arbitrations): sequential {} vs QSTR-MED {}\n",
                us(seq_gap),
                us(qstr_gap)
            );
            if cli.gc {
                println!(
                    "GC activity: {} victims collected over {} slices ({} parked mid-victim); \
                     slice time p50 {} / p99 {} / max {}; worst per-command stall {}",
                    gc.runs,
                    gc.slices,
                    gc.yields,
                    us(gc.slice_us.quantile_us(0.5)),
                    us(gc.slice_us.quantile_us(0.99)),
                    us(gc.slice_us.max_us()),
                    us(gc.max_stall_us),
                );
                // The tentpole's success metric: with GC active, the
                // QSTR-MED write p99 stays monotone in QoS class for every
                // replicate seed, not just on average.
                let mut all_ok = true;
                for arb in ["rr", "wrr"] {
                    let find = |tenant: &str| {
                        rows.iter()
                            .find(|r| {
                                r.scheme.starts_with("QstrMed")
                                    && r.arbitration == arb
                                    && r.tenant == tenant
                            })
                            .expect("QSTR-MED row exists for every tenant")
                    };
                    let (lc, std_t, bg) = (find("lc"), find("std"), find("bg"));
                    let reps = lc.write_p99_reps_us.len();
                    let ok = (0..reps).all(|i| {
                        lc.write_p99_reps_us[i] <= std_t.write_p99_reps_us[i]
                            && std_t.write_p99_reps_us[i] <= bg.write_p99_reps_us[i]
                    });
                    all_ok &= ok;
                    let fmt = |r: &[f64]| {
                        r.iter().map(|v| format!("{v:.0}")).collect::<Vec<_>>().join("/")
                    };
                    println!(
                        "QSTR-MED {arb}: LC <= Std <= Bg write p99 per replicate: {} \
                         (lc {} | std {} | bg {})",
                        if ok { "monotone in all replicates" } else { "VIOLATED" },
                        fmt(&lc.write_p99_reps_us),
                        fmt(&std_t.write_p99_reps_us),
                        fmt(&bg.write_p99_reps_us),
                    );
                }
                assert!(all_ok, "GC-active QSTR-MED p99 must stay monotone in QoS class");
                println!();
            }
        }
        if run_all || cmd == "fleet" {
            eprintln!("[{:?}] running fleet ...", t0.elapsed());
            // Fleet-scale sweep: one sharded multi-user workload replayed
            // over N GC-active devices per (scheme, arbitration) cell. The
            // full run shards a million users; --quick keeps the same
            // GC-active regime (each shard overwrites its logical space
            // several times) on a two-device fleet.
            let (users, devices, mean_ops) =
                if cli.quick { (10_000, 4, 8.0) } else { (1_000_000, 8, 4.0) };
            let rows = exp::fleet_experiment(users, devices, mean_ops, 11, 0);
            let mut t = TextTable::new([
                "Scheme",
                "Arb",
                "devices",
                "users",
                "commands",
                "fleet p99",
                "fleet p999",
                "fleet p9999",
                "max",
                "max dev p99",
                "med dev p99",
                "skew",
                "backpressured",
                "GC slices",
            ]);
            for r in &rows {
                t.row([
                    r.scheme.clone(),
                    r.arbitration.clone(),
                    r.devices.to_string(),
                    r.users.to_string(),
                    r.commands.to_string(),
                    us(r.fleet_p99_us),
                    us(r.fleet_p999_us),
                    us(r.fleet_p9999_us),
                    us(r.max_us),
                    us(r.max_device_p99_us),
                    us(r.median_device_p99_us),
                    format!("{:.2}", r.device_skew),
                    r.backpressured.to_string(),
                    r.gc_slices.to_string(),
                ]);
            }
            println!(
                "== Fleet: scheme x arbitration over a sharded user population ==\n{}",
                t.render()
            );
            t.write_csv(cli.out.join("fleet.csv")).expect("write csv");
            // Headline: at fleet scale, PV-aware placement must move the
            // tail of tails — the p999 over every command on every device.
            let p999 = |scheme: &str| -> f64 {
                rows.iter()
                    .filter(|r| r.scheme.starts_with(scheme))
                    .map(|r| r.fleet_p999_us)
                    .sum::<f64>()
                    / 2.0
            };
            let (seq, qstr) = (p999("Sequential"), p999("QstrMed"));
            let verdict = if qstr <= seq {
                "lower with PV-aware placement"
            } else if cli.quick {
                "higher — quick sizing leaves only dozens of samples past p999; \
                 run without --quick for the powered comparison"
            } else {
                "HIGHER — regression"
            };
            println!(
                "fleet p999 (mean over arbitrations): sequential {} vs QSTR-MED {} ({} {})",
                us(seq),
                us(qstr),
                pct(100.0 * (seq - qstr) / seq),
                verdict,
            );
            // Placement quality shows up hardest in the unluckiest shard:
            // PV-blind assembly leaves some device with a slow-pool-heavy
            // mix, QSTR-MED evens the fleet out.
            let skew = |scheme: &str| -> f64 {
                rows.iter()
                    .filter(|r| r.scheme.starts_with(scheme))
                    .map(|r| r.device_skew)
                    .sum::<f64>()
                    / 2.0
            };
            println!(
                "device skew, max/median shard p99 (mean over arbitrations): sequential {:.2} vs \
                 QSTR-MED {:.2}\n",
                skew("Sequential"),
                skew("QstrMed"),
            );
            assert!(
                (seq - qstr).abs() > f64::EPSILON,
                "placement scheme must move the fleet p999 (both cells read {seq})"
            );
        }
        if run_all || cmd == "integrity" {
            eprintln!("[{:?}] running integrity ...", t0.elapsed());
            // Accelerated retention aging: a hot set churns in the fast
            // pool while a cold set rots in the slow pool and is read back
            // round-robin; uncorrectable cold reads are the score. The
            // patrol interval is a restart cadence, so at the tight
            // interval the idle budget cannot cover the whole device per
            // cycle and the scan order decides who gets protected.
            let geo = Geometry::new(4, 1, 24, 8, 4, CellType::Tlc);
            let (accels, intervals): (&[f64], &[f64]) = if cli.quick {
                (&[0.006], &[50_000.0])
            } else {
                (&[0.004, 0.006], &[50_000.0, 150_000.0])
            };
            let rows = exp::integrity_experiment(&geo, 9_000, 7, accels, intervals);
            let mut t = TextTable::new([
                "Scheme",
                "patrol",
                "interval_us",
                "accel h/us",
                "uncorrectable",
                "patrol refresh",
                "scanned",
                "passes",
                "patrol_us",
                "refresh_us",
                "clock_us",
                "read p99",
            ]);
            for r in &rows {
                t.row([
                    r.scheme.clone(),
                    r.patrol.clone(),
                    format!("{:.0}", r.interval_us),
                    format!("{:.3}", r.accel_h_per_us),
                    r.cold_uncorrectable.to_string(),
                    r.patrol_refreshes.to_string(),
                    r.patrol_scanned_pages.to_string(),
                    r.patrol_passes.to_string(),
                    format!("{:.0}", r.patrol_us),
                    format!("{:.0}", r.refresh_us),
                    format!("{:.0}", r.clock_us),
                    us(r.read_p99_us),
                ]);
            }
            println!("== Data integrity: patrol x aging x scheme ==\n{}", t.render());
            t.write_csv(cli.out.join("integrity.csv")).expect("write csv");
            // Headlines: the scrubber must beat no-patrol on the aged cold
            // tail, and PV-aware ordering must protect it at least as well
            // as a blind sealed-order scan of the same budget.
            let mean = |label: &str| -> f64 {
                let cells: Vec<u64> = rows
                    .iter()
                    .filter(|r| r.patrol == label)
                    .map(|r| r.cold_uncorrectable)
                    .collect();
                cells.iter().sum::<u64>() as f64 / cells.len().max(1) as f64
            };
            let (off, blind, slow) = (mean("off"), mean("blind"), mean("slow-first"));
            println!(
                "uncorrectable cold reads per cell: no patrol {off:.0} vs blind patrol \
                 {blind:.0} vs PV-aware slow-pool-first {slow:.0} ({} fewer than no patrol)",
                pct(100.0 * (off - slow) / off.max(1.0)),
            );
            assert!(slow < off, "patrol must cut uncorrectable reads on the aged cold tail");
            assert!(blind < off, "even a blind scrubber must beat no patrol");
            assert!(
                slow <= blind,
                "PV-aware slow-pool-first ordering must protect the cold tail at least as \
                 well as a blind scan"
            );
            // Fleet soak: every shard ages under the same machinery, then
            // every live LPN is swept. The invariant — not a latency — is
            // the deliverable: nothing is silently lost.
            let (users, devices) = if cli.quick { (3_000, 2) } else { (6_000, 3) };
            let soak = exp::soak_experiment(users, devices, 23, 0);
            println!(
                "fleet soak: {} devices, {} live pages, {} unreadable, {} sweep uncorrectable \
                 (all refreshed in-path), {} patrol refreshes — no data loss: {}\n",
                soak.devices.len(),
                soak.live_lpns,
                soak.unreadable_lpns,
                soak.sweep_uncorrectable,
                soak.patrol_refreshes,
                soak.no_data_loss(),
            );
            assert!(soak.no_data_loss(), "fleet soak lost data: a live page failed to read back");
        }
        if run_all || cmd == "ssd" {
            eprintln!("[{:?}] running ssd ...", t0.elapsed());
            let geo = Geometry::new(4, 1, 48, 24, 4, CellType::Tlc);
            let rows = exp::ssd_experiment(&geo, 60_000, 7);
            let mut t = TextTable::new([
                "Scheme",
                "write mean",
                "write p99",
                "WAF",
                "extra PGM/op",
                "extra ERS/op",
                "checks",
            ]);
            for r in &rows {
                t.row([
                    r.scheme.clone(),
                    us(r.write_mean_us),
                    us(r.write_p99_us),
                    format!("{:.3}", r.waf),
                    us(r.extra_pgm_per_op_us),
                    us(r.extra_ers_per_op_us),
                    r.distance_checks.to_string(),
                ]);
            }
            println!("== End-to-end SSD (hot/cold 80/20) ==\n{}", t.render());
            t.write_csv(cli.out.join("ssd.csv")).expect("write csv");
        }
    }
    eprintln!("done in {:?}; results under {}", t0.elapsed(), cli.out.display());
}
