//! Before/after wall-clock for the event-driven replay core (BENCH_3).
//!
//! "Before" is the stepper path: the original one-op-at-a-time replay loop
//! (fresh latency synthesis per op, `BinaryHeap` depth tracking, per-op
//! histogram inserts, OOB re-reads on every checkpoint) and, for the traced
//! class, the legacy quadratic `submit_traced` admission. "After" is the
//! batched engine: calendar-queue completion tracking, prefix-cached
//! latency synthesis, struct-of-arrays stat accumulators folded once at
//! `timed_end`, the incremental checkpoint seq table, the frontend's
//! event-driven drain (arena-backed records, packed readiness mask), and
//! single-sort batched admission.
//!
//! Three classes, each asserted bit-identical before the speedup counts:
//!
//! * `device_replay` — `Ssd::run_timed` over a saturated mixed stream on
//!   the `repro ssd` device shape; measures the device core alone.
//! * `frontend_replay` — sixteen tenants with bounded queues under WRR;
//!   measures how the drain loops scale with queue count (the legacy loop
//!   re-admits every tenant per dispatch; the event-driven one is O(1)).
//! * `traced_tenants_e2e_ssd_shape` — a tenant-tagged trace from admission through
//!   replay; admission and replay are timed separately, and this is the
//!   headline: the legacy path re-sorts a growing stream per request, so
//!   the batched path must clear 10x end to end.
//!
//! Usage: `cargo run --release -p repro-bench --bin perf_events [--quick] [--out BENCH_3.json]`

use flash_model::{CellType, FlashConfig, Geometry};
use ftl::trace::TracedRequest;
use ftl::{
    poisson_arrivals, EngineMode, FtlConfig, IoOp, IoRequest, QosClass, QueueModel, Ssd, Workload,
};
use host::{Arbitration, HostFrontend, TenantSpec};
use std::time::Instant;

/// The `repro ssd` device shape: 4 chips x 48 blocks x 96 LWLs, TLC.
fn ssd_shape(engine: EngineMode) -> FtlConfig {
    let mut config = FtlConfig::small_test();
    config.flash = FlashConfig {
        geometry: Geometry::new(4, 1, 48, 24, 4, CellType::Tlc),
        variation: flash_model::VariationConfig::default(),
    };
    config.queue_model = QueueModel::PerChip;
    config.engine = engine;
    config
}

/// Everything that must match between the engines on a device replay.
#[derive(Debug, PartialEq, Eq)]
struct DeviceSnapshot {
    host_writes: u64,
    host_reads: u64,
    gc_runs: u64,
    gc_relocations: u64,
    write_len: usize,
    write_mean_bits: u64,
    write_p99_bits: u64,
    read_mean_bits: u64,
    busy_bits: u64,
    queue_wait_bits: u64,
    makespan_bits: u64,
    queue_depth_max: u64,
}

impl DeviceSnapshot {
    fn of(ssd: &Ssd) -> Self {
        let s = ssd.stats();
        DeviceSnapshot {
            host_writes: s.host_writes,
            host_reads: s.host_reads,
            gc_runs: s.gc_runs,
            gc_relocations: s.gc_relocations,
            write_len: s.write_latency.len(),
            write_mean_bits: s.write_latency.mean_us().to_bits(),
            write_p99_bits: s.write_latency.quantile_us(0.99).to_bits(),
            read_mean_bits: s.read_latency.mean_us().to_bits(),
            busy_bits: s.busy_us.to_bits(),
            queue_wait_bits: s.queue_wait_us.to_bits(),
            makespan_bits: s.makespan_us.to_bits(),
            queue_depth_max: s.queue_depth_max,
        }
    }
}

/// Per-tenant view that must match between the frontend drains.
#[derive(Debug, PartialEq, Eq)]
struct TenantSnapshot {
    completed: u64,
    backpressured: u64,
    depth_high_water: usize,
    queue_wait_bits: u64,
    write_mean_bits: u64,
    read_mean_bits: u64,
}

fn tenant_snapshots(front: &HostFrontend) -> Vec<TenantSnapshot> {
    front
        .all_stats()
        .iter()
        .map(|t| TenantSnapshot {
            completed: t.completed,
            backpressured: t.backpressured,
            depth_high_water: t.depth_high_water,
            queue_wait_bits: t.queue_wait_us.to_bits(),
            write_mean_bits: t.write_latency.mean_us().to_bits(),
            read_mean_bits: t.read_latency.mean_us().to_bits(),
        })
        .collect()
}

/// One timed comparison row of the output JSON.
struct Timing {
    name: &'static str,
    ops: usize,
    before_s: f64,
    after_s: f64,
    /// (admission, replay) split, traced class only.
    split: Option<[f64; 4]>,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.before_s / self.after_s
    }

    fn to_json(&self) -> String {
        let split = match self.split {
            Some([ab, rb, aa, ra]) => format!(
                ", \"admission_before_s\": {ab:.3}, \"replay_before_s\": {rb:.3}, \
                 \"admission_after_s\": {aa:.3}, \"replay_after_s\": {ra:.3}"
            ),
            None => String::new(),
        };
        format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"before_s\": {:.3}, \"after_s\": {:.3}, \
             \"before_ops_per_s\": {:.0}, \"after_ops_per_s\": {:.0}, \"speedup\": {:.2}{}}}",
            self.name,
            self.ops,
            self.before_s,
            self.after_s,
            self.ops as f64 / self.before_s,
            self.ops as f64 / self.after_s,
            self.speedup(),
            split,
        )
    }
}

/// Mixed saturated stream: writes with reads and trims folded in, arriving
/// far faster than the device drains.
fn device_stream(ssd: &Ssd, cycles: u64) -> Vec<(f64, IoRequest)> {
    let info = ssd.geometry_info();
    let n = (info.logical_pages * cycles) as usize;
    let mut reqs = Workload::hot_cold_80_20().generate(&info, n, 5);
    for (i, r) in reqs.iter_mut().enumerate() {
        match i % 7 {
            3 => r.op = IoOp::Read,
            6 if i % 14 == 6 => r.op = IoOp::Trim,
            _ => {}
        }
    }
    poisson_arrivals(&reqs, 25.0, 9)
}

fn device_replay(cycles: u64, reps: usize) -> Timing {
    let run = |engine| {
        let mut best = f64::INFINITY;
        let mut ops = 0;
        let mut snap = None;
        for _ in 0..reps {
            let mut ssd = Ssd::new(ssd_shape(engine), 11).expect("valid config");
            let stream = device_stream(&ssd, cycles);
            ops = stream.len();
            let t = Instant::now();
            ssd.run_timed(&stream).expect("workload fits the device");
            best = best.min(t.elapsed().as_secs_f64());
            let s = DeviceSnapshot::of(&ssd);
            if let Some(prev) = &snap {
                assert_eq!(prev, &s, "device replay is nondeterministic across reps");
            }
            snap = Some(s);
        }
        (best, ops, snap.expect("reps >= 1"))
    };
    let (before_s, ops, before) = run(EngineMode::Stepper);
    let (after_s, _, after) = run(EngineMode::Batched);
    assert_eq!(before, after, "device replay: engines diverged");
    eprintln!(
        "device_replay: stepper {before_s:.2}s, batched {after_s:.2}s ({:.2}x) over {ops} ops",
        before_s / after_s
    );
    Timing { name: "device_replay_ssd_shape", ops, before_s, after_s, split: None }
}

/// The traced class keeps the original three QoS-diverse tenants.
fn tenant_specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lc", QosClass::LatencyCritical).weight(4).queue_depth(8),
        TenantSpec::new("std", QosClass::Standard).weight(2).queue_depth(16),
        TenantSpec::new("bg", QosClass::Background).weight(1).queue_depth(32),
    ]
}

/// Sixteen tenants cycling through the QoS classes. The legacy drain
/// re-admits every tenant and rebuilds a readiness vector per dispatch —
/// O(tenants) — while the event-driven drain is O(1) per dispatch, so this
/// class measures how the frontends scale with queue count.
const FRONTEND_TENANTS: usize = 16;

fn frontend_specs() -> Vec<TenantSpec> {
    (0..FRONTEND_TENANTS)
        .map(|i| {
            let qos = match i % 3 {
                0 => QosClass::LatencyCritical,
                1 => QosClass::Standard,
                _ => QosClass::Background,
            };
            TenantSpec::new(&format!("t{i:02}"), qos)
                .weight(1 + (i as u32) % 4)
                .queue_depth(8 + (i % 3) * 8)
        })
        .collect()
}

/// Per-tenant saturated streams over disjoint LPN spans.
fn tenant_streams(ssd: &Ssd, tenants: u64, per_tenant: usize) -> Vec<Vec<(f64, IoRequest)>> {
    let info = ssd.geometry_info();
    let span = info.logical_pages / tenants;
    (0..tenants)
        .map(|tenant| {
            let mut reqs =
                Workload::random_write(0.3).generate(&info, per_tenant, 21 ^ (tenant * 0x9e37));
            for (i, r) in reqs.iter_mut().enumerate() {
                r.lpn = r.lpn % span + tenant * span;
                if i % 5 == 3 {
                    r.op = IoOp::Read;
                }
            }
            poisson_arrivals(&reqs, 75.0, 31 + tenant)
        })
        .collect()
}

fn frontend_replay(per_tenant: usize, reps: usize) -> Timing {
    let run = |engine| {
        let mut best = f64::INFINITY;
        let mut snap = None;
        for _ in 0..reps {
            let ssd = Ssd::new(ssd_shape(engine), 11).expect("valid config");
            let streams = tenant_streams(&ssd, FRONTEND_TENANTS as u64, per_tenant);
            let mut front =
                HostFrontend::new(ssd, frontend_specs(), Arbitration::WeightedRoundRobin);
            for (tenant, stream) in streams.iter().enumerate() {
                front.submit(tenant, stream);
            }
            let t = Instant::now();
            front.run().expect("workload fits the device");
            best = best.min(t.elapsed().as_secs_f64());
            assert!(front.drained());
            let s = (DeviceSnapshot::of(front.device()), tenant_snapshots(&front));
            if let Some(prev) = &snap {
                assert_eq!(prev, &s, "frontend replay is nondeterministic across reps");
            }
            snap = Some(s);
        }
        let (dev, tenants) = snap.expect("reps >= 1");
        (best, dev, tenants)
    };
    let (before_s, before_dev, before_tenants) = run(EngineMode::Stepper);
    let (after_s, after_dev, after_tenants) = run(EngineMode::Batched);
    assert_eq!(before_dev, after_dev, "frontend replay: device stats diverged");
    assert_eq!(before_tenants, after_tenants, "frontend replay: tenant stats diverged");
    eprintln!(
        "frontend_replay: stepper {before_s:.2}s, batched {after_s:.2}s ({:.2}x)",
        before_s / after_s
    );
    Timing {
        name: "frontend_replay_16tenants",
        ops: per_tenant * FRONTEND_TENANTS,
        before_s,
        after_s,
        split: None,
    }
}

/// A tenant-tagged timed trace: three tenants interleaved request by
/// request with jittered (non-monotonic per tenant) arrivals, so admission
/// genuinely has to sort.
fn traced_stream(ssd: &Ssd, total: usize) -> Vec<(f64, TracedRequest)> {
    let info = ssd.geometry_info();
    let span = info.logical_pages / 3;
    (0..total)
        .map(|i| {
            let tenant = (i % 3) as u64;
            let mix = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
            let lpn = tenant * span + mix % span;
            let request = if i % 5 == 3 { IoRequest::read(lpn) } else { IoRequest::write(lpn) };
            // Coarsely increasing with +-25ms jitter: out of order within
            // each tenant, so every legacy submit re-sorts for real.
            let arrival = i as f64 * 50.0 + (mix % 1000) as f64 * 50.0;
            (arrival, TracedRequest { tenant: tenant as u32, request })
        })
        .collect()
}

fn traced_e2e(total: usize) -> Timing {
    let run = |engine| {
        let ssd = Ssd::new(ssd_shape(engine), 11).expect("valid config");
        let trace = traced_stream(&ssd, total);
        let mut front = HostFrontend::new(ssd, tenant_specs(), Arbitration::WeightedRoundRobin);
        let t = Instant::now();
        if engine == EngineMode::Batched {
            front.submit_traced_batched(&trace);
        } else {
            front.submit_traced(&trace);
        }
        let admission_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        front.run().expect("workload fits the device");
        let replay_s = t.elapsed().as_secs_f64();
        assert!(front.drained());
        (admission_s, replay_s, DeviceSnapshot::of(front.device()), tenant_snapshots(&front))
    };
    let (adm_before, rep_before, before_dev, before_tenants) = run(EngineMode::Stepper);
    let (adm_after, rep_after, after_dev, after_tenants) = run(EngineMode::Batched);
    assert_eq!(before_dev, after_dev, "traced e2e: device stats diverged");
    assert_eq!(before_tenants, after_tenants, "traced e2e: tenant stats diverged");
    let (before_s, after_s) = (adm_before + rep_before, adm_after + rep_after);
    eprintln!(
        "traced_tenants_e2e: stepper {before_s:.2}s (admit {adm_before:.2} + replay \
         {rep_before:.2}), batched {after_s:.2}s (admit {adm_after:.2} + replay {rep_after:.2}) \
         — {:.2}x",
        before_s / after_s
    );
    Timing {
        name: "traced_tenants_e2e_ssd_shape",
        ops: total,
        before_s,
        after_s,
        split: Some([adm_before, rep_before, adm_after, rep_after]),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = match args.iter().position(|a| a == "--out") {
        Some(i) => args.get(i + 1).cloned().expect("--out takes a path"),
        None => "BENCH_3.json".to_string(),
    };

    let reps = if quick { 1 } else { 3 };
    let device = device_replay(if quick { 1 } else { 4 }, reps);
    let frontend = frontend_replay(if quick { 1_500 } else { 12_000 }, reps);
    let traced = traced_e2e(if quick { 24_000 } else { 165_000 });

    let runs: Vec<String> = [&device, &frontend, &traced].iter().map(|t| t.to_json()).collect();
    let json = format!(
        "{{\n  \"bench\": \"Event-driven replay core: per-op stepper loop + quadratic traced \
         admission (before) vs batched calendar-queue engine + single-sort admission (after); \
         full stat set asserted bit-identical per class\",\n  \
         \"command\": \"cargo run --release -p repro-bench --bin perf_events\",\n  \
         \"quick\": {quick},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_3.json");
    eprintln!("wrote {out}");

    if !quick {
        assert!(
            traced.speedup() >= 10.0,
            "expected >= 10x on the traced end-to-end class, got {:.2}x",
            traced.speedup()
        );
    }
}
