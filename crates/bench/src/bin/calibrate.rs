//! Calibration summary: prints the Table I / Table V quantities for the
//! current `VariationConfig` defaults next to the paper's targets, so the
//! model parameters can be tuned until shapes match.
//!
//! Usage: `cargo run --release -p repro-bench --bin calibrate [--quick]`

use repro_bench::report::{pct, us, TextTable};
use repro_bench::runner::{
    run_scheme_with, run_schemes_parallel_with, ExperimentParams, SchemeKind,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = ExperimentParams::default();
    if quick {
        params.group_seeds = vec![0, 1];
        params.pe_points = vec![0];
        params.config.geometry =
            flash_model::Geometry::new(4, 1, 400, 96, 4, flash_model::CellType::Tlc);
    }

    // Paper targets: (name, extra PGM µs, improvement %, extra ERS µs).
    let targets: Vec<(&str, SchemeKind, f64, f64, Option<f64>)> = vec![
        ("Random", SchemeKind::Random, 13084.17, 0.0, Some(41.71)),
        ("Sequential", SchemeKind::Sequential, 11716.60, 10.45, Some(40.12)),
        ("ERS-LTN", SchemeKind::ErsLatency, 11965.82, 8.55, None),
        ("PGM-LTN", SchemeKind::PgmLatency, 11727.79, 10.37, None),
        ("Optimal(8)", SchemeKind::Optimal(8), 10533.44, 19.49, Some(22.65)),
        ("LWL-RANK(8)", SchemeKind::LwlRank(8), 11238.53, 14.11, None),
        ("PWL-RANK(8)", SchemeKind::PwlRank(8), 11047.31, 15.57, None),
        ("STR-RANK(8)", SchemeKind::StrRank(8), 10694.12, 18.27, None),
        ("STR-RANK(6)", SchemeKind::StrRank(6), 10723.11, 18.05, None),
        ("STR-RANK(4)", SchemeKind::StrRank(4), 10805.03, 17.42, None),
        ("STR-RANK(2)", SchemeKind::StrRank(2), 11118.39, 15.02, None),
        ("STR-MED(4)", SchemeKind::StrMed(4), 10894.23, 16.74, Some(24.97)),
        ("QSTR-MED(4)", SchemeKind::QstrMed(4), 10911.53, 16.61, Some(25.10)),
    ];

    eprintln!(
        "calibrating on {} groups x {} blocks/pool x {} P/E points ...",
        params.group_seeds.len(),
        params.config.geometry.blocks_per_plane(),
        params.pe_points.len()
    );

    let t0 = std::time::Instant::now();
    let cache = params.cache();
    let baseline = run_scheme_with(&params, &cache, SchemeKind::Random);
    eprintln!("baseline done in {:?}", t0.elapsed());
    let kinds: Vec<SchemeKind> = targets.iter().skip(1).map(|t| t.1).collect();
    let results = run_schemes_parallel_with(&params, &cache, &kinds);
    eprintln!("all schemes done in {:?}", t0.elapsed());

    let mut table = TextTable::new([
        "Method",
        "PGM meas",
        "PGM paper",
        "Imp% meas",
        "Imp% paper",
        "ERS meas",
        "ERS paper",
    ]);
    table.row([
        "Random".to_string(),
        us(baseline.extra_pgm_us),
        us(13084.17),
        "-".to_string(),
        "-".to_string(),
        us(baseline.extra_ers_us),
        us(41.71),
    ]);
    for (t, r) in targets.iter().skip(1).zip(&results) {
        table.row([
            t.0.to_string(),
            us(r.extra_pgm_us),
            us(t.2),
            pct(r.pgm_improvement_pct(&baseline)),
            pct(t.3),
            us(r.extra_ers_us),
            t.4.map_or("-".to_string(), us),
        ]);
    }
    println!("{}", table.render());
}
