//! One function per paper table/figure. See `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured numbers.

use crate::runner::{
    measure_each, run_scheme, run_scheme_with, run_schemes_parallel_with, ExperimentParams,
    PoolCache, SchemeKind, SchemeStats,
};
use flash_model::{FlashArray, FlashConfig, Geometry, PwlLayer, StringId};
use ftl::{
    poisson_arrivals, EngineMode, FtlConfig, GcBudget, IntegrityConfig, IoOp, IoRequest,
    LatencyHistogram, OrganizationScheme, ParityConfig, PatrolConfig, PatrolOrder, QosClass,
    QueueModel, Ssd, Workload,
};
use host::{Arbitration, HostFrontend, TenantSpec};
use pvcheck::assembly::Assembler;
use pvcheck::{overhead, Characterizer};

/// Result rows of Table I-style comparisons: every scheme with its
/// reduction and improvement percentage against the random baseline.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    /// The random baseline statistics.
    pub baseline: SchemeStats,
    /// Per-scheme statistics, in roster order.
    pub schemes: Vec<SchemeStats>,
}

impl ComparisonResult {
    /// Runs the given roster against the random baseline with a private
    /// cache (see [`ComparisonResult::run_with`]).
    #[must_use]
    pub fn run(params: &ExperimentParams, roster: &[SchemeKind]) -> Self {
        Self::run_with(params, &params.cache(), roster)
    }

    /// Runs the given roster against the random baseline over a shared
    /// characterization cache.
    ///
    /// The baseline is prepended to the roster so all scheme cells —
    /// baseline included — drain from one work queue.
    #[must_use]
    pub fn run_with(params: &ExperimentParams, cache: &PoolCache, roster: &[SchemeKind]) -> Self {
        let mut kinds = Vec::with_capacity(roster.len() + 1);
        kinds.push(SchemeKind::Random);
        kinds.extend_from_slice(roster);
        let mut all = run_schemes_parallel_with(params, cache, &kinds);
        let schemes = all.split_off(1);
        let baseline = all.pop().expect("roster always contains the baseline");
        ComparisonResult { baseline, schemes }
    }
}

/// Table I: the eight organization directions.
#[must_use]
pub fn table1(params: &ExperimentParams) -> ComparisonResult {
    table1_with(params, &params.cache())
}

/// [`table1`] over a shared characterization cache.
#[must_use]
pub fn table1_with(params: &ExperimentParams, cache: &PoolCache) -> ComparisonResult {
    ComparisonResult::run_with(params, cache, &SchemeKind::table1_roster())
}

/// Table II: STR-RANK under window sizes 8, 6, 4, 2.
#[must_use]
pub fn table2(params: &ExperimentParams) -> ComparisonResult {
    table2_with(params, &params.cache())
}

/// [`table2`] over a shared characterization cache.
#[must_use]
pub fn table2_with(params: &ExperimentParams, cache: &PoolCache) -> ComparisonResult {
    let roster = [
        SchemeKind::StrRank(8),
        SchemeKind::StrRank(6),
        SchemeKind::StrRank(4),
        SchemeKind::StrRank(2),
    ];
    ComparisonResult::run_with(params, cache, &roster)
}

/// Table V / Figure 12: the headline comparison (random, sequential,
/// optimal, QSTR-MED(4), STR-MED(4)).
#[must_use]
pub fn table5(params: &ExperimentParams) -> ComparisonResult {
    table5_with(params, &params.cache())
}

/// [`table5`] over a shared characterization cache.
#[must_use]
pub fn table5_with(params: &ExperimentParams, cache: &PoolCache) -> ComparisonResult {
    let roster = [
        SchemeKind::Sequential,
        SchemeKind::Optimal(8),
        SchemeKind::QstrMed(4),
        SchemeKind::StrMed(4),
    ];
    ComparisonResult::run_with(params, cache, &roster)
}

/// Figure 5 data: characterization curves.
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// `(chip, plane, block, tBERS µs)` per block.
    pub erase_rows: Vec<(u16, u16, u32, f64)>,
    /// `(chip, plane, block, lwl, tPROG µs)` for one block per plane.
    pub program_rows: Vec<(u16, u16, u32, u32, f64)>,
}

/// Figure 5: per-block erase latency across two chips with four planes
/// each, and per-word-line program latency for one block per plane.
#[must_use]
pub fn fig5(seed: u64, blocks_per_plane: u32) -> Fig5Data {
    let config = FlashConfig::builder()
        .chips(2)
        .planes_per_chip(4)
        .blocks_per_plane(blocks_per_plane)
        .pwl_layers(96)
        .strings(4)
        .build();
    let array = FlashArray::new(config.clone(), seed);
    let model = array.latency_model();
    let mut erase_rows = Vec::new();
    let mut program_rows = Vec::new();
    for addr in config.geometry.blocks() {
        erase_rows.push((addr.chip.0, addr.plane.0, addr.block.0, model.erase_latency_us(addr, 0)));
        if addr.block.0 == 25 {
            for lwl in config.geometry.lwls() {
                program_rows.push((
                    addr.chip.0,
                    addr.plane.0,
                    addr.block.0,
                    lwl.0,
                    model.program_latency_us(addr.wl(lwl), 1),
                ));
            }
        }
    }
    Fig5Data { erase_rows, program_rows }
}

/// Figure 6 data: extra latency of every random superblock.
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// `(superblock index, extra PGM µs, extra ERS µs)` at P/E 0.
    pub per_superblock: Vec<(usize, f64, f64)>,
    /// `(P/E cycle, mean extra PGM µs, mean extra ERS µs)`.
    pub per_pe: Vec<(u32, f64, f64)>,
}

/// Figure 6: the random baseline's extra latency per superblock, and its
/// trend across P/E cycles.
#[must_use]
pub fn fig6(params: &ExperimentParams) -> Fig6Data {
    fig6_with(params, &params.cache())
}

/// [`fig6`] over a shared characterization cache.
#[must_use]
pub fn fig6_with(params: &ExperimentParams, cache: &PoolCache) -> Fig6Data {
    let pool = cache.pool(params.group_seeds[0], params.pe_points[0]);
    let sbs = SchemeKind::Random.assembler(params.group_seeds[0]).assemble(&pool);
    let per_superblock = measure_each(&pool, &sbs)
        .into_iter()
        .enumerate()
        .map(|(i, e)| (i, e.program_us, e.erase_us))
        .collect();
    let mut per_pe = Vec::new();
    for &pe in &params.pe_points {
        let single = ExperimentParams { pe_points: vec![pe], ..params.clone() };
        let stats = run_scheme_with(&single, cache, SchemeKind::Random);
        per_pe.push((pe, stats.extra_pgm_us, stats.extra_ers_us));
    }
    Fig6Data { per_superblock, per_pe }
}

/// A histogram of per-superblock extra program latency.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Scheme name.
    pub name: String,
    /// Bin width, µs.
    pub bin_us: f64,
    /// Count of superblocks per bin (bin i covers `[i*bin, (i+1)*bin)`).
    pub counts: Vec<u32>,
}

/// Figure 13: distribution of extra program latency per scheme.
#[must_use]
pub fn fig13(params: &ExperimentParams, bin_us: f64) -> Vec<Histogram> {
    fig13_with(params, &params.cache(), bin_us)
}

/// [`fig13`] over a shared characterization cache.
#[must_use]
pub fn fig13_with(params: &ExperimentParams, cache: &PoolCache, bin_us: f64) -> Vec<Histogram> {
    let kinds = [
        SchemeKind::Random,
        SchemeKind::Sequential,
        SchemeKind::Optimal(8),
        SchemeKind::QstrMed(4),
    ];
    let pe = params.pe_points[0];
    let pools: Vec<_> = params.group_seeds.iter().map(|&seed| cache.pool(seed, pe)).collect();
    kinds
        .iter()
        .map(|&kind| {
            let mut counts: Vec<u32> = Vec::new();
            for (gi, pool) in pools.iter().enumerate() {
                let sbs = kind.assembler(params.group_seeds[gi]).assemble(pool);
                for e in measure_each(pool, &sbs) {
                    let bin = (e.program_us / bin_us) as usize;
                    if counts.len() <= bin {
                        counts.resize(bin + 1, 0);
                    }
                    counts[bin] += 1;
                }
            }
            Histogram { name: kind.name(), bin_us, counts }
        })
        .collect()
}

/// Figure 14 data: per-superblock extra program latency for STR-MED vs
/// QSTR-MED (sorted ascending), showing their equivalence.
#[derive(Debug, Clone)]
pub struct Fig14Data {
    /// `(rank, STR-MED extra PGM µs, QSTR-MED extra PGM µs, random µs)`.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

/// Figure 14: all superblocks, STR-MED(4) vs QSTR-MED(4).
#[must_use]
pub fn fig14(params: &ExperimentParams) -> Fig14Data {
    fig14_with(params, &params.cache())
}

/// [`fig14`] over a shared characterization cache.
#[must_use]
pub fn fig14_with(params: &ExperimentParams, cache: &PoolCache) -> Fig14Data {
    let pool = cache.pool(params.group_seeds[0], params.pe_points[0]);
    let sorted_extras = |kind: SchemeKind| -> Vec<f64> {
        let sbs = kind.assembler(params.group_seeds[0]).assemble(&pool);
        let mut v: Vec<f64> = measure_each(&pool, &sbs).iter().map(|e| e.program_us).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v
    };
    let str_med = sorted_extras(SchemeKind::StrMed(4));
    let qstr = sorted_extras(SchemeKind::QstrMed(4));
    let random = sorted_extras(SchemeKind::Random);
    let rows = str_med
        .iter()
        .zip(&qstr)
        .zip(&random)
        .enumerate()
        .map(|(i, ((&s, &q), &r))| (i, s, q, r))
        .collect();
    Fig14Data { rows }
}

/// Figure 15 data: latency stability across P/E cycles.
#[derive(Debug, Clone)]
pub struct Fig15Data {
    /// `(P/E, random extra PGM, QSTR extra PGM, random extra ERS, QSTR extra ERS)`.
    pub rows: Vec<(u32, f64, f64, f64, f64)>,
}

/// Figure 15: QSTR-MED's extra latencies vs. the baseline across wear.
#[must_use]
pub fn fig15(params: &ExperimentParams, pe_points: &[u32]) -> Fig15Data {
    fig15_with(params, &params.cache(), pe_points)
}

/// [`fig15`] over a shared characterization cache.
#[must_use]
pub fn fig15_with(params: &ExperimentParams, cache: &PoolCache, pe_points: &[u32]) -> Fig15Data {
    let rows = pe_points
        .iter()
        .map(|&pe| {
            let single = ExperimentParams { pe_points: vec![pe], ..params.clone() };
            let rnd = run_scheme_with(&single, cache, SchemeKind::Random);
            let qstr = run_scheme_with(&single, cache, SchemeKind::QstrMed(4));
            (pe, rnd.extra_pgm_us, qstr.extra_pgm_us, rnd.extra_ers_us, qstr.extra_ers_us)
        })
        .collect();
    Fig15Data { rows }
}

/// Overhead numbers (§VI-B-2, §VI-D, Equation 2).
#[derive(Debug, Clone)]
pub struct OverheadData {
    /// STR-MED(4) distance checks per superblock on four pools.
    pub str_med_checks: u64,
    /// QSTR-MED(4) distance checks per superblock on four pools.
    pub qstr_med_checks: u64,
    /// Reduction percentage.
    pub reduction_pct: f64,
    /// `(drive capacity bytes, block bytes, LWLs, metadata bytes)` rows.
    pub space_rows: Vec<(u64, u64, u32, u64)>,
    /// Measured distance checks per assembled superblock from a QSTR run.
    pub measured_checks_per_superblock: f64,
}

/// Computing- and space-overhead analysis.
#[must_use]
pub fn overhead_analysis(params: &ExperimentParams) -> OverheadData {
    overhead_analysis_with(params, &params.cache())
}

/// [`overhead_analysis`] over a shared characterization cache.
#[must_use]
pub fn overhead_analysis_with(params: &ExperimentParams, cache: &PoolCache) -> OverheadData {
    let pool = cache.pool(params.group_seeds[0], params.pe_points[0]);
    let mut qstr = pvcheck::assembly::QstrMed::with_candidates(4);
    let sbs = qstr.assemble(&pool);
    let measured = qstr.distance_checks() as f64 / sbs.len().max(1) as f64;
    let space_rows = vec![
        (1 << 40, 8 << 20, 384, overhead::drive_footprint_bytes(1 << 40, 8 << 20, 384)),
        (2 << 40, 8 << 20, 384, overhead::drive_footprint_bytes(2 << 40, 8 << 20, 384)),
        (1 << 40, 16 << 20, 768, overhead::drive_footprint_bytes(1 << 40, 16 << 20, 768)),
    ];
    OverheadData {
        str_med_checks: overhead::str_med_distance_checks(4, 4),
        qstr_med_checks: overhead::qstr_med_distance_checks(4, 4),
        reduction_pct: overhead::check_reduction_percent(4, 4, 4),
        space_rows,
        measured_checks_per_superblock: measured,
    }
}

/// End-to-end SSD comparison rows.
#[derive(Debug, Clone)]
pub struct SsdRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Mean host write latency, µs.
    pub write_mean_us: f64,
    /// 99th-percentile host write latency, µs.
    pub write_p99_us: f64,
    /// Write amplification factor.
    pub waf: f64,
    /// Mean extra program latency per super word-line program, µs.
    pub extra_pgm_per_op_us: f64,
    /// Mean extra erase latency per superblock erase, µs.
    pub extra_ers_per_op_us: f64,
    /// Total device busy time, µs.
    pub busy_us: f64,
    /// QSTR-MED distance checks (0 for other schemes).
    pub distance_checks: u64,
}

/// §V-D end-to-end: the same workload against random, sequential and
/// QSTR-MED organization with function-based placement.
///
/// # Panics
///
/// Panics if the simulated device rejects the workload (an internal bug).
#[must_use]
pub fn ssd_experiment(geometry: &Geometry, writes: usize, seed: u64) -> Vec<SsdRow> {
    let schemes = [
        OrganizationScheme::Random,
        OrganizationScheme::Sequential,
        OrganizationScheme::QstrMed { candidates: 4 },
    ];
    schemes
        .iter()
        .map(|&scheme| {
            let config = FtlConfig {
                flash: FlashConfig {
                    geometry: geometry.clone(),
                    variation: flash_model::VariationConfig::default(),
                },
                scheme,
                ..FtlConfig::small_test()
            };
            let mut ssd = Ssd::new(config, seed).expect("experiment config is valid");
            let reqs =
                Workload::hot_cold_80_20().generate(&ssd.geometry_info(), writes, seed ^ 0xabc);
            ssd.run(&reqs).expect("workload fits the device");
            let stats = ssd.stats();
            SsdRow {
                scheme: format!("{scheme:?}"),
                write_mean_us: stats.write_latency.mean_us(),
                write_p99_us: stats.write_latency.quantile_us(0.99),
                waf: stats.waf(),
                extra_pgm_per_op_us: stats.extra_program_per_op_us(),
                extra_ers_per_op_us: stats.extra_erase_per_op_us(),
                busy_us: stats.busy_us,
                distance_checks: ssd.distance_checks(),
            }
        })
        .collect()
}

/// One cell of the queueing sweep: an organization scheme replayed under a
/// timing model.
#[derive(Debug, Clone)]
pub struct QueueingRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Timing model name (`Single` or `PerChip`).
    pub queue_model: String,
    /// Mean host write latency (wait + service), µs.
    pub write_mean_us: f64,
    /// 99th-percentile host write latency, µs.
    pub write_p99_us: f64,
    /// Completion time of the last request, µs.
    pub makespan_us: f64,
    /// Sum of per-op service times, µs (model-independent).
    pub service_us: f64,
    /// Peak number of requests in flight.
    pub queue_depth_max: u64,
    /// Mean busy fraction over chip/plane groups + the host channel
    /// (0 under `Single`, which keeps no per-group clocks).
    pub mean_chip_utilization: f64,
    /// Peak busy fraction over chip/plane groups + the host channel.
    pub peak_chip_utilization: f64,
}

/// Queueing sweep: the Table V schemes replayed under both timing models.
///
/// The same Poisson-paced hot/cold stream (with reads folded in) is timed
/// once with the serial device clock (`Single`) and once with per-chip
/// busy-until clocks (`PerChip`). Service times are model-independent, so
/// the interesting deltas are makespan and wait: `PerChip` overlaps
/// independent chips and must finish no later than the serial clock — and
/// well before the sum of per-op service times once the device saturates.
///
/// `engine` picks the replay engine; both produce bit-identical rows
/// (that is the batched engine's contract), so the choice only moves
/// wall-clock time.
///
/// # Panics
///
/// Panics if the simulated device rejects the workload (an internal bug).
#[must_use]
pub fn queueing_experiment(
    geometry: &Geometry,
    writes: usize,
    seed: u64,
    mean_gap_us: f64,
    engine: EngineMode,
) -> Vec<QueueingRow> {
    let schemes = [
        OrganizationScheme::Random,
        OrganizationScheme::Sequential,
        OrganizationScheme::QstrMed { candidates: 4 },
    ];
    let models = [QueueModel::Single, QueueModel::PerChip];
    let mut rows = Vec::new();
    for &scheme in &schemes {
        for &queue_model in &models {
            let config = FtlConfig {
                flash: FlashConfig {
                    geometry: geometry.clone(),
                    variation: flash_model::VariationConfig::default(),
                },
                scheme,
                queue_model,
                engine,
                ..FtlConfig::small_test()
            };
            let mut ssd = Ssd::new(config, seed).expect("experiment config is valid");
            let mut reqs =
                Workload::hot_cold_80_20().generate(&ssd.geometry_info(), writes, seed ^ 0xabc);
            for (i, r) in reqs.iter_mut().enumerate() {
                if i % 5 == 3 {
                    r.op = IoOp::Read;
                }
            }
            let timed = poisson_arrivals(&reqs, mean_gap_us, seed ^ 0x51);
            ssd.run_timed(&timed).expect("workload fits the device");
            let stats = ssd.stats();
            let util = stats.chip_utilization();
            let peak = util.iter().copied().fold(0.0, f64::max);
            let mean =
                if util.is_empty() { 0.0 } else { util.iter().sum::<f64>() / util.len() as f64 };
            rows.push(QueueingRow {
                scheme: format!("{scheme:?}"),
                queue_model: format!("{queue_model:?}"),
                write_mean_us: stats.write_latency.mean_us(),
                write_p99_us: stats.write_latency.quantile_us(0.99),
                makespan_us: stats.makespan_us,
                service_us: stats.busy_us,
                queue_depth_max: stats.queue_depth_max,
                mean_chip_utilization: mean,
                peak_chip_utilization: peak,
            });
        }
    }
    rows
}

/// One cell of the multi-tenant QoS sweep: one tenant's view of one
/// (scheme, arbitration) configuration.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Arbitration mechanism (`rr` or `wrr`).
    pub arbitration: String,
    /// Tenant name.
    pub tenant: String,
    /// QoS class label.
    pub qos: String,
    /// Weighted-round-robin weight.
    pub weight: u32,
    /// Commands completed by this tenant.
    pub completed: u64,
    /// Median end-to-end write latency, µs.
    pub write_p50_us: f64,
    /// 99th-percentile end-to-end write latency, µs.
    pub write_p99_us: f64,
    /// 99th-percentile end-to-end read latency, µs.
    pub read_p99_us: f64,
    /// Mean time from arrival to dispatch, µs.
    pub mean_queue_wait_us: f64,
    /// Highest submission-queue occupancy observed.
    pub depth_high_water: usize,
    /// Arrivals that found the submission queue full.
    pub backpressured: u64,
    /// Per-replicate 99th-percentile write latencies (µs, replicate order)
    /// behind the `write_p99_us` mean — the per-seed view the monotonicity
    /// headline checks.
    pub write_p99_reps_us: Vec<f64>,
}

/// Device-side GC activity accumulated over every cell and replicate of a
/// [`tenants_experiment`] run.
#[derive(Debug, Clone, Default)]
pub struct GcActivity {
    /// Collection passes completed (victims freed).
    pub runs: u64,
    /// GC slices executed (sliced mode only).
    pub slices: u64,
    /// Slices that hit their budget and parked the victim.
    pub yields: u64,
    /// Merged per-slice relocation-time distribution, µs.
    pub slice_us: LatencyHistogram,
    /// Worst single-command GC stall seen on any device, µs.
    pub max_stall_us: f64,
}

/// Multi-tenant QoS sweep: tenant mix × arbitration × organization scheme.
///
/// Three tenants with disjoint LPN ranges share one device through the
/// multi-queue frontend: a latency-critical tenant (weight 4, shallow
/// queue), a standard tenant (weight 2) and a background writer (weight 1,
/// deep queue). Under function-based placement the latency-critical and
/// standard tenants write into *fast* superblocks while the background
/// tenant shares the *slow* end with GC — so QSTR-MED's fast/slow pool
/// split should widen the p99 write-latency gap between the
/// latency-critical and background tenants compared to sequential
/// assembly, which picks members blind to process variation.
///
/// `gc_budget` picks the collector. Under [`GcBudget::Unbounded`] the
/// caller should size the write volume below the GC watermarks: a
/// run-to-completion collection burst costs tens of milliseconds, lands on
/// every tenant alike and buries the pool split's microsecond-scale
/// placement signal in collection luck. Under [`GcBudget::Sliced`] the
/// volume should instead *exceed* the watermarks — that is the whole
/// point: the preemptive collector keeps the latency-critical tail
/// monotone even while the device collects. Each (scheme, arbitration)
/// cell runs five independently seeded replicates (fresh device, fresh
/// arrival jitter) and reports replicate-mean latencies plus the
/// per-replicate p99s behind them.
///
/// `writes_per_tenant` requests per tenant arrive Poisson-paced with a
/// per-tenant mean gap of `3 * mean_gap_us` (aggregate load matches a
/// single stream at `mean_gap_us`).
///
/// `engine` picks the replay engine; both produce bit-identical rows, so
/// the choice only moves wall-clock time.
///
/// # Panics
///
/// Panics if the simulated device rejects the workload (an internal bug).
#[must_use]
pub fn tenants_experiment(
    geometry: &Geometry,
    writes_per_tenant: usize,
    seed: u64,
    mean_gap_us: f64,
    engine: EngineMode,
    gc_budget: GcBudget,
) -> (Vec<TenantRow>, GcActivity) {
    const REPLICATES: u64 = 5;
    let schemes = [OrganizationScheme::Sequential, OrganizationScheme::QstrMed { candidates: 4 }];
    let arbitrations = [Arbitration::RoundRobin, Arbitration::WeightedRoundRobin];
    let mut rows = Vec::new();
    let mut gc = GcActivity::default();
    for &scheme in &schemes {
        for &arbitration in &arbitrations {
            let mut cell: Vec<TenantRow> = Vec::new();
            for rep in 0..REPLICATES {
                let rep_seed = seed.wrapping_add(rep.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let config = FtlConfig {
                    flash: FlashConfig {
                        geometry: geometry.clone(),
                        variation: flash_model::VariationConfig::default(),
                    },
                    scheme,
                    queue_model: QueueModel::PerChip,
                    engine,
                    // Collect in arrival gaps if the workload ever does
                    // outgrow the free pool.
                    idle_gc: true,
                    gc_budget,
                    // The sliced cell sustains writes far past device
                    // capacity, so give the collector enough spare blocks
                    // that the high watermark is actually reachable — at
                    // the default 0.25 the compacted footprint plus open
                    // slots caps free space below the watermark and the
                    // backlog never clears — and a wide watermark band so
                    // the budgeted ladder absorbs load bursts before free
                    // space ever reaches the emergency floor.
                    overprovision: match gc_budget {
                        GcBudget::Sliced { .. } => 0.45,
                        GcBudget::Unbounded => 0.25,
                    },
                    gc_low_watermark: match gc_budget {
                        GcBudget::Sliced { .. } => 3,
                        GcBudget::Unbounded => 2,
                    },
                    gc_high_watermark: match gc_budget {
                        GcBudget::Sliced { .. } => 5,
                        GcBudget::Unbounded => 3,
                    },
                    ..FtlConfig::small_test()
                };
                let ssd = Ssd::new(config, rep_seed).expect("experiment config is valid");
                let info = ssd.geometry_info();
                let span = info.logical_pages / 3;
                let specs = vec![
                    TenantSpec::new("lc", QosClass::LatencyCritical).weight(4).queue_depth(8),
                    TenantSpec::new("std", QosClass::Standard).weight(2).queue_depth(16),
                    TenantSpec::new("bg", QosClass::Background).weight(1).queue_depth(32),
                ];
                let weights: Vec<u32> = specs.iter().map(|s| s.weight).collect();
                let mut front = HostFrontend::new(ssd, specs, arbitration);
                for tenant in 0..3u64 {
                    // Each tenant hammers its own third of the LPN space;
                    // the foreground tenants fold reads in.
                    let mut reqs = Workload::random_write(0.3).generate(
                        &info,
                        writes_per_tenant,
                        rep_seed ^ (tenant * 0x9e37_79b9),
                    );
                    for (i, r) in reqs.iter_mut().enumerate() {
                        r.lpn = (r.lpn + tenant * span).min(info.logical_pages - 1);
                        if tenant < 2 && i % 5 == 3 {
                            r.op = IoOp::Read;
                        }
                    }
                    let timed =
                        poisson_arrivals(&reqs, mean_gap_us * 3.0, rep_seed ^ (0x51 + tenant));
                    front.submit(tenant as usize, &timed);
                }
                front.run().expect("workload fits the device");
                for (t, &weight) in front.all_stats().iter().zip(&weights) {
                    let p99 = t.write_latency.quantile_us(0.99);
                    cell.push(TenantRow {
                        scheme: format!("{scheme:?}"),
                        arbitration: arbitration.label().to_string(),
                        tenant: t.name.clone(),
                        qos: t.qos.label().to_string(),
                        weight,
                        completed: t.completed,
                        write_p50_us: t.write_latency.quantile_us(0.5),
                        write_p99_us: p99,
                        read_p99_us: t.read_latency.quantile_us(0.99),
                        mean_queue_wait_us: t.mean_queue_wait_us(),
                        depth_high_water: t.depth_high_water,
                        backpressured: t.backpressured,
                        write_p99_reps_us: vec![p99],
                    });
                }
                let dev_stats = front.device().stats();
                gc.runs += dev_stats.gc_runs;
                gc.slices += dev_stats.gc_slices;
                gc.yields += dev_stats.gc_yield_count;
                gc.slice_us.merge(&dev_stats.gc_slice_us);
                gc.max_stall_us = gc.max_stall_us.max(dev_stats.gc_stall.max_us());
            }
            // Fold the replicates: latencies and waits average, queue
            // occupancy takes the worst replicate, counts accumulate.
            let tenants = cell.len() / REPLICATES as usize;
            for t in 0..tenants {
                let reps: Vec<&TenantRow> = cell.iter().skip(t).step_by(tenants).collect();
                let n = reps.len() as f64;
                let mean = |f: fn(&TenantRow) -> f64| reps.iter().map(|r| f(r)).sum::<f64>() / n;
                let first = reps[0];
                rows.push(TenantRow {
                    scheme: first.scheme.clone(),
                    arbitration: first.arbitration.clone(),
                    tenant: first.tenant.clone(),
                    qos: first.qos.clone(),
                    weight: first.weight,
                    completed: reps.iter().map(|r| r.completed).sum(),
                    write_p50_us: mean(|r| r.write_p50_us),
                    write_p99_us: mean(|r| r.write_p99_us),
                    read_p99_us: mean(|r| r.read_p99_us),
                    mean_queue_wait_us: mean(|r| r.mean_queue_wait_us),
                    depth_high_water: reps.iter().map(|r| r.depth_high_water).max().unwrap_or(0),
                    backpressured: reps.iter().map(|r| r.backpressured).sum(),
                    write_p99_reps_us: reps.iter().map(|r| r.write_p99_us).collect(),
                });
            }
        }
    }
    (rows, gc)
}

/// One cell of the resilience sweep: a scheme driven over faulty media.
#[derive(Debug, Clone)]
pub struct ResilienceRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Per-P/E-cycle block-kill rate fed to `FaultConfig::with_rate`.
    pub fault_rate: f64,
    /// Mean host write latency, µs.
    pub write_mean_us: f64,
    /// 99th-percentile host write latency, µs.
    pub write_p99_us: f64,
    /// Write amplification factor.
    pub waf: f64,
    /// Mean extra program latency per super word-line program, µs.
    pub extra_pgm_per_op_us: f64,
    /// Blocks permanently retired during the run.
    pub retired_blocks: u64,
    /// Pages rewritten after a program failure took their block.
    pub remapped_writes: u64,
    /// Pages relocated because a read exceeded the retry ladder.
    pub refresh_relocations: u64,
    /// Superblocks that lost at least one member.
    pub degraded_superblocks: u64,
}

/// §VI-C resilience: the Table V schemes under growing media-failure rates.
///
/// Demonstrates graceful degradation — every cell completes, retirement and
/// remap counters grow with the rate, and QSTR-MED keeps its extra-latency
/// advantage over the random baseline even on degrading media.
///
/// # Panics
///
/// Panics if the simulated device rejects the workload (an internal bug —
/// surviving `rates` up to 2% is exactly what this experiment asserts).
#[must_use]
pub fn resilience_experiment(
    geometry: &Geometry,
    writes: usize,
    seed: u64,
    rates: &[f64],
) -> Vec<ResilienceRow> {
    let schemes = [
        OrganizationScheme::Random,
        OrganizationScheme::Sequential,
        OrganizationScheme::QstrMed { candidates: 4 },
    ];
    let mut rows = Vec::new();
    for &rate in rates {
        for &scheme in &schemes {
            let config = FtlConfig {
                flash: FlashConfig {
                    geometry: geometry.clone(),
                    variation: flash_model::VariationConfig::default(),
                },
                scheme,
                fault: flash_model::FaultConfig::with_rate(rate),
                ..FtlConfig::small_test()
            };
            let mut ssd = Ssd::new(config, seed).expect("experiment config is valid");
            let info = ssd.geometry_info();
            let reqs = Workload::hot_cold_80_20().generate(&info, writes, seed ^ 0xabc);
            ssd.run(&reqs).expect("device degrades gracefully instead of failing");
            // Read back a slice of the written space: on faulty media this
            // drives the ECC consult, refreshing pages past the retry
            // ladder — and proves no write was lost to a failed block.
            for lpn in 0..(info.logical_pages / 2).min(2000) {
                ssd.read(lpn).expect("read path survives faulty media");
            }
            let stats = ssd.stats();
            rows.push(ResilienceRow {
                scheme: format!("{scheme:?}"),
                fault_rate: rate,
                write_mean_us: stats.write_latency.mean_us(),
                write_p99_us: stats.write_latency.quantile_us(0.99),
                waf: stats.waf(),
                extra_pgm_per_op_us: stats.extra_program_per_op_us(),
                retired_blocks: stats.retired_blocks,
                remapped_writes: stats.remapped_writes,
                refresh_relocations: stats.refresh_relocations,
                degraded_superblocks: stats.degraded_superblocks,
            });
        }
    }
    rows
}

/// One cell of the superpage-parity sweep: a scheme driven over faulty
/// media with the RAIN stripe on or off (`repro parity`).
#[derive(Debug, Clone)]
pub struct ParityRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Whether the super-word-line parity stripe was active.
    pub parity: bool,
    /// Per-P/E-cycle block-kill rate fed to `FaultConfig::with_rate`.
    pub fault_rate: f64,
    /// Exported logical capacity, pages — shrinks by one page per super
    /// word-line when parity is on.
    pub logical_pages: u64,
    /// Logical capacity relative to the parity-off twin of the same cell.
    pub capacity_ratio: f64,
    /// Host/GC reads that crossed the retry ladder over the whole cell.
    /// Not comparable across the off/on twins: the parity-on GC checks
    /// relocation reads against the ladder (and rebuilds them), while the
    /// parity-off GC relocates rotten pages without ever noticing.
    pub uncorrectable_reads: u64,
    /// Stripe rebuilds whose XOR verdict matched the lost payload.
    pub rebuilds_ok: u64,
    /// Rebuild attempts that found a second failure in the stripe.
    pub rebuilds_failed: u64,
    /// Reads of the final read-back sweep that crossed the retry ladder —
    /// the same read pattern on both twins, so this column IS comparable.
    pub sweep_uncorrectable: u64,
    /// Pages the final sweep found actually gone: with parity off every
    /// sweep uncorrectable is a loss; with parity on only the failed
    /// rebuilds are.
    pub sweep_lost: u64,
    /// Sibling pages read while rebuilding.
    pub rebuild_reads: u64,
    /// Mean rebuild critical path over all attempts, µs — the slowest
    /// member's sibling-read chain, since members fan out across chips.
    pub mean_rebuild_us: f64,
    /// Mean critical path over *successful* rebuilds only, µs. Failed
    /// attempts read uncorrectable siblings at the full retry ladder, so
    /// the clean regime is reported separately.
    pub mean_rebuild_ok_us: f64,
    /// Mean straggler cost per successful rebuild, µs: critical path minus
    /// the stripe's own mean member chain. The member chains fan out in
    /// parallel, so the rebuild waits exactly this long past the average —
    /// the column where stripe-assembly quality shows, independent of
    /// which pool (fast or slow, hot or cold) the rebuilt stripes sit in.
    pub mean_rebuild_straggler_us: f64,
    /// Pages relocated by the reactive-refresh path.
    pub refresh_relocations: u64,
    /// 99th-percentile host read latency, µs (rebuild time is charged to
    /// the refresh ledger, never this histogram).
    pub read_p99_us: f64,
    /// 99th-percentile host write latency, µs — carries the cost of the
    /// extra parity program per super word-line.
    pub write_p99_us: f64,
}

/// Superpage-parity sweep: parity off/on × scheme × fault rate under the
/// resilience fault injector (ROADMAP item 6's capstone experiment).
///
/// The fault channel is tuned to the regime where parity can act: the
/// weak-block multiplier sits inside the retry ladder's window and RBER
/// is spread across the page types, so a stripe loses its MSB pages while
/// the LSB/CSB siblings stay correctable. Headlines: (a) parity converts
/// otherwise-lost pages into successful rebuilds, at a measured capacity
/// cost of `1/superwl_pages`; (b) QSTR-MED's unified read latencies bound
/// the rebuild critical path — the slowest member chain — below PV-blind
/// sequential assembly's.
///
/// # Panics
///
/// Panics if the simulated device rejects the workload (an internal bug —
/// degrading gracefully under the sweep's fault rates is the point).
#[must_use]
pub fn parity_experiment(
    geometry: &Geometry,
    writes: usize,
    seed: u64,
    rates: &[f64],
) -> Vec<ParityRow> {
    let schemes = [OrganizationScheme::Sequential, OrganizationScheme::QstrMed { candidates: 4 }];
    let mut rows = Vec::new();
    for &rate in rates {
        for &scheme in &schemes {
            let mut off_logical = 0u64;
            for parity in [ParityConfig::Off, ParityConfig::On] {
                let mut fault = flash_model::FaultConfig::with_rate(rate);
                if rate > 0.0 {
                    // Page-granular losses: keep weak-block MSB pages just
                    // past the retry ladder while their LSB/CSB siblings
                    // stay under it — the only regime where a single
                    // parity page can rebuild anything. The wide spread is
                    // the window: MSB reads 1.6× nominal, CSB 1.0×.
                    fault.weak_ber_multiplier = 110.0;
                    fault.page_type_ber_spread = 0.6;
                }
                // Per-block read spread (correlated with program speed, so
                // QSTR-MED's program-latency assembly also unifies reads):
                // the axis that separates the schemes' rebuild critical
                // paths.
                let variation = flash_model::VariationConfig {
                    read_block_sigma_us: 16.0,
                    read_pgm_corr: 0.8,
                    ..flash_model::VariationConfig::default()
                };
                // A shallow retry step keeps the ladder's latency share
                // small next to the per-block spread — the uncorrectable
                // verdict only depends on the ECC budget, never the step —
                // so the rebuild critical path measures stripe assembly,
                // not retry-count quantization noise.
                let retry = flash_model::RetryModel {
                    retry_step_us: 4.0,
                    ..flash_model::RetryModel::default()
                };
                let config = FtlConfig {
                    flash: FlashConfig { geometry: geometry.clone(), variation },
                    scheme,
                    parity,
                    fault,
                    retry,
                    ..FtlConfig::small_test()
                };
                let mut ssd = Ssd::new(config, seed).expect("experiment config is valid");
                let info = ssd.geometry_info();
                if !parity.enabled() {
                    off_logical = info.logical_pages;
                }
                let reqs = Workload::hot_cold_80_20().generate(&info, writes, seed ^ 0xabc);
                ssd.run(&reqs).expect("device degrades gracefully instead of failing");
                // Snapshot before the sweep: run-phase uncorrectables are
                // detection-asymmetric (the parity-on GC checks relocation
                // reads, the parity-off GC can't), so the loss headline is
                // measured on the sweep alone.
                let pre_unc = ssd.stats().uncorrectable_reads;
                let pre_failed = ssd.stats().rebuilds_failed;
                // Read back a slice of the written space: every LPN must
                // answer, and on faulty media the uncorrectable ones drive
                // the rebuild path. Capped below either twin's half-span so
                // the off/on cells sweep the same number of pages.
                for lpn in 0..(info.logical_pages / 2).min(3000) {
                    ssd.read(lpn).expect("read path survives faulty media");
                }
                let stats = ssd.stats();
                let attempts = stats.rebuilds_ok + stats.rebuilds_failed;
                let sweep_uncorrectable = stats.uncorrectable_reads - pre_unc;
                rows.push(ParityRow {
                    scheme: format!("{scheme:?}"),
                    parity: parity.enabled(),
                    fault_rate: rate,
                    logical_pages: info.logical_pages,
                    capacity_ratio: info.logical_pages as f64 / off_logical.max(1) as f64,
                    uncorrectable_reads: stats.uncorrectable_reads,
                    rebuilds_ok: stats.rebuilds_ok,
                    rebuilds_failed: stats.rebuilds_failed,
                    sweep_uncorrectable,
                    sweep_lost: if parity.enabled() {
                        stats.rebuilds_failed - pre_failed
                    } else {
                        sweep_uncorrectable
                    },
                    rebuild_reads: stats.rebuild_reads,
                    mean_rebuild_us: stats.rebuild_us / attempts.max(1) as f64,
                    mean_rebuild_ok_us: stats.rebuild_ok_us / stats.rebuilds_ok.max(1) as f64,
                    mean_rebuild_straggler_us: (stats.rebuild_ok_us
                        - stats.rebuild_ok_fanout_us / f64::from(geometry.chips()))
                        / stats.rebuilds_ok.max(1) as f64,
                    refresh_relocations: stats.refresh_relocations,
                    read_p99_us: stats.read_latency.quantile_us(0.99),
                    write_p99_us: stats.write_latency.quantile_us(0.99),
                });
            }
        }
    }
    rows
}

/// One cell of the crash-recovery sweep: a scheme crashed at a
/// deterministic flash-op index and recovered from its OOB metadata.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Checkpoint interval, in super word-line programs (0 = only the
    /// initial empty checkpoint).
    pub checkpoint_interval: u64,
    /// Host request index at which the injected power loss fired.
    pub crashed_at_request: u64,
    /// Physical pages read by the recovery OOB scan.
    pub scan_pages: u64,
    /// Logical mappings rebuilt from the scan + checkpoint.
    pub recovered_mappings: u64,
    /// Readable pages of torn super word-lines that were discarded.
    pub torn_writes_discarded: u64,
    /// Simulated recovery scan time, µs.
    pub recovery_time_us: f64,
    /// Mapped blocks whose gathered QSTR-MED summary survived the crash
    /// via the persisted seal records (boot characterization is off, so
    /// the seal records are the only possible source).
    pub known_blocks_after: u64,
    /// Whether the recovered mapping matched the RAM mapping at the crash
    /// instant exactly (the durability contract).
    pub durable_ok: bool,
}

/// Crash-recovery sweep: every scheme crashed at the same deterministic
/// flash-op index under several checkpoint intervals, then recovered and
/// driven to the end of the workload.
///
/// Shows two things: recovery cost shrinks as checkpoints tighten (the
/// scan is O(written since the last checkpoint)), and the per-superblock
/// seal records let QSTR-MED resume with its gathered block knowledge
/// without re-characterizing — boot-time characterization is disabled in
/// this experiment, so every known block after recovery was learned from
/// a seal record.
///
/// # Panics
///
/// Panics if the injected crash never fires or the device rejects the
/// workload (either is an internal bug).
#[must_use]
pub fn recovery_experiment(
    geometry: &Geometry,
    writes: usize,
    seed: u64,
    intervals: &[u64],
) -> Vec<RecoveryRow> {
    let schemes = [
        OrganizationScheme::Random,
        OrganizationScheme::Sequential,
        OrganizationScheme::QstrMed { candidates: 4 },
    ];
    // One crash point for the whole sweep: every cell dies at the same
    // flash op, so the interval axis isolates the checkpoint effect.
    let crash = ftl::CrashPoint::from_seed(seed, (writes as u64 / 4).max(1));
    let mut rows = Vec::new();
    for &scheme in &schemes {
        for &interval in intervals {
            let mut config = FtlConfig {
                flash: FlashConfig {
                    geometry: geometry.clone(),
                    variation: flash_model::VariationConfig::default(),
                },
                scheme,
                ..FtlConfig::small_test()
            };
            config.precharacterize = false;
            config.spor.checkpoint_interval = interval;
            config.spor.crash = Some(crash);
            let mut ssd = Ssd::new(config, seed).expect("experiment config is valid");
            let info = ssd.geometry_info();
            let reqs = Workload::hot_cold_80_20().generate(&info, writes, seed ^ 0xabc);
            let mut resume = reqs.len();
            for (i, req) in reqs.iter().enumerate() {
                match ssd.write(req.lpn) {
                    Ok(_) => {}
                    Err(ftl::FtlError::PowerLoss) => {
                        resume = i;
                        break;
                    }
                    Err(e) => panic!("workload fits the device: {e}"),
                }
            }
            assert!(resume < reqs.len(), "the injected crash must fire mid-run");
            let ram: Vec<_> = (0..info.logical_pages).map(|l| ssd.mapping().lookup(l)).collect();
            let report = ssd.recover().expect("recovery succeeds");
            let durable_ok =
                (0..info.logical_pages).all(|l| ssd.mapping().lookup(l) == ram[l as usize]);
            let known_blocks_after = {
                let blocks: std::collections::HashSet<_> = (0..info.logical_pages)
                    .filter_map(|l| ssd.mapping().lookup(l))
                    .map(|ppa| ppa.wl.block)
                    .collect();
                blocks.iter().filter(|&&b| ssd.block_manager().knows(b)).count() as u64
            };
            for req in &reqs[resume..] {
                ssd.write(req.lpn).expect("the recovered device keeps working");
            }
            rows.push(RecoveryRow {
                scheme: format!("{scheme:?}"),
                checkpoint_interval: interval,
                crashed_at_request: resume as u64,
                scan_pages: report.scanned_pages,
                recovered_mappings: report.recovered_mappings,
                torn_writes_discarded: report.torn_writes_discarded,
                recovery_time_us: report.scan_us,
                known_blocks_after,
                durable_ok,
            });
        }
    }
    rows
}

/// Ablation: how much each variation source contributes to the random
/// baseline's extra latency (model-level ablation, unique to this repro).
#[must_use]
pub fn ablation(params: &ExperimentParams) -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    let run_with = |cfg: flash_model::VariationConfig, name: &str| {
        let p = ExperimentParams {
            config: FlashConfig { geometry: params.config.geometry.clone(), variation: cfg },
            ..params.clone()
        };
        let s = run_scheme(&p, SchemeKind::Random);
        (name.to_string(), s.extra_pgm_us, s.extra_ers_us)
    };
    let base = params.config.variation.clone();
    rows.push(run_with(base.clone(), "full model"));
    rows.push(run_with(
        flash_model::VariationConfig { pattern_penalty_us: 0.0, ..base.clone() },
        "no string patterns",
    ));
    rows.push(run_with(
        flash_model::VariationConfig { block_sigma_us: 0.0, outlier_prob: 0.0, ..base.clone() },
        "no block speed variation",
    ));
    rows.push(run_with(
        flash_model::VariationConfig { noise_sigma_us: 0.0, ..base.clone() },
        "no per-WL noise",
    ));
    rows.push(run_with(
        flash_model::VariationConfig {
            layer_group_sigma_us: 0.0,
            chip_offset_sigma_us: 0.0,
            ..base
        },
        "no chip profile variation",
    ));
    rows
}

/// Ablation: QSTR-MED candidate-list depth (the paper fixes 4; this sweeps
/// 1..=8 to show the knee). Returns `(candidates, extra PGM µs, checks per
/// superblock)`.
#[must_use]
pub fn qstr_candidate_sweep(params: &ExperimentParams) -> Vec<(usize, f64, f64)> {
    qstr_candidate_sweep_with(params, &params.cache())
}

/// [`qstr_candidate_sweep`] over a shared characterization cache.
#[must_use]
pub fn qstr_candidate_sweep_with(
    params: &ExperimentParams,
    cache: &PoolCache,
) -> Vec<(usize, f64, f64)> {
    let pe = params.pe_points[0];
    let pools: Vec<_> = params.group_seeds.iter().map(|&seed| cache.pool(seed, pe)).collect();
    (1..=8)
        .map(|c| {
            let mut pgm = 0.0;
            let mut n = 0usize;
            let mut checks = 0u64;
            for pool in &pools {
                let mut q = pvcheck::assembly::QstrMed::with_candidates(c);
                let sbs = q.assemble(pool);
                for e in measure_each(pool, &sbs) {
                    pgm += e.program_us;
                }
                n += sbs.len();
                checks += q.distance_checks();
            }
            (c, pgm / n.max(1) as f64, checks as f64 / n.max(1) as f64)
        })
        .collect()
}

/// Ablation: how strongly the erase-program correlation channel drives the
/// Table V erase improvements. Sweeps the model's `ers_pgm_corr` and
/// reports QSTR-MED's extra erase latency vs. the random baseline.
#[must_use]
pub fn ers_corr_ablation(params: &ExperimentParams) -> Vec<(f64, f64, f64)> {
    [0.0, 0.5, 0.8, 0.97]
        .iter()
        .map(|&corr| {
            let variation = flash_model::VariationConfig {
                ers_pgm_corr: corr,
                ..params.config.variation.clone()
            };
            let p = ExperimentParams {
                config: FlashConfig { geometry: params.config.geometry.clone(), variation },
                ..params.clone()
            };
            // Each correlation variant is a different model, so it gets its
            // own cache — but random and QSTR-MED share it.
            let cache = p.cache();
            let rnd = run_scheme_with(&p, &cache, SchemeKind::Random);
            let qstr = run_scheme_with(&p, &cache, SchemeKind::QstrMed(4));
            (corr, rnd.extra_ers_us, qstr.extra_ers_us)
        })
        .collect()
}

/// §III characterization statistics: per-pool means/spreads, the
/// erase-program correlation and the same-offset similarity premise.
#[must_use]
pub fn pool_stats(params: &ExperimentParams) -> pvcheck::analysis::PoolStatistics {
    pool_stats_with(params, &params.cache())
}

/// [`pool_stats`] over a shared characterization cache.
#[must_use]
pub fn pool_stats_with(
    params: &ExperimentParams,
    cache: &PoolCache,
) -> pvcheck::analysis::PoolStatistics {
    let pool = cache.pool(params.group_seeds[0], params.pe_points[0]);
    pvcheck::analysis::pool_statistics(&pool)
}

/// Read-retry sensitivity (§VI-C's failure-rate axis): mean page-read
/// latency and retry rounds as wear and retention grow.
/// Returns `(pe, retention_hours, mean read µs, mean retries)`.
#[must_use]
pub fn retry_sensitivity(seed: u64) -> Vec<(u32, f64, f64, f64)> {
    let config = FlashConfig::builder().blocks_per_plane(16).pwl_layers(24).build();
    let retry = flash_model::RetryModel::default();
    let mut out = Vec::new();
    for &(pe, retention) in
        &[(0u32, 0.0f64), (1000, 1000.0), (3000, 1000.0), (3000, 10_000.0), (8000, 10_000.0)]
    {
        let mut array = FlashArray::new(config.clone(), seed);
        let payload = vec![0u64; config.geometry.pages_per_lwl() as usize];
        let mut total_lat = 0.0;
        let mut total_retries = 0.0;
        let mut n = 0u32;
        for addr in config.geometry.blocks().take(16) {
            array.age_block(addr, pe).expect("address in range");
            array.erase_block(addr).expect("erase");
            for lwl in config.geometry.lwls().take(8) {
                array.program_wl(addr.wl(lwl), &payload).expect("program");
            }
            for lwl in config.geometry.lwls().take(8) {
                let page = addr.wl(lwl).page(flash_model::PageType::Lsb);
                let (_, lat, retries) = array
                    .read_page_with_retries(page, retention, &retry)
                    .expect("page was programmed");
                total_lat += lat;
                total_retries += f64::from(retries);
                n += 1;
            }
        }
        out.push((pe, retention, total_lat / f64::from(n), total_retries / f64::from(n)));
    }
    out
}

/// Sanity helper for Figure 5's "fast strings really are faster" claim:
/// mean tPROG split by the model's fast/slow string marking.
#[must_use]
pub fn string_speed_split(seed: u64) -> (f64, f64) {
    let config = FlashConfig::small_test();
    let array = FlashArray::new(config.clone(), seed);
    let model = array.latency_model();
    let geo = &config.geometry;
    let (mut fast, mut nfast, mut slow, mut nslow) = (0.0, 0u32, 0.0, 0u32);
    for addr in geo.blocks().take(32) {
        for l in 0..geo.pwl_layers() {
            let mask = model.fast_strings(addr, PwlLayer(l));
            for s in 0..geo.strings() {
                let t = model.program_latency_us(addr.wl(geo.lwl_of(PwlLayer(l), StringId(s))), 0);
                if mask.contains(s) {
                    fast += t;
                    nfast += 1;
                } else {
                    slow += t;
                    nslow += 1;
                }
            }
        }
    }
    (fast / f64::from(nfast), slow / f64::from(nslow))
}

/// One cell of the fleet sweep: an organization scheme × arbitration
/// policy replayed over every device of a sharded fleet.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Arbitration mechanism (`rr` or `wrr`).
    pub arbitration: String,
    /// Devices in the fleet.
    pub devices: usize,
    /// Logical users sharded across the fleet.
    pub users: u64,
    /// Commands completed across the fleet.
    pub commands: u64,
    /// Fleet-wide p99 over all sampled command latencies, µs.
    pub fleet_p99_us: f64,
    /// Fleet-wide p999, µs — the tail the scheme comparison headlines.
    pub fleet_p999_us: f64,
    /// Fleet-wide p9999, µs (nearest-rank; see `LatencyHistogram::fold`).
    pub fleet_p9999_us: f64,
    /// Worst command latency anywhere in the fleet, µs.
    pub max_us: f64,
    /// The unluckiest device's p99, µs.
    pub max_device_p99_us: f64,
    /// The median device's p99, µs.
    pub median_device_p99_us: f64,
    /// Device skew: max device p99 over median device p99.
    pub device_skew: f64,
    /// Arrivals that found a submission queue full, fleet-wide.
    pub backpressured: u64,
    /// Foreground GC slices executed, fleet-wide.
    pub gc_slices: u64,
}

/// The fleet device configuration: the GC-active sliced-collection shape
/// of [`tenants_experiment`] on the batched engine, with the organization
/// scheme as the swept axis.
fn fleet_device_config(scheme: OrganizationScheme) -> FtlConfig {
    FtlConfig {
        scheme,
        queue_model: QueueModel::PerChip,
        engine: EngineMode::Batched,
        idle_gc: true,
        gc_budget: GcBudget::Sliced { slice_us: 300.0 },
        // Same rationale as the sliced tenants cell: the sharded streams
        // overwrite each device's logical space several times, so the
        // collector needs reachable watermarks and a wide band.
        overprovision: 0.45,
        gc_low_watermark: 3,
        gc_high_watermark: 5,
        ..FtlConfig::small_test()
    }
}

/// Aggregate mean interarrival gap per device, µs: each shard sees one
/// op roughly every `DEVICE_GAP_US` µs regardless of how many users the
/// sweep shards onto it ([`fleet_experiment`] scales the per-user gap by
/// the user count). Sized for a long steady state where every host write
/// also carries its share of GC relocation: burst trains roughly halve
/// the realized gap, and the effective per-op service cost with the
/// collector in equilibrium is a few hundred µs — 900 keeps utilization
/// high enough that queueing amplifies placement quality without tipping
/// into backlog meltdown, where the tail measures makespan instead.
const DEVICE_GAP_US: f64 = 900.0;

/// Fleet-scale sweep: organization scheme × arbitration over a sharded
/// multi-user workload (PR 8's tentpole experiment).
///
/// `users` logical users — Zipfian footprints, heavy-tailed op counts,
/// burst trains, diurnal arrival swing — are hashed across `devices`
/// identical GC-active devices ([`fleet_device_config`]). Each cell
/// replays the *same* sharded workload (the stream is a pure function of
/// the fleet seed, never of the scheme or arbitration), so the
/// QSTR-MED-vs-sequential delta isolates placement quality at fleet
/// scale: the fleet p999/p9999 and the per-device skew are the headline
/// columns. `workers` sizes the replay pool (`0` = one per core) and
/// never affects the rows — the reduction is canonical-order.
///
/// # Panics
///
/// Panics if the simulated devices reject the workload (an internal bug).
#[must_use]
pub fn fleet_experiment(
    users: u64,
    devices: usize,
    mean_ops_per_user: f64,
    seed: u64,
    workers: usize,
) -> Vec<FleetRow> {
    let schemes = [OrganizationScheme::Sequential, OrganizationScheme::QstrMed { candidates: 4 }];
    let arbitrations = [Arbitration::RoundRobin, Arbitration::WeightedRoundRobin];
    let mut workload = fleet::FleetWorkload::new(users, devices);
    workload.mean_ops_per_user = mean_ops_per_user;
    // Per-user pacing is derived from a per-*device* aggregate gap so the
    // offered load per shard is invariant to fleet sizing: busy enough
    // that queueing amplifies placement quality, but below saturation —
    // an overloaded queue's tail measures backlog, not placement.
    let users_per_device = (users as f64 / devices as f64).max(1.0);
    workload.mean_gap_us = DEVICE_GAP_US * users_per_device;
    // Stationary arrivals: spread user starts over one stream length so
    // the first ops don't pile into a t = 0 stampede (at a million users
    // that opening burst alone would saturate every shard for minutes).
    workload.start_spread_us = workload.mean_gap_us * workload.mean_ops_per_user.max(1.0);
    let mut rows = Vec::new();
    for &scheme in &schemes {
        for &arbitration in &arbitrations {
            let config = fleet::FleetConfig {
                device_config: fleet_device_config(scheme),
                workload: workload.clone(),
                fleet_seed: seed,
                arbitration,
                workers,
            };
            let report = fleet::run_fleet(&config).expect("fleet workload fits the devices");
            rows.push(FleetRow {
                scheme: format!("{scheme:?}"),
                arbitration: arbitration.label().to_string(),
                devices,
                users,
                commands: report.total_commands,
                fleet_p99_us: report.p99_us,
                fleet_p999_us: report.p999_us,
                fleet_p9999_us: report.p9999_us,
                max_us: report.max_us,
                max_device_p99_us: report.max_device_p99_us,
                median_device_p99_us: report.median_device_p99_us,
                device_skew: report.device_skew(),
                backpressured: report.devices.iter().map(|d| d.backpressured).sum(),
                gc_slices: report.devices.iter().map(|d| d.gc_slices).sum(),
            });
        }
    }
    rows
}

/// One cell of the data-integrity sweep (`repro integrity`).
#[derive(Debug, Clone)]
pub struct IntegrityRow {
    /// Organization scheme name.
    pub scheme: String,
    /// Patrol variant: `off`, `blind` (sealed order) or `slow-first`
    /// (PV-aware: slow-pool superblocks scanned before fast ones).
    pub patrol: String,
    /// Patrol interval, µs of device clock (0 when patrol is off).
    pub interval_us: f64,
    /// Retention acceleration, hours of simulated retention per µs of
    /// device clock.
    pub accel_h_per_us: f64,
    /// Uncorrectable cold reads over the run — the number patrol exists
    /// to drive to zero. (Hot pages churn too fast to rot, so every
    /// uncorrectable read lands on the cold set.)
    pub cold_uncorrectable: u64,
    /// Pages the scrubber refreshed proactively.
    pub patrol_refreshes: u64,
    /// Pages the scrubber examined.
    pub patrol_scanned_pages: u64,
    /// Complete patrol passes.
    pub patrol_passes: u64,
    /// Idle-gap time the scrubber used, µs.
    pub patrol_us: f64,
    /// Relocation time spent on in-path (reactive) refreshes, µs.
    pub refresh_us: f64,
    /// Final device clock, µs — the run's total aging exposure (patrol and
    /// refresh work advance the clock too, so protected cells age more).
    pub clock_us: f64,
    /// 99th-percentile host read latency, µs.
    pub read_p99_us: f64,
}

/// Device configuration of one integrity cell: integrity tracking with the
/// given retention acceleration and patrol variant on the small-test base.
fn integrity_config(
    geometry: &Geometry,
    scheme: OrganizationScheme,
    accel: f64,
    patrol: PatrolConfig,
) -> FtlConfig {
    FtlConfig {
        flash: FlashConfig {
            geometry: geometry.clone(),
            variation: flash_model::VariationConfig::default(),
        },
        scheme,
        integrity: IntegrityConfig { track: true, retention_hours_per_us: accel, patrol },
        // Generous spare area keeps GC cheap: refresh relocations must not
        // cascade into collection storms that dominate the aging signal.
        overprovision: 0.45,
        gc_low_watermark: 3,
        gc_high_watermark: 5,
        ..FtlConfig::small_test()
    }
}

/// Inter-arrival gap of the integrity workload, µs: comfortably above the
/// worst per-command service time (a full retry ladder plus a GC slice) so
/// the queue never grows and every command leaves an idle gap the scrubber
/// can use. The gap sets the run's total aging exposure — the device clock
/// tracks wall time, idle included — but it does so *identically* for
/// every cell (same op count × same gap), so off/blind/slow-first compare
/// at equal age.
const INTEGRITY_GAP_US: f64 = 500.0;

/// Drives one integrity cell: a hot working set churns in the fast pool
/// (standard class) while a cold set, written once as background traffic,
/// rots in the slow pool; cold pages are read back round-robin throughout
/// the steady state, so the uncorrectable count measures how well the
/// scrubber keeps ahead of retention while the device keeps serving.
#[allow(clippy::too_many_arguments)]
fn run_integrity_cell(
    geometry: &Geometry,
    scheme: OrganizationScheme,
    accel: f64,
    patrol: PatrolConfig,
    label: &str,
    interval_us: f64,
    hot_writes: usize,
    seed: u64,
) -> IntegrityRow {
    let config = integrity_config(geometry, scheme, accel, patrol);
    let mut ssd = Ssd::new(config, seed).expect("integrity config is valid");
    let info = ssd.geometry_info();
    let cold_n = info.logical_pages / 4;
    let hot_n = (info.logical_pages / 4).max(1);
    let hot_base = cold_n;
    let hot_lpn = |i: usize| hot_base + (i as u64).wrapping_mul(7919) % hot_n;
    let mut t = 0.0;
    let mut step = |ssd: &mut Ssd, op: IoOp, lpn: u64, class: QosClass| {
        ssd.timed_step(t, IoRequest { op, lpn }, class).expect("integrity workload fits");
        t += INTEGRITY_GAP_US;
    };
    ssd.timed_begin();
    // Warm-up churn seals fast-pool superblocks ahead of the cold data, so
    // blind (sealed-order) patrol has hot media to wade through first.
    for i in 0..hot_writes / 4 {
        step(&mut ssd, IoOp::Write, hot_lpn(i), QosClass::Standard);
    }
    // The cold set: written once as background traffic (slow pool under
    // function-based placement), never rewritten by the host.
    for lpn in 0..cold_n {
        step(&mut ssd, IoOp::Write, lpn, QosClass::Background);
    }
    // The long steady state: the cold data ages on the wall clock while
    // hot churn keeps the device busy, with every fourth op reading one
    // cold page round-robin. Each of those reads is the moment of truth —
    // a cold page the scrubber refreshed in time reads clean; one that
    // rotted past the retry ladder costs an uncorrectable-read refresh.
    let mut cold_cursor = 0u64;
    for i in hot_writes / 4..hot_writes {
        if i % 4 == 0 && cold_n > 0 {
            step(&mut ssd, IoOp::Read, cold_cursor, QosClass::Standard);
            cold_cursor = (cold_cursor + 1) % cold_n;
        } else {
            step(&mut ssd, IoOp::Write, hot_lpn(i), QosClass::Standard);
        }
    }
    ssd.timed_end();
    let clock_us = ssd.device_clock_us();
    let stats = ssd.stats();
    IntegrityRow {
        scheme: format!("{scheme:?}"),
        patrol: label.to_string(),
        interval_us,
        accel_h_per_us: accel,
        cold_uncorrectable: stats.uncorrectable_reads,
        patrol_refreshes: stats.patrol_refreshes,
        patrol_scanned_pages: stats.patrol_scanned_pages,
        patrol_passes: stats.patrol_passes,
        patrol_us: stats.patrol_us,
        refresh_us: stats.refresh_us,
        clock_us,
        read_p99_us: stats.read_latency.quantile_us(0.99),
    }
}

/// Data-integrity sweep: patrol variant × patrol interval × retention
/// acceleration × organization scheme, on the hot-churn/cold-tail workload
/// of [`run_integrity_cell`].
///
/// Two headlines: patrol eliminates the uncorrectable reads the no-patrol
/// cell suffers on the aged cold tail, and the PV-aware slow-pool-first
/// scan order protects the cold data at least as well as a blind
/// sealed-order scan of the same budget (the slow pool is scanned first,
/// so cold pages wait at most a pool's worth of scanning per pass instead
/// of a full pass).
///
/// # Panics
///
/// Panics if the simulated device rejects the workload (an internal bug).
#[must_use]
pub fn integrity_experiment(
    geometry: &Geometry,
    hot_writes: usize,
    seed: u64,
    accels: &[f64],
    intervals: &[f64],
) -> Vec<IntegrityRow> {
    let schemes = [OrganizationScheme::Sequential, OrganizationScheme::QstrMed { candidates: 4 }];
    let mut variants: Vec<(String, f64, PatrolConfig)> =
        vec![("off".to_string(), 0.0, PatrolConfig::Off)];
    for &interval_us in intervals {
        for (name, order) in
            [("blind", PatrolOrder::Blind), ("slow-first", PatrolOrder::SlowPoolFirst)]
        {
            variants.push((
                name.to_string(),
                interval_us,
                // A deliberately thin slice: the pass stretches over many
                // idle gaps, so *where* a pass starts scanning — scan order
                // — decides which pages it reaches before they rot.
                PatrolConfig::On { interval_us, slice_us: 60.0, refresh_fraction: 0.5, order },
            ));
        }
    }
    let mut rows = Vec::new();
    for &scheme in &schemes {
        for &accel in accels {
            for (label, interval_us, patrol) in &variants {
                rows.push(run_integrity_cell(
                    geometry,
                    scheme,
                    accel,
                    *patrol,
                    label,
                    *interval_us,
                    hot_writes,
                    seed,
                ));
            }
        }
    }
    rows
}

/// Fleet soak: the sharded multi-user workload replayed across `devices`
/// GC-active shards with integrity tracking, accelerated aging and the
/// PV-aware scrubber all live, ending in a full read-back sweep of every
/// shard. The headline is the invariant, not a latency number:
/// [`fleet::SoakReport::no_data_loss`] — every live logical page reads
/// back, and every read that crossed the uncorrectable limit was refreshed
/// in-path.
///
/// # Panics
///
/// Panics if the simulated devices reject the workload (an internal bug).
#[must_use]
pub fn soak_experiment(users: u64, devices: usize, seed: u64, workers: usize) -> fleet::SoakReport {
    let mut device_config = fleet_device_config(OrganizationScheme::QstrMed { candidates: 4 });
    device_config.integrity = IntegrityConfig {
        track: true,
        retention_hours_per_us: 0.003,
        patrol: PatrolConfig::On {
            interval_us: 20_000.0,
            slice_us: 400.0,
            refresh_fraction: 0.5,
            order: PatrolOrder::SlowPoolFirst,
        },
    };
    let mut workload = fleet::FleetWorkload::new(users, devices);
    workload.mean_gap_us = 20_000.0;
    let config = fleet::FleetConfig {
        device_config,
        workload,
        fleet_seed: seed,
        arbitration: Arbitration::WeightedRoundRobin,
        workers,
    };
    fleet::run_fleet_soak(&config).expect("fleet soak fits the devices")
}

/// The fleet soak of [`soak_experiment`] with the superpage parity stripe
/// active on every shard: same sharded aging workload, same scrubber,
/// one page per super word-line given up to XOR parity. The patrol pass
/// verifies every sealed stripe's parity during its existing scan
/// (`parity_verified` / `parity_mismatch`), and the hardened
/// [`fleet::SoakReport::no_data_loss`] additionally requires that no
/// rebuild found a double failure.
///
/// Retention ages a whole stripe in lockstep, so a rebuild can only save
/// a page the scrubber *almost* caught — anything long past the ladder
/// has siblings past it too, and counts as real loss. The soak therefore
/// pairs the stripe with a patrol budget that actually beats its aging
/// rate ([`soak_experiment`]'s deliberately loses that race and leans on
/// reactive refresh, which parity-off can afford): milder acceleration,
/// a denser patrol cadence, and the RBER page-type spread so the MSB
/// pages the patrol chases rot ahead of their stripe siblings.
///
/// # Panics
///
/// Panics if the simulated devices reject the workload (an internal bug).
#[must_use]
pub fn parity_soak_experiment(
    users: u64,
    devices: usize,
    seed: u64,
    workers: usize,
) -> fleet::SoakReport {
    let mut device_config = fleet_device_config(OrganizationScheme::QstrMed { candidates: 4 });
    device_config.parity = ParityConfig::On;
    device_config.fault.page_type_ber_spread = 0.35;
    device_config.integrity = IntegrityConfig {
        track: true,
        retention_hours_per_us: 0.0015,
        patrol: PatrolConfig::On {
            interval_us: 10_000.0,
            slice_us: 2_000.0,
            refresh_fraction: 0.35,
            order: PatrolOrder::SlowPoolFirst,
        },
    };
    let mut workload = fleet::FleetWorkload::new(users, devices);
    workload.mean_gap_us = 20_000.0;
    let config = fleet::FleetConfig {
        device_config,
        workload,
        fleet_seed: seed,
        arbitration: Arbitration::WeightedRoundRobin,
        workers,
    };
    fleet::run_fleet_soak(&config).expect("fleet soak fits the devices")
}

/// The quick pool used by doc examples and smoke tests.
#[must_use]
pub fn quick_pool(params: &ExperimentParams) -> pvcheck::BlockPool {
    let array = FlashArray::new(params.config.clone(), params.group_seeds[0]);
    Characterizer::new(&params.config).snapshot(array.latency_model(), params.pe_points[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_runs_quickly_on_small_params() {
        let params = ExperimentParams::quick();
        let r = table2(&params);
        assert_eq!(r.schemes.len(), 4);
        for s in &r.schemes {
            assert!(s.extra_pgm_us <= r.baseline.extra_pgm_us * 1.05, "{s:?}");
        }
    }

    #[test]
    fn fig5_produces_curves() {
        let d = fig5(1, 64);
        assert_eq!(d.erase_rows.len(), 2 * 4 * 64);
        assert_eq!(d.program_rows.len(), 2 * 4 * 384);
        assert!(d.erase_rows.iter().all(|&(_, _, _, t)| t > 0.0));
    }

    #[test]
    fn fig6_reports_every_superblock() {
        let params = ExperimentParams::quick();
        let d = fig6(&params);
        assert_eq!(d.per_superblock.len(), 96);
        assert_eq!(d.per_pe.len(), 1);
    }

    #[test]
    fn fig13_histograms_cover_all_superblocks() {
        let params = ExperimentParams::quick();
        let hists = fig13(&params, 1000.0);
        for h in &hists {
            let total: u32 = h.counts.iter().sum();
            assert_eq!(total, 96, "{}", h.name);
        }
    }

    #[test]
    fn fig14_curves_align() {
        let params = ExperimentParams::quick();
        let d = fig14(&params);
        assert_eq!(d.rows.len(), 96);
        // Sorted ascending.
        assert!(d.rows.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn overhead_matches_paper_constants() {
        let params = ExperimentParams::quick();
        let o = overhead_analysis(&params);
        assert_eq!(o.str_med_checks, 1536);
        assert_eq!(o.qstr_med_checks, 12);
        assert!((o.reduction_pct - 99.22).abs() < 0.01);
        assert!(o.measured_checks_per_superblock <= 12.0);
    }

    #[test]
    fn string_split_shows_pattern() {
        let (fast, slow) = string_speed_split(3);
        assert!(slow > fast);
    }

    #[test]
    fn candidate_sweep_improves_then_plateaus() {
        let params = ExperimentParams::quick();
        let rows = qstr_candidate_sweep(&params);
        assert_eq!(rows.len(), 8);
        // Deeper candidate lists never cost accuracy catastrophically and
        // check counts grow linearly.
        assert!(rows[7].1 <= rows[0].1 * 1.02, "c=8 {} vs c=1 {}", rows[7].1, rows[0].1);
        assert!(rows[7].2 > rows[0].2);
    }

    #[test]
    fn ers_corr_drives_erase_gains() {
        let params = ExperimentParams::quick();
        let rows = ers_corr_ablation(&params);
        let gain = |r: &(f64, f64, f64)| r.1 - r.2;
        // With zero correlation QSTR-MED cannot unify erase latency; with
        // the calibrated correlation it clearly can.
        assert!(gain(&rows[3]) > gain(&rows[0]) + 1.0, "{rows:?}");
    }

    #[test]
    fn pool_stats_reflect_model_structure() {
        let params = ExperimentParams::quick();
        let stats = pool_stats(&params);
        assert!(stats.bers_pgm_correlation > 0.2);
        assert!(stats.offset_similarity_holds());
    }

    #[test]
    fn queueing_experiment_overlaps_chips() {
        let geo = Geometry::new(4, 1, 24, 8, 4, flash_model::CellType::Tlc);
        let rows = queueing_experiment(&geo, 8_000, 7, 30.0, EngineMode::Stepper);
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            let (single, per_chip) = (&pair[0], &pair[1]);
            assert_eq!(single.queue_model, "Single");
            assert_eq!(per_chip.queue_model, "PerChip");
            // Service is model-independent; only the clocks move.
            assert_eq!(single.service_us.to_bits(), per_chip.service_us.to_bits());
            assert!(per_chip.makespan_us <= single.makespan_us, "{}", per_chip.scheme);
            // At a 30 µs arrival gap the device saturates, so overlapping
            // chips must beat the serial sum of service times.
            assert!(per_chip.makespan_us < per_chip.service_us, "{}", per_chip.scheme);
            assert!(per_chip.peak_chip_utilization <= 1.0 + 1e-9);
            assert!(per_chip.mean_chip_utilization > 0.0);
            assert_eq!(single.peak_chip_utilization, 0.0, "Single keeps no per-group clocks");
        }
    }

    #[test]
    fn recovery_sweep_is_exact_and_checkpoints_bound_the_scan() {
        let geo = Geometry::new(4, 1, 24, 8, 4, flash_model::CellType::Tlc);
        let rows = recovery_experiment(&geo, 8_000, 7, &[0, 128]);
        assert_eq!(rows.len(), 6, "two intervals x three schemes");
        for r in &rows {
            assert!(r.durable_ok, "{}: recovery must reproduce the RAM mapping", r.scheme);
            assert!(r.scan_pages > 0, "{}: the crash left dirty superblocks", r.scheme);
            assert!(r.recovered_mappings > 0);
            assert!(r.recovery_time_us > 0.0);
        }
        for pair in rows.chunks(2) {
            let (never, tight) = (&pair[0], &pair[1]);
            assert_eq!(never.checkpoint_interval, 0);
            assert_eq!(tight.checkpoint_interval, 128);
            // Same scheme, same crash op: the request index must agree and
            // the checkpointed scan can only be smaller.
            assert_eq!(never.crashed_at_request, tight.crashed_at_request);
            assert!(
                tight.scan_pages <= never.scan_pages,
                "{}: checkpointing bounds the scan ({} vs {})",
                tight.scheme,
                tight.scan_pages,
                never.scan_pages
            );
        }
        // Boot characterization is off in this experiment, so known blocks
        // after recovery prove the seal records carried QSTR-MED's gathered
        // state across the power loss.
        let qstr = rows.iter().find(|r| r.scheme.starts_with("QstrMed")).unwrap();
        assert!(qstr.known_blocks_after > 0, "seal records restore gathered summaries");
    }

    #[test]
    fn retry_sensitivity_grows_with_wear() {
        let rows = retry_sensitivity(5);
        let fresh = rows[0];
        let worn = *rows.last().unwrap();
        assert!(worn.2 > fresh.2, "read latency should grow: {fresh:?} -> {worn:?}");
        assert!(worn.3 > 0.0, "worn pages should retry");
    }
}
