//! Plain-text tables and CSV emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&self.header.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a microsecond value the way the paper prints them (thousands
/// separators, two decimals): `13,084.17`.
#[must_use]
pub fn us(v: f64) -> String {
    let negative = v < 0.0;
    let v_abs = v.abs();
    let whole = v_abs.trunc() as u64;
    let frac = ((v_abs - whole as f64) * 100.0).round() as u64;
    // Rounding can carry into the integer part.
    let (whole, frac) = if frac == 100 { (whole + 1, 0) } else { (whole, frac) };
    let mut digits = whole.to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let rest = digits.split_off(digits.len() - 3);
        grouped = if grouped.is_empty() { rest } else { format!("{rest},{grouped}") };
    }
    grouped = if grouped.is_empty() { digits } else { format!("{digits},{grouped}") };
    format!("{}{grouped}.{frac:02}", if negative { "-" } else { "" })
}

/// Formats a percentage with two decimals: `16.61%`.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["Method", "LTN"]);
        t.row(["Random", "13,084.17"]);
        t.row(["QSTR-MED(4)", "10,911.53"]);
        let s = t.render();
        assert!(s.contains("Method"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(["a"]);
        t.row(["1,5"]);
        assert_eq!(t.to_csv(), "a\n\"1,5\"\n");
    }

    #[test]
    fn us_formats_like_the_paper() {
        assert_eq!(us(13084.17), "13,084.17");
        assert_eq!(us(41.71), "41.71");
        assert_eq!(us(639290.1), "639,290.10");
        assert_eq!(us(0.0), "0.00");
        assert_eq!(us(999.999), "1,000.00");
        assert_eq!(us(-12.5), "-12.50");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(16.608), "16.61%");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }
}
