//! # repro-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation. Each `run_*` function returns typed rows; the `repro` binary
//! renders them as text tables and CSV files under `results/`.
//!
//! The paper's platform has 24 chips measured as groups of four pools
//! (§VI-A); we mirror that by averaging several independently seeded 4-pool
//! groups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use runner::{ExperimentParams, PoolCache, SchemeKind, SchemeStats};
