//! Memoized characterization results shared across experiments.
//!
//! Characterizing a group's pools — one [`BlockPool`] per `(group_seed,
//! pe)` — dominates the wall-clock of every table in the evaluation, and
//! the old harness recomputed it per scheme: Table I's nine schemes each
//! re-characterized the same six groups at the same six P/E points. A
//! [`PoolCache`] computes each pool exactly once, behind an `Arc` so every
//! consumer shares the same immutable characterization pass.

use flash_model::{FlashArray, FlashConfig};
use pvcheck::{BlockPool, Characterizer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One memoization cell: filled at most once, shared by reference.
type PoolCell = Arc<OnceLock<Arc<BlockPool>>>;

/// Lazily memoizes [`BlockPool`]s keyed by `(group_seed, pe)`.
///
/// Thread-safe and exactly-once: concurrent requests for the same key block
/// on one `OnceLock` cell, so a pool is characterized a single time no
/// matter how many worker threads race for it. The map lock is only held
/// while locating the cell, never while characterizing, so builds of
/// *different* keys proceed in parallel.
///
/// The cache is tied to one [`FlashConfig`]; experiments that vary the
/// configuration (the ablations) use a fresh cache per variant.
#[derive(Debug)]
pub struct PoolCache {
    config: FlashConfig,
    cells: Mutex<HashMap<(u64, u32), PoolCell>>,
    builds: AtomicUsize,
}

impl PoolCache {
    /// An empty cache for the given flash configuration.
    #[must_use]
    pub fn new(config: FlashConfig) -> Self {
        PoolCache { config, cells: Mutex::new(HashMap::new()), builds: AtomicUsize::new(0) }
    }

    /// The configuration this cache characterizes under.
    #[must_use]
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// The characterized pools of group `group_seed` at P/E cycle `pe`,
    /// building them on first request.
    ///
    /// # Panics
    ///
    /// Panics if the cell map lock was poisoned by a panicking builder.
    #[must_use]
    pub fn pool(&self, group_seed: u64, pe: u32) -> Arc<BlockPool> {
        let cell = {
            let mut cells = self.cells.lock().expect("pool cache lock poisoned");
            Arc::clone(cells.entry((group_seed, pe)).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            let array = FlashArray::new(self.config.clone(), group_seed);
            let chr = Characterizer::new(&self.config);
            Arc::new(chr.snapshot(array.latency_model(), pe))
        }))
    }

    /// How many pools have been characterized (i.e. cache misses) so far.
    #[must_use]
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of distinct `(group_seed, pe)` keys requested so far.
    ///
    /// # Panics
    ///
    /// Panics if the cell map lock was poisoned by a panicking builder.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.lock().expect("pool cache lock poisoned").len()
    }

    /// Whether no pool has been requested yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> PoolCache {
        PoolCache::new(FlashConfig::builder().blocks_per_plane(8).pwl_layers(4).build())
    }

    #[test]
    fn same_key_builds_once_and_shares_the_pool() {
        let cache = small_cache();
        let a = cache.pool(3, 0);
        let b = cache.pool(3, 0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_pools() {
        let cache = small_cache();
        let by_seed = (cache.pool(0, 0), cache.pool(1, 0));
        let by_pe = cache.pool(0, 1500);
        assert_eq!(cache.builds(), 3);
        assert_ne!(by_seed.0, by_seed.1);
        assert_ne!(*by_seed.0, *by_pe);
    }

    #[test]
    fn concurrent_requests_for_one_key_build_exactly_once() {
        let cache = small_cache();
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        let _ = cache.pool(7, 600);
                    }
                });
            }
        });
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_pool_matches_a_fresh_characterization() {
        let cache = small_cache();
        let cached = cache.pool(5, 300);
        let array = FlashArray::new(cache.config().clone(), 5);
        let fresh = Characterizer::new(cache.config()).snapshot(array.latency_model(), 300);
        assert_eq!(*cached, fresh);
    }
}
