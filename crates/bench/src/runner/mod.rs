//! Shared experiment machinery: scheme dispatch, group averaging and the
//! extra-latency statistics every table reports.
//!
//! Characterization is the expensive part, so it lives behind a
//! [`PoolCache`]: every `_with` entry point takes a cache and the plain
//! variants are convenience wrappers that build a private one. A whole
//! Table-I-shaped run — nine schemes over the same groups and P/E points —
//! then characterizes each `(group_seed, pe)` pool exactly once.

mod cache;

pub use cache::PoolCache;

use flash_model::{FlashArray, FlashConfig};
use pvcheck::assembly::{
    Assembler, LatencySortAssembly, OptimalAssembly, QstrMed, RandomAssembly, RankAssembly,
    RankStrategy, SequentialAssembly, SortKey,
};
use pvcheck::{BlockPool, Characterizer, ExtraLatency, Superblock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Which organization scheme to run (CLI-friendly dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Random baseline.
    Random,
    /// Same block offset on every chip.
    Sequential,
    /// Sort pools by erase latency and zip.
    ErsLatency,
    /// Sort pools by program-latency sum and zip.
    PgmLatency,
    /// Windowed brute force on the real objective.
    Optimal(usize),
    /// Windowed LWL-rank distance.
    LwlRank(usize),
    /// Windowed PWL-rank distance.
    PwlRank(usize),
    /// Windowed STR-rank distance.
    StrRank(usize),
    /// Windowed STR-median (1-bit) distance.
    StrMed(usize),
    /// The practical on-demand scheme.
    QstrMed(usize),
}

impl SchemeKind {
    /// Builds the assembler for this scheme. Random uses `seed`.
    #[must_use]
    pub fn assembler(self, seed: u64) -> Box<dyn Assembler> {
        match self {
            SchemeKind::Random => Box::new(RandomAssembly::new(seed)),
            SchemeKind::Sequential => Box::new(SequentialAssembly::new()),
            SchemeKind::ErsLatency => Box::new(LatencySortAssembly::new(SortKey::Erase)),
            SchemeKind::PgmLatency => Box::new(LatencySortAssembly::new(SortKey::Program)),
            SchemeKind::Optimal(w) => Box::new(OptimalAssembly::new(w)),
            SchemeKind::LwlRank(w) => Box::new(RankAssembly::new(RankStrategy::Lwl, w)),
            SchemeKind::PwlRank(w) => Box::new(RankAssembly::new(RankStrategy::Pwl, w)),
            SchemeKind::StrRank(w) => Box::new(RankAssembly::new(RankStrategy::Str, w)),
            SchemeKind::StrMed(w) => Box::new(RankAssembly::new(RankStrategy::StrMedian, w)),
            SchemeKind::QstrMed(c) => Box::new(QstrMed::with_candidates(c)),
        }
    }

    /// Paper-style display name.
    #[must_use]
    pub fn name(self) -> String {
        self.assembler(0).name()
    }

    /// The full roster of Table I directions (plus QSTR-MED).
    #[must_use]
    pub fn table1_roster() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Sequential,
            SchemeKind::ErsLatency,
            SchemeKind::PgmLatency,
            SchemeKind::Optimal(8),
            SchemeKind::LwlRank(8),
            SchemeKind::PwlRank(8),
            SchemeKind::StrRank(8),
            SchemeKind::StrMed(4),
        ]
    }
}

/// Aggregate extra-latency statistics of one scheme over one or more runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeStats {
    /// Scheme display name.
    pub name: String,
    /// Mean extra program latency per superblock, µs.
    pub extra_pgm_us: f64,
    /// Mean extra erase latency per superblock, µs.
    pub extra_ers_us: f64,
    /// Superblocks measured.
    pub superblocks: usize,
}

impl SchemeStats {
    /// Reduction of this scheme's extra program latency vs. a baseline, µs.
    #[must_use]
    pub fn pgm_reduction_us(&self, baseline: &SchemeStats) -> f64 {
        baseline.extra_pgm_us - self.extra_pgm_us
    }

    /// Improvement percentage vs. a baseline (the paper's "Imp. %").
    #[must_use]
    pub fn pgm_improvement_pct(&self, baseline: &SchemeStats) -> f64 {
        if baseline.extra_pgm_us == 0.0 {
            return 0.0;
        }
        self.pgm_reduction_us(baseline) / baseline.extra_pgm_us * 100.0
    }

    /// Improvement percentage of extra erase latency vs. a baseline.
    #[must_use]
    pub fn ers_improvement_pct(&self, baseline: &SchemeStats) -> f64 {
        if baseline.extra_ers_us == 0.0 {
            return 0.0;
        }
        (baseline.extra_ers_us - self.extra_ers_us) / baseline.extra_ers_us * 100.0
    }
}

/// Parameters shared by the batch experiments.
#[derive(Debug, Clone)]
pub struct ExperimentParams {
    /// Flash configuration per group (geometry + variation).
    pub config: FlashConfig,
    /// One seed per independent 4-pool group (the paper's 24 chips = 6
    /// groups).
    pub group_seeds: Vec<u64>,
    /// P/E points to measure at (the paper uses 0..3000).
    pub pe_points: Vec<u32>,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            config: FlashConfig::paper_platform(),
            group_seeds: (0..6).collect(),
            pe_points: (0..=3000).step_by(600).collect(),
        }
    }
}

impl ExperimentParams {
    /// A fast variant for smoke tests: one small group, one P/E point.
    #[must_use]
    pub fn quick() -> Self {
        let config = FlashConfig::builder().blocks_per_plane(96).pwl_layers(24).build();
        ExperimentParams { config, group_seeds: vec![0], pe_points: vec![0] }
    }

    /// Characterized pools of every group at the given P/E point.
    ///
    /// Uncached — every call re-characterizes. Batch experiments go through
    /// [`ExperimentParams::cache`] instead.
    #[must_use]
    pub fn pools_at(&self, pe: u32) -> Vec<BlockPool> {
        let chr = Characterizer::new(&self.config);
        self.group_seeds
            .iter()
            .map(|&seed| {
                let array = FlashArray::new(self.config.clone(), seed);
                chr.snapshot(array.latency_model(), pe)
            })
            .collect()
    }

    /// A fresh [`PoolCache`] for this configuration, to be shared by every
    /// experiment run against these parameters.
    #[must_use]
    pub fn cache(&self) -> PoolCache {
        PoolCache::new(self.config.clone())
    }
}

/// Mean extra latencies of a set of superblocks against their pool.
///
/// # Panics
///
/// Panics if a superblock references unknown blocks (an internal error in
/// the harness).
#[must_use]
pub fn measure(pool: &BlockPool, sbs: &[Superblock], name: &str) -> SchemeStats {
    let mut pgm = 0.0;
    let mut ers = 0.0;
    for sb in sbs {
        let e = ExtraLatency::of_superblock(pool, sb).expect("harness superblocks are valid");
        pgm += e.program_us;
        ers += e.erase_us;
    }
    let n = sbs.len().max(1) as f64;
    SchemeStats {
        name: name.to_string(),
        extra_pgm_us: pgm / n,
        extra_ers_us: ers / n,
        superblocks: sbs.len(),
    }
}

/// Per-superblock extra latencies (for distribution figures).
#[must_use]
pub fn measure_each(pool: &BlockPool, sbs: &[Superblock]) -> Vec<ExtraLatency> {
    sbs.iter()
        .map(|sb| ExtraLatency::of_superblock(pool, sb).expect("harness superblocks are valid"))
        .collect()
}

/// One work item of a batch run: scheme `kind` on group `gi` at P/E `pe`.
#[derive(Debug, Clone, Copy)]
struct Cell {
    kind_idx: usize,
    pe: u32,
    gi: usize,
}

/// The per-cell contribution to a scheme's averages: superblock-weighted
/// extra latencies plus the superblock count, exactly the three terms the
/// sequential accumulation adds per `(group, pe)`.
#[derive(Debug, Clone, Copy, Default)]
struct CellResult {
    pgm_weighted: f64,
    ers_weighted: f64,
    superblocks: usize,
}

/// Assembles and measures one cell. Factored out so the sequential path and
/// the work queue produce bit-identical per-cell numbers by construction.
fn run_cell(
    params: &ExperimentParams,
    cache: &PoolCache,
    kind: SchemeKind,
    cell: Cell,
) -> CellResult {
    let pool = cache.pool(params.group_seeds[cell.gi], cell.pe);
    let mut asm = kind.assembler(params.group_seeds[cell.gi] ^ u64::from(cell.pe));
    let sbs = asm.assemble(&pool);
    let stats = measure(&pool, &sbs, &asm.name());
    CellResult {
        pgm_weighted: stats.extra_pgm_us * stats.superblocks as f64,
        ers_weighted: stats.extra_ers_us * stats.superblocks as f64,
        superblocks: stats.superblocks,
    }
}

/// Reduces a scheme's cell results in the canonical order (P/E-major, then
/// group) — the exact float-summation order of the sequential path, so
/// parallel execution cannot perturb the result.
fn reduce_cells(kind: SchemeKind, results: &[CellResult]) -> SchemeStats {
    let mut total_pgm = 0.0;
    let mut total_ers = 0.0;
    let mut total_n = 0usize;
    for r in results {
        total_pgm += r.pgm_weighted;
        total_ers += r.ers_weighted;
        total_n += r.superblocks;
    }
    let n = total_n.max(1) as f64;
    SchemeStats {
        name: kind.name(),
        extra_pgm_us: total_pgm / n,
        extra_ers_us: total_ers / n,
        superblocks: total_n,
    }
}

/// Runs one scheme over many groups and P/E points, averaging everything,
/// reusing `cache` for characterization.
#[must_use]
pub fn run_scheme_with(
    params: &ExperimentParams,
    cache: &PoolCache,
    kind: SchemeKind,
) -> SchemeStats {
    let mut results = Vec::with_capacity(params.pe_points.len() * params.group_seeds.len());
    for &pe in &params.pe_points {
        for gi in 0..params.group_seeds.len() {
            results.push(run_cell(params, cache, kind, Cell { kind_idx: 0, pe, gi }));
        }
    }
    reduce_cells(kind, &results)
}

/// Runs one scheme with a private, throwaway cache.
///
/// Batch callers share one cache via [`run_scheme_with`] instead.
#[must_use]
pub fn run_scheme(params: &ExperimentParams, kind: SchemeKind) -> SchemeStats {
    run_scheme_with(params, &params.cache(), kind)
}

/// Runs several schemes in parallel over a shared characterization cache.
///
/// The unit of parallelism is one `(scheme, pe, group)` cell, drained from
/// a shared work queue, so the load balances across cells of very uneven
/// cost (Optimal windows vs. a random zip) instead of serializing behind
/// the slowest scheme as the old thread-per-scheme split did. Each scheme's
/// cells are then reduced in the canonical sequential order, which keeps
/// the returned [`SchemeStats`] bit-identical to [`run_scheme`].
#[must_use]
pub fn run_schemes_parallel_with(
    params: &ExperimentParams,
    cache: &PoolCache,
    kinds: &[SchemeKind],
) -> Vec<SchemeStats> {
    let mut cells =
        Vec::with_capacity(kinds.len() * params.pe_points.len() * params.group_seeds.len());
    for (kind_idx, _) in kinds.iter().enumerate() {
        for &pe in &params.pe_points {
            for gi in 0..params.group_seeds.len() {
                cells.push(Cell { kind_idx, pe, gi });
            }
        }
    }
    let results: Vec<OnceLock<CellResult>> = (0..cells.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(cells.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&cell) = cells.get(idx) else { break };
                let out = run_cell(params, cache, kinds[cell.kind_idx], cell);
                results[idx].set(out).expect("each cell is claimed by one worker");
            });
        }
    });
    let per_scheme = params.pe_points.len() * params.group_seeds.len();
    kinds
        .iter()
        .enumerate()
        .map(|(kind_idx, &kind)| {
            let slice: Vec<CellResult> = results
                [kind_idx * per_scheme..(kind_idx + 1) * per_scheme]
                .iter()
                .map(|r| *r.get().expect("all cells were drained"))
                .collect();
            reduce_cells(kind, &slice)
        })
        .collect()
}

/// Runs several schemes in parallel with a private, throwaway cache.
#[must_use]
pub fn run_schemes_parallel(params: &ExperimentParams, kinds: &[SchemeKind]) -> Vec<SchemeStats> {
    run_schemes_parallel_with(params, &params.cache(), kinds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_params_produce_pools() {
        let p = ExperimentParams::quick();
        let pools = p.pools_at(0);
        assert_eq!(pools.len(), 1);
        assert_eq!(pools[0].pool_count(), 4);
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(SchemeKind::StrRank(8).name(), "STR-RANK(8)");
        assert_eq!(SchemeKind::QstrMed(4).name(), "QSTR-MED(4)");
        assert_eq!(SchemeKind::ErsLatency.name(), "ERS-LTN");
    }

    #[test]
    fn run_scheme_is_deterministic() {
        let p = ExperimentParams::quick();
        let a = run_scheme(&p, SchemeKind::Sequential);
        let b = run_scheme(&p, SchemeKind::Sequential);
        assert_eq!(a, b);
    }

    #[test]
    fn improvement_math() {
        let base = SchemeStats {
            name: "base".into(),
            extra_pgm_us: 100.0,
            extra_ers_us: 40.0,
            superblocks: 1,
        };
        let s = SchemeStats {
            name: "s".into(),
            extra_pgm_us: 80.0,
            extra_ers_us: 30.0,
            superblocks: 1,
        };
        assert!((s.pgm_improvement_pct(&base) - 20.0).abs() < 1e-12);
        assert!((s.ers_improvement_pct(&base) - 25.0).abs() < 1e-12);
        assert!((s.pgm_reduction_us(&base) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn qstr_beats_random_in_quick_run() {
        let p = ExperimentParams::quick();
        let rnd = run_scheme(&p, SchemeKind::Random);
        let q = run_scheme(&p, SchemeKind::QstrMed(4));
        assert!(q.extra_pgm_us < rnd.extra_pgm_us);
    }
}
