//! Assembly cost per scheme: how long each direction takes to organize a
//! whole pool of characterized blocks (the practicality axis of Table I).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flash_model::{CellType, FlashArray, FlashConfig, Geometry};
use pvcheck::assembly::{
    Assembler, LatencySortAssembly, OptimalAssembly, QstrMed, RandomAssembly, RankAssembly,
    RankStrategy, SequentialAssembly, SortKey,
};
use pvcheck::{BlockPool, Characterizer, SpeedClass};

fn pool() -> BlockPool {
    let config = FlashConfig {
        geometry: Geometry::new(4, 1, 100, 96, 4, CellType::Tlc),
        variation: flash_model::VariationConfig::default(),
    };
    let array = FlashArray::new(config.clone(), 1);
    Characterizer::new(&config).snapshot(array.latency_model(), 0)
}

type AssemblerFactory = Box<dyn Fn() -> Box<dyn Assembler>>;

fn bench_assembly(c: &mut Criterion) {
    let pool = pool();
    let mut group = c.benchmark_group("assemble_400_blocks");
    group.sample_size(10);
    let schemes: Vec<(&str, AssemblerFactory)> = vec![
        ("random", Box::new(|| Box::new(RandomAssembly::new(1)))),
        ("sequential", Box::new(|| Box::new(SequentialAssembly::new()))),
        ("pgm_sort", Box::new(|| Box::new(LatencySortAssembly::new(SortKey::Program)))),
        ("optimal_w4", Box::new(|| Box::new(OptimalAssembly::new(4)))),
        ("str_rank_w4", Box::new(|| Box::new(RankAssembly::new(RankStrategy::Str, 4)))),
        ("str_med_w4", Box::new(|| Box::new(RankAssembly::new(RankStrategy::StrMedian, 4)))),
        ("lwl_rank_w4", Box::new(|| Box::new(RankAssembly::new(RankStrategy::Lwl, 4)))),
        ("qstr_med_c4", Box::new(|| Box::new(QstrMed::with_candidates(4)))),
    ];
    for (name, make) in schemes {
        group.bench_function(name, |b| {
            b.iter_batched(&make, |mut asm| asm.assemble(&pool), BatchSize::SmallInput)
        });
    }
    group.finish();
}

/// A QSTR-MED instance pre-loaded with every block summary of `pool` — the
/// steady FTL state the on-demand path starts from.
fn loaded_qstr(pool: &BlockPool, candidates: usize) -> QstrMed {
    let mut qstr = QstrMed::with_candidates(candidates);
    let strings = pool.strings();
    for p in 0..pool.pool_count() {
        for block in pool.pool(p) {
            qstr.insert(p, block.summary(strings));
        }
    }
    qstr
}

/// The FTL hot path in isolation: one `assemble_on_demand` call against a
/// full pool set (fast and slow requests, plus draining the whole state).
fn bench_on_demand(c: &mut Criterion) {
    let pool = pool();
    let mut group = c.benchmark_group("qstr_on_demand");
    group.sample_size(20);
    let loaded = loaded_qstr(&pool, 4);
    group.bench_function("fast_one", |b| {
        b.iter_batched(
            || loaded.clone(),
            |mut q| q.assemble_on_demand(SpeedClass::Fast).expect("pools are full"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("slow_one", |b| {
        b.iter_batched(
            || loaded.clone(),
            |mut q| q.assemble_on_demand(SpeedClass::Slow).expect("pools are full"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("drain_all", |b| {
        b.iter_batched(
            || loaded.clone(),
            |mut q| {
                let mut n = 0usize;
                while q.assemble_on_demand(SpeedClass::Fast).is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_assembly, bench_on_demand);
criterion_main!(benches);
