//! Assembly cost per scheme: how long each direction takes to organize a
//! whole pool of characterized blocks (the practicality axis of Table I).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flash_model::{CellType, FlashArray, FlashConfig, Geometry};
use pvcheck::assembly::{
    Assembler, LatencySortAssembly, OptimalAssembly, QstrMed, RandomAssembly, RankAssembly,
    RankStrategy, SequentialAssembly, SortKey,
};
use pvcheck::{BlockPool, Characterizer};

fn pool() -> BlockPool {
    let config = FlashConfig {
        geometry: Geometry::new(4, 1, 100, 96, 4, CellType::Tlc),
        variation: flash_model::VariationConfig::default(),
    };
    let array = FlashArray::new(config.clone(), 1);
    Characterizer::new(&config).snapshot(array.latency_model(), 0)
}

type AssemblerFactory = Box<dyn Fn() -> Box<dyn Assembler>>;

fn bench_assembly(c: &mut Criterion) {
    let pool = pool();
    let mut group = c.benchmark_group("assemble_400_blocks");
    group.sample_size(10);
    let schemes: Vec<(&str, AssemblerFactory)> = vec![
        ("random", Box::new(|| Box::new(RandomAssembly::new(1)))),
        ("sequential", Box::new(|| Box::new(SequentialAssembly::new()))),
        ("pgm_sort", Box::new(|| Box::new(LatencySortAssembly::new(SortKey::Program)))),
        ("optimal_w4", Box::new(|| Box::new(OptimalAssembly::new(4)))),
        ("str_rank_w4", Box::new(|| Box::new(RankAssembly::new(RankStrategy::Str, 4)))),
        ("str_med_w4", Box::new(|| Box::new(RankAssembly::new(RankStrategy::StrMedian, 4)))),
        ("lwl_rank_w4", Box::new(|| Box::new(RankAssembly::new(RankStrategy::Lwl, 4)))),
        ("qstr_med_c4", Box::new(|| Box::new(QstrMed::with_candidates(4)))),
    ];
    for (name, make) in schemes {
        group.bench_function(name, |b| {
            b.iter_batched(&make, |mut asm| asm.assemble(&pool), BatchSize::SmallInput)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
