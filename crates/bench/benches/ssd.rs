//! End-to-end device throughput per organization scheme.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftl::{FtlConfig, OrganizationScheme, Ssd, Workload};

fn bench_ssd(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssd_10k_writes");
    group.sample_size(10);
    for (name, scheme) in [
        ("random", OrganizationScheme::Random),
        ("sequential", OrganizationScheme::Sequential),
        ("qstr_med", OrganizationScheme::QstrMed { candidates: 4 }),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut config = FtlConfig::small_test();
                    config.scheme = scheme;
                    let ssd = Ssd::new(config, 5).expect("valid config");
                    let reqs = Workload::hot_cold_80_20().generate(&ssd.geometry_info(), 10_000, 9);
                    (ssd, reqs)
                },
                |(mut ssd, reqs)| {
                    ssd.run(&reqs).expect("workload fits");
                    ssd.stats().busy_us
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssd);
criterion_main!(benches);
