//! Micro-benchmarks of the event core's scheduler primitives: calendar
//! queue push/pop, the sorted-ring depth tracker, and arena alloc/free.
//!
//! These isolate the structures behind `perf_events` so a regression in
//! the batched engine's throughput can be attributed: is the queue, the
//! tracker or the arena slower, or is it the replay loop around them?

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ftl::sched::{Arena, CalendarQueue, DepthTracker};

/// Deterministic scatter of event times across a 10 ms span — wide enough
/// to exercise bucket rotation and at least one resize cycle.
fn scattered_times(n: u32) -> Vec<f64> {
    (0..n).map(|i| f64::from((i.wrapping_mul(7919)) % 10_000)).collect()
}

/// Near-sorted completion times the way a replay produces them: a
/// monotone base clock plus a small per-chip service jitter.
fn near_sorted_times(n: u32) -> Vec<f64> {
    (0..n).map(|i| f64::from(i) * 2.5 + f64::from(i.wrapping_mul(2654435761) % 97)).collect()
}

fn bench_events(c: &mut Criterion) {
    let scattered = scattered_times(4096);
    let near_sorted = near_sorted_times(4096);

    c.bench_function("calendar_push_pop_4096_scattered", |b| {
        b.iter(|| {
            let mut q = CalendarQueue::new();
            for (i, &t) in scattered.iter().enumerate() {
                q.push(black_box(t), i as u32);
            }
            let mut acc = 0.0;
            while let Some(ev) = q.pop_min() {
                acc += ev.time;
            }
            acc
        })
    });

    c.bench_function("calendar_arrive_probe_4096", |b| {
        // The steady-state shape: a standing backlog probed by arrivals
        // that mostly retire nothing (min_cache fast path).
        let mut q = CalendarQueue::new();
        for (i, &t) in near_sorted.iter().enumerate() {
            q.complete_at(t + f64::from(i as u32));
        }
        b.iter(|| {
            let mut depth = 0usize;
            for i in 0..4096u32 {
                depth = depth.wrapping_add(q.arrive(black_box(f64::from(i) * 0.001)));
            }
            depth
        })
    });

    c.bench_function("depth_tracker_replay_4096", |b| {
        // One complete_at + one arrive per op, near-sorted input — the
        // exact access pattern of the batched device replay.
        b.iter(|| {
            let mut dt = DepthTracker::new();
            let mut depth = 0usize;
            for &t in &near_sorted {
                dt.complete_at(black_box(t + 50.0));
                depth = depth.wrapping_add(dt.arrive(black_box(t)));
            }
            depth
        })
    });

    c.bench_function("arena_alloc_free_churn_4096", |b| {
        // Bounded in-flight depth: 64 live records, LIFO slot reuse.
        b.iter(|| {
            let mut arena: Arena<[u64; 4]> = Arena::new();
            let mut live = [0u32; 64];
            for (slot, live_handle) in live.iter_mut().enumerate() {
                *live_handle = arena.alloc([slot as u64; 4]);
            }
            let mut acc = 0u64;
            for i in 0..4096u64 {
                let slot = (i % 64) as usize;
                acc = acc.wrapping_add(arena.free(live[slot])[0]);
                live[slot] = arena.alloc([i; 4]);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
