//! Computing-overhead comparison (§VI-B-2): wall-clock cost of organizing
//! ONE superblock with the full STR-MED window search vs. QSTR-MED's
//! reference matching — the measured counterpart of the 1,536-vs-12 check
//! counts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flash_model::{CellType, FlashArray, FlashConfig, Geometry};
use pvcheck::assembly::{Assembler, QstrMed, RankAssembly, RankStrategy, SpeedClass};
use pvcheck::{BlockPool, Characterizer};

fn pool() -> BlockPool {
    let config = FlashConfig {
        geometry: Geometry::new(4, 1, 32, 96, 4, CellType::Tlc),
        variation: flash_model::VariationConfig::default(),
    };
    let array = FlashArray::new(config.clone(), 2);
    Characterizer::new(&config).snapshot(array.latency_model(), 0)
}

fn bench_one_superblock(c: &mut Criterion) {
    let pool = pool();
    let mut group = c.benchmark_group("organize_one_superblock");

    group.bench_function("str_med_w4_full_search", |b| {
        // One round of the windowed search dominates; assembling the first
        // superblock measures the per-superblock decision cost.
        b.iter_batched(
            || RankAssembly::new(RankStrategy::StrMedian, 4),
            |mut asm| {
                let sbs = asm.assemble(&pool);
                sbs.into_iter().next()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("qstr_med_c4_reference_match", |b| {
        let strings = pool.strings();
        b.iter_batched(
            || {
                let mut q = QstrMed::with_candidates(4);
                for p in 0..pool.pool_count() {
                    for blk in pool.pool(p) {
                        q.insert(p, blk.summary(strings));
                    }
                }
                q
            },
            |mut q| q.assemble_on_demand(SpeedClass::Fast),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_one_superblock);
criterion_main!(benches);
