//! GC victim-scan cost: dense per-block counters vs the naive scan.
//!
//! Greedy victim selection asks "how many valid pages does each candidate
//! hold?" once per candidate. The dense mapping answers from a per-block
//! counter; the naive `HashMap` store walks every mapped page per query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flash_model::{CellType, Geometry, PageType};
use ftl::Mapping;

/// Maps one LSB page per word-line of every block (a half-full device).
fn populated(geo: &Geometry, naive: bool) -> Mapping {
    let mut m = if naive {
        Mapping::new_naive(geo.total_pages())
    } else {
        Mapping::new(geo.total_pages(), geo)
    };
    let mut lpn = 0u64;
    for block in geo.blocks() {
        for lwl in geo.lwls() {
            m.map(lpn, block.wl(lwl).page(PageType::Lsb));
            lpn += 1;
        }
    }
    m
}

fn bench_victim_scan(c: &mut Criterion) {
    let geo = Geometry::new(4, 1, 48, 24, 4, CellType::Tlc);
    let blocks: Vec<_> = geo.blocks().collect();
    let mut group = c.benchmark_group("gc_victim_scan");
    group.sample_size(10);
    for (name, naive) in [("dense", false), ("naive", true)] {
        let m = populated(&geo, naive);
        group.bench_function(name, |b| {
            b.iter(|| {
                // What one Greedy victim selection does: count valid pages
                // in every candidate block and take the minimum.
                black_box(blocks.iter().map(|&blk| m.valid_in_block_count(blk)).min())
            })
        });
    }
    group.finish();
}

fn bench_relocation_list(c: &mut Criterion) {
    let geo = Geometry::new(4, 1, 48, 24, 4, CellType::Tlc);
    let victim = geo.blocks().next().expect("geometry has blocks");
    let mut group = c.benchmark_group("gc_relocation_list");
    group.sample_size(10);
    for (name, naive) in [("dense", false), ("naive", true)] {
        let m = populated(&geo, naive);
        let mut buf: Vec<(u64, flash_model::PageAddr)> = Vec::new();
        group.bench_function(name, |b| {
            b.iter(|| {
                // What relocating one victim member does: collect its valid
                // pages (in program order) into the reusable scratch buffer.
                buf.clear();
                buf.extend(m.valid_in_block(victim));
                black_box(buf.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_victim_scan, bench_relocation_list);
criterion_main!(benches);
