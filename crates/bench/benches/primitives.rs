//! Micro-benchmarks of the hot primitives: eigen XOR distance, rankings,
//! gathering and latency synthesis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flash_model::{BlockAddr, BlockId, ChipId, FlashConfig, LwlId, PlaneId};
use pvcheck::gather::BlockGatherer;
use pvcheck::{rank, EigenSequence};

fn latencies_384() -> Vec<f64> {
    (0..384).map(|i| 1700.0 + f64::from((i * 37) % 11) * 18.4).collect()
}

fn bench_primitives(c: &mut Criterion) {
    let t = latencies_384();

    c.bench_function("eigen_distance_384b", |b| {
        let a: EigenSequence = (0..384).map(|i| i % 3 == 0).collect();
        let d: EigenSequence = (0..384).map(|i| i % 5 == 0).collect();
        b.iter(|| black_box(&a).distance(black_box(&d)))
    });

    c.bench_function("str_median_eigen_384wl", |b| {
        b.iter(|| rank::str_median_eigen(black_box(&t), 4))
    });

    c.bench_function("lwl_ranks_384wl", |b| b.iter(|| rank::lwl_ranks(black_box(&t))));

    c.bench_function("str_ranks_384wl", |b| b.iter(|| rank::str_ranks(black_box(&t), 4)));

    c.bench_function("gather_full_block_384wl", |b| {
        let addr = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0));
        b.iter(|| {
            let mut g = BlockGatherer::new(addr, 4, 96);
            for (i, &lat) in t.iter().enumerate() {
                g.record(i as u32, lat).unwrap();
            }
            g.finish().unwrap()
        })
    });

    c.bench_function("synthesize_tprog", |b| {
        let config = FlashConfig::paper_platform();
        let model = flash_model::LatencyModel::new(config.geometry, config.variation, 1);
        let wl = BlockAddr::new(ChipId(1), PlaneId(0), BlockId(500)).wl(LwlId(100));
        b.iter(|| model.program_latency_us(black_box(wl), 0))
    });

    c.bench_function("extra_latency_4x384", |b| {
        let vs: Vec<Vec<f64>> =
            (0..4).map(|k| t.iter().map(|x| x + f64::from(k) * 3.0).collect()).collect();
        let refs: Vec<&[f64]> = vs.iter().map(|v| v.as_slice()).collect();
        let tbers = [3500.0, 3510.0, 3490.0, 3505.0];
        b.iter(|| pvcheck::ExtraLatency::of_vectors(black_box(&refs), black_box(&tbers)).unwrap())
    });
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
