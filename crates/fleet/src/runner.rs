//! Parallel fleet replay with deterministic canonical-order reduction.

use crate::workload::FleetWorkload;
use ftl::{FtlConfig, LatencyHistogram, QosClass, Ssd};
use host::{Arbitration, HostFrontend, TenantSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Salt separating per-device construction seeds from the workload hashes.
const DEVICE_SEED_SALT: u64 = 0x4445_5649_4345_5f53; // "DEVICE_S"

/// One fleet run: N identical devices, a sharded workload, and a worker
/// pool size. Every device replays through the host frontend with three
/// QoS tenants (latency-critical, standard, background) under the given
/// arbitration, on the engine/GC configuration of `device_config`.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-device FTL configuration (shared by every shard — a
    /// homogeneous fleet).
    pub device_config: FtlConfig,
    /// The sharded multi-user workload.
    pub workload: FleetWorkload,
    /// Seed of the whole fleet: shard hashes, user streams and per-device
    /// construction seeds all derive from it.
    pub fleet_seed: u64,
    /// Frontend arbitration policy on every device.
    pub arbitration: Arbitration,
    /// Worker threads claiming devices from the work queue; `0` means one
    /// per available core. Never affects results, only wall-clock.
    pub workers: usize,
}

/// Per-device outcome, reduced in device-id order into a [`FleetReport`].
#[derive(Debug)]
pub struct DeviceReport {
    /// Device (shard) id.
    pub device: usize,
    /// Commands completed by the frontend (reads + writes + trims).
    pub completed: u64,
    /// End-to-end latency of every sampled command on this device: the
    /// three tenants' write and read histograms folded in tenant order.
    pub latency: LatencyHistogram,
    /// Device p99 over those samples, µs.
    pub p99_us: f64,
    /// Arrivals that hit a full submission queue.
    pub backpressured: u64,
    /// Foreground collection time charged to commands, µs.
    pub gc_stall_us: f64,
    /// Foreground GC slices the device ran.
    pub gc_slices: u64,
    /// Completion time of the device's last command, µs.
    pub makespan_us: f64,
}

/// Fleet-level aggregates over every device, bit-identical for any worker
/// count (per-device replays are independent and the reduction is
/// canonical-order).
#[derive(Debug)]
pub struct FleetReport {
    /// Per-device reports, in device-id order.
    pub devices: Vec<DeviceReport>,
    /// Every device's sampled command latencies folded into one
    /// population ([`LatencyHistogram::fold`], device-id order).
    pub latency: LatencyHistogram,
    /// Fleet p99 across all commands, µs.
    pub p99_us: f64,
    /// Fleet p999 across all commands, µs — the tail the sweeps compare.
    pub p999_us: f64,
    /// Fleet p9999 across all commands, µs. Nearest-rank: meaningful only
    /// once the merged population holds tens of thousands of samples.
    pub p9999_us: f64,
    /// Worst command latency anywhere in the fleet, µs.
    pub max_us: f64,
    /// Largest per-device p99, µs (the unluckiest shard).
    pub max_device_p99_us: f64,
    /// Median per-device p99, µs (the typical shard).
    pub median_device_p99_us: f64,
    /// Commands completed across the fleet.
    pub total_commands: u64,
}

impl FleetReport {
    /// Device skew: the unluckiest shard's p99 over the median shard's — 1
    /// when the fleet is perfectly even, and the number placement quality
    /// moves at fleet scale.
    #[must_use]
    pub fn device_skew(&self) -> f64 {
        if self.median_device_p99_us <= 0.0 {
            return 0.0;
        }
        self.max_device_p99_us / self.median_device_p99_us
    }
}

/// Per-device outcome of a fleet soak: the workload replay followed by a
/// full sweep reading back every live logical page. The sweep itself runs
/// with the device's integrity machinery live, so a page the soak aged past
/// the ECC limit is caught (counted in `sweep_uncorrectable`) and refreshed
/// in the read path rather than silently lost.
#[derive(Debug)]
pub struct SoakDeviceReport {
    /// Device (shard) id.
    pub device: usize,
    /// Commands completed by the frontend during the aging run.
    pub completed: u64,
    /// Logical pages mapped when the run finished.
    pub live_lpns: u64,
    /// Live pages whose read-back returned no data — the silent-data-loss
    /// invariant requires this to be zero.
    pub unreadable_lpns: u64,
    /// Reads that crossed the uncorrectable limit during the final sweep
    /// (each one was refreshed in-path; patrol exists to make this zero).
    pub sweep_uncorrectable: u64,
    /// In-path refresh relocations triggered by the final sweep. The
    /// invariant pairs this with `sweep_uncorrectable`: every
    /// uncorrectable read must have produced exactly one refresh.
    pub sweep_refreshes: u64,
    /// Uncorrectable reads during the workload itself (before the sweep).
    pub run_uncorrectable: u64,
    /// Pages the background scrubber refreshed proactively.
    pub patrol_refreshes: u64,
    /// Pages the background scrubber examined.
    pub patrol_scanned_pages: u64,
    /// Complete patrol passes over the sealed population.
    pub patrol_passes: u64,
    /// Stripe rebuilds that reproduced the lost payload (parity on).
    pub rebuilds_ok: u64,
    /// Stripe rebuilds that could not — double failures inside one super
    /// word-line. True data loss; the no-silent-loss invariant requires
    /// this to be zero.
    pub rebuilds_failed: u64,
    /// Parity pages the scrubber verified against their stripe XOR.
    pub parity_verified: u64,
    /// Stripes whose parity no longer matched (degraded protection).
    pub parity_mismatch: u64,
}

/// Fleet-level soak outcome: per-device reports in device-id order plus
/// the aggregate invariant verdict.
#[derive(Debug)]
pub struct SoakReport {
    /// Per-device soak reports, in device-id order.
    pub devices: Vec<SoakDeviceReport>,
    /// Live pages across the fleet.
    pub live_lpns: u64,
    /// Unreadable live pages across the fleet (zero when no data was lost).
    pub unreadable_lpns: u64,
    /// Sweep-time uncorrectable reads across the fleet.
    pub sweep_uncorrectable: u64,
    /// Patrol refreshes across the fleet.
    pub patrol_refreshes: u64,
    /// Complete patrol passes across the fleet.
    pub patrol_passes: u64,
    /// Successful stripe rebuilds across the fleet (parity on).
    pub rebuilds_ok: u64,
    /// Failed stripe rebuilds across the fleet — double failures. Nonzero
    /// fails [`SoakReport::no_data_loss`].
    pub rebuilds_failed: u64,
    /// Parity stripes verified by patrol across the fleet.
    pub parity_verified: u64,
}

impl SoakReport {
    /// The no-silent-data-loss invariant: every live logical page on every
    /// device read back successfully, every read that crossed the
    /// uncorrectable limit was refreshed on the spot, and — with parity on
    /// — no stripe rebuild ever failed (a failed rebuild is a double
    /// failure inside one super word-line: true data loss, and it must
    /// fail the soak rather than hide behind the reactive refresh).
    #[must_use]
    pub fn no_data_loss(&self) -> bool {
        self.unreadable_lpns == 0
            && self.rebuilds_failed == 0
            && self.devices.iter().all(|d| d.sweep_refreshes == d.sweep_uncorrectable)
    }
}

/// The three-tenant QoS roster every fleet device serves — the same mix
/// the single-device `repro tenants` sweep uses.
fn fleet_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lc", QosClass::LatencyCritical).weight(4).queue_depth(8),
        TenantSpec::new("std", QosClass::Standard).weight(2).queue_depth(16),
        TenantSpec::new("bg", QosClass::Background).weight(1).queue_depth(32),
    ]
}

/// Replays one device: seed and stream are pure functions of
/// `(fleet_seed, device)`, so the report is too.
fn run_device(config: &FleetConfig, device: usize) -> ftl::Result<DeviceReport> {
    let seed = (config.fleet_seed ^ DEVICE_SEED_SALT)
        .wrapping_add((device as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let ssd = Ssd::new(config.device_config.clone(), seed)?;
    let info = ssd.geometry_info();
    let stream = config.workload.device_stream(config.fleet_seed, device, info.logical_pages);
    let mut front = HostFrontend::new(ssd, fleet_tenants(), config.arbitration);
    front.submit_traced_batched(&stream);
    front.run()?;
    let all = front.all_stats();
    let parts: Vec<&LatencyHistogram> =
        all.iter().flat_map(|t| [&t.write_latency, &t.read_latency]).collect();
    let latency = LatencyHistogram::fold(parts);
    let completed = all.iter().map(|t| t.completed).sum();
    let backpressured = all.iter().map(|t| t.backpressured).sum();
    let dev = front.device().stats();
    Ok(DeviceReport {
        device,
        completed,
        p99_us: latency.quantile_us(0.99),
        backpressured,
        gc_stall_us: dev.gc_stall_us,
        gc_slices: dev.gc_slices,
        makespan_us: dev.makespan_us,
        latency,
    })
}

/// Soaks one device: replays its shard through the frontend on the
/// integrity-enabled configuration, then consumes the frontend and sweeps
/// every live logical page, reading each back through the full ECC/aging
/// path.
fn soak_device(config: &FleetConfig, device: usize) -> ftl::Result<SoakDeviceReport> {
    let seed = (config.fleet_seed ^ DEVICE_SEED_SALT)
        .wrapping_add((device as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let ssd = Ssd::new(config.device_config.clone(), seed)?;
    let info = ssd.geometry_info();
    let stream = config.workload.device_stream(config.fleet_seed, device, info.logical_pages);
    let mut front = HostFrontend::new(ssd, fleet_tenants(), config.arbitration);
    front.submit_traced_batched(&stream);
    front.run()?;
    let completed = front.all_stats().iter().map(|t| t.completed).sum();
    let mut ssd = front.into_device();
    let run_uncorrectable = ssd.stats().uncorrectable_reads;
    let refreshes_before = ssd.stats().refresh_relocations;
    let mut live_lpns = 0u64;
    let mut unreadable_lpns = 0u64;
    for lpn in 0..info.logical_pages {
        if ssd.mapping().lookup(lpn).is_none() {
            continue;
        }
        live_lpns += 1;
        if ssd.read(lpn)?.is_none() {
            unreadable_lpns += 1;
        }
    }
    let stats = ssd.stats();
    Ok(SoakDeviceReport {
        device,
        completed,
        live_lpns,
        unreadable_lpns,
        sweep_uncorrectable: stats.uncorrectable_reads - run_uncorrectable,
        sweep_refreshes: stats.refresh_relocations - refreshes_before,
        run_uncorrectable,
        patrol_refreshes: stats.patrol_refreshes,
        patrol_scanned_pages: stats.patrol_scanned_pages,
        patrol_passes: stats.patrol_passes,
        rebuilds_ok: stats.rebuilds_ok,
        rebuilds_failed: stats.rebuilds_failed,
        parity_verified: stats.parity_verified,
        parity_mismatch: stats.parity_mismatch,
    })
}

/// Runs a fleet soak: every device replays its shard through the host
/// frontend on an accelerated-aging configuration, then every live logical
/// page is read back through the full error-model path. The report carries
/// the no-silent-data-loss verdict ([`SoakReport::no_data_loss`]): every
/// live page readable, every uncorrectable read refreshed on the spot.
///
/// `device_config` should enable integrity tracking with a nonzero
/// `retention_hours_per_us` — with aging off the sweep still verifies
/// readability, but no page can ever age toward the ECC limit, so the
/// soak degrades to a plain mapping-consistency check.
///
/// Same scheduling and determinism contract as [`run_fleet`]: workers
/// claim devices from a shared cursor, reduction is canonical-order, and
/// the report is bit-identical for any worker count.
///
/// # Errors
///
/// Propagates the first device error in device-id order.
pub fn run_fleet_soak(config: &FleetConfig) -> ftl::Result<SoakReport> {
    let n = config.workload.devices;
    let results: Vec<OnceLock<ftl::Result<SoakDeviceReport>>> =
        (0..n).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.workers
    }
    .min(n)
    .max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let report = soak_device(config, idx);
                results[idx].set(report).map_err(drop).expect("each device soaks exactly once");
            });
        }
    });
    let mut devices = Vec::with_capacity(n);
    for slot in results {
        devices.push(slot.into_inner().expect("scope joined every worker")?);
    }
    Ok(SoakReport {
        live_lpns: devices.iter().map(|d| d.live_lpns).sum(),
        unreadable_lpns: devices.iter().map(|d| d.unreadable_lpns).sum(),
        sweep_uncorrectable: devices.iter().map(|d| d.sweep_uncorrectable).sum(),
        patrol_refreshes: devices.iter().map(|d| d.patrol_refreshes).sum(),
        patrol_passes: devices.iter().map(|d| d.patrol_passes).sum(),
        rebuilds_ok: devices.iter().map(|d| d.rebuilds_ok).sum(),
        rebuilds_failed: devices.iter().map(|d| d.rebuilds_failed).sum(),
        parity_verified: devices.iter().map(|d| d.parity_verified).sum(),
        devices,
    })
}

/// Runs the whole fleet: workers claim device ids from a shared cursor
/// (so a slow shard never idles the pool), results land in per-device
/// slots, and the reduction walks the slots strictly in device-id order —
/// the PR 1 work-queue pattern, which makes the report bit-identical for
/// 1, 2 or any number of workers.
///
/// # Errors
///
/// Propagates the first device error in device-id order (every device
/// still runs; errors don't cancel the fleet).
pub fn run_fleet(config: &FleetConfig) -> ftl::Result<FleetReport> {
    let n = config.workload.devices;
    let results: Vec<OnceLock<ftl::Result<DeviceReport>>> =
        (0..n).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.workers
    }
    .min(n)
    .max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let report = run_device(config, idx);
                results[idx].set(report).map_err(drop).expect("each device runs exactly once");
            });
        }
    });
    // Canonical-order reduction: device 0 first, always.
    let mut devices = Vec::with_capacity(n);
    for slot in results {
        devices.push(slot.into_inner().expect("scope joined every worker")?);
    }
    let latency = LatencyHistogram::fold(devices.iter().map(|d| &d.latency));
    let mut device_p99s: Vec<f64> = devices.iter().map(|d| d.p99_us).collect();
    device_p99s.sort_by(f64::total_cmp);
    Ok(FleetReport {
        p99_us: latency.quantile_us(0.99),
        p999_us: latency.quantile_us(0.999),
        p9999_us: latency.quantile_us(0.9999),
        max_us: latency.max_us(),
        max_device_p99_us: device_p99s.last().copied().unwrap_or(0.0),
        median_device_p99_us: device_p99s[device_p99s.len() / 2],
        total_commands: devices.iter().map(|d| d.completed).sum(),
        devices,
        latency,
    })
}
