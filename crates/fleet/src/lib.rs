//! # fleet
//!
//! Fleet-scale simulation: shards a deterministic multi-user workload —
//! millions of logical users with Zipfian hot/cold footprints, burst
//! trains and diurnal arrival modulation — across N simulated SSDs, and
//! replays every device in parallel through the batched engine with the
//! host frontend, per-tenant QoS and sliced GC all active.
//!
//! Two determinism contracts, both asserted by tests:
//!
//! * **Sharding purity** — every user's op sequence is a pure function of
//!   `(fleet_seed, user_id)`, and a device's stream is the arrival-sorted
//!   merge of its users' sequences. The user→shard hash is seeded but
//!   independent of the op streams, so changing the device count only
//!   *moves* users between devices; it never changes what any user does.
//! * **Reduction determinism** — devices are claimed from a shared work
//!   queue (PR 1's pattern) but reduced strictly in device-id order, so
//!   fleet aggregates are bit-identical regardless of worker count.
//!
//! The fleet aggregates target *tail-of-tails* latency: p99/p999/p9999
//! over every command on every device (via [`LatencyHistogram::fold`]'s
//! k-way merge), plus per-device skew (max and median device p99).
//!
//! # Example
//!
//! ```
//! use fleet::{FleetConfig, FleetWorkload};
//! use host::Arbitration;
//!
//! let mut workload = FleetWorkload::new(500, 2);
//! workload.mean_ops_per_user = 4.0;
//! let config = FleetConfig {
//!     device_config: ftl::FtlConfig::small_test(),
//!     workload,
//!     fleet_seed: 7,
//!     arbitration: Arbitration::WeightedRoundRobin,
//!     workers: 2,
//! };
//! let report = fleet::run_fleet(&config).expect("fleet replay succeeds");
//! assert_eq!(report.devices.len(), 2);
//! assert!(report.total_commands > 0);
//! assert!(report.p999_us >= report.p99_us);
//! ```
//!
//! [`LatencyHistogram::fold`]: ftl::LatencyHistogram::fold

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runner;
mod workload;

pub use runner::{
    run_fleet, run_fleet_soak, DeviceReport, FleetConfig, FleetReport, SoakDeviceReport, SoakReport,
};
pub use workload::{FleetWorkload, UserOp};
