//! Deterministic multi-user workload generation and sharding.

use ftl::trace::TracedRequest;
use ftl::{IoOp, IoRequest};

/// Domain-separation salts for the independent splitmix64 streams: the
/// user→shard hash, each user's op stream, and each user's static traits
/// (QoS class, footprint base, op count) must not correlate.
const SHARD_SALT: u64 = 0x5348_4152_445f_5341; // "SHARD_SA"
const STREAM_SALT: u64 = 0x5354_5245_414d_5f53; // "STREAM_S"
const TRAIT_SALT: u64 = 0x5452_4149_545f_5341; // "TRAIT_SA"

/// One splitmix64 step — the same finalizer the FTL's seeded components
/// use, so a user stream is a cheap pure function of its seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One-shot hash of `(a, b, c)` through two splitmix rounds.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut state = a ^ b.rotate_left(24) ^ c.rotate_left(48);
    let x = splitmix64(&mut state);
    x ^ splitmix64(&mut state)
}

/// Uniform f64 in `[0, 1)` from the top 53 bits of a draw.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One operation of one user's stream, tagged with enough identity to
/// verify the sharding contract (the proptests reconstruct per-user
/// subsequences from device streams and compare them against
/// [`FleetWorkload::user_ops`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserOp {
    /// The issuing user.
    pub user: u64,
    /// Position within the user's own stream.
    pub seq: u32,
    /// Arrival time, µs.
    pub arrival_us: f64,
    /// Frontend tenant index (0 = latency-critical, 1 = standard,
    /// 2 = background) — a static per-user trait.
    pub tenant: u32,
    /// The request.
    pub request: IoRequest,
}

/// A deterministic fleet workload: `users` logical users hashed across
/// `devices` shards, each with a Zipfian hot/cold footprint, a heavy-tailed
/// op count, a configurable read mix, burst trains, and diurnal
/// arrival-rate modulation.
///
/// Every user's op sequence is a pure function of `(fleet_seed, user_id)`
/// and the generator parameters — never of `devices` — so re-sharding the
/// fleet only moves users between devices.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetWorkload {
    /// Number of logical users across the fleet.
    pub users: u64,
    /// Number of simulated devices (shards).
    pub devices: usize,
    /// Mean ops per user; actual counts are Pareto-distributed (α = 1.5)
    /// around this mean, so a small fraction of whales dominates volume.
    pub mean_ops_per_user: f64,
    /// Fraction of a user's ops that re-read pages it already wrote.
    pub read_fraction: f64,
    /// Zipf skew θ of accesses within a user's footprint (0 = uniform).
    pub zipf_theta: f64,
    /// Pages in each user's footprint (clamped to the logical space).
    pub footprint_pages: u64,
    /// Mean interarrival gap within a user's stream, µs.
    pub mean_gap_us: f64,
    /// Probability an op opens a burst train of tightly spaced ops.
    pub burst_prob: f64,
    /// Ops per burst train.
    pub burst_len: u32,
    /// Mean interarrival gap inside a burst, µs.
    pub burst_gap_us: f64,
    /// Diurnal modulation depth in `[0, 1)`: arrival intensity swings
    /// between `1 - amplitude` and `1 + amplitude` over a period.
    pub diurnal_amplitude: f64,
    /// Diurnal period, µs.
    pub diurnal_period_us: f64,
    /// User start times spread uniformly over this window, µs, so the
    /// fleet never sees a t = 0 stampede. Defaults to one diurnal period;
    /// populations whose per-user gap dwarfs the period should widen it
    /// to about one stream length (`mean_ops_per_user * mean_gap_us`),
    /// otherwise every user's *first* op lands inside the window and the
    /// opening burst saturates each device regardless of `mean_gap_us`.
    pub start_spread_us: f64,
}

impl FleetWorkload {
    /// A workload over `users` users and `devices` devices with the
    /// defaults the fleet sweeps use: 8 ops/user mean, 30% reads, YCSB-ish
    /// Zipf skew, 64-page footprints, bursty arrivals and a ±40% diurnal
    /// swing.
    ///
    /// # Panics
    ///
    /// Panics if `users` or `devices` is zero.
    #[must_use]
    pub fn new(users: u64, devices: usize) -> Self {
        assert!(users > 0, "fleet needs at least one user");
        assert!(devices > 0, "fleet needs at least one device");
        FleetWorkload {
            users,
            devices,
            mean_ops_per_user: 8.0,
            read_fraction: 0.3,
            zipf_theta: 0.99,
            footprint_pages: 64,
            mean_gap_us: 50_000.0,
            burst_prob: 0.1,
            burst_len: 8,
            burst_gap_us: 50.0,
            diurnal_amplitude: 0.4,
            diurnal_period_us: 2_000_000.0,
            start_spread_us: 2_000_000.0,
        }
    }

    /// The device a user's traffic lands on: a seeded hash, independent of
    /// the user's op stream.
    #[must_use]
    pub fn shard_of(&self, fleet_seed: u64, user: u64) -> usize {
        usize::try_from(mix3(fleet_seed, SHARD_SALT, user) % self.devices as u64)
            .expect("shard index fits usize")
    }

    /// Precomputed Zipf CDF over a footprint of `n` pages (rank 0 is the
    /// user's hottest page).
    fn zipf_cdf(&self, n: usize) -> Vec<f64> {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(self.zipf_theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        cdf
    }

    /// One user's complete op sequence — a pure function of
    /// `(fleet_seed, user)` plus the generator parameters. `logical_pages`
    /// is the per-device logical capacity the LPNs must fit (identical for
    /// every device of a homogeneous fleet).
    ///
    /// # Panics
    ///
    /// Panics if `logical_pages` is zero.
    #[must_use]
    pub fn user_ops(&self, fleet_seed: u64, user: u64, logical_pages: u64) -> Vec<UserOp> {
        let cdf = self.zipf_cdf(self.footprint(logical_pages));
        self.user_ops_with_cdf(fleet_seed, user, logical_pages, &cdf)
    }

    /// Footprint size clamped to the logical space.
    fn footprint(&self, logical_pages: u64) -> usize {
        assert!(logical_pages > 0, "device exports no logical pages");
        usize::try_from(self.footprint_pages.clamp(1, logical_pages)).expect("footprint fits usize")
    }

    /// [`FleetWorkload::user_ops`] with the Zipf CDF hoisted out, so a
    /// device-stream build pays the `O(footprint)` table once, not once
    /// per user.
    fn user_ops_with_cdf(
        &self,
        fleet_seed: u64,
        user: u64,
        logical_pages: u64,
        cdf: &[f64],
    ) -> Vec<UserOp> {
        // Static traits draw from their own stream so changing, say, the
        // op-count distribution never perturbs QoS assignment.
        let mut traits_rng = mix3(fleet_seed, TRAIT_SALT, user);
        let tenant = match splitmix64(&mut traits_rng) % 10 {
            0..=1 => 0, // 20% latency-critical
            2..=6 => 1, // 50% standard
            _ => 2,     // 30% background
        };
        let base = splitmix64(&mut traits_rng) % logical_pages;
        // Pareto(α = 1.5, xm = mean/3) has mean `3·xm = mean`; capped at
        // 64× the mean so one whale cannot absorb a whole device's run.
        let u = unit(&mut traits_rng).max(1e-12);
        let count_mean = self.mean_ops_per_user.max(1.0);
        let count =
            ((count_mean / 3.0) * u.powf(-1.0 / 1.5)).min(count_mean * 64.0).ceil().max(1.0) as u32;
        let start = unit(&mut traits_rng) * self.start_spread_us;

        let mut rng = mix3(fleet_seed, STREAM_SALT, user);
        let mut written = vec![false; cdf.len()];
        let mut wrote_any = false;
        let mut out = Vec::with_capacity(count as usize);
        let mut t = start;
        let mut burst_left = 0u32;
        for seq in 0..count {
            let zipf_draw = unit(&mut rng);
            let rank = cdf.partition_point(|&c| c < zipf_draw).min(cdf.len() - 1);
            let lpn = (base + rank as u64) % logical_pages;
            // Reads only touch pages this user already wrote — a cold
            // footprint page is written first.
            let wants_read = wrote_any && unit(&mut rng) < self.read_fraction;
            let op = if wants_read && written[rank] {
                IoOp::Read
            } else {
                written[rank] = true;
                wrote_any = true;
                IoOp::Write
            };
            out.push(UserOp { user, seq, arrival_us: t, tenant, request: IoRequest { op, lpn } });
            // Advance the clock: burst trains use the tight gap, and the
            // exponential draw is rescaled by the diurnal intensity at the
            // current instant (time-rescaled inhomogeneous Poisson).
            let gap_mean = if burst_left > 0 {
                burst_left -= 1;
                self.burst_gap_us
            } else if unit(&mut rng) < self.burst_prob {
                burst_left = self.burst_len;
                self.burst_gap_us
            } else {
                self.mean_gap_us
            };
            let phase = (t / self.diurnal_period_us) * std::f64::consts::TAU;
            let intensity = (1.0 + self.diurnal_amplitude * phase.sin()).max(1e-3);
            t += -gap_mean * (1.0 - unit(&mut rng)).ln().min(0.0) / intensity;
        }
        out
    }

    /// Every op of the users sharded to `device`, sorted by
    /// `(arrival, user, seq)` — the canonical per-device stream. The sort
    /// key is total (arrival ties break by user then sequence), so the
    /// stream is a pure function of `(fleet_seed, device)`.
    #[must_use]
    pub fn shard_ops(&self, fleet_seed: u64, device: usize, logical_pages: u64) -> Vec<UserOp> {
        let cdf = self.zipf_cdf(self.footprint(logical_pages));
        let mut out = Vec::new();
        for user in 0..self.users {
            if self.shard_of(fleet_seed, user) == device {
                out.extend(self.user_ops_with_cdf(fleet_seed, user, logical_pages, &cdf));
            }
        }
        out.sort_by(|a, b| {
            a.arrival_us.total_cmp(&b.arrival_us).then(a.user.cmp(&b.user)).then(a.seq.cmp(&b.seq))
        });
        out
    }

    /// The per-device stream in the host frontend's traced-submission
    /// shape: `(arrival_us, TracedRequest)` with the tenant index carrying
    /// the user's QoS class.
    #[must_use]
    pub fn device_stream(
        &self,
        fleet_seed: u64,
        device: usize,
        logical_pages: u64,
    ) -> Vec<(f64, TracedRequest)> {
        self.shard_ops(fleet_seed, device, logical_pages)
            .into_iter()
            .map(|op| (op.arrival_us, TracedRequest { tenant: op.tenant, request: op.request }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_ops_are_reproducible_and_device_independent() {
        let a = FleetWorkload::new(100, 4);
        let mut b = FleetWorkload::new(100, 7);
        b.devices = 7; // only the shard count differs
        for user in [0u64, 1, 57, 99] {
            let x = a.user_ops(42, user, 4096);
            let y = a.user_ops(42, user, 4096);
            let z = b.user_ops(42, user, 4096);
            assert_eq!(x, y, "user {user}: repeat generation drifted");
            assert_eq!(x, z, "user {user}: stream depends on device count");
            assert!(!x.is_empty());
            // Arrivals are strictly ordered within a user.
            for w in x.windows(2) {
                assert!(w[0].arrival_us <= w[1].arrival_us);
                assert_eq!(w[0].tenant, w[1].tenant, "QoS class is a static trait");
            }
            // First op must be a write (nothing readable yet).
            assert_eq!(x[0].request.op, IoOp::Write);
        }
    }

    #[test]
    fn shards_cover_all_users_and_balance_roughly() {
        let w = FleetWorkload::new(10_000, 8);
        let mut counts = [0u64; 8];
        for user in 0..w.users {
            counts[w.shard_of(9, user)] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 1250.0).abs() < 300.0,
                "device {d} got {c} users; hash is badly skewed"
            );
        }
    }

    #[test]
    fn device_stream_is_sorted_and_reproducible() {
        let w = FleetWorkload::new(300, 3);
        for device in 0..3 {
            let s1 = w.device_stream(5, device, 2048);
            let s2 = w.device_stream(5, device, 2048);
            assert_eq!(s1, s2, "device {device}: stream not reproducible");
            for pair in s1.windows(2) {
                assert!(pair[0].0 <= pair[1].0, "device {device}: arrivals unsorted");
            }
        }
        let total: usize = (0..3).map(|d| w.shard_ops(5, d, 2048).len()).sum();
        let direct: usize = (0..300).map(|u| w.user_ops(5, u, 2048).len()).sum();
        assert_eq!(total, direct, "sharding must not create or drop ops");
    }

    #[test]
    fn heavy_tail_produces_whales_but_respects_the_cap() {
        let w = FleetWorkload::new(2_000, 2);
        let counts: Vec<usize> = (0..w.users).map(|u| w.user_ops(3, u, 4096).len()).collect();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max as f64 > mean * 5.0, "tail too light: max {max}, mean {mean:.1}");
        assert!(max as f64 <= w.mean_ops_per_user * 64.0 + 1.0, "whale cap violated: {max}");
    }
}
