//! The fleet reduction's determinism contract: the report is bit-identical
//! for 1, 2, and many worker threads (oversubscribed well past the
//! machine's cores), with the full per-device sample vectors compared bit
//! for bit — not just the headline quantiles.

use fleet::{run_fleet, FleetConfig, FleetReport, FleetWorkload};
use ftl::{EngineMode, FtlConfig, GcBudget, QueueModel};
use host::Arbitration;

/// GC-active batched device — frontend QoS, sliced collection and per-chip
/// clocks all on, so the determinism claim covers the full stack.
fn device_config() -> FtlConfig {
    let mut config = FtlConfig::small_test();
    config.queue_model = QueueModel::PerChip;
    config.engine = EngineMode::Batched;
    config.idle_gc = true;
    config.gc_budget = GcBudget::Sliced { slice_us: 300.0 };
    config.overprovision = 0.45;
    config.gc_low_watermark = 3;
    config.gc_high_watermark = 5;
    config
}

fn fleet(workers: usize) -> FleetReport {
    // ~80k ops over 4 devices: each shard's ~14k writes overwrite its
    // 5k-page logical space nearly three times, so collection stays busy.
    let mut workload = FleetWorkload::new(10_000, 4);
    workload.mean_gap_us = 20_000.0;
    let config = FleetConfig {
        device_config: device_config(),
        workload,
        fleet_seed: 11,
        arbitration: Arbitration::WeightedRoundRobin,
        workers,
    };
    run_fleet(&config).expect("fleet replay succeeds")
}

#[test]
fn fleet_report_is_bit_identical_across_worker_counts() {
    let one = fleet(1);
    assert!(one.total_commands > 0, "workload must produce traffic");
    assert!(one.devices.iter().all(|d| d.completed > 0), "every shard must see traffic");
    assert!(one.p999_us >= one.p99_us && one.p9999_us >= one.p999_us);

    for workers in [2, 16] {
        let other = fleet(workers);
        assert_eq!(one.total_commands, other.total_commands, "{workers} workers: commands");
        assert_eq!(one.p99_us.to_bits(), other.p99_us.to_bits(), "{workers} workers: p99");
        assert_eq!(one.p999_us.to_bits(), other.p999_us.to_bits(), "{workers} workers: p999");
        assert_eq!(one.p9999_us.to_bits(), other.p9999_us.to_bits(), "{workers} workers: p9999");
        assert_eq!(one.max_us.to_bits(), other.max_us.to_bits(), "{workers} workers: max");
        assert_eq!(
            one.max_device_p99_us.to_bits(),
            other.max_device_p99_us.to_bits(),
            "{workers} workers: max device p99"
        );
        assert_eq!(
            one.median_device_p99_us.to_bits(),
            other.median_device_p99_us.to_bits(),
            "{workers} workers: median device p99"
        );
        for (a, b) in one.devices.iter().zip(&other.devices) {
            assert_eq!(a.device, b.device);
            assert_eq!(a.completed, b.completed, "device {}: completed", a.device);
            assert_eq!(a.backpressured, b.backpressured, "device {}: backpressure", a.device);
            assert_eq!(a.gc_slices, b.gc_slices, "device {}: gc_slices", a.device);
            assert_eq!(
                a.gc_stall_us.to_bits(),
                b.gc_stall_us.to_bits(),
                "device {}: gc_stall_us",
                a.device
            );
            assert_eq!(
                a.makespan_us.to_bits(),
                b.makespan_us.to_bits(),
                "device {}: makespan",
                a.device
            );
            let (sa, sb) = (a.latency.samples_us(), b.latency.samples_us());
            assert_eq!(sa.len(), sb.len(), "device {}: sample count", a.device);
            for (i, (x, y)) in sa.iter().zip(sb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "device {}: sample {i} drifted ({x} vs {y})",
                    a.device
                );
            }
        }
    }
}

#[test]
fn fleet_exercises_collection_and_the_device_skew_is_sane() {
    let report = fleet(2);
    assert!(
        report.devices.iter().any(|d| d.gc_slices > 0),
        "the fleet workload must keep sliced GC busy on at least one shard"
    );
    let skew = report.device_skew();
    assert!(skew >= 1.0, "skew is max/median, so it is at least 1 (got {skew})");
    assert!(report.max_device_p99_us >= report.median_device_p99_us);
}
