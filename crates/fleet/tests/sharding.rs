//! Property tests for the workload's sharding contract: re-sharding a
//! fleet (changing the device count) only moves users between devices —
//! it never changes any user's op sequence, and it never creates,
//! duplicates or drops an op.

use fleet::{FleetWorkload, UserOp};
use proptest::prelude::*;

const LOGICAL_PAGES: u64 = 2048;

fn workload(users: u64, devices: usize) -> FleetWorkload {
    let mut w = FleetWorkload::new(users, devices);
    // Small streams keep the property runs fast; every generator feature
    // (bursts, diurnal swing, read mix) stays on.
    w.mean_ops_per_user = 5.0;
    w
}

/// The per-user subsequence of every device stream of an N-device fleet,
/// keyed by user id.
fn per_user_subsequences(w: &FleetWorkload, seed: u64) -> Vec<(u64, Vec<UserOp>)> {
    let mut by_user: Vec<(u64, Vec<UserOp>)> = Vec::new();
    for device in 0..w.devices {
        for op in w.shard_ops(seed, device, LOGICAL_PAGES) {
            match by_user.iter_mut().find(|(u, _)| *u == op.user) {
                Some((_, ops)) => ops.push(op),
                None => by_user.push((op.user, vec![op])),
            }
        }
    }
    by_user.sort_by_key(|&(u, _)| u);
    by_user
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resharding_moves_users_without_changing_their_streams(
        users in 1u64..40,
        devices_a in 1usize..7,
        devices_b in 1usize..7,
        seed in any::<u64>(),
    ) {
        let a = workload(users, devices_a);
        let b = workload(users, devices_b);
        let subs_a = per_user_subsequences(&a, seed);
        let subs_b = per_user_subsequences(&b, seed);

        // Every user appears under both shardings with the same ops in the
        // same order — the device count only decides where they land.
        prop_assert_eq!(subs_a.len(), subs_b.len(), "a sharding lost or invented users");
        for ((ua, ops_a), (ub, ops_b)) in subs_a.iter().zip(&subs_b) {
            prop_assert_eq!(ua, ub);
            prop_assert_eq!(ops_a, ops_b, "user {} stream changed under re-sharding", ua);
        }

        // And each user's subsequence is exactly its directly generated
        // stream: a device stream is a pure merge, never a resample.
        for (user, ops) in &subs_a {
            let direct = a.user_ops(seed, *user, LOGICAL_PAGES);
            prop_assert_eq!(ops, &direct, "user {} merged stream != direct stream", user);
        }
    }

    #[test]
    fn every_user_lands_on_exactly_one_valid_device(
        users in 1u64..200,
        devices in 1usize..9,
        seed in any::<u64>(),
    ) {
        let w = workload(users, devices);
        for user in 0..users {
            let d = w.shard_of(seed, user);
            prop_assert!(d < devices, "user {} sharded to out-of-range device {}", user, d);
            // The hash is a function: repeated queries agree.
            prop_assert_eq!(d, w.shard_of(seed, user));
        }
    }
}
