//! Fleet soak: accelerated aging across every shard with the data-integrity
//! machinery live, ending in a full read-back sweep. The invariant under
//! test is the tentpole's no-silent-data-loss contract — every live logical
//! page is readable, and any read that crossed the uncorrectable limit was
//! refreshed on the spot — plus the usual worker-count determinism.

use fleet::{run_fleet_soak, FleetConfig, FleetWorkload, SoakReport};
use ftl::{
    EngineMode, FtlConfig, GcBudget, IntegrityConfig, PatrolConfig, PatrolOrder, QueueModel,
};
use host::Arbitration;

/// The determinism suite's GC-active batched device, with integrity
/// tracking, aggressive aging acceleration and the background scrubber on
/// top — the full stack the soak is meant to exercise.
fn aged_device_config() -> FtlConfig {
    let mut config = FtlConfig::small_test();
    config.queue_model = QueueModel::PerChip;
    config.engine = EngineMode::Batched;
    config.idle_gc = true;
    config.gc_budget = GcBudget::Sliced { slice_us: 300.0 };
    config.overprovision = 0.45;
    config.gc_low_watermark = 3;
    config.gc_high_watermark = 5;
    config.integrity = IntegrityConfig {
        track: true,
        retention_hours_per_us: 0.003,
        patrol: PatrolConfig::On {
            interval_us: 20_000.0,
            slice_us: 400.0,
            refresh_fraction: 0.5,
            order: PatrolOrder::SlowPoolFirst,
        },
    };
    config
}

fn soak(workers: usize) -> SoakReport {
    let mut workload = FleetWorkload::new(6_000, 3);
    workload.mean_gap_us = 20_000.0;
    let config = FleetConfig {
        device_config: aged_device_config(),
        workload,
        fleet_seed: 23,
        arbitration: Arbitration::WeightedRoundRobin,
        workers,
    };
    run_fleet_soak(&config).expect("fleet soak succeeds")
}

#[test]
fn soak_holds_the_no_data_loss_invariant() {
    let report = soak(2);
    assert!(report.devices.iter().all(|d| d.completed > 0), "every shard must see traffic");
    assert!(report.live_lpns > 0, "the soak must leave live data to sweep");
    assert_eq!(report.unreadable_lpns, 0, "a live page failed to read back");
    assert!(report.no_data_loss(), "uncorrectable reads must be refreshed in-path");
    assert!(
        report.devices.iter().all(|d| d.patrol_scanned_pages > 0),
        "idle gaps must give the scrubber time on every shard"
    );
    assert!(report.patrol_passes > 0, "at least one shard completes a patrol pass");
    assert!(
        report.patrol_refreshes > 0,
        "accelerated aging must push some pages past the refresh threshold"
    );
}

#[test]
fn soak_report_is_bit_identical_across_worker_counts() {
    let one = soak(1);
    for workers in [2, 8] {
        let other = soak(workers);
        assert_eq!(one.live_lpns, other.live_lpns, "{workers} workers: live pages");
        assert_eq!(one.sweep_uncorrectable, other.sweep_uncorrectable, "{workers} workers");
        assert_eq!(one.patrol_refreshes, other.patrol_refreshes, "{workers} workers");
        assert_eq!(one.patrol_passes, other.patrol_passes, "{workers} workers");
        for (a, b) in one.devices.iter().zip(&other.devices) {
            assert_eq!(a.device, b.device);
            assert_eq!(a.completed, b.completed, "device {}: completed", a.device);
            assert_eq!(a.live_lpns, b.live_lpns, "device {}: live pages", a.device);
            assert_eq!(
                a.run_uncorrectable, b.run_uncorrectable,
                "device {}: run uncorrectable",
                a.device
            );
            assert_eq!(
                a.sweep_uncorrectable, b.sweep_uncorrectable,
                "device {}: sweep uncorrectable",
                a.device
            );
            assert_eq!(
                a.patrol_scanned_pages, b.patrol_scanned_pages,
                "device {}: patrol scanned",
                a.device
            );
            assert_eq!(
                a.patrol_refreshes, b.patrol_refreshes,
                "device {}: patrol refreshes",
                a.device
            );
        }
    }
}
