//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand` 0.10 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng`], [`RngExt::random_range`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms and runs, which is all the
//! simulator requires (seeds are experiment parameters, not secrets).
//!
//! This is **not** a cryptographic RNG and makes no attempt to match the
//! stream of the real `rand::rngs::StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 (the same construction the real crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Deterministic, fast, passes BigCrush — a drop-in for the simulation
    /// and workload-synthesis seeds used here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is an absorbing fixed point of xoshiro; nudge.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            StdRng { s }
        }
    }
}

/// Uniform sampling from a range, dispatched by range type.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply range reduction (Lemire); the bias over
                // a 64-bit draw is < 2^-64 for every span used here.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods (the `rand` 0.10 `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Pre-0.10 spelling kept for source compatibility.
pub use RngExt as Rng;

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling of slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_reduction_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }
}
