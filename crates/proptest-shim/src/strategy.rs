//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking; a
/// strategy is just a deterministic sampler over the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A function-pointer strategy (backs `any::<T>()`).
#[derive(Debug, Clone)]
pub struct FnStrategy<T> {
    f: fn(&mut TestRng) -> T,
}

impl<T> FnStrategy<T> {
    /// Wraps a sampling function.
    #[must_use]
    pub fn new(f: fn(&mut TestRng) -> T) -> Self {
        FnStrategy { f }
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// A choice over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }

    /// Boxes one option (used by the `prop_oneof!` macro expansion).
    pub fn wrap<S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::for_test("ranges_and_maps_compose");
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_depends_on_outer() {
        let mut rng = TestRng::for_test("flat_map_depends_on_outer");
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_picks_every_option() {
        let mut rng = TestRng::for_test("oneof_picks_every_option");
        let s = crate::prop_oneof![Just(1u16), Just(2u16)];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_test("tuples_generate_componentwise");
        let s = (0u8..4, 10u32..20, 0.0f64..1.0);
        for _ in 0..50 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 4 && (10..20).contains(&b) && (0.0..1.0).contains(&c));
        }
    }
}
