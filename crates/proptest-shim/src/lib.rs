//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of the proptest API its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], `any::<bool/u64>()`, [`Just`],
//! `prop_oneof!`, a tiny `[class]{m,n}` regex string strategy, and the
//! `proptest!`/`prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the panic message only;
//! * **deterministic sampling** — each test's RNG is seeded from a hash of
//!   the test name, so runs are reproducible without `proptest-regressions`
//!   files (existing regression files are ignored);
//! * default case count is 64 (overridable via `ProptestConfig::with_cases`).
//!
//! [`Just`]: strategy::Just

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// String strategies (`impl Strategy for &str`) live directly on the
/// pattern; this module only hosts the generator helper.
pub mod string;

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Anything usable as the size parameter of [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.random_range(self.start..self.end)
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// A `Vec` strategy with the given element strategy and size (an exact
    /// `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Values with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy of `T` — uniform over the whole domain.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::FnStrategy::new($gen)
            }
        }
    )*};
}

impl_arbitrary_uniform! {
    bool => |rng| rand::RngCore::next_u64(rng) & 1 == 1,
    u8 => |rng| rand::RngCore::next_u64(rng) as u8,
    u16 => |rng| rand::RngCore::next_u64(rng) as u16,
    u32 => |rng| rand::RngCore::next_u64(rng) as u32,
    u64 => rand::RngCore::next_u64,
    usize => |rng| rand::RngCore::next_u64(rng) as usize,
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r),
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, $($fmt)*),
        }
    }};
}

/// Fails the current property case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r),
        }
    }};
}

/// Picks uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::OneOf::wrap($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property '{}' failed at case {}/{}: {}", stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
}
