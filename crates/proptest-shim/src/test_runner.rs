//! Test configuration, the per-test RNG and case failure reporting.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (what `prop_assert*` produce).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given reason.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Real-proptest spelling of [`TestCaseError::fail`].
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG driving strategy sampling.
///
/// Seeded from an FNV-1a hash of the test name, so every test sees its own
/// reproducible stream and reordering tests does not reshuffle inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
