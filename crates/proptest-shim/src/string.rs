//! A tiny regex-pattern string generator.
//!
//! Supports exactly the shape the workspace's tests use: one character
//! class with literal characters, `a-b` ranges and `\n`/`\t`/`\\` escapes,
//! followed by a `{min,max}` repetition — e.g. `"[ -~\n]{0,256}"`. Any
//! other pattern is rejected loudly rather than mis-generated.

use crate::test_runner::TestRng;
use rand::RngExt;

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics if the pattern is not of the supported `[class]{min,max}` form.
#[must_use]
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (alphabet, min, max) = parse(pattern)
        .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}: the offline proptest shim only handles \"[class]{{min,max}}\""));
    let len = if min >= max { min } else { rng.random_range(min..max + 1) };
    (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect()
}

fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rep) = rest.split_once(']')?;
    let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = rep.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let lo = match c {
            '\\' => unescape(chars.next()?)?,
            c => c,
        };
        if chars.peek() == Some(&'-') && {
            let mut look = chars.clone();
            look.next();
            look.peek().is_some()
        } {
            chars.next();
            let hi = match chars.next()? {
                '\\' => unescape(chars.next()?)?,
                c => c,
            };
            for x in lo as u32..=hi as u32 {
                alphabet.push(char::from_u32(x)?);
            }
        } else {
            alphabet.push(lo);
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

fn unescape(c: char) -> Option<char> {
    match c {
        'n' => Some('\n'),
        't' => Some('\t'),
        'r' => Some('\r'),
        '\\' => Some('\\'),
        '-' => Some('-'),
        ']' => Some(']'),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_class_generates_in_bounds() {
        let mut rng = TestRng::for_test("printable_class_generates_in_bounds");
        for _ in 0..200 {
            let s = generate_from_pattern("[ -~\n]{0,256}", &mut rng);
            assert!(s.len() <= 256);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn fixed_width_class() {
        let mut rng = TestRng::for_test("fixed_width_class");
        let s = generate_from_pattern("[ab]{4,4}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| c == 'a' || c == 'b'));
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn unsupported_pattern_rejected() {
        let mut rng = TestRng::for_test("unsupported_pattern_rejected");
        let _ = generate_from_pattern("abc+", &mut rng);
    }
}
