//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a timed harness with criterion's macro and builder surface:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`] and [`black_box`].
//!
//! Statistics are deliberately simple — warm-up, then timed samples, then
//! the mean/min per iteration printed as
//! `name                time: [min mean] per iter (N iters)`. There is no
//! HTML report, outlier analysis or regression detection; the numbers are
//! for relative comparisons on one machine (exactly how the repo's
//! `BENCH_*.json` artifacts use them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is amortized. The shim times every routine
/// call individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    target_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            target_time: Duration::from_millis(600),
        }
    }
}

/// The top-level harness handle, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Number of timed samples per benchmark (min 2).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.settings, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { name: name.to_string(), settings: self.settings, _parent: self }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Shortens warm-up and measurement for slow benchmarks.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.target_time = t;
        self
    }

    /// Runs one benchmark of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.settings, &mut f);
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, f: &mut F) {
    // Warm-up: run the routine until the warm-up budget elapses, and learn
    // how many iterations fit one sample.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < settings.warm_up {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let budget = settings.target_time.as_secs_f64() / settings.sample_size as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    let mut total_iters: u64 = 0;
    for _ in 0..settings.sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        total_iters += iters_per_sample;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<44} time: [{} {}] per iter ({total_iters} iters)",
        format_time(min),
        format_time(mean),
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times the routine under measurement.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a bench group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2);
        c.settings.warm_up = Duration::from_millis(1);
        c.settings.target_time = Duration::from_millis(2);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn batched_setup_excluded_from_timing() {
        let mut c = Criterion::default().sample_size(2);
        c.settings.warm_up = Duration::from_millis(1);
        c.settings.target_time = Duration::from_millis(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("b", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with('s'));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
