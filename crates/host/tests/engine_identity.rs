//! The batched frontend's oracle contract: with `engine = Batched` the
//! event-driven drain (calendar-queue arrivals, packed readiness mask,
//! arena-backed records, SoA sample fold) must reproduce the stepper
//! drain's dispatch order, per-tenant stats and device stats bit for bit —
//! under multi-tenant arbitration, bounded queues with backpressure, and
//! both queue models. `submit_traced_batched` must likewise build streams
//! identical to the legacy quadratic `submit_traced`.

use flash_model::FaultConfig;
use ftl::{
    poisson_arrivals, EngineMode, FtlConfig, GcBudget, IntegrityConfig, IoOp, IoRequest,
    ParityConfig, PatrolConfig, PatrolOrder, QosClass, QueueModel, Ssd, Workload,
};
use host::{Arbitration, HostFrontend, TenantSpec};

fn device(engine: EngineMode, model: QueueModel) -> Ssd {
    let mut config = FtlConfig::small_test();
    config.queue_model = model;
    config.engine = engine;
    Ssd::new(config, 3).unwrap()
}

fn specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("db", QosClass::LatencyCritical).weight(4),
        TenantSpec::new("app", QosClass::Standard).weight(2).queue_depth(6),
        TenantSpec::new("scrub", QosClass::Background).queue_depth(2),
    ]
}

/// Three tenants with different rates and mixes; the scrub tenant's tiny
/// queue plus fast arrivals guarantees backpressure.
fn streams(dev: &Ssd) -> Vec<Vec<(f64, IoRequest)>> {
    let info = dev.geometry_info();
    let mut out = Vec::new();
    for (tenant, mean_us) in [(0u64, 120.0), (1, 300.0), (2, 40.0)] {
        let n = (info.logical_pages / 2) as usize;
        let mut reqs = Workload::random_write(0.5).generate(&info, n, tenant);
        for (i, r) in reqs.iter_mut().enumerate() {
            match i % 5 {
                2 => r.op = IoOp::Read,
                4 if i % 10 == 4 => r.op = IoOp::Trim,
                _ => {}
            }
        }
        out.push(poisson_arrivals(&reqs, mean_us, tenant + 7));
    }
    out
}

fn run_frontend(engine: EngineMode, model: QueueModel, arb: Arbitration) -> HostFrontend {
    let dev = device(engine, model);
    let streams = streams(&dev);
    let mut front = HostFrontend::new(dev, specs(), arb);
    for (tenant, stream) in streams.iter().enumerate() {
        front.submit(tenant, stream);
    }
    front.run().unwrap();
    assert!(front.drained());
    front
}

fn assert_samples(a: &[f64], b: &[f64], what: &str, tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: {what} sample count drifted");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag}: {what} sample {i} drifted ({x} vs {y})");
    }
}

#[test]
fn batched_drain_matches_stepper_drain_bit_for_bit() {
    for model in [QueueModel::Single, QueueModel::PerChip] {
        for arb in [Arbitration::RoundRobin, Arbitration::WeightedRoundRobin] {
            let tag = format!("{model:?} {arb:?}");
            let stepper = run_frontend(EngineMode::Stepper, model, arb);
            let batched = run_frontend(EngineMode::Batched, model, arb);

            assert_eq!(
                stepper.dispatch_log(),
                batched.dispatch_log(),
                "{tag}: dispatch order diverged"
            );
            for tenant in 0..stepper.tenants() {
                let (s, b) = (stepper.tenant_stats(tenant), batched.tenant_stats(tenant));
                let tag = format!("{tag} tenant {}", s.name);
                assert_eq!(s.completed, b.completed, "{tag}: completed");
                assert_eq!(s.backpressured, b.backpressured, "{tag}: backpressured");
                assert_eq!(s.depth_high_water, b.depth_high_water, "{tag}: high water");
                assert_eq!(
                    s.queue_wait_us.to_bits(),
                    b.queue_wait_us.to_bits(),
                    "{tag}: queue_wait_us drifted"
                );
                assert_samples(
                    s.write_latency.samples_us(),
                    b.write_latency.samples_us(),
                    "write",
                    &tag,
                );
                assert_samples(
                    s.read_latency.samples_us(),
                    b.read_latency.samples_us(),
                    "read",
                    &tag,
                );
            }
            let (s, b) = (stepper.device().stats(), batched.device().stats());
            assert_eq!(s.host_writes, b.host_writes, "{tag}: host_writes");
            assert_eq!(s.host_writes_by_class, b.host_writes_by_class, "{tag}: by_class");
            assert_eq!(s.host_reads, b.host_reads, "{tag}: host_reads");
            assert_eq!(s.host_trims, b.host_trims, "{tag}: host_trims");
            assert_eq!(s.gc_runs, b.gc_runs, "{tag}: gc_runs");
            assert_eq!(s.gc_relocations, b.gc_relocations, "{tag}: gc_relocations");
            assert_eq!(s.queue_depth_max, b.queue_depth_max, "{tag}: queue_depth_max");
            assert_eq!(s.busy_us.to_bits(), b.busy_us.to_bits(), "{tag}: busy_us");
            assert_eq!(s.queue_wait_us.to_bits(), b.queue_wait_us.to_bits(), "{tag}: queue_wait");
            assert_eq!(s.trim_wait_us.to_bits(), b.trim_wait_us.to_bits(), "{tag}: trim_wait");
            assert_eq!(s.makespan_us.to_bits(), b.makespan_us.to_bits(), "{tag}: makespan");
            assert_samples(&s.chip_busy_us, &b.chip_busy_us, "chip_busy_us", &tag);
            assert_samples(s.write_latency.samples_us(), b.write_latency.samples_us(), "w", &tag);
            assert_samples(s.read_latency.samples_us(), b.read_latency.samples_us(), "r", &tag);
        }
    }
}

#[test]
fn batched_drain_matches_stepper_drain_with_sliced_gc() {
    // With a sliced budget the drains consult `gc_slice_pending()` and mask
    // readiness to latency-critical queues — the masking decision points
    // must line up dispatch for dispatch across engines.
    let run = |engine: EngineMode| {
        let mut config = FtlConfig::small_test();
        config.queue_model = QueueModel::PerChip;
        config.engine = engine;
        config.idle_gc = true;
        config.gc_budget = GcBudget::Sliced { slice_us: 300.0 };
        let dev = Ssd::new(config, 3).unwrap();
        let info = dev.geometry_info();
        let mut streams = Vec::new();
        for (tenant, mean_us) in [(0u64, 120.0), (1, 300.0), (2, 40.0)] {
            // Writes-per-tenant beyond capacity so collection stays busy.
            let n = info.logical_pages as usize;
            let reqs = Workload::random_write(0.4).generate(&info, n, tenant);
            streams.push(poisson_arrivals(&reqs, mean_us, tenant + 7));
        }
        let mut front = HostFrontend::new(dev, specs(), Arbitration::WeightedRoundRobin);
        for (tenant, stream) in streams.iter().enumerate() {
            front.submit(tenant, stream);
        }
        front.run().unwrap();
        assert!(front.drained());
        front
    };
    let stepper = run(EngineMode::Stepper);
    let batched = run(EngineMode::Batched);
    let (s, b) = (stepper.device().stats(), batched.device().stats());
    assert!(s.gc_slices > 0, "workload must exercise slices");
    assert_eq!(stepper.dispatch_log(), batched.dispatch_log(), "sliced: dispatch order diverged");
    assert_eq!(s.gc_slices, b.gc_slices, "sliced: gc_slices");
    assert_eq!(s.gc_yield_count, b.gc_yield_count, "sliced: gc_yield_count");
    assert_eq!(s.gc_runs, b.gc_runs, "sliced: gc_runs");
    assert_eq!(s.gc_relocations, b.gc_relocations, "sliced: gc_relocations");
    assert_eq!(s.gc_stall_us.to_bits(), b.gc_stall_us.to_bits(), "sliced: gc_stall_us");
    assert_eq!(s.busy_us.to_bits(), b.busy_us.to_bits(), "sliced: busy_us");
    assert_samples(s.gc_slice_us.samples_us(), b.gc_slice_us.samples_us(), "gc_slice", "sliced");
    assert_samples(s.gc_stall.samples_us(), b.gc_stall.samples_us(), "gc_stall", "sliced");
    assert_samples(s.write_latency.samples_us(), b.write_latency.samples_us(), "w", "sliced");
    for tenant in 0..stepper.tenants() {
        let (ts, tb) = (stepper.tenant_stats(tenant), batched.tenant_stats(tenant));
        let tag = format!("sliced tenant {}", ts.name);
        assert_eq!(ts.completed, tb.completed, "{tag}: completed");
        assert_samples(ts.write_latency.samples_us(), tb.write_latency.samples_us(), "w", &tag);
    }
}

#[test]
fn batched_drain_matches_stepper_drain_with_patrol_active() {
    // Full integrity stack under multi-tenant arbitration: the drains must
    // agree on every idle-gap patrol slice, every overdue-patrol ladder
    // payment (folded into gc_stall_us and the SLO ledgers), and every
    // reactive refresh — dispatch for dispatch, bit for bit.
    let run = |engine: EngineMode| {
        let mut config = FtlConfig::small_test();
        config.queue_model = QueueModel::PerChip;
        config.engine = engine;
        config.idle_gc = true;
        config.gc_budget = GcBudget::Sliced { slice_us: 300.0 };
        config.integrity = IntegrityConfig {
            track: true,
            retention_hours_per_us: 0.005,
            patrol: PatrolConfig::On {
                interval_us: 20_000.0,
                slice_us: 300.0,
                refresh_fraction: 0.5,
                order: PatrolOrder::SlowPoolFirst,
            },
        };
        let dev = Ssd::new(config, 3).unwrap();
        let info = dev.geometry_info();
        let mut streams = Vec::new();
        for (tenant, mean_us) in [(0u64, 120.0), (1, 300.0), (2, 40.0)] {
            let n = info.logical_pages as usize;
            let mut reqs = Workload::random_write(0.4).generate(&info, n, tenant);
            for (i, r) in reqs.iter_mut().enumerate() {
                if i % 5 == 2 {
                    r.op = IoOp::Read;
                }
            }
            streams.push(poisson_arrivals(&reqs, mean_us, tenant + 7));
        }
        let mut front = HostFrontend::new(dev, specs(), Arbitration::WeightedRoundRobin);
        for (tenant, stream) in streams.iter().enumerate() {
            front.submit(tenant, stream);
        }
        front.run().unwrap();
        assert!(front.drained());
        front
    };
    let stepper = run(EngineMode::Stepper);
    let batched = run(EngineMode::Batched);
    let (s, b) = (stepper.device().stats(), batched.device().stats());
    assert!(s.patrol_scanned_pages > 0, "patrol: the regime must scan");
    assert_eq!(stepper.dispatch_log(), batched.dispatch_log(), "patrol: dispatch order diverged");
    assert_eq!(s.patrol_scanned_pages, b.patrol_scanned_pages, "patrol: scanned");
    assert_eq!(s.patrol_refreshes, b.patrol_refreshes, "patrol: refreshes");
    assert_eq!(s.patrol_passes, b.patrol_passes, "patrol: passes");
    assert_eq!(s.uncorrectable_reads, b.uncorrectable_reads, "patrol: uncorrectable");
    assert_eq!(s.refresh_relocations, b.refresh_relocations, "patrol: refresh_relocations");
    assert_eq!(s.patrol_us.to_bits(), b.patrol_us.to_bits(), "patrol: patrol_us");
    assert_eq!(s.refresh_us.to_bits(), b.refresh_us.to_bits(), "patrol: refresh_us");
    assert_eq!(s.gc_stall_us.to_bits(), b.gc_stall_us.to_bits(), "patrol: gc_stall_us");
    assert_eq!(s.busy_us.to_bits(), b.busy_us.to_bits(), "patrol: busy_us");
    assert_samples(s.write_latency.samples_us(), b.write_latency.samples_us(), "w", "patrol");
    assert_samples(s.read_latency.samples_us(), b.read_latency.samples_us(), "r", "patrol");
    for tenant in 0..stepper.tenants() {
        let (ts, tb) = (stepper.tenant_stats(tenant), batched.tenant_stats(tenant));
        let tag = format!("patrol tenant {}", ts.name);
        assert_eq!(ts.completed, tb.completed, "{tag}: completed");
        assert_samples(ts.write_latency.samples_us(), tb.write_latency.samples_us(), "w", &tag);
        assert_samples(ts.read_latency.samples_us(), tb.read_latency.samples_us(), "r", &tag);
    }
}

#[test]
fn batched_drain_matches_stepper_drain_with_active_parity() {
    // Parity on + faulty media under multi-tenant arbitration: stripe
    // rebuilds fire mid-drain and their emergency-GC slices land in
    // gc_stall_us, which the SLO frontends charge per tenant — so the
    // engines must agree on every rebuild verdict and every stall bit.
    let run = |engine: EngineMode, parity: ParityConfig| {
        let mut config = FtlConfig::small_test();
        config.queue_model = QueueModel::PerChip;
        config.engine = engine;
        config.parity = parity;
        config.fault = FaultConfig {
            weak_block_prob: 0.15,
            weak_ber_multiplier: 150.0,
            page_type_ber_spread: 0.35,
            ..FaultConfig::default()
        };
        let dev = Ssd::new(config, 3).unwrap();
        let streams = streams(&dev);
        let mut front = HostFrontend::new(dev, specs(), Arbitration::WeightedRoundRobin);
        for (tenant, stream) in streams.iter().enumerate() {
            front.submit(tenant, stream);
        }
        front.run().unwrap();
        assert!(front.drained());
        front
    };
    let stepper = run(EngineMode::Stepper, ParityConfig::On);
    let batched = run(EngineMode::Batched, ParityConfig::On);
    let (s, b) = (stepper.device().stats(), batched.device().stats());
    assert!(s.uncorrectable_reads > 0, "parity: the media must produce uncorrectables");
    assert!(s.rebuild_reads > 0, "parity: rebuilds must fire");
    assert_eq!(stepper.dispatch_log(), batched.dispatch_log(), "parity: dispatch diverged");
    assert_eq!(s.uncorrectable_reads, b.uncorrectable_reads, "parity: uncorrectable");
    assert_eq!(s.rebuild_reads, b.rebuild_reads, "parity: rebuild_reads");
    assert_eq!(s.rebuilds_ok, b.rebuilds_ok, "parity: rebuilds_ok");
    assert_eq!(s.rebuilds_failed, b.rebuilds_failed, "parity: rebuilds_failed");
    assert_eq!(s.rebuild_us.to_bits(), b.rebuild_us.to_bits(), "parity: rebuild_us");
    assert_eq!(s.refresh_us.to_bits(), b.refresh_us.to_bits(), "parity: refresh_us");
    assert_eq!(s.gc_stall_us.to_bits(), b.gc_stall_us.to_bits(), "parity: gc_stall_us");
    assert_eq!(s.busy_us.to_bits(), b.busy_us.to_bits(), "parity: busy_us");
    assert_samples(s.write_latency.samples_us(), b.write_latency.samples_us(), "w", "parity");
    assert_samples(s.read_latency.samples_us(), b.read_latency.samples_us(), "r", "parity");
    for tenant in 0..stepper.tenants() {
        let (ts, tb) = (stepper.tenant_stats(tenant), batched.tenant_stats(tenant));
        let tag = format!("parity tenant {}", ts.name);
        assert_eq!(ts.completed, tb.completed, "{tag}: completed");
        assert_samples(ts.read_latency.samples_us(), tb.read_latency.samples_us(), "r", &tag);
    }
    // And the off switch is inert at this level too: an explicit
    // ParityConfig::Off frontend run (same faulty media) matches the
    // stepper/batched pair built from the default config's `Off`.
    let off_explicit = run(EngineMode::Stepper, ParityConfig::Off);
    let off_batched = run(EngineMode::Batched, ParityConfig::Off);
    let (s, b) = (off_explicit.device().stats(), off_batched.device().stats());
    assert_eq!(s.rebuild_reads, 0, "parity off: no stripe reads");
    assert_eq!(b.rebuild_reads, 0, "parity off: no stripe reads (batched)");
    assert_eq!(s.busy_us.to_bits(), b.busy_us.to_bits(), "parity off: busy_us");
    assert_eq!(
        off_explicit.dispatch_log(),
        off_batched.dispatch_log(),
        "parity off: dispatch diverged"
    );
}

#[test]
fn batched_traced_submission_builds_identical_streams() {
    // Interleave three tenants' requests in a deliberately shuffled order
    // with duplicate arrival times, then check both submission paths give
    // the same replay (stats + dispatch order pin the stream contents).
    let build = |batched: bool| {
        let dev = device(EngineMode::Stepper, QueueModel::Single);
        let info = dev.geometry_info();
        let mut traced = Vec::new();
        for i in 0..600u64 {
            let tenant = (i % 3) as u8;
            let lpn = (i * 17) % info.logical_pages;
            let line = format!("W,{lpn},1,{tenant}\n");
            let parsed = ftl::trace::parse_trace_tenants(line.as_bytes()).unwrap();
            // Coarse arrival grid: collisions across and within tenants.
            traced.push(((i % 50) as f64 * 100.0, parsed[0]));
        }
        let mut front = HostFrontend::new(dev, specs(), Arbitration::WeightedRoundRobin);
        if batched {
            front.submit_traced_batched(&traced);
        } else {
            front.submit_traced(&traced);
        }
        front.run().unwrap();
        (
            front.dispatch_log().to_vec(),
            front.tenant_stats(0).write_latency.samples_us().to_vec(),
            front.device().stats().busy_us.to_bits(),
        )
    };
    assert_eq!(build(false), build(true), "legacy and batched submission diverged");
}
