//! Property-based arbitration fairness tests.
//!
//! Two layers: the [`Arbiter`] alone (pure pick sequences over a
//! saturated ready mask) and the full [`HostFrontend`] event loop
//! (dispatch logs of saturated tenants), pinning the issue's contracts:
//! equal weights never let completed counts drift apart by more than the
//! queue depth, and WRR grants each queue exactly its weight within every
//! aligned round.

use ftl::{FtlConfig, IoRequest, QosClass, Ssd, Workload};
use host::{Arbiter, Arbitration, HostFrontend, TenantSpec};
use proptest::prelude::*;

fn saturated_streams(n: usize, per_tenant: usize) -> (Ssd, Vec<Vec<(f64, IoRequest)>>) {
    let ssd = Ssd::new(FtlConfig::small_test(), 13).unwrap();
    let info = ssd.geometry_info();
    let streams = (0..n)
        .map(|tenant| {
            Workload::random_write(0.5)
                .generate(&info, per_tenant, tenant as u64)
                .into_iter()
                .map(|r| (0.0, r))
                .collect()
        })
        .collect();
    (ssd, streams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rr_equal_share_never_drifts_by_more_than_one(n in 2usize..6, picks in 8usize..200) {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, vec![1u32; n]);
        let ready = vec![true; n];
        let mut counts = vec![0u64; n];
        for _ in 0..picks {
            counts[arb.pick(&ready).unwrap()] += 1;
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            prop_assert!(max - min <= 1, "saturated RR drifted: {counts:?}");
        }
    }

    #[test]
    fn wrr_grants_exactly_the_weights_each_round(
        weights in proptest::collection::vec(1u32..9, 2..5),
        rounds in 1usize..6,
    ) {
        let sum: u32 = weights.iter().sum();
        let mut arb = Arbiter::new(Arbitration::WeightedRoundRobin, weights.clone());
        let ready = vec![true; weights.len()];
        for round in 0..rounds {
            let mut counts = vec![0u32; weights.len()];
            for _ in 0..sum {
                counts[arb.pick(&ready).unwrap()] += 1;
            }
            // Credits drain from full to empty over exactly sum picks, so
            // every aligned round reproduces the weight vector.
            prop_assert_eq!(
                &counts, &weights,
                "round {} granted {:?} for weights {:?}", round, counts, weights
            );
        }
    }

    #[test]
    fn wrr_never_overgrants_within_a_round(
        weights in proptest::collection::vec(1u32..9, 2..5),
    ) {
        let sum: u32 = weights.iter().sum();
        let mut arb = Arbiter::new(Arbitration::WeightedRoundRobin, weights.clone());
        let ready = vec![true; weights.len()];
        let mut counts = vec![0u32; weights.len()];
        for _ in 0..sum {
            counts[arb.pick(&ready).unwrap()] += 1;
            for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
                prop_assert!(c <= w, "queue {i} overgranted: {c} of {w}");
            }
        }
    }
}

proptest! {
    // Frontend runs replay a real device; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn saturated_equal_tenants_stay_within_the_queue_depth(
        n in 2usize..4,
        depth in 1usize..6,
    ) {
        const PER_TENANT: usize = 60;
        let (ssd, streams) = saturated_streams(n, PER_TENANT);
        let specs = (0..n)
            .map(|i| TenantSpec::new(&format!("t{i}"), QosClass::Standard).queue_depth(depth))
            .collect();
        let mut front = HostFrontend::new(ssd, specs, Arbitration::RoundRobin);
        for (tenant, stream) in streams.iter().enumerate() {
            front.submit(tenant, stream);
        }
        front.run().unwrap();
        prop_assert!(front.drained());
        // While every queue still has work, round-robin over equally
        // weighted saturated tenants cannot let completion counts drift
        // apart by more than the queue depth.
        let mut counts = vec![0u64; n];
        for &k in front.dispatch_log() {
            counts[k] += 1;
            if counts.iter().all(|&c| c < PER_TENANT as u64) {
                let max = *counts.iter().max().unwrap();
                let min = *counts.iter().min().unwrap();
                prop_assert!(
                    max - min <= depth as u64,
                    "drift {} exceeds depth {}: {:?}", max - min, depth, counts
                );
            }
        }
        for tenant in 0..n {
            prop_assert_eq!(front.tenant_stats(tenant).completed, PER_TENANT as u64);
        }
    }

    #[test]
    fn saturated_wrr_tenants_complete_in_weight_ratio(
        w0 in 1u32..5,
        w1 in 1u32..5,
    ) {
        const PER_TENANT: usize = 60;
        let (ssd, streams) = saturated_streams(2, PER_TENANT);
        let specs = vec![
            TenantSpec::new("a", QosClass::Standard).weight(w0),
            TenantSpec::new("b", QosClass::Standard).weight(w1),
        ];
        let mut front = HostFrontend::new(ssd, specs, Arbitration::WeightedRoundRobin);
        for (tenant, stream) in streams.iter().enumerate() {
            front.submit(tenant, stream);
        }
        front.run().unwrap();
        // With both queues saturated (everything arrives at t=0 and
        // depths are unbounded), every aligned round of w0+w1 dispatches
        // grants each tenant exactly its weight — until one stream runs
        // out and work conservation hands the rest to the survivor.
        let sum = (w0 + w1) as usize;
        let log = front.dispatch_log();
        let mut seen = [0usize; 2];
        for chunk in log.chunks(sum) {
            let before = seen;
            for &k in chunk {
                seen[k] += 1;
            }
            let exhausted =
                before[0] + sum >= PER_TENANT || before[1] + sum >= PER_TENANT;
            if chunk.len() == sum && !exhausted {
                let granted0 = seen[0] - before[0];
                prop_assert_eq!(
                    granted0, w0 as usize,
                    "round granted {} to tenant 0, weight {}", granted0, w0
                );
            }
        }
        prop_assert_eq!(front.tenant_stats(0).completed, PER_TENANT as u64);
        prop_assert_eq!(front.tenant_stats(1).completed, PER_TENANT as u64);
    }
}
