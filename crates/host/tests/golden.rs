//! The frontend's determinism contract: a single tenant with unit weight
//! and an unbounded submission queue must be a structural no-op — the
//! device sees exactly the request stream `Ssd::run_timed` would feed it,
//! so every stat comes out bit-identical. Any reordered float, extra RNG
//! draw or changed dispatch decision in the frontend shows up here.
//!
//! The workload mirrors `crates/ftl/tests/timed_golden.rs` (which pins
//! `run_timed` itself against pre-engine golden bits), so this test
//! transitively pins the frontend to those goldens too.

use ftl::{poisson_arrivals, FtlConfig, IoOp, IoRequest, QosClass, QueueModel, Ssd, Workload};
use host::{Arbitration, HostFrontend, TenantSpec};

/// Mixed open-loop workload over the small-test device: 3x-capacity random
/// writes over half the LPNs with reads (hits and guaranteed misses) and
/// trims folded in, arriving Poisson at 800 µs mean.
fn workload(dev: &Ssd) -> Vec<(f64, IoRequest)> {
    let info = dev.geometry_info();
    let n = (info.logical_pages * 3) as usize;
    let mut reqs = Workload::random_write(0.5).generate(&info, n, 5);
    for (i, r) in reqs.iter_mut().enumerate() {
        match i % 7 {
            3 => r.op = IoOp::Read,
            5 => *r = IoRequest { op: IoOp::Read, lpn: info.logical_pages - 1 },
            6 if i % 14 == 6 => r.op = IoOp::Trim,
            _ => {}
        }
    }
    poisson_arrivals(&reqs, 800.0, 1)
}

fn device(idle_gc: bool, model: QueueModel) -> Ssd {
    let mut config = FtlConfig::small_test();
    config.idle_gc = idle_gc;
    config.queue_model = model;
    Ssd::new(config, 3).unwrap()
}

#[test]
fn single_tenant_frontend_is_bit_identical_to_run_timed() {
    for idle_gc in [false, true] {
        for model in [QueueModel::Single, QueueModel::PerChip] {
            let tag = format!("idle_gc={idle_gc} model={model:?}");

            let mut direct = device(idle_gc, model);
            let timed = workload(&direct);
            direct.run_timed(&timed).unwrap();

            let mut front = HostFrontend::new(
                device(idle_gc, model),
                vec![TenantSpec::new("only", QosClass::Standard)],
                Arbitration::WeightedRoundRobin,
            );
            front.submit(0, &timed);
            front.run().unwrap();
            assert!(front.drained(), "{tag}");
            assert!(front.dispatch_log().iter().all(|&k| k == 0), "{tag}");

            let (d, f) = (direct.stats(), front.device().stats());
            assert_eq!(d.host_writes, f.host_writes, "{tag} host_writes");
            assert_eq!(d.host_reads, f.host_reads, "{tag} host_reads");
            assert_eq!(d.host_trims, f.host_trims, "{tag} host_trims");
            assert_eq!(d.host_writes_by_class, f.host_writes_by_class, "{tag} by_class");
            assert_eq!(d.gc_runs, f.gc_runs, "{tag} gc_runs");
            assert_eq!(d.gc_relocations, f.gc_relocations, "{tag} gc_relocations");
            assert_eq!(d.superwl_programs, f.superwl_programs, "{tag} superwl_programs");
            assert_eq!(
                d.superblocks_assembled, f.superblocks_assembled,
                "{tag} superblocks_assembled"
            );
            assert_eq!(d.write_latency.len(), f.write_latency.len(), "{tag} write samples");
            assert_eq!(
                d.write_latency.mean_us().to_bits(),
                f.write_latency.mean_us().to_bits(),
                "{tag} write mean drifted"
            );
            assert_eq!(
                d.write_latency.quantile_us(0.99).to_bits(),
                f.write_latency.quantile_us(0.99).to_bits(),
                "{tag} write p99 drifted"
            );
            assert_eq!(
                d.write_latency.max_us().to_bits(),
                f.write_latency.max_us().to_bits(),
                "{tag} write max drifted"
            );
            assert_eq!(d.read_latency.len(), f.read_latency.len(), "{tag} read samples");
            assert_eq!(
                d.read_latency.mean_us().to_bits(),
                f.read_latency.mean_us().to_bits(),
                "{tag} read mean drifted"
            );
            assert_eq!(d.busy_us.to_bits(), f.busy_us.to_bits(), "{tag} busy_us drifted");
            assert_eq!(d.idle_gc_us.to_bits(), f.idle_gc_us.to_bits(), "{tag} idle_gc_us drifted");
            assert_eq!(d.makespan_us.to_bits(), f.makespan_us.to_bits(), "{tag} makespan drifted");
            assert_eq!(d.waf().to_bits(), f.waf().to_bits(), "{tag} WAF drifted");
            assert_eq!(
                d.extra_program_per_op_us().to_bits(),
                f.extra_program_per_op_us().to_bits(),
                "{tag} extra PGM drifted"
            );
            assert_eq!(d.trim_wait_us.to_bits(), f.trim_wait_us.to_bits(), "{tag} trim wait");
            assert_eq!(d.queue_wait_us.to_bits(), f.queue_wait_us.to_bits(), "{tag} queue wait");
            assert_eq!(d.queue_depth_max, f.queue_depth_max, "{tag} device queue depth");
            for (i, (a, b)) in d.chip_busy_us.iter().zip(&f.chip_busy_us).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{tag} chip_busy_us[{i}] drifted");
            }
            assert_eq!(d.chip_busy_us.len(), f.chip_busy_us.len(), "{tag} chip clock count");

            // The frontend's own per-tenant histogram must agree with the
            // device's: with submit == arrival the end-to-end write latency
            // is wait + service, exactly what the device records.
            let t = front.tenant_stats(0);
            assert_eq!(t.completed as usize, timed.len(), "{tag} tenant completions");
            assert_eq!(t.backpressured, 0, "{tag} unbounded queue never backpressures");
            assert_eq!(t.write_latency.len(), f.write_latency.len(), "{tag} tenant write samples");
            assert_eq!(
                t.write_latency.mean_us().to_bits(),
                f.write_latency.mean_us().to_bits(),
                "{tag} tenant write mean matches device"
            );
            assert_eq!(
                t.read_latency.mean_us().to_bits(),
                f.read_latency.mean_us().to_bits(),
                "{tag} tenant read mean matches device"
            );
        }
    }
}
