//! Per-tenant GC SLO contract.
//!
//! Three properties: a window debt budget actually caps the collection
//! work charged to the tenant inside any window (up to one slice overrun);
//! a zero budget suppresses every ladder slice for that tenant while a
//! practically-unbounded one is bit-identical to having no SLO at all; and
//! the SLO path must not split the batched engine from the stepper oracle
//! — same allowance decisions, same debt, same dispatch order.

use ftl::{
    poisson_arrivals, EngineMode, FtlConfig, GcBudget, IoRequest, QosClass, QueueModel, Ssd,
};
use host::{Arbitration, HostFrontend, TenantSpec};

const SLICE_US: f64 = 300.0;

fn gc_active_device(engine: EngineMode) -> Ssd {
    let mut config = FtlConfig::small_test();
    config.queue_model = QueueModel::PerChip;
    config.engine = engine;
    config.idle_gc = true;
    config.gc_budget = GcBudget::Sliced { slice_us: SLICE_US };
    // Wide spare pool and a watermark band well above the emergency floor
    // (`assemblable <= 1`), so collection pressure stays on the budgeted
    // ladder — the path the SLO governs — instead of unbudgeted emergency
    // reclaims that would blow through any window bound.
    config.overprovision = 0.45;
    config.gc_low_watermark = 3;
    config.gc_high_watermark = 5;
    Ssd::new(config, 3).unwrap()
}

/// Overwrite-heavy three-tenant load: each stream writes the whole logical
/// space once, so collection stays busy for the back half of the run.
fn streams(dev: &Ssd) -> Vec<Vec<(f64, IoRequest)>> {
    let info = dev.geometry_info();
    let mut out = Vec::new();
    for (tenant, mean_us) in [(0u64, 120.0), (1, 300.0), (2, 40.0)] {
        let n = info.logical_pages as usize;
        let reqs = ftl::Workload::random_write(0.4).generate(&info, n, tenant);
        out.push(poisson_arrivals(&reqs, mean_us, tenant + 7));
    }
    out
}

fn run(engine: EngineMode, specs: Vec<TenantSpec>) -> HostFrontend {
    let dev = gc_active_device(engine);
    let streams = streams(&dev);
    let mut front = HostFrontend::new(dev, specs, Arbitration::WeightedRoundRobin);
    for (tenant, stream) in streams.iter().enumerate() {
        front.submit(tenant, stream);
    }
    front.run().unwrap();
    assert!(front.drained());
    front
}

fn specs_with_slo(slo: Option<(f64, f64)>) -> Vec<TenantSpec> {
    let mut std_spec = TenantSpec::new("app", QosClass::Standard).weight(2).queue_depth(16);
    if let Some((debt, window)) = slo {
        std_spec = std_spec.gc_slo(debt, window);
    }
    vec![
        TenantSpec::new("db", QosClass::LatencyCritical).weight(4).queue_depth(8),
        std_spec,
        TenantSpec::new("scrub", QosClass::Background).queue_depth(32),
    ]
}

#[test]
fn window_budget_caps_per_window_debt() {
    // Budget two slices of debt per 20 ms window — tight enough that the
    // standard tenant must get throttled while collection is backlogged.
    let front = run(EngineMode::Batched, specs_with_slo(Some((2.0 * SLICE_US, 20_000.0))));
    assert!(front.device().stats().gc_slices > 0, "workload must exercise slices");
    let s = front.tenant_stats(1);
    assert!(s.gc_debt_us > 0.0, "standard tenant must be charged collection debt");
    assert!(s.gc_throttled > 0, "a tight budget must throttle some dispatches");
    // A slice yields only between word-line steps and a single super
    // word-line relocation can cost several budgets' worth, so the last
    // allowed dispatch of a window may overrun by up to the worst single
    // slice the device ran. Beyond that only the emergency floor (exempt
    // from the SLO) could push the peak — and this config's wide spare
    // pool keeps the run off it.
    let worst_slice = front.device().stats().gc_slice_us.max_us();
    assert!(
        s.gc_window_peak_us <= 2.0 * SLICE_US + worst_slice,
        "window peak {} exceeds budget {} + worst slice {}",
        s.gc_window_peak_us,
        2.0 * SLICE_US,
        worst_slice
    );
    // Tenants without an SLO are never tracked or throttled.
    for k in [0, 2] {
        let t = front.tenant_stats(k);
        assert_eq!(t.gc_debt_us, 0.0, "{}: no SLO, no debt tracking", t.name);
        assert_eq!(t.gc_throttled, 0, "{}: no SLO, never throttled", t.name);
    }
}

#[test]
fn zero_budget_suppresses_ladder_slices_and_huge_budget_changes_nothing() {
    let baseline = run(EngineMode::Batched, specs_with_slo(None));
    assert!(baseline.device().stats().gc_yield_count > 0, "ladder slices must park");

    // A practically-unbounded budget must leave every stat bit-identical
    // to the no-SLO run — the cap only binds once a window can fill.
    let huge = run(EngineMode::Batched, specs_with_slo(Some((1e18, 1e9))));
    assert_eq!(baseline.dispatch_log(), huge.dispatch_log(), "huge budget moved dispatches");
    let (b, h) = (baseline.device().stats(), huge.device().stats());
    assert_eq!(b.gc_slices, h.gc_slices);
    assert_eq!(b.gc_stall_us.to_bits(), h.gc_stall_us.to_bits());
    assert_eq!(b.busy_us.to_bits(), h.busy_us.to_bits());
    assert!(huge.tenant_stats(1).gc_debt_us > 0.0, "debt is tracked even when never binding");
    assert_eq!(huge.tenant_stats(1).gc_throttled, 0);

    // A zero budget pins the standard tenant's allowance at zero: every
    // backlogged dispatch is throttled and the only debt it can accrue is
    // the emergency floor's.
    let starved = run(EngineMode::Batched, specs_with_slo(Some((0.0, 1e9))));
    let s = starved.tenant_stats(1);
    assert!(s.gc_throttled > 0, "zero budget must throttle");
    assert!(
        s.gc_debt_us < baseline.device().stats().gc_stall_us,
        "starved tenant cannot carry the whole collection load"
    );
}

#[test]
fn slo_path_keeps_batched_engine_identical_to_stepper() {
    let specs = || specs_with_slo(Some((2.0 * SLICE_US, 20_000.0)));
    let stepper = run(EngineMode::Stepper, specs());
    let batched = run(EngineMode::Batched, specs());
    assert_eq!(stepper.dispatch_log(), batched.dispatch_log(), "slo: dispatch order diverged");
    let (s, b) = (stepper.device().stats(), batched.device().stats());
    assert_eq!(s.gc_slices, b.gc_slices, "slo: gc_slices");
    assert_eq!(s.gc_yield_count, b.gc_yield_count, "slo: gc_yield_count");
    assert_eq!(s.gc_stall_us.to_bits(), b.gc_stall_us.to_bits(), "slo: gc_stall_us");
    assert_eq!(s.busy_us.to_bits(), b.busy_us.to_bits(), "slo: busy_us");
    for tenant in 0..stepper.tenants() {
        let (ts, tb) = (stepper.tenant_stats(tenant), batched.tenant_stats(tenant));
        assert_eq!(ts.completed, tb.completed, "{}: completed", ts.name);
        assert_eq!(ts.gc_debt_us.to_bits(), tb.gc_debt_us.to_bits(), "{}: debt", ts.name);
        assert_eq!(
            ts.gc_window_peak_us.to_bits(),
            tb.gc_window_peak_us.to_bits(),
            "{}: window peak",
            ts.name
        );
        assert_eq!(ts.gc_throttled, tb.gc_throttled, "{}: throttled", ts.name);
    }
}
