//! # host
//!
//! A multi-queue host frontend for the [`ftl`] SSD simulator, modeled on
//! the NVMe submission/completion-queue architecture: each tenant owns a
//! bounded submission queue with an arrival-timed request stream, and a
//! deterministic event loop arbitrates over the non-empty queues
//! (round-robin or NVMe-style weighted round-robin) and feeds one command
//! at a time into the device's incremental timed engine.
//!
//! The frontend is where the paper's function-based placement (§V-D)
//! generalizes from the host/GC split to per-tenant QoS: every command
//! carries its tenant's [`QosClass`], so latency-critical and standard
//! tenants write into *fast* QSTR-MED superblocks while background
//! tenants share the *slow* end with garbage collection. Per-tenant
//! latency histograms then expose how much of the fast pool's headroom
//! each class actually sees (`repro tenants` sweeps this).
//!
//! # Example
//!
//! ```
//! use ftl::{poisson_arrivals, FtlConfig, QosClass, Ssd, Workload};
//! use host::{Arbitration, HostFrontend, TenantSpec};
//!
//! let ssd = Ssd::new(FtlConfig::small_test(), 1).expect("valid config");
//! let info = ssd.geometry_info();
//! let mut front = HostFrontend::new(
//!     ssd,
//!     vec![TenantSpec::new("db", QosClass::LatencyCritical)],
//!     Arbitration::RoundRobin,
//! );
//! let reqs = Workload::random_write(0.5).generate(&info, 200, 9);
//! front.submit(0, &poisson_arrivals(&reqs, 200.0, 9));
//! front.run().expect("replay succeeds");
//! assert!(front.tenant_stats(0).write_latency.mean_us() > 0.0);
//! ```
//!
//! [`QosClass`]: ftl::QosClass

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod frontend;
mod queue;

pub use arbiter::{Arbiter, Arbitration};
pub use frontend::HostFrontend;
pub use queue::{GcSlo, TenantSpec, TenantStats};
