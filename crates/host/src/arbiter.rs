//! Submission-queue arbitration.
//!
//! Mirrors the NVMe controller arbitration mechanisms: plain round-robin
//! treats every queue equally, weighted round-robin grants each queue a
//! per-round credit budget proportional to its weight. Both are
//! work-conserving — an empty queue never blocks a ready one — and fully
//! deterministic.

/// Which arbitration mechanism the frontend uses to pick the next
/// submission queue to service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arbitration {
    /// Equal-share round-robin over the non-empty queues.
    #[default]
    RoundRobin,
    /// Weighted round-robin: within one round a queue with weight `w` is
    /// granted up to `w` commands, interleaved with the other queues.
    WeightedRoundRobin,
}

impl Arbitration {
    /// Short machine-readable label (used in CSV output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Arbitration::RoundRobin => "rr",
            Arbitration::WeightedRoundRobin => "wrr",
        }
    }
}

/// Deterministic round-robin / weighted-round-robin queue picker.
///
/// With unit weights under saturation (every queue ready) WRR degenerates
/// to RR exactly: every queue holds one credit per round, so the cyclic
/// credit scan visits queues in the same order the plain scan does. (Under
/// partial readiness the two can diverge — leftover credits bias WRR away
/// from queues that were served recently.)
///
/// ```
/// use host::{Arbiter, Arbitration};
///
/// let mut arb = Arbiter::new(Arbitration::WeightedRoundRobin, vec![2, 1]);
/// let ready = [true, true];
/// let picks: Vec<usize> = (0..6).map(|_| arb.pick(&ready).unwrap()).collect();
/// // Each round of 3 grants queue 0 twice and queue 1 once; the scan
/// // cursor carries across rounds, so rounds interleave differently.
/// assert_eq!(picks, [0, 1, 0, 1, 0, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct Arbiter {
    kind: Arbitration,
    weights: Vec<u32>,
    credits: Vec<u32>,
    cursor: usize,
}

impl Arbiter {
    /// Builds an arbiter over `weights.len()` queues. Weights are ignored
    /// by [`Arbitration::RoundRobin`].
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is zero.
    #[must_use]
    pub fn new(kind: Arbitration, weights: Vec<u32>) -> Self {
        assert!(!weights.is_empty(), "arbiter needs at least one queue");
        assert!(weights.iter().all(|&w| w >= 1), "weights must be at least 1");
        let credits = weights.clone();
        let cursor = weights.len() - 1;
        Arbiter { kind, weights, credits, cursor }
    }

    /// Number of queues under arbitration.
    #[must_use]
    pub fn queues(&self) -> usize {
        self.weights.len()
    }

    /// Picks the next queue to service given which queues are ready
    /// (non-empty), or `None` when no queue is ready.
    ///
    /// # Panics
    ///
    /// Panics if `ready.len()` differs from the number of queues.
    pub fn pick(&mut self, ready: &[bool]) -> Option<usize> {
        let n = self.weights.len();
        assert_eq!(ready.len(), n, "ready mask must cover every queue");
        if !ready.iter().any(|&r| r) {
            return None;
        }
        self.pick_ready(|i| ready[i])
    }

    /// [`Arbiter::pick`] over a packed readiness bitmask (bit `i % 64` of
    /// word `i / 64` marks queue `i` ready) — the representation the
    /// batched frontend maintains incrementally instead of rebuilding a
    /// `Vec<bool>` per dispatch. Picks are identical to [`Arbiter::pick`]
    /// on the unpacked mask (`tests` pin this).
    ///
    /// # Panics
    ///
    /// Panics if `ready` has fewer than `queues().div_ceil(64)` words.
    pub fn pick_mask(&mut self, ready: &[u64]) -> Option<usize> {
        let n = self.weights.len();
        assert!(ready.len() >= n.div_ceil(64), "ready mask must cover every queue");
        if ready.iter().all(|&w| w == 0) {
            return None;
        }
        self.pick_ready(|i| ready[i / 64] & (1u64 << (i % 64)) != 0)
    }

    /// Shared RR/WRR scan over an abstract readiness predicate; the caller
    /// guarantees at least one queue is ready.
    fn pick_ready(&mut self, ready: impl Fn(usize) -> bool) -> Option<usize> {
        let n = self.weights.len();
        match self.kind {
            Arbitration::RoundRobin => {
                for off in 1..=n {
                    let i = (self.cursor + off) % n;
                    if ready(i) {
                        self.cursor = i;
                        return Some(i);
                    }
                }
                unreachable!("a ready queue exists");
            }
            Arbitration::WeightedRoundRobin => loop {
                for off in 1..=n {
                    let i = (self.cursor + off) % n;
                    if ready(i) && self.credits[i] > 0 {
                        self.credits[i] -= 1;
                        self.cursor = i;
                        return Some(i);
                    }
                }
                // Every ready queue exhausted its credits: start a new
                // round. Work conservation: idle queues cannot bank
                // credits across rounds, so the refill cannot starve
                // anyone — the next scan must succeed.
                self.credits.copy_from_slice(&self.weights);
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_ready_queues() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, vec![1, 1, 1]);
        let all = [true, true, true];
        let picks: Vec<usize> = (0..6).map(|_| arb.pick(&all).unwrap()).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_empty_queues() {
        let mut arb = Arbiter::new(Arbitration::RoundRobin, vec![1, 1, 1]);
        assert_eq!(arb.pick(&[false, true, true]), Some(1));
        assert_eq!(arb.pick(&[false, true, true]), Some(2));
        assert_eq!(arb.pick(&[false, false, true]), Some(2));
        assert_eq!(arb.pick(&[false, false, false]), None);
        // The cursor survives idle spells.
        assert_eq!(arb.pick(&[true, true, true]), Some(0));
    }

    #[test]
    fn wrr_grants_weight_commands_per_round() {
        let mut arb = Arbiter::new(Arbitration::WeightedRoundRobin, vec![3, 1]);
        let all = [true, true];
        // Under saturation every aligned round of weight-sum picks grants
        // each queue exactly its weight (the interleaving may differ
        // between rounds because the scan cursor carries over).
        for _ in 0..4 {
            let round: Vec<usize> = (0..4).map(|_| arb.pick(&all).unwrap()).collect();
            assert_eq!(round.iter().filter(|&&k| k == 0).count(), 3);
            assert_eq!(round.iter().filter(|&&k| k == 1).count(), 1);
        }
    }

    #[test]
    fn wrr_is_work_conserving() {
        // Queue 0 is idle; queue 1 must be served continuously even after
        // its per-round credits run out.
        let mut arb = Arbiter::new(Arbitration::WeightedRoundRobin, vec![4, 1]);
        for _ in 0..10 {
            assert_eq!(arb.pick(&[false, true]), Some(1));
        }
    }

    #[test]
    fn wrr_with_unit_weights_matches_rr_under_saturation() {
        let mut wrr = Arbiter::new(Arbitration::WeightedRoundRobin, vec![1, 1, 1]);
        let mut rr = Arbiter::new(Arbitration::RoundRobin, vec![1, 1, 1]);
        let all = [true, true, true];
        for _ in 0..12 {
            assert_eq!(wrr.pick(&all), rr.pick(&all));
        }
    }

    #[test]
    fn single_queue_arbitration_is_mechanism_independent() {
        // The degenerate case behind the frontend's determinism contract:
        // with one queue, RR and WRR make identical (trivial) choices no
        // matter the weight or readiness history.
        let mut wrr = Arbiter::new(Arbitration::WeightedRoundRobin, vec![7]);
        let mut rr = Arbiter::new(Arbitration::RoundRobin, vec![1]);
        for i in 0..20 {
            let ready = [i % 3 != 2];
            assert_eq!(wrr.pick(&ready), rr.pick(&ready));
            assert_eq!(rr.pick(&ready), if ready[0] { Some(0) } else { None });
        }
    }

    #[test]
    #[should_panic(expected = "weights must be at least 1")]
    fn zero_weight_is_rejected() {
        let _ = Arbiter::new(Arbitration::WeightedRoundRobin, vec![1, 0]);
    }

    #[test]
    fn mask_pick_matches_bool_pick_in_lockstep() {
        // Two arbiters, same weights, driven through a pseudo-random
        // readiness history — the packed and unpacked masks must agree
        // pick for pick (state carries across calls, so one divergence
        // cascades).
        for kind in [Arbitration::RoundRobin, Arbitration::WeightedRoundRobin] {
            let weights = vec![3, 1, 2, 1, 5, 1, 1, 2];
            let mut by_bool = Arbiter::new(kind, weights.clone());
            let mut by_mask = Arbiter::new(kind, weights);
            let mut state = 0x9e37_79b9_u64;
            for step in 0..2000 {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let bits = (state >> 32) & 0xff;
                let ready: Vec<bool> = (0..8).map(|i| bits & (1 << i) != 0).collect();
                assert_eq!(
                    by_bool.pick(&ready),
                    by_mask.pick_mask(&[bits]),
                    "{kind:?} diverged at step {step} (ready {bits:#010b})"
                );
            }
        }
    }

    #[test]
    fn mask_pick_spans_multiple_words() {
        // 70 queues forces a second mask word; only queue 69 is ready.
        let mut arb = Arbiter::new(Arbitration::RoundRobin, vec![1; 70]);
        let mut mask = [0u64; 2];
        mask[1] = 1 << (69 - 64);
        assert_eq!(arb.pick_mask(&mask), Some(69));
        assert_eq!(arb.pick_mask(&[0, 0]), None);
    }
}
