//! The multi-queue host frontend event loop.

use crate::arbiter::{Arbiter, Arbitration};
use crate::queue::{Queued, TenantSpec, TenantState, TenantStats};
use ftl::sched::{Arena, CalendarQueue};
use ftl::trace::TracedRequest;
use ftl::{EngineMode, IoOp, IoRequest, QosClass, Ssd, TimedOutcome};
use std::collections::VecDeque;

/// A multi-queue host frontend: one submission queue per tenant, feeding
/// a single [`Ssd`] through a deterministic event loop.
///
/// Each tenant owns an arrival-timed request stream, a bounded submission
/// queue, and a QoS class. The frontend admits arrivals into the queues,
/// arbitrates over the non-empty ones (round-robin or weighted
/// round-robin), and dispatches one command at a time to the device via
/// its incremental timed engine — so device-side queueing, garbage
/// collection and per-chip clocks all behave exactly as in
/// [`Ssd::run_timed`]. The tenant's QoS class rides along with every
/// write and picks the superblock speed class under function-based
/// placement.
///
/// **Determinism contract**: a single tenant with unit weight and an
/// unbounded queue replays its stream in arrival order with unmodified
/// submission times, which makes the frontend bit-identical to calling
/// [`Ssd::run_timed`] directly (`tests/golden.rs` pins this).
///
/// # Example
///
/// ```
/// use ftl::{poisson_arrivals, FtlConfig, QosClass, Ssd, Workload};
/// use host::{Arbitration, HostFrontend, TenantSpec};
///
/// let ssd = Ssd::new(FtlConfig::small_test(), 42).expect("valid config");
/// let info = ssd.geometry_info();
/// let mut front = HostFrontend::new(
///     ssd,
///     vec![
///         TenantSpec::new("db", QosClass::LatencyCritical).weight(4),
///         TenantSpec::new("scrub", QosClass::Background).queue_depth(8),
///     ],
///     Arbitration::WeightedRoundRobin,
/// );
/// for tenant in 0..2 {
///     let reqs = Workload::random_write(0.4).generate(&info, 500, tenant as u64);
///     front.submit(tenant, &poisson_arrivals(&reqs, 100.0, tenant as u64));
/// }
/// front.run().expect("replay succeeds");
/// assert_eq!(front.tenant_stats(0).completed, 500);
/// assert_eq!(front.tenant_stats(1).completed, 500);
/// ```
#[derive(Debug)]
pub struct HostFrontend {
    ssd: Ssd,
    tenants: Vec<TenantState>,
    arbiter: Arbiter,
    dispatch_log: Vec<usize>,
    now: f64,
}

impl HostFrontend {
    /// Builds a frontend over `specs.len()` submission queues.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty (weights and depths are validated by
    /// [`TenantSpec`]'s builders).
    #[must_use]
    pub fn new(ssd: Ssd, specs: Vec<TenantSpec>, arbitration: Arbitration) -> Self {
        assert!(!specs.is_empty(), "frontend needs at least one tenant");
        let weights = specs.iter().map(|s| s.weight).collect();
        let tenants = specs.into_iter().map(TenantState::new).collect();
        HostFrontend {
            ssd,
            tenants,
            arbiter: Arbiter::new(arbitration, weights),
            dispatch_log: Vec::new(),
            now: 0.0,
        }
    }

    /// Number of tenants (submission queues).
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Appends `(arrival_us, request)` pairs to a tenant's stream. Streams
    /// may be submitted in several batches; they are kept sorted by
    /// arrival time (stable, so equal arrivals preserve submission order).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range or called after [`run`].
    ///
    /// [`run`]: HostFrontend::run
    pub fn submit(&mut self, tenant: usize, requests: &[(f64, IoRequest)]) {
        assert!(self.dispatch_log.is_empty() && self.now == 0.0, "submit before run");
        let state = &mut self.tenants[tenant];
        state.stream.extend_from_slice(requests);
        state.stream.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("arrival times are not NaN"));
    }

    /// Routes parsed trace requests to their queues by tenant id (the
    /// trace's optional fourth column), pairing each with its arrival.
    ///
    /// Legacy per-request path: each request is a one-element [`submit`],
    /// which re-sorts the tenant's whole stream — O(n²·log n) over a long
    /// trace. Kept as the reference the batched path is measured against;
    /// new callers want [`submit_traced_batched`].
    ///
    /// # Panics
    ///
    /// Panics if a tenant id is out of range for this frontend.
    ///
    /// [`submit`]: HostFrontend::submit
    /// [`submit_traced_batched`]: HostFrontend::submit_traced_batched
    pub fn submit_traced(&mut self, requests: &[(f64, TracedRequest)]) {
        let n = self.tenants.len();
        for &(arrival, traced) in requests {
            let tenant = traced.tenant as usize;
            assert!(tenant < n, "trace tenant {tenant} but frontend has {n} queues");
            self.submit(tenant, &[(arrival, traced.request)]);
        }
    }

    /// Batched twin of [`submit_traced`]: one routing pass plus a single
    /// stable sort per tenant. Repeated stable sorting of a growing stream
    /// equals one stable sort of the fully-appended stream, so the
    /// resulting per-tenant streams — and every downstream stat — are
    /// identical to the legacy path's; only the admission cost drops from
    /// quadratic to O(n log n).
    ///
    /// # Panics
    ///
    /// Panics if a tenant id is out of range or called after [`run`].
    ///
    /// [`submit_traced`]: HostFrontend::submit_traced
    /// [`run`]: HostFrontend::run
    pub fn submit_traced_batched(&mut self, requests: &[(f64, TracedRequest)]) {
        assert!(self.dispatch_log.is_empty() && self.now == 0.0, "submit before run");
        let n = self.tenants.len();
        for &(arrival, traced) in requests {
            let tenant = traced.tenant as usize;
            assert!(tenant < n, "trace tenant {tenant} but frontend has {n} queues");
            self.tenants[tenant].stream.push((arrival, traced.request));
        }
        for state in &mut self.tenants {
            state.stream.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("arrival times are not NaN"));
        }
    }

    /// Replays every submitted stream to completion.
    ///
    /// The drain loop follows the device's configured [`EngineMode`]: the
    /// stepper drain re-scans every tenant per dispatch (the golden
    /// oracle), the batched drain consumes host-arrival events from a
    /// calendar queue, keeps a packed readiness bitmask and arena-backed
    /// queue records, and folds per-tenant latency samples at the end.
    /// Both produce bit-identical stats (`tests/engine_identity.rs`).
    ///
    /// # Errors
    ///
    /// Propagates the first device error (invalid LPN, injected fault,
    /// power loss). The device keeps its partial state and stats.
    pub fn run(&mut self) -> ftl::Result<()> {
        self.ssd.timed_begin();
        let result = if self.ssd.engine() == EngineMode::Batched {
            self.drain_batched()
        } else {
            self.drain()
        };
        // Fold partial clocks into the stats even on the error path.
        self.ssd.timed_end();
        result
    }

    fn drain(&mut self) -> ftl::Result<()> {
        loop {
            let now = self.now;
            for tenant in &mut self.tenants {
                tenant.admit(now);
            }
            let mut ready: Vec<bool> = self.tenants.iter().map(|t| !t.sq.is_empty()).collect();
            // When the device wants a GC slice — or patrol scrubbing has
            // starved past a full interval and will bill foreground
            // commands — drain latency-critical queues first: their
            // commands skip both payments device-side, and granting a
            // lower class first would sandwich the waiting LC command
            // behind that command's slice. Work-conserving — the mask only
            // applies while a latency-critical queue is ready.
            if self.ssd.gc_slice_pending()
                && self
                    .tenants
                    .iter()
                    .zip(&ready)
                    .any(|(t, &r)| r && t.spec.qos == QosClass::LatencyCritical)
            {
                for (t, r) in self.tenants.iter().zip(ready.iter_mut()) {
                    *r = *r && t.spec.qos == QosClass::LatencyCritical;
                }
            }
            let Some(k) = self.arbiter.pick(&ready) else {
                // Every queue is empty: jump to the next arrival, or stop
                // once all streams are drained.
                let next = self
                    .tenants
                    .iter()
                    .filter_map(TenantState::next_arrival)
                    .fold(f64::INFINITY, f64::min);
                if !next.is_finite() {
                    return Ok(());
                }
                self.now = self.now.max(next);
                continue;
            };
            let state = &mut self.tenants[k];
            let was_full = state.sq.len() >= state.spec.queue_depth;
            let item = state.sq.pop_front().expect("picked queue is ready");
            if was_full {
                // The slot frees the instant the command is fetched.
                state.freed_at = self.now;
            }
            let qos = state.spec.qos;
            let out = self.step_with_slo(k, item, qos)?;
            self.now = self.now.max(out.completion_us);
            self.dispatch_log.push(k);
            let stats = &mut self.tenants[k].stats;
            let wait = out.start_us - item.arrival;
            stats.queue_wait_us += wait;
            match item.req.op {
                IoOp::Write => stats.write_latency.record(wait + out.service_us),
                IoOp::Read => {
                    // Mirror the device convention: a miss has no service
                    // time but its wait still counts as a latency sample.
                    if out.service_us > 0.0 {
                        stats.read_latency.record(wait + out.service_us);
                    } else {
                        stats.read_latency.record(wait);
                    }
                }
                IoOp::Trim => {}
            }
            stats.completed += 1;
        }
    }

    /// One device step under tenant `k`'s GC SLO, shared by both drains so
    /// their allowance decisions are identical step for step. For a tenant
    /// with a [`crate::GcSlo`], the device's per-command allowance is set
    /// to the window's remaining debt budget before the step, the
    /// collection stall the command was actually charged (the device's
    /// `gc_stall_us` delta — foreground GC slices, overdue patrol-scrub
    /// payments down the same QoS ladder, plus any emergency-floor
    /// reclaim, never idle-gap work) is folded back into the window after
    /// it, and the allowance is restored to `INFINITY` so other tenants
    /// stay uncapped. Tenants without an SLO take the plain step — the
    /// device field never moves off its default, keeping SLO-free runs
    /// bit-identical to builds without this feature.
    fn step_with_slo(
        &mut self,
        k: usize,
        item: Queued,
        qos: QosClass,
    ) -> ftl::Result<TimedOutcome> {
        let Some(allowance) = self.tenants[k].gc_allowance(item.submit) else {
            return self.ssd.timed_step(item.submit, item.req, qos);
        };
        self.ssd.set_gc_allowance(allowance);
        let before = self.ssd.stats().gc_stall_us;
        let result = self.ssd.timed_step(item.submit, item.req, qos);
        // Charge the debt even on the error path, mirroring how partial
        // clocks are folded by `run`.
        let debt = self.ssd.stats().gc_stall_us - before;
        self.ssd.set_gc_allowance(f64::INFINITY);
        let state = &mut self.tenants[k];
        state.charge_gc_debt(debt);
        if allowance <= 0.0 {
            state.stats.gc_throttled += 1;
        }
        result
    }

    /// Event-driven drain: instead of re-admitting every tenant and
    /// rebuilding a `Vec<bool>` readiness mask on every dispatch, arrivals
    /// live as events in a calendar queue, readiness is a packed bitmask
    /// updated on queue transitions, queue records are arena-allocated,
    /// and latency samples accumulate in per-tenant vectors folded once at
    /// the end. Admission runs exactly when legacy admission would have
    /// changed state — after the clock advances past an arrival, or after
    /// a dispatch frees a slot — so dispatch order and every stat are
    /// bit-identical to [`HostFrontend::drain`].
    fn drain_batched(&mut self) -> ftl::Result<()> {
        let n = self.tenants.len();
        let mut run = BatchedRun::new(n);
        for (i, t) in self.tenants.iter().enumerate() {
            if t.spec.qos == QosClass::LatencyCritical {
                run.lc_mask[i / 64] |= 1u64 << (i % 64);
            }
        }
        let result = self.drain_batched_inner(&mut run);
        // Fold the SoA sample accumulators even on the error path, exactly
        // like the legacy drain's per-op records would have survived.
        for (i, (w, r)) in run.write_samples.iter().zip(&run.read_samples).enumerate() {
            self.tenants[i].stats.write_latency.extend(w);
            self.tenants[i].stats.read_latency.extend(r);
        }
        result
    }

    fn drain_batched_inner(&mut self, run: &mut BatchedRun) -> ftl::Result<()> {
        for i in 0..self.tenants.len() {
            self.admit_one(run, i);
        }
        loop {
            // Same LC-drain masking as the legacy drain (readiness and
            // device state agree step for step, so both drains mask at the
            // same dispatch points and stay bit-identical).
            let pick = if self.ssd.gc_slice_pending()
                && run.ready.iter().zip(&run.lc_mask).any(|(&r, &m)| r & m != 0)
            {
                for (m, (&r, &l)) in run.masked.iter_mut().zip(run.ready.iter().zip(&run.lc_mask)) {
                    *m = r & l;
                }
                self.arbiter.pick_mask(&run.masked)
            } else {
                self.arbiter.pick_mask(&run.ready)
            };
            let Some(k) = pick else {
                // Every queue is empty: jump to the next arrival event, or
                // stop once all streams are drained. (No queue ready means
                // no tenant is depth-blocked, so every pending arrival has
                // an event in the calendar.)
                let Some(ev) = run.arrivals.pop_min() else {
                    return Ok(());
                };
                let i = ev.payload as usize;
                run.scheduled[i] = false;
                self.now = self.now.max(ev.time);
                self.admit_one(run, i);
                self.drain_due_arrivals(run);
                continue;
            };
            let state = &mut self.tenants[k];
            let sq = &mut run.sqs[k];
            let was_full = sq.len() >= state.spec.queue_depth;
            let handle = sq.pop_front().expect("picked queue is ready");
            let item = run.arena.free(handle);
            if sq.is_empty() {
                run.ready[k / 64] &= !(1u64 << (k % 64));
            }
            if was_full {
                // The slot frees the instant the command is fetched.
                state.freed_at = self.now;
            }
            let qos = state.spec.qos;
            let out = self.step_with_slo(k, item, qos)?;
            self.now = self.now.max(out.completion_us);
            self.dispatch_log.push(k);
            let stats = &mut self.tenants[k].stats;
            let wait = out.start_us - item.arrival;
            stats.queue_wait_us += wait;
            match item.req.op {
                IoOp::Write => run.write_samples[k].push(wait + out.service_us),
                IoOp::Read => {
                    if out.service_us > 0.0 {
                        run.read_samples[k].push(wait + out.service_us);
                    } else {
                        run.read_samples[k].push(wait);
                    }
                }
                IoOp::Trim => {}
            }
            stats.completed += 1;
            // The clock moved and a slot freed: fire due arrival events
            // first (they may include tenant k's), then top up tenant k.
            self.drain_due_arrivals(run);
            self.admit_one(run, k);
        }
    }

    /// Admits tenant `i` up to `self.now`, updates its readiness bit, and
    /// schedules its next arrival event. A depth-blocked tenant gets no
    /// event — only a dispatch (which calls back here) can unblock it.
    fn admit_one(&mut self, run: &mut BatchedRun, i: usize) {
        let state = &mut self.tenants[i];
        state.admit_batched(self.now, &mut run.arena, &mut run.sqs[i]);
        if !run.sqs[i].is_empty() {
            run.ready[i / 64] |= 1u64 << (i % 64);
        }
        if !run.scheduled[i] && run.sqs[i].len() < state.spec.queue_depth {
            if let Some(t) = state.next_arrival() {
                run.arrivals.push(t, u32::try_from(i).expect("tenant count fits u32"));
                run.scheduled[i] = true;
            }
        }
    }

    /// Fires every arrival event due by `self.now`, admitting its tenant.
    fn drain_due_arrivals(&mut self, run: &mut BatchedRun) {
        while run.arrivals.peek().is_some_and(|ev| ev.time <= self.now) {
            let ev = run.arrivals.pop_min().expect("peeked event exists");
            let i = ev.payload as usize;
            run.scheduled[i] = false;
            self.admit_one(run, i);
        }
    }

    /// Whether every submitted request has been dispatched and completed.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.tenants.iter().all(TenantState::drained)
    }

    /// Per-tenant statistics.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    #[must_use]
    pub fn tenant_stats(&self, tenant: usize) -> &TenantStats {
        &self.tenants[tenant].stats
    }

    /// Statistics for every tenant, in queue order.
    #[must_use]
    pub fn all_stats(&self) -> Vec<&TenantStats> {
        self.tenants.iter().map(|t| &t.stats).collect()
    }

    /// The order tenants were granted the device, one entry per command.
    #[must_use]
    pub fn dispatch_log(&self) -> &[usize] {
        &self.dispatch_log
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &Ssd {
        &self.ssd
    }

    /// Consumes the frontend, returning the device (for stats extraction
    /// or further replay).
    #[must_use]
    pub fn into_device(self) -> Ssd {
        self.ssd
    }
}

/// Working set of one batched drain: the shared record arena, per-tenant
/// handle queues, the host-arrival calendar, the packed readiness mask and
/// the SoA latency accumulators.
struct BatchedRun {
    arena: Arena<Queued>,
    sqs: Vec<VecDeque<u32>>,
    arrivals: CalendarQueue,
    /// Whether tenant `i` has an arrival event queued (at most one each).
    scheduled: Vec<bool>,
    ready: Vec<u64>,
    /// Which tenants are latency-critical (fixed over the run); `ready &
    /// lc_mask` is the LC-first readiness used while a GC slice is pending.
    lc_mask: Vec<u64>,
    /// Scratch for the masked readiness, kept allocated across dispatches.
    masked: Vec<u64>,
    write_samples: Vec<Vec<f64>>,
    read_samples: Vec<Vec<f64>>,
}

impl BatchedRun {
    fn new(tenants: usize) -> Self {
        BatchedRun {
            arena: Arena::with_capacity(64),
            sqs: (0..tenants).map(|_| VecDeque::new()).collect(),
            arrivals: CalendarQueue::new(),
            scheduled: vec![false; tenants],
            ready: vec![0u64; tenants.div_ceil(64)],
            lc_mask: vec![0u64; tenants.div_ceil(64)],
            masked: vec![0u64; tenants.div_ceil(64)],
            write_samples: vec![Vec::new(); tenants],
            read_samples: vec![Vec::new(); tenants],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl::{poisson_arrivals, FtlConfig, QosClass, Workload};

    fn small_ssd() -> Ssd {
        Ssd::new(FtlConfig::small_test(), 7).unwrap()
    }

    fn timed_writes(ssd: &Ssd, n: usize, seed: u64, mean_us: f64) -> Vec<(f64, IoRequest)> {
        let reqs = Workload::random_write(0.5).generate(&ssd.geometry_info(), n, seed);
        poisson_arrivals(&reqs, mean_us, seed)
    }

    #[test]
    fn two_tenants_complete_everything() {
        let ssd = small_ssd();
        let streams: Vec<_> = (0..2).map(|i| timed_writes(&ssd, 300, i, 120.0)).collect();
        let mut front = HostFrontend::new(
            ssd,
            vec![
                TenantSpec::new("a", QosClass::LatencyCritical),
                TenantSpec::new("b", QosClass::Background),
            ],
            Arbitration::RoundRobin,
        );
        front.submit(0, &streams[0]);
        front.submit(1, &streams[1]);
        front.run().unwrap();
        assert!(front.drained());
        assert_eq!(front.tenant_stats(0).completed, 300);
        assert_eq!(front.tenant_stats(1).completed, 300);
        assert_eq!(front.dispatch_log().len(), 600);
        let dev = front.device();
        assert_eq!(dev.stats().host_writes, 600);
        assert_eq!(dev.stats().host_writes_by_class, [300, 0, 300]);
    }

    #[test]
    fn bounded_queue_backpressures_and_records_high_water() {
        let ssd = small_ssd();
        // Arrivals far faster than the device: everything piles up.
        let stream = timed_writes(&ssd, 400, 3, 1.0);
        let mut front = HostFrontend::new(
            ssd,
            vec![TenantSpec::new("hot", QosClass::Standard).queue_depth(4)],
            Arbitration::RoundRobin,
        );
        front.submit(0, &stream);
        front.run().unwrap();
        let stats = front.tenant_stats(0);
        assert_eq!(stats.completed, 400);
        assert_eq!(stats.depth_high_water, 4, "depth bound is respected");
        assert!(stats.backpressured > 0, "saturating arrivals must backpressure");
        assert!(stats.queue_wait_us > 0.0);
    }

    #[test]
    fn unbounded_queue_never_backpressures() {
        let ssd = small_ssd();
        let stream = timed_writes(&ssd, 400, 3, 1.0);
        let mut front = HostFrontend::new(
            ssd,
            vec![TenantSpec::new("hot", QosClass::Standard)],
            Arbitration::RoundRobin,
        );
        front.submit(0, &stream);
        front.run().unwrap();
        let stats = front.tenant_stats(0);
        assert_eq!(stats.completed, 400);
        assert_eq!(stats.backpressured, 0);
        assert!(stats.depth_high_water > 4, "saturating arrivals pile up in the unbounded queue");
    }

    #[test]
    fn traced_requests_route_by_tenant_column() {
        let trace = b"W,1,1,0\nW,2,1,1\nR,1,1,0\nW,3,2,1\n" as &[u8];
        let parsed = ftl::trace::parse_trace_tenants(trace).unwrap();
        let timed: Vec<(f64, TracedRequest)> =
            parsed.iter().enumerate().map(|(i, &t)| (i as f64 * 50.0, t)).collect();
        let mut front = HostFrontend::new(
            small_ssd(),
            vec![
                TenantSpec::new("t0", QosClass::Standard),
                TenantSpec::new("t1", QosClass::Background),
            ],
            Arbitration::RoundRobin,
        );
        front.submit_traced(&timed);
        front.run().unwrap();
        assert_eq!(front.tenant_stats(0).completed, 2, "W,1 and R,1");
        assert_eq!(front.tenant_stats(1).completed, 3, "W,2 and the 2-page run W,3");
    }

    #[test]
    #[should_panic(expected = "frontend has 1 queues")]
    fn traced_tenant_out_of_range_is_rejected() {
        let parsed = ftl::trace::parse_trace_tenants(b"W,1,1,5\n" as &[u8]).unwrap();
        let mut front = HostFrontend::new(
            small_ssd(),
            vec![TenantSpec::new("only", QosClass::Standard)],
            Arbitration::RoundRobin,
        );
        front.submit_traced(&[(0.0, parsed[0])]);
    }

    #[test]
    fn device_error_is_propagated_and_clocks_are_folded() {
        let ssd = small_ssd();
        let cap = ssd.geometry_info().logical_pages;
        let mut front = HostFrontend::new(
            ssd,
            vec![TenantSpec::new("bad", QosClass::Standard)],
            Arbitration::RoundRobin,
        );
        front.submit(0, &[(0.0, IoRequest::write(1)), (10.0, IoRequest::write(cap))]);
        assert!(front.run().is_err());
        let dev = front.device();
        assert_eq!(dev.stats().host_writes, 1, "work before the error sticks");
        assert!(dev.stats().makespan_us > 0.0, "timed_end folded the partial makespan");
    }
}
