//! Per-tenant submission queues and statistics.

use ftl::sched::Arena;
use ftl::{IoRequest, LatencyHistogram, QosClass};
use std::collections::VecDeque;

/// Per-tenant garbage-collection SLO: at most `debt_us` µs of budgeted
/// collection work may be charged to this tenant's commands inside any
/// `window_us`-long wall-clock window. Windows are fixed (aligned at
/// multiples of `window_us` from time zero, selected by a command's
/// submission time), and debt resets at each window boundary. When a
/// window's budget is exhausted the frontend dispatches the tenant's
/// commands with a zero device-side allowance — ladder slices are
/// suppressed until the next window, though the device's emergency floor
/// still runs (media safety outranks the SLO).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcSlo {
    /// Collection-debt budget per window, µs.
    pub debt_us: f64,
    /// Window length, µs.
    pub window_us: f64,
}

/// Static description of one tenant: its QoS class, its arbitration
/// weight, the depth of its submission queue, and an optional GC SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable tenant name (carried into stats and CSV rows).
    pub name: String,
    /// QoS class — picks the superblock speed class its writes land in
    /// under function-based placement.
    pub qos: QosClass,
    /// Weighted-round-robin weight (ignored by plain round-robin).
    pub weight: u32,
    /// Submission-queue depth; arrivals beyond it are backpressured in
    /// host memory until a slot frees.
    pub queue_depth: usize,
    /// Per-window collection-debt budget; `None` (the default) leaves the
    /// tenant on the device's global per-command budget alone.
    pub gc_slo: Option<GcSlo>,
}

impl TenantSpec {
    /// A tenant with unit weight, an unbounded submission queue and no GC
    /// SLO.
    #[must_use]
    pub fn new(name: &str, qos: QosClass) -> Self {
        TenantSpec { name: name.to_string(), qos, weight: 1, queue_depth: usize::MAX, gc_slo: None }
    }

    /// Sets the weighted-round-robin weight (must be at least 1).
    #[must_use]
    pub fn weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "weight must be at least 1");
        self.weight = weight;
        self
    }

    /// Bounds the submission queue (must admit at least 1 entry).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must be at least 1");
        self.queue_depth = depth;
        self
    }

    /// Caps the collection debt this tenant's commands may be charged to
    /// `debt_us` µs per `window_us`-long window (both must be positive and
    /// finite).
    #[must_use]
    pub fn gc_slo(mut self, debt_us: f64, window_us: f64) -> Self {
        assert!(debt_us >= 0.0 && debt_us.is_finite(), "debt budget must be finite and >= 0");
        assert!(window_us > 0.0 && window_us.is_finite(), "window must be finite and positive");
        self.gc_slo = Some(GcSlo { debt_us, window_us });
        self
    }
}

/// Per-tenant completion statistics collected by the frontend.
///
/// Latencies are end-to-end from the tenant's point of view: queueing in
/// the bounded submission queue, waiting for the device, and service.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name (copied from the spec).
    pub name: String,
    /// QoS class (copied from the spec).
    pub qos: QosClass,
    /// Commands completed.
    pub completed: u64,
    /// End-to-end write latencies.
    pub write_latency: LatencyHistogram,
    /// End-to-end read latencies (misses record their wait).
    pub read_latency: LatencyHistogram,
    /// Total time commands spent between arrival and dispatch.
    pub queue_wait_us: f64,
    /// Highest submission-queue occupancy observed.
    pub depth_high_water: usize,
    /// Arrivals that found the submission queue full and had to wait in
    /// host memory for a slot.
    pub backpressured: u64,
    /// Total budgeted collection work charged to this tenant's commands,
    /// µs (the tenant's share of the device's `gc_stall_us`). Tracked only
    /// for tenants with a [`GcSlo`]; stays 0 otherwise.
    pub gc_debt_us: f64,
    /// Highest collection debt accumulated inside any single SLO window,
    /// µs. The SLO holds when this stays at or under the budget plus one
    /// slice overrun (a slice yields only between word-line steps).
    pub gc_window_peak_us: f64,
    /// Commands dispatched while the window's debt budget was exhausted
    /// (their device-side allowance was zero, suppressing ladder slices).
    pub gc_throttled: u64,
}

impl TenantStats {
    fn new(spec: &TenantSpec) -> Self {
        TenantStats {
            name: spec.name.clone(),
            qos: spec.qos,
            completed: 0,
            write_latency: LatencyHistogram::default(),
            read_latency: LatencyHistogram::default(),
            queue_wait_us: 0.0,
            depth_high_water: 0,
            backpressured: 0,
            gc_debt_us: 0.0,
            gc_window_peak_us: 0.0,
            gc_throttled: 0,
        }
    }

    /// Mean time from arrival to dispatch, over all completed commands.
    #[must_use]
    pub fn mean_queue_wait_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.queue_wait_us / self.completed as f64
        }
    }
}

/// One entry sitting in a submission queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Queued {
    /// When the tenant issued the request.
    pub arrival: f64,
    /// When it entered the submission queue (later than `arrival` only
    /// under backpressure).
    pub submit: f64,
    /// The request itself.
    pub req: IoRequest,
}

/// Runtime state of one tenant: its pending arrival stream, its bounded
/// submission queue, and its stats.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub spec: TenantSpec,
    /// Arrival-sorted request stream not yet admitted to the queue.
    pub stream: Vec<(f64, IoRequest)>,
    /// Index of the next stream entry to admit.
    pub next: usize,
    pub sq: VecDeque<Queued>,
    /// When the last slot freed while the queue was full — the earliest
    /// instant a backpressured arrival can enter the queue.
    pub freed_at: f64,
    pub stats: TenantStats,
    /// Index (`floor(submit / window_us)`, kept as f64 so huge clocks never
    /// overflow a cast) of the SLO window the debt below belongs to.
    gc_window: f64,
    /// Collection debt accumulated inside the current SLO window, µs.
    gc_window_debt: f64,
}

impl TenantState {
    pub(crate) fn new(spec: TenantSpec) -> Self {
        let stats = TenantStats::new(&spec);
        TenantState {
            spec,
            stream: Vec::new(),
            next: 0,
            sq: VecDeque::new(),
            freed_at: 0.0,
            stats,
            gc_window: 0.0,
            gc_window_debt: 0.0,
        }
    }

    /// Rolls the SLO window forward to the one containing `submit` and
    /// returns the remaining debt allowance for a command dispatched now —
    /// `None` when the tenant has no SLO (allowance stays uncapped). A
    /// returned `0.0` means the window budget is spent; the caller counts
    /// the dispatch as throttled.
    pub(crate) fn gc_allowance(&mut self, submit: f64) -> Option<f64> {
        let slo = self.spec.gc_slo?;
        let window = (submit / slo.window_us).floor();
        if window != self.gc_window {
            self.gc_window = window;
            self.gc_window_debt = 0.0;
        }
        Some((slo.debt_us - self.gc_window_debt).max(0.0))
    }

    /// Charges `debt_us` of collection work to the current SLO window and
    /// folds it into the tenant's totals. Call only for SLO tenants, after
    /// the dispatch whose [`TenantState::gc_allowance`] selected the
    /// window.
    pub(crate) fn charge_gc_debt(&mut self, debt_us: f64) {
        self.gc_window_debt += debt_us;
        self.stats.gc_debt_us += debt_us;
        self.stats.gc_window_peak_us = self.stats.gc_window_peak_us.max(self.gc_window_debt);
    }

    /// Arrival time of the next not-yet-admitted request, if any.
    pub(crate) fn next_arrival(&self) -> Option<f64> {
        self.stream.get(self.next).map(|&(arrival, _)| arrival)
    }

    /// Moves every request that has arrived by `now` into the submission
    /// queue, respecting the depth bound.
    pub(crate) fn admit(&mut self, now: f64) {
        while let Some(&(arrival, req)) = self.stream.get(self.next) {
            if arrival > now || self.sq.len() >= self.spec.queue_depth {
                break;
            }
            // A backpressured arrival enters only once a slot freed.
            let submit = arrival.max(self.freed_at);
            if submit > arrival {
                self.stats.backpressured += 1;
            }
            self.sq.push_back(Queued { arrival, submit, req });
            self.stats.depth_high_water = self.stats.depth_high_water.max(self.sq.len());
            self.next += 1;
        }
    }

    /// Batched-engine twin of [`TenantState::admit`]: identical admission
    /// rules, backpressure accounting and high-water tracking, but the
    /// records live in a shared [`Arena`] and the submission queue holds
    /// handles — one slab allocation serves every tenant, and a record is
    /// touched exactly twice (alloc at admission, free at dispatch).
    pub(crate) fn admit_batched(
        &mut self,
        now: f64,
        arena: &mut Arena<Queued>,
        sq: &mut VecDeque<u32>,
    ) {
        while let Some(&(arrival, req)) = self.stream.get(self.next) {
            if arrival > now || sq.len() >= self.spec.queue_depth {
                break;
            }
            let submit = arrival.max(self.freed_at);
            if submit > arrival {
                self.stats.backpressured += 1;
            }
            sq.push_back(arena.alloc(Queued { arrival, submit, req }));
            self.stats.depth_high_water = self.stats.depth_high_water.max(sq.len());
            self.next += 1;
        }
    }

    /// Whether every submitted request has been admitted and completed.
    pub(crate) fn drained(&self) -> bool {
        self.next == self.stream.len() && self.sq.is_empty()
    }
}
