//! Per-tenant submission queues and statistics.

use ftl::sched::Arena;
use ftl::{IoRequest, LatencyHistogram, QosClass};
use std::collections::VecDeque;

/// Static description of one tenant: its QoS class, its arbitration
/// weight and the depth of its submission queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Human-readable tenant name (carried into stats and CSV rows).
    pub name: String,
    /// QoS class — picks the superblock speed class its writes land in
    /// under function-based placement.
    pub qos: QosClass,
    /// Weighted-round-robin weight (ignored by plain round-robin).
    pub weight: u32,
    /// Submission-queue depth; arrivals beyond it are backpressured in
    /// host memory until a slot frees.
    pub queue_depth: usize,
}

impl TenantSpec {
    /// A tenant with unit weight and an unbounded submission queue.
    #[must_use]
    pub fn new(name: &str, qos: QosClass) -> Self {
        TenantSpec { name: name.to_string(), qos, weight: 1, queue_depth: usize::MAX }
    }

    /// Sets the weighted-round-robin weight (must be at least 1).
    #[must_use]
    pub fn weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "weight must be at least 1");
        self.weight = weight;
        self
    }

    /// Bounds the submission queue (must admit at least 1 entry).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue depth must be at least 1");
        self.queue_depth = depth;
        self
    }
}

/// Per-tenant completion statistics collected by the frontend.
///
/// Latencies are end-to-end from the tenant's point of view: queueing in
/// the bounded submission queue, waiting for the device, and service.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name (copied from the spec).
    pub name: String,
    /// QoS class (copied from the spec).
    pub qos: QosClass,
    /// Commands completed.
    pub completed: u64,
    /// End-to-end write latencies.
    pub write_latency: LatencyHistogram,
    /// End-to-end read latencies (misses record their wait).
    pub read_latency: LatencyHistogram,
    /// Total time commands spent between arrival and dispatch.
    pub queue_wait_us: f64,
    /// Highest submission-queue occupancy observed.
    pub depth_high_water: usize,
    /// Arrivals that found the submission queue full and had to wait in
    /// host memory for a slot.
    pub backpressured: u64,
}

impl TenantStats {
    fn new(spec: &TenantSpec) -> Self {
        TenantStats {
            name: spec.name.clone(),
            qos: spec.qos,
            completed: 0,
            write_latency: LatencyHistogram::default(),
            read_latency: LatencyHistogram::default(),
            queue_wait_us: 0.0,
            depth_high_water: 0,
            backpressured: 0,
        }
    }

    /// Mean time from arrival to dispatch, over all completed commands.
    #[must_use]
    pub fn mean_queue_wait_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.queue_wait_us / self.completed as f64
        }
    }
}

/// One entry sitting in a submission queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Queued {
    /// When the tenant issued the request.
    pub arrival: f64,
    /// When it entered the submission queue (later than `arrival` only
    /// under backpressure).
    pub submit: f64,
    /// The request itself.
    pub req: IoRequest,
}

/// Runtime state of one tenant: its pending arrival stream, its bounded
/// submission queue, and its stats.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub spec: TenantSpec,
    /// Arrival-sorted request stream not yet admitted to the queue.
    pub stream: Vec<(f64, IoRequest)>,
    /// Index of the next stream entry to admit.
    pub next: usize,
    pub sq: VecDeque<Queued>,
    /// When the last slot freed while the queue was full — the earliest
    /// instant a backpressured arrival can enter the queue.
    pub freed_at: f64,
    pub stats: TenantStats,
}

impl TenantState {
    pub(crate) fn new(spec: TenantSpec) -> Self {
        let stats = TenantStats::new(&spec);
        TenantState { spec, stream: Vec::new(), next: 0, sq: VecDeque::new(), freed_at: 0.0, stats }
    }

    /// Arrival time of the next not-yet-admitted request, if any.
    pub(crate) fn next_arrival(&self) -> Option<f64> {
        self.stream.get(self.next).map(|&(arrival, _)| arrival)
    }

    /// Moves every request that has arrived by `now` into the submission
    /// queue, respecting the depth bound.
    pub(crate) fn admit(&mut self, now: f64) {
        while let Some(&(arrival, req)) = self.stream.get(self.next) {
            if arrival > now || self.sq.len() >= self.spec.queue_depth {
                break;
            }
            // A backpressured arrival enters only once a slot freed.
            let submit = arrival.max(self.freed_at);
            if submit > arrival {
                self.stats.backpressured += 1;
            }
            self.sq.push_back(Queued { arrival, submit, req });
            self.stats.depth_high_water = self.stats.depth_high_water.max(self.sq.len());
            self.next += 1;
        }
    }

    /// Batched-engine twin of [`TenantState::admit`]: identical admission
    /// rules, backpressure accounting and high-water tracking, but the
    /// records live in a shared [`Arena`] and the submission queue holds
    /// handles — one slab allocation serves every tenant, and a record is
    /// touched exactly twice (alloc at admission, free at dispatch).
    pub(crate) fn admit_batched(
        &mut self,
        now: f64,
        arena: &mut Arena<Queued>,
        sq: &mut VecDeque<u32>,
    ) {
        while let Some(&(arrival, req)) = self.stream.get(self.next) {
            if arrival > now || sq.len() >= self.spec.queue_depth {
                break;
            }
            let submit = arrival.max(self.freed_at);
            if submit > arrival {
                self.stats.backpressured += 1;
            }
            sq.push_back(arena.alloc(Queued { arrival, submit, req }));
            self.stats.depth_high_water = self.stats.depth_high_water.max(sq.len());
            self.next += 1;
        }
    }

    /// Whether every submitted request has been admitted and completed.
    pub(crate) fn drained(&self) -> bool {
        self.next == self.stream.len() && self.sq.is_empty()
    }
}
