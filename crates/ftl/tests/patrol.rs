//! Patrol-scrubber contracts.
//!
//! Two bit-identity guarantees anchor the data-integrity layer:
//!
//! * **Off is free** — with patrol off and aging disabled, the integrity
//!   plumbing (birth timestamps, the clock, the idle-gap hooks) must leave
//!   every stat of every engine/queue-model combination bit-identical to a
//!   device that never heard of integrity.
//! * **Engines agree** — with patrol active (tracking, acceleration,
//!   refreshes, the works) the batched engine must reproduce the stepper's
//!   full stat set bit for bit, patrol counters included.

use ftl::{
    poisson_arrivals, EngineMode, FtlConfig, IntegrityConfig, IoOp, IoRequest, PatrolConfig,
    PatrolOrder, QueueModel, Ssd, Workload,
};

/// The timed-golden mixed workload: 3x-capacity random writes over half
/// the LPNs with reads and trims folded in, Poisson arrivals.
fn workload(dev: &Ssd) -> Vec<(f64, IoRequest)> {
    let info = dev.geometry_info();
    let n = (info.logical_pages * 3) as usize;
    let mut reqs = Workload::random_write(0.5).generate(&info, n, 5);
    for (i, r) in reqs.iter_mut().enumerate() {
        match i % 7 {
            3 => r.op = IoOp::Read,
            5 => *r = IoRequest { op: IoOp::Read, lpn: info.logical_pages - 1 },
            6 if i % 14 == 6 => r.op = IoOp::Trim,
            _ => {}
        }
    }
    poisson_arrivals(&reqs, 800.0, 1)
}

fn run_config(config: FtlConfig) -> Ssd {
    let mut dev = Ssd::new(config, 3).unwrap();
    let timed = workload(&dev);
    dev.run_timed(&timed).unwrap();
    dev
}

/// Full-stat-set bitwise comparison; `tag` names the combination under
/// test in failure messages.
fn assert_stats_bit_identical(a: &Ssd, b: &Ssd, tag: &str) {
    let (s, t) = (a.stats(), b.stats());
    assert_eq!(s.host_writes, t.host_writes, "{tag} host_writes");
    assert_eq!(s.host_reads, t.host_reads, "{tag} host_reads");
    assert_eq!(s.host_trims, t.host_trims, "{tag} host_trims");
    assert_eq!(s.gc_runs, t.gc_runs, "{tag} gc_runs");
    assert_eq!(s.gc_relocations, t.gc_relocations, "{tag} gc_relocations");
    assert_eq!(s.gc_slices, t.gc_slices, "{tag} gc_slices");
    assert_eq!(s.busy_us.to_bits(), t.busy_us.to_bits(), "{tag} busy_us");
    assert_eq!(s.idle_gc_us.to_bits(), t.idle_gc_us.to_bits(), "{tag} idle_gc_us");
    assert_eq!(s.patrol_us.to_bits(), t.patrol_us.to_bits(), "{tag} patrol_us");
    assert_eq!(s.refresh_us.to_bits(), t.refresh_us.to_bits(), "{tag} refresh_us");
    assert_eq!(s.uncorrectable_reads, t.uncorrectable_reads, "{tag} uncorrectable_reads");
    assert_eq!(s.refresh_relocations, t.refresh_relocations, "{tag} refresh_relocations");
    assert_eq!(s.patrol_scanned_pages, t.patrol_scanned_pages, "{tag} patrol_scanned_pages");
    assert_eq!(s.patrol_refreshes, t.patrol_refreshes, "{tag} patrol_refreshes");
    assert_eq!(s.patrol_passes, t.patrol_passes, "{tag} patrol_passes");
    assert_eq!(s.waf().to_bits(), t.waf().to_bits(), "{tag} waf");
    assert_eq!(s.write_latency.len(), t.write_latency.len(), "{tag} write samples");
    assert_eq!(
        s.write_latency.mean_us().to_bits(),
        t.write_latency.mean_us().to_bits(),
        "{tag} write mean"
    );
    assert_eq!(
        s.write_latency.quantile_us(0.99).to_bits(),
        t.write_latency.quantile_us(0.99).to_bits(),
        "{tag} write p99"
    );
    assert_eq!(
        s.write_latency.max_us().to_bits(),
        t.write_latency.max_us().to_bits(),
        "{tag} write max"
    );
    assert_eq!(s.read_latency.len(), t.read_latency.len(), "{tag} read samples");
    assert_eq!(
        s.read_latency.mean_us().to_bits(),
        t.read_latency.mean_us().to_bits(),
        "{tag} read mean"
    );
    assert_eq!(
        s.read_latency.quantile_us(0.99).to_bits(),
        t.read_latency.quantile_us(0.99).to_bits(),
        "{tag} read p99"
    );
}

#[test]
fn patrol_off_and_zero_aging_is_bit_identical_to_the_seed_config() {
    // An explicitly spelled-out "everything off" integrity block must be
    // indistinguishable from the default — across both engines and both
    // queue models, with idle GC on so every background hook runs.
    for engine in [EngineMode::Stepper, EngineMode::Batched] {
        for queue_model in [QueueModel::Single, QueueModel::PerChip] {
            let mut seed_config = FtlConfig::small_test();
            seed_config.idle_gc = true;
            seed_config.engine = engine;
            seed_config.queue_model = queue_model;
            let mut explicit = seed_config.clone();
            explicit.integrity = IntegrityConfig {
                track: false,
                retention_hours_per_us: 0.0,
                patrol: PatrolConfig::Off,
            };
            let a = run_config(seed_config);
            let b = run_config(explicit);
            let tag = format!("engine={engine:?} queue={queue_model:?}");
            assert_stats_bit_identical(&a, &b, &tag);
            let s = b.stats();
            assert_eq!(s.uncorrectable_reads, 0, "{tag}: no ECC model consulted");
            assert_eq!(s.patrol_scanned_pages, 0, "{tag}: patrol never ran");
            assert_eq!(s.refresh_us.to_bits(), 0.0f64.to_bits(), "{tag}: no refresh time");
            assert_eq!(s.patrol_us.to_bits(), 0.0f64.to_bits(), "{tag}: no patrol time");
        }
    }
}

#[test]
fn tracking_without_aging_never_goes_uncorrectable() {
    // Tracking on but zero acceleration: ages stay 0 h, so only wear (P/E
    // cycling) feeds the ECC model. The scrubber may still refresh the
    // most-cycled pages — that's the model working — but nothing may reach
    // the uncorrectable limit, so the read path never refreshes reactively.
    let mut config = FtlConfig::small_test();
    config.idle_gc = true;
    config.integrity = IntegrityConfig {
        track: true,
        retention_hours_per_us: 0.0,
        patrol: PatrolConfig::On {
            interval_us: 10_000.0,
            slice_us: 200.0,
            refresh_fraction: 0.5,
            order: PatrolOrder::SlowPoolFirst,
        },
    };
    let dev = run_config(config);
    let s = dev.stats();
    assert!(s.patrol_scanned_pages > 0, "patrol must actually scan in idle gaps");
    assert_eq!(s.uncorrectable_reads, 0, "age-0 pages never exhaust the retry ladder");
    assert_eq!(s.refresh_relocations, 0, "no reactive refreshes without uncorrectable reads");
    assert_eq!(s.refresh_us.to_bits(), 0.0f64.to_bits());
}

#[test]
fn batched_engine_matches_stepper_with_patrol_active() {
    // Full integrity stack: aggressive acceleration so the run produces
    // uncorrectable reads, in-path refreshes, patrol refreshes and
    // completed passes — then every stat must agree bit for bit between
    // the engines, on both queue models.
    for queue_model in [QueueModel::Single, QueueModel::PerChip] {
        let mut config = FtlConfig::small_test();
        config.idle_gc = true;
        config.queue_model = queue_model;
        config.integrity = IntegrityConfig {
            track: true,
            retention_hours_per_us: 0.01,
            patrol: PatrolConfig::On {
                interval_us: 20_000.0,
                slice_us: 300.0,
                refresh_fraction: 0.5,
                order: PatrolOrder::SlowPoolFirst,
            },
        };
        let mut stepper_config = config.clone();
        stepper_config.engine = EngineMode::Stepper;
        let mut batched_config = config;
        batched_config.engine = EngineMode::Batched;
        let stepper = run_config(stepper_config);
        let batched = run_config(batched_config);
        let tag = format!("queue={queue_model:?}");
        let s = stepper.stats();
        assert!(s.patrol_scanned_pages > 0, "{tag}: the regime must exercise patrol");
        assert!(s.patrol_refreshes > 0, "{tag}: the regime must refresh proactively");
        assert_stats_bit_identical(&stepper, &batched, &tag);
    }
}

#[test]
fn blind_and_slow_first_orders_both_complete_passes() {
    // The two scan orders visit the same set of sealed superblocks — only
    // the order differs — so over a quiet device both complete passes and
    // scan a comparable page population.
    let mut scanned = Vec::new();
    for order in [PatrolOrder::Blind, PatrolOrder::SlowPoolFirst] {
        let mut config = FtlConfig::small_test();
        config.idle_gc = true;
        config.integrity = IntegrityConfig {
            track: true,
            retention_hours_per_us: 0.0005,
            patrol: PatrolConfig::On {
                interval_us: 50_000.0,
                slice_us: 400.0,
                refresh_fraction: 0.5,
                order,
            },
        };
        let dev = run_config(config);
        let s = dev.stats();
        assert!(s.patrol_passes > 0, "{order:?}: passes complete on a mostly idle device");
        scanned.push(s.patrol_scanned_pages);
    }
    let (blind, slow) = (scanned[0] as f64, scanned[1] as f64);
    let ratio = blind.max(slow) / blind.min(slow).max(1.0);
    assert!(ratio < 1.5, "orders scan comparable populations: blind {blind} vs slow-first {slow}");
}
