//! Preemptive-GC contract.
//!
//! Three properties of the sliced collector that the bench numbers rest on:
//! the worst single-command collection stall shrinks by at least the
//! configured budget ratio versus the run-to-completion collector; the
//! default `GcBudget::Unbounded` leaves every slice statistic untouched
//! (so the goldens cannot have moved); and a program failure landing on a
//! relocated page while the job is parked restages the payload without
//! losing any of the victim's live data.

use std::collections::HashSet;

use ftl::{FtlConfig, GcBudget, IoOp, Ssd, Workload};

/// Overwrite-heavy workload sized to keep the collector busy: three times
/// the logical capacity of pure random writes.
fn drive(config: FtlConfig, seed: u64) -> Ssd {
    let mut dev = Ssd::new(config, 3).unwrap();
    let info = dev.geometry_info();
    let reqs = Workload::random_write(0.6).generate(&info, (info.logical_pages * 3) as usize, seed);
    for req in &reqs {
        match req.op {
            IoOp::Write => drop(dev.write(req.lpn).unwrap()),
            IoOp::Read => drop(dev.read(req.lpn).unwrap()),
            IoOp::Trim => dev.trim(req.lpn).unwrap(),
        }
    }
    dev
}

#[test]
fn sliced_collector_bounds_the_worst_per_command_stall() {
    const SLICE_US: f64 = 300.0;
    let unbounded = drive(FtlConfig::small_test(), 7);
    let mut config = FtlConfig::small_test();
    config.gc_budget = GcBudget::Sliced { slice_us: SLICE_US };
    let sliced = drive(config, 7);

    let u = unbounded.stats();
    let s = sliced.stats();
    assert!(u.gc_runs > 0, "workload must trigger collection");
    assert!(s.gc_runs > 0, "sliced run must also collect victims");
    assert!(s.gc_slices > 0 && s.gc_yield_count > 0, "slices must park mid-victim");

    // The regression this file exists for: the run-to-completion collector
    // charges a whole victim (or several) to one command, the sliced one at
    // most a budget overrun plus the emergency floor. The old worst case
    // must exceed the new one by at least the ratio of a victim's
    // relocation cost to the slice budget — conservatively pinned at the
    // unbounded worst case over ten slice budgets, so a future change that
    // quietly reintroduces collection bursts fails loudly here.
    let worst_unbounded = u.gc_stall.max_us();
    let worst_sliced = s.gc_stall.max_us();
    assert!(
        worst_unbounded >= worst_sliced + 10.0 * SLICE_US,
        "unbounded worst stall {worst_unbounded} must exceed sliced {worst_sliced} \
         by >= 10 slice budgets ({SLICE_US} us each)"
    );
    // Both runs end with the same live data, whatever the collector.
    for lpn in 0..unbounded.geometry_info().logical_pages {
        assert_eq!(
            unbounded.mapping().lookup(lpn).is_some(),
            sliced.mapping().lookup(lpn).is_some(),
            "liveness diverged at lpn {lpn}"
        );
    }
}

#[test]
fn unbounded_default_keeps_slice_stats_at_zero() {
    let dev = drive(FtlConfig::small_test(), 11);
    let s = dev.stats();
    assert!(s.gc_runs > 0, "workload must trigger collection");
    // The slice machinery must be fully inert under the default budget —
    // these fields joining the bit-identity suites is only meaningful if
    // the legacy path provably never touches them.
    assert_eq!(s.gc_slices, 0, "unbounded collection must not count slices");
    assert_eq!(s.gc_yield_count, 0, "unbounded collection never yields");
    assert!(s.gc_slice_us.samples_us().is_empty(), "no slice durations");
    // Stall accounting, by contrast, is mode-independent: the write
    // histogram's collection component is split out either way.
    assert!(s.gc_stall_us > 0.0, "unbounded stalls must still be accounted");
    assert!(!s.gc_stall.samples_us().is_empty());
    assert!(s.gc_stall.max_us() <= s.gc_stall_us);
}

#[test]
fn gc_allowance_gates_ladder_slices_but_not_the_emergency_floor() {
    const SLICE_US: f64 = 300.0;
    let drive_with_allowance = |allowance: Option<f64>| {
        let mut config = FtlConfig::small_test();
        config.gc_budget = GcBudget::Sliced { slice_us: SLICE_US };
        let mut dev = Ssd::new(config, 3).unwrap();
        if let Some(a) = allowance {
            dev.set_gc_allowance(a);
        }
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.6).generate(&info, (info.logical_pages * 3) as usize, 7);
        for req in &reqs {
            match req.op {
                IoOp::Write => drop(dev.write(req.lpn).unwrap()),
                IoOp::Read => drop(dev.read(req.lpn).unwrap()),
                IoOp::Trim => dev.trim(req.lpn).unwrap(),
            }
        }
        dev
    };

    // The default (no allowance set) and an explicit INFINITY allowance are
    // the same device, bit for bit — the cap only exists once finite.
    let plain = drive_with_allowance(None);
    let uncapped = drive_with_allowance(Some(f64::INFINITY));
    let (p, u) = (plain.stats(), uncapped.stats());
    assert!(p.gc_yield_count > 0, "workload must park ladder slices");
    assert_eq!(p.gc_slices, u.gc_slices);
    assert_eq!(p.gc_yield_count, u.gc_yield_count);
    assert_eq!(p.gc_stall_us.to_bits(), u.gc_stall_us.to_bits());
    assert_eq!(p.gc_relocations, u.gc_relocations);

    // A zero allowance suppresses every ladder slice: collection then runs
    // only through the emergency floor, whose unbudgeted reclaim never
    // yields. Data integrity must survive the starved collector.
    let starved = drive_with_allowance(Some(0.0));
    let s = starved.stats();
    assert_eq!(s.gc_yield_count, 0, "no ladder slices means nothing ever parks");
    assert!(s.gc_runs > 0, "the emergency floor must still reclaim space");
    for lpn in 0..plain.geometry_info().logical_pages {
        assert_eq!(
            plain.mapping().lookup(lpn).is_some(),
            starved.mapping().lookup(lpn).is_some(),
            "liveness diverged at lpn {lpn}"
        );
    }

    // NaN and negative allowances clamp to zero rather than poisoning the
    // budget comparison.
    for bogus in [f64::NAN, -1.0] {
        let clamped = drive_with_allowance(Some(bogus));
        let c = clamped.stats();
        assert_eq!(c.gc_slices, s.gc_slices, "allowance {bogus} must behave like 0");
        assert_eq!(c.gc_stall_us.to_bits(), s.gc_stall_us.to_bits());
    }
}

#[test]
fn program_failure_on_relocated_page_while_parked_restages_without_data_loss() {
    // Tiny slices park the job on nearly every quantum; a high program-fail
    // rate then lands failures on relocated pages while the victim is
    // half-collected. The contract: the failed program's payload is
    // restaged (remapped_writes), the victim's live data survives, and
    // every acknowledged write is still readable at the end.
    let mut config = FtlConfig::small_test();
    config.gc_budget = GcBudget::Sliced { slice_us: 120.0 };
    // Each failure retires a block, and failure handling can itself chain
    // extra superblock assemblies; widen over-provisioning so retirements
    // and remap chains stay inside the spare pool on this tiny geometry.
    config.overprovision = 0.45;
    config.fault.program_fail_prob = 0.003;
    let mut dev = Ssd::new(config, 5).unwrap();
    let info = dev.geometry_info();
    let reqs = Workload::random_write(0.6).generate(&info, (info.logical_pages * 3) as usize, 13);
    let mut live: HashSet<u64> = HashSet::new();
    for req in &reqs {
        match req.op {
            IoOp::Write => {
                dev.write(req.lpn).unwrap();
                live.insert(req.lpn);
            }
            IoOp::Read => drop(dev.read(req.lpn).unwrap()),
            IoOp::Trim => {
                dev.trim(req.lpn).unwrap();
                live.remove(&req.lpn);
            }
        }
    }
    let s = dev.stats();
    assert!(s.gc_yield_count > 0, "jobs must park mid-victim");
    assert!(s.gc_relocations > 0, "collection must relocate pages");
    assert!(s.degraded_superblocks > 0, "failures must actually fire");
    assert!(s.remapped_writes > 0, "failed programs must restage their payload");
    // Every acknowledged write survives collection + failures: the read
    // path debug-asserts the stored tag matches the LPN, so a mix-up
    // between a stale victim copy and its relocated twin trips here too.
    for &lpn in &live {
        assert!(
            dev.read(lpn).unwrap().is_some(),
            "live lpn {lpn} lost across preempted collection with program failures"
        );
    }
    for lpn in 0..info.logical_pages {
        assert_eq!(
            dev.mapping().lookup(lpn).is_some(),
            live.contains(&lpn),
            "mapping liveness wrong at lpn {lpn}"
        );
    }
}
