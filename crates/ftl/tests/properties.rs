//! Property-based tests: the simulated SSD must agree with an in-memory
//! model of the logical address space under arbitrary request streams, and
//! the dense page mapping must agree with its naive `HashMap` oracle.

use flash_model::{CellType, Geometry};
use ftl::{FtlConfig, IoRequest, Mapping, OrganizationScheme, Ssd};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Read(u64),
    Trim(u64),
}

fn arb_ops(capacity: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..10, 0..capacity).prop_map(|(kind, lpn)| match kind {
            0..=5 => Op::Write(lpn),
            6..=8 => Op::Read(lpn),
            _ => Op::Trim(lpn),
        }),
        0..len,
    )
}

fn schemes() -> [OrganizationScheme; 3] {
    [
        OrganizationScheme::Random,
        OrganizationScheme::Sequential,
        OrganizationScheme::QstrMed { candidates: 4 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn device_agrees_with_model(ops in arb_ops(200, 400), seed in any::<u64>(), scheme_idx in 0usize..3) {
        let mut config = FtlConfig::small_test();
        config.scheme = schemes()[scheme_idx];
        let mut dev = Ssd::new(config, seed).unwrap();
        let capacity = dev.geometry_info().logical_pages;
        let mut model: HashMap<u64, ()> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Write(lpn) if lpn < capacity => {
                    dev.write(lpn).unwrap();
                    model.insert(lpn, ());
                }
                Op::Read(lpn) if lpn < capacity => {
                    let got = dev.read(lpn).unwrap();
                    prop_assert_eq!(got.is_some(), model.contains_key(&lpn),
                        "read({}) visibility mismatch", lpn);
                }
                Op::Trim(lpn) if lpn < capacity => {
                    dev.trim(lpn).unwrap();
                    model.remove(&lpn);
                }
                _ => {}
            }
        }
        // After a flush, every model page must still be readable.
        dev.flush().unwrap();
        for lpn in model.keys() {
            prop_assert!(dev.read(*lpn).unwrap().is_some(), "lost page {}", lpn);
        }
    }

    #[test]
    fn valid_pages_never_exceed_logical_capacity(writes in proptest::collection::vec(0u64..150, 0..600), seed in any::<u64>()) {
        let mut dev = Ssd::new(FtlConfig::small_test(), seed).unwrap();
        let capacity = dev.geometry_info().logical_pages;
        let mut distinct = std::collections::HashSet::new();
        for lpn in writes {
            if lpn < capacity {
                dev.write(lpn).unwrap();
                distinct.insert(lpn);
            }
        }
        dev.flush().unwrap();
        prop_assert_eq!(dev.valid_pages(), distinct.len());
    }

    #[test]
    fn stats_are_internally_consistent(n_writes in 1usize..400, seed in any::<u64>()) {
        let mut dev = Ssd::new(FtlConfig::small_test(), seed).unwrap();
        let capacity = dev.geometry_info().logical_pages;
        for i in 0..n_writes {
            dev.write(i as u64 % (capacity / 2).max(1)).unwrap();
        }
        let s = dev.stats();
        prop_assert_eq!(s.host_writes, n_writes as u64);
        prop_assert!(s.waf() >= 1.0 || s.gc_relocations == 0);
        prop_assert!(s.extra_program_us >= 0.0);
        prop_assert!(s.busy_us > 0.0);
        prop_assert_eq!(s.write_latency.len(), n_writes);
    }

    #[test]
    fn gc_reclaims_enough_to_keep_writing(seed in any::<u64>()) {
        // Overwrite a small working set many times: every write must succeed
        // because GC always finds nearly-empty victims.
        let mut dev = Ssd::new(FtlConfig::small_test(), seed).unwrap();
        let capacity = dev.geometry_info().logical_pages;
        let span = (capacity / 4).max(1);
        for i in 0..(capacity * 4) {
            dev.write(i % span).unwrap();
        }
        prop_assert!(dev.stats().gc_runs > 0);
    }
}

/// One step against the mapping stores: map a logical page somewhere, trim
/// one, or sweep a whole block (what GC does after relocating + erasing).
#[derive(Debug, Clone, Copy)]
enum MapStep {
    Map { lpn: u64, page: usize },
    Unmap { lpn: u64 },
    InvalidateBlock { block: usize },
}

fn arb_map_steps(
    capacity: u64,
    total_pages: usize,
    total_blocks: usize,
    len: usize,
) -> impl Strategy<Value = Vec<MapStep>> {
    proptest::collection::vec(
        (0u8..8, 0..capacity, 0..total_pages).prop_map(move |(kind, lpn, page)| match kind {
            0..=4 => MapStep::Map { lpn, page },
            5..=6 => MapStep::Unmap { lpn },
            _ => MapStep::InvalidateBlock { block: page % total_blocks },
        }),
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dense_mapping_agrees_with_naive_oracle(
        steps in arb_map_steps(100, 144, 12, 300),
    ) {
        // Dense store (flat p2l + per-block counters) vs the original
        // HashMap store, driven through identical random write/trim/GC
        // sequences: every query must agree at every step boundary.
        let geo = Geometry::new(2, 2, 3, 2, 2, CellType::Tlc);
        let blocks: Vec<_> = geo.blocks().collect();
        let ppb = geo.pages_per_block() as usize;
        prop_assert_eq!(blocks.len() * ppb, 144);
        let mut dense = Mapping::new(100, &geo);
        let mut naive = Mapping::new_naive(100);
        for step in steps {
            match step {
                MapStep::Map { lpn, page } => {
                    let block = blocks[page / ppb];
                    let ppa = geo.page_at_offset(block, page % ppb);
                    // A physical page is programmed once per erase cycle;
                    // both stores must agree on whether this one is taken.
                    prop_assert_eq!(dense.is_valid(ppa), naive.is_valid(ppa));
                    if !dense.is_valid(ppa) {
                        dense.map(lpn, ppa);
                        naive.map(lpn, ppa);
                    }
                }
                MapStep::Unmap { lpn } => {
                    prop_assert_eq!(dense.unmap(lpn), naive.unmap(lpn));
                }
                MapStep::InvalidateBlock { block } => {
                    dense.invalidate_block(blocks[block]);
                    naive.invalidate_block(blocks[block]);
                }
            }
            prop_assert_eq!(dense.valid_pages(), naive.valid_pages());
        }
        prop_assert!(dense.is_consistent());
        prop_assert!(naive.is_consistent());
        for lpn in 0..100 {
            prop_assert_eq!(dense.lookup(lpn), naive.lookup(lpn), "lookup({}) differs", lpn);
        }
        for &b in &blocks {
            prop_assert_eq!(dense.valid_in_block_count(b), naive.valid_in_block_count(b));
            let d: Vec<_> = dense.valid_in_block(b).collect();
            let n: Vec<_> = naive.valid_in_block(b).collect();
            prop_assert_eq!(d, n, "valid_in_block({:?}) differs", b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_parser_never_panics(input in "[ -~\n]{0,256}") {
        // Arbitrary printable input: parse must return Ok or Err, not panic.
        let _ = ftl::trace::parse_trace(input.as_bytes());
    }

    #[test]
    fn parsed_traces_roundtrip_through_fold(lpns in proptest::collection::vec(0u64..10_000, 0..50), capacity in 1u64..500) {
        let text: String = lpns.iter().map(|l| format!("W,{l}\n")).collect();
        let reqs = ftl::trace::parse_trace(text.as_bytes()).unwrap();
        let folded = ftl::trace::fold_to_capacity(&reqs, capacity);
        prop_assert_eq!(folded.len(), reqs.len());
        prop_assert!(folded.iter().all(|r| r.lpn < capacity));
    }
}

#[test]
fn read_your_writes_with_requests_api() {
    let mut dev = Ssd::new(FtlConfig::small_test(), 1).unwrap();
    let reqs: Vec<IoRequest> =
        (0..50).map(IoRequest::write).chain((0..50).map(IoRequest::read)).collect();
    dev.run(&reqs).unwrap();
    assert_eq!(dev.stats().host_reads, 50);
    assert_eq!(dev.stats().read_latency.len(), 50);
}
