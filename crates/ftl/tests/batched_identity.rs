//! Batched-engine oracle contract.
//!
//! The stepper replay loop is the golden oracle: `engine = Batched` must
//! produce the *entire* stat set — every counter, every running float sum,
//! every latency sample vector — bit-identical to it, for both queue models
//! and with idle-gap GC on or off. A single reassociated float add, skipped
//! RNG draw, or reordered histogram sample flips a bit here.
//!
//! The crash test additionally pins the incremental checkpoint table
//! (`fast_ckpt`) and the prefix latency cache: a batched device must crash,
//! checkpoint, and recover exactly like a stepper device.

use flash_model::FaultConfig;
use ftl::{
    poisson_arrivals, CrashPoint, EngineMode, FtlConfig, FtlError, GcBudget, IoOp, IoRequest,
    ParityConfig, QueueModel, Ssd, SsdStats, Workload,
};

/// Same mixed open-loop workload as `timed_golden.rs`: 3x-capacity writes
/// with reads (hits and misses) and trims folded in, Poisson at 800 µs.
fn workload(dev: &Ssd) -> Vec<(f64, IoRequest)> {
    let info = dev.geometry_info();
    let n = (info.logical_pages * 3) as usize;
    let mut reqs = Workload::random_write(0.5).generate(&info, n, 5);
    for (i, r) in reqs.iter_mut().enumerate() {
        match i % 7 {
            3 => r.op = IoOp::Read,
            5 => *r = IoRequest { op: IoOp::Read, lpn: info.logical_pages - 1 },
            6 if i % 14 == 6 => r.op = IoOp::Trim,
            _ => {}
        }
    }
    poisson_arrivals(&reqs, 800.0, 1)
}

fn run(idle_gc: bool, model: QueueModel, engine: EngineMode) -> Ssd {
    run_with_budget(idle_gc, model, engine, GcBudget::Unbounded)
}

fn run_with_budget(idle_gc: bool, model: QueueModel, engine: EngineMode, budget: GcBudget) -> Ssd {
    let mut config = FtlConfig::small_test();
    config.idle_gc = idle_gc;
    config.queue_model = model;
    config.engine = engine;
    config.gc_budget = budget;
    let mut dev = Ssd::new(config, 3).unwrap();
    let timed = workload(&dev);
    dev.run_timed(&timed).unwrap();
    dev
}

fn assert_bits(a: f64, b: f64, what: &str, tag: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{tag}: {what} drifted ({a} vs {b})");
}

fn assert_samples(a: &[f64], b: &[f64], what: &str, tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: {what} sample count drifted");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag}: {what} sample {i} drifted ({x} vs {y})");
    }
}

/// Compares every field of [`SsdStats`] — floats by bit pattern, latency
/// histograms as full ordered sample vectors.
fn assert_stats_bit_identical(s: &SsdStats, b: &SsdStats, tag: &str) {
    assert_eq!(s.host_writes, b.host_writes, "{tag}: host_writes");
    assert_eq!(s.host_writes_by_class, b.host_writes_by_class, "{tag}: host_writes_by_class");
    assert_eq!(s.host_reads, b.host_reads, "{tag}: host_reads");
    assert_eq!(s.host_trims, b.host_trims, "{tag}: host_trims");
    assert_eq!(s.gc_relocations, b.gc_relocations, "{tag}: gc_relocations");
    assert_eq!(s.gc_runs, b.gc_runs, "{tag}: gc_runs");
    assert_eq!(s.gc_slices, b.gc_slices, "{tag}: gc_slices");
    assert_eq!(s.gc_yield_count, b.gc_yield_count, "{tag}: gc_yield_count");
    assert_bits(s.gc_stall_us, b.gc_stall_us, "gc_stall_us", tag);
    assert_samples(s.gc_slice_us.samples_us(), b.gc_slice_us.samples_us(), "gc_slice", tag);
    assert_samples(s.gc_stall.samples_us(), b.gc_stall.samples_us(), "gc_stall", tag);
    assert_eq!(s.superwl_programs, b.superwl_programs, "{tag}: superwl_programs");
    assert_eq!(s.superblock_erases, b.superblock_erases, "{tag}: superblock_erases");
    assert_eq!(s.superblocks_assembled, b.superblocks_assembled, "{tag}: superblocks_assembled");
    assert_eq!(s.retired_blocks, b.retired_blocks, "{tag}: retired_blocks");
    assert_eq!(s.remapped_writes, b.remapped_writes, "{tag}: remapped_writes");
    assert_eq!(s.refresh_relocations, b.refresh_relocations, "{tag}: refresh_relocations");
    assert_eq!(s.uncorrectable_reads, b.uncorrectable_reads, "{tag}: uncorrectable_reads");
    assert_eq!(s.rebuild_reads, b.rebuild_reads, "{tag}: rebuild_reads");
    assert_eq!(s.rebuilds_ok, b.rebuilds_ok, "{tag}: rebuilds_ok");
    assert_eq!(s.rebuilds_failed, b.rebuilds_failed, "{tag}: rebuilds_failed");
    assert_bits(s.rebuild_us, b.rebuild_us, "rebuild_us", tag);
    assert_bits(s.rebuild_ok_us, b.rebuild_ok_us, "rebuild_ok_us", tag);
    assert_bits(s.rebuild_ok_fanout_us, b.rebuild_ok_fanout_us, "rebuild_ok_fanout_us", tag);
    assert_eq!(s.parity_verified, b.parity_verified, "{tag}: parity_verified");
    assert_eq!(s.parity_mismatch, b.parity_mismatch, "{tag}: parity_mismatch");
    assert_eq!(s.degraded_superblocks, b.degraded_superblocks, "{tag}: degraded_superblocks");
    assert_eq!(s.queue_depth_max, b.queue_depth_max, "{tag}: queue_depth_max");
    assert_eq!(s.recovery_scan_pages, b.recovery_scan_pages, "{tag}: recovery_scan_pages");
    assert_eq!(s.recovered_mappings, b.recovered_mappings, "{tag}: recovered_mappings");
    assert_eq!(s.torn_writes_discarded, b.torn_writes_discarded, "{tag}: torn_writes_discarded");
    assert_bits(s.extra_program_us, b.extra_program_us, "extra_program_us", tag);
    assert_bits(s.extra_erase_us, b.extra_erase_us, "extra_erase_us", tag);
    assert_bits(s.busy_us, b.busy_us, "busy_us", tag);
    assert_bits(s.idle_gc_us, b.idle_gc_us, "idle_gc_us", tag);
    assert_bits(s.queue_wait_us, b.queue_wait_us, "queue_wait_us", tag);
    assert_bits(s.trim_wait_us, b.trim_wait_us, "trim_wait_us", tag);
    assert_bits(s.makespan_us, b.makespan_us, "makespan_us", tag);
    assert_bits(s.recovery_time_us, b.recovery_time_us, "recovery_time_us", tag);
    assert_samples(&s.chip_busy_us, &b.chip_busy_us, "chip_busy_us", tag);
    assert_samples(s.write_latency.samples_us(), b.write_latency.samples_us(), "write", tag);
    assert_samples(s.read_latency.samples_us(), b.read_latency.samples_us(), "read", tag);
    // Belt and braces: derived statistics fold from the samples above, so
    // they cannot disagree — but they are what reports print, so pin them.
    assert_bits(s.write_latency.mean_us(), b.write_latency.mean_us(), "write mean", tag);
    assert_bits(
        s.write_latency.quantile_us(0.99),
        b.write_latency.quantile_us(0.99),
        "write p99",
        tag,
    );
    assert_bits(s.write_latency.max_us(), b.write_latency.max_us(), "write max", tag);
    assert_bits(s.read_latency.mean_us(), b.read_latency.mean_us(), "read mean", tag);
    assert_bits(s.waf(), b.waf(), "WAF", tag);
    assert_bits(s.extra_program_per_op_us(), b.extra_program_per_op_us(), "extra PGM", tag);
}

#[test]
fn batched_engine_matches_stepper_oracle_bit_for_bit() {
    for model in [QueueModel::Single, QueueModel::PerChip] {
        for idle_gc in [false, true] {
            let tag = format!("{model:?} idle_gc={idle_gc}");
            let stepper = run(idle_gc, model, EngineMode::Stepper);
            let batched = run(idle_gc, model, EngineMode::Batched);
            assert_stats_bit_identical(stepper.stats(), batched.stats(), &tag);
            let lpns = stepper.geometry_info().logical_pages;
            for lpn in 0..lpns {
                assert_eq!(
                    stepper.mapping().lookup(lpn),
                    batched.mapping().lookup(lpn),
                    "{tag}: mapping diverged at lpn {lpn}"
                );
            }
        }
    }
}

#[test]
fn batched_engine_matches_stepper_with_sliced_gc() {
    // The sliced collector adds state the engines must keep in lockstep: a
    // parked GcJob, slice/yield counters, the stall histogram, and the
    // idle-gap slice arms of all four replay loops.
    let budget = GcBudget::Sliced { slice_us: 300.0 };
    for model in [QueueModel::Single, QueueModel::PerChip] {
        for idle_gc in [false, true] {
            let tag = format!("sliced {model:?} idle_gc={idle_gc}");
            let stepper = run_with_budget(idle_gc, model, EngineMode::Stepper, budget);
            let batched = run_with_budget(idle_gc, model, EngineMode::Batched, budget);
            assert!(stepper.stats().gc_slices > 0, "{tag}: workload must exercise slices");
            assert_stats_bit_identical(stepper.stats(), batched.stats(), &tag);
            for lpn in 0..stepper.geometry_info().logical_pages {
                assert_eq!(
                    stepper.mapping().lookup(lpn),
                    batched.mapping().lookup(lpn),
                    "{tag}: mapping diverged at lpn {lpn}"
                );
            }
        }
    }
}

#[test]
fn batched_engine_matches_stepper_with_active_parity() {
    // Parity changes the data layout (11-wide stripes + parity page), the
    // capacity export, and the read path (uncorrectable reads rebuild their
    // stripe and restage mid-run, charging rebuild_us/gc_stall_us). Both
    // engines must agree bit-for-bit on all of it — and the workload must
    // actually exercise rebuilds, or the test proves nothing.
    let run = |engine: EngineMode| {
        let mut config = FtlConfig::small_test();
        config.parity = ParityConfig::On;
        config.fault = FaultConfig {
            weak_block_prob: 0.15,
            weak_ber_multiplier: 150.0,
            page_type_ber_spread: 0.35,
            ..FaultConfig::default()
        };
        config.queue_model = QueueModel::PerChip;
        config.engine = engine;
        let mut dev = Ssd::new(config, 3).unwrap();
        let timed = workload(&dev);
        dev.run_timed(&timed).unwrap();
        dev
    };
    let stepper = run(EngineMode::Stepper);
    let batched = run(EngineMode::Batched);
    assert!(stepper.stats().uncorrectable_reads > 0, "media must produce uncorrectables");
    assert!(stepper.stats().rebuild_reads > 0, "rebuilds must fire");
    assert_stats_bit_identical(stepper.stats(), batched.stats(), "active parity");
    for lpn in 0..stepper.geometry_info().logical_pages {
        assert_eq!(
            stepper.mapping().lookup(lpn),
            batched.mapping().lookup(lpn),
            "active parity: mapping diverged at lpn {lpn}"
        );
    }
}

#[test]
fn batched_engine_crashes_and_recovers_exactly_like_the_stepper() {
    // Untimed drive with an injected power loss: the batched device keeps
    // its checkpoint seq table (`fast_ckpt`) and prefix latency cache warm
    // the whole time, and both must be invisible — same crash op, same
    // recovery report, same rebuilt mapping, same post-recovery stats.
    let run = |engine: EngineMode| {
        let mut config = FtlConfig::small_test();
        config.engine = engine;
        config.spor.checkpoint_interval = 16;
        config.spor.crash = Some(CrashPoint::from_seed(42, 1500));
        let mut dev = Ssd::new(config, 11).unwrap();
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
        let mut resume = reqs.len();
        for (i, req) in reqs.iter().enumerate() {
            let r = match req.op {
                IoOp::Write => dev.write(req.lpn).map(|_| ()),
                IoOp::Read => dev.read(req.lpn).map(|_| ()),
                IoOp::Trim => dev.trim(req.lpn),
            };
            match r {
                Ok(()) => {}
                Err(FtlError::PowerLoss) => {
                    resume = i;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(resume < reqs.len(), "the injected crash must fire");
        let report = dev.recover().unwrap();
        // Resume past the crash so the rebuilt fast_ckpt table is exercised
        // by further checkpoints, not just rebuilt.
        for req in &reqs[resume..] {
            match req.op {
                IoOp::Write => drop(dev.write(req.lpn).unwrap()),
                IoOp::Read => drop(dev.read(req.lpn).unwrap()),
                IoOp::Trim => dev.trim(req.lpn).unwrap(),
            }
        }
        (resume, report, dev)
    };
    let (at_s, report_s, stepper) = run(EngineMode::Stepper);
    let (at_b, report_b, batched) = run(EngineMode::Batched);
    assert_eq!(at_s, at_b, "crash fired at a different op");
    assert_eq!(report_s, report_b, "recovery reports diverged");
    assert_stats_bit_identical(stepper.stats(), batched.stats(), "post-recovery");
    for lpn in 0..stepper.geometry_info().logical_pages {
        assert_eq!(
            stepper.mapping().lookup(lpn),
            batched.mapping().lookup(lpn),
            "recovered mapping diverged at lpn {lpn}"
        );
    }
}
