//! Crash-recovery properties.
//!
//! The durability contract under test: a write is acknowledged once its
//! super word-line program completes, so after a sudden power loss at an
//! *arbitrary* flash-op index, recovery must rebuild exactly the mapping
//! the device held in RAM at the instant of the crash — nothing lost,
//! no phantom mappings — and the dense mapping must stay bit-identical
//! to the naive `HashMap` oracle through crash + recovery + resumed work.

use flash_model::FaultConfig;
use ftl::{
    CrashPoint, FtlConfig, FtlError, GcBudget, IntegrityConfig, IoOp, IoRequest,
    OrganizationScheme, ParityConfig, PatrolConfig, PatrolOrder, Ssd, Workload,
};
use proptest::prelude::*;

fn apply(dev: &mut Ssd, req: &IoRequest) -> Result<(), FtlError> {
    match req.op {
        IoOp::Write => dev.write(req.lpn).map(|_| ()),
        IoOp::Read => dev.read(req.lpn).map(|_| ()),
        IoOp::Trim => dev.trim(req.lpn),
    }
}

/// Drives both devices in lockstep until either the stream ends or power
/// is lost on both at the same op. Returns the index to resume from.
fn drive_lockstep(
    dense: &mut Ssd,
    naive: &mut Ssd,
    reqs: &[IoRequest],
) -> Result<usize, TestCaseError> {
    for (i, req) in reqs.iter().enumerate() {
        let d = apply(dense, req);
        let n = apply(naive, req);
        match (d, n) {
            (Ok(()), Ok(())) => {}
            (Err(FtlError::PowerLoss), Err(FtlError::PowerLoss)) => return Ok(i),
            (d, n) => {
                prop_assert!(false, "op {} diverged: dense {:?} naive {:?}", i, d, n);
            }
        }
    }
    Ok(reqs.len())
}

fn schemes() -> [OrganizationScheme; 3] {
    [
        OrganizationScheme::Random,
        OrganizationScheme::Sequential,
        OrganizationScheme::QstrMed { candidates: 4 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn recovery_rebuilds_exactly_the_ram_mapping_at_any_crash_point(
        crash_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        scheme_idx in 0usize..3,
        interval_idx in 0usize..3,
    ) {
        let intervals = [0u64, 8, 128];
        let mut config = FtlConfig::small_test();
        config.scheme = schemes()[scheme_idx];
        config.spor.checkpoint_interval = intervals[interval_idx];
        config.spor.crash = Some(CrashPoint::from_seed(crash_seed, 2500));
        let mut dense = Ssd::new(config.clone(), 11).unwrap();
        let mut naive = Ssd::new(config, 11).unwrap();
        naive.use_naive_mapping_for_benchmarks();
        let info = dense.geometry_info();
        let mut reqs = Workload::RandomWrite { span: 0.6, read_fraction: 0.15 }
            .generate(&info, (info.logical_pages * 3) as usize, workload_seed);
        for (i, r) in reqs.iter_mut().enumerate() {
            if i % 17 == 0 && r.op == IoOp::Write {
                *r = IoRequest::trim(r.lpn);
            }
        }
        let resume = drive_lockstep(&mut dense, &mut naive, &reqs)?;
        // Snapshot RAM at the crash: this IS the set of acknowledged data.
        let ram: Vec<_> = (0..info.logical_pages).map(|l| dense.mapping().lookup(l)).collect();
        let ram_valid = dense.valid_pages();
        let dense_report = dense.recover().unwrap();
        let naive_report = naive.recover().unwrap();
        prop_assert_eq!(dense_report, naive_report);
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), ram[lpn as usize], "dense lpn {}", lpn);
            prop_assert_eq!(naive.mapping().lookup(lpn), ram[lpn as usize], "naive lpn {}", lpn);
        }
        prop_assert_eq!(dense.valid_pages(), ram_valid, "valid counters rebuilt");
        prop_assert_eq!(naive.valid_pages(), ram_valid);
        // Every recovered page is readable with the right identity (the
        // device debug-asserts the OOB/backing tag on every read).
        for (lpn, mapped) in ram.iter().enumerate() {
            let got = dense.read(lpn as u64).unwrap();
            prop_assert_eq!(got.is_some(), mapped.is_some(), "readability of lpn {}", lpn);
        }
        // The device keeps working past the crash, and the dense store
        // keeps agreeing with the oracle. (The readability probe above
        // touched only dense, but reads are pure here — no faults, no RNG
        // draws, no mapping changes — so the pair is still in lockstep.)
        for req in &reqs[resume..] {
            apply(&mut dense, req).unwrap();
            apply(&mut naive, req).unwrap();
        }
        dense.flush().unwrap();
        naive.flush().unwrap();
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), naive.mapping().lookup(lpn));
        }
        prop_assert_eq!(dense.valid_pages(), naive.valid_pages());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same contract as above, but with the preemptive collector: the crash
    /// point can land *inside* a slice — after some of a victim's pages
    /// were restaged but before the final flush + free. The victim is still
    /// sealed (and checkpointed) at that instant, so recovery must find
    /// every acknowledged page under its pre-collection identity; staged
    /// copies that did program carry a later sequence number and win
    /// consistently in both the RAM mapping and the rebuild.
    #[test]
    fn recovery_survives_crashes_inside_a_gc_slice(
        crash_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        slice_idx in 0usize..3,
    ) {
        // From "one word-line per slice" up to "several programs per
        // slice" — different budgets park the job at different depths.
        let slices = [120.0, 300.0, 2500.0];
        let mut config = FtlConfig::small_test();
        config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
        config.gc_budget = GcBudget::Sliced { slice_us: slices[slice_idx] };
        config.spor.checkpoint_interval = 8;
        config.spor.crash = Some(CrashPoint::from_seed(crash_seed, 2500));
        let mut dense = Ssd::new(config.clone(), 11).unwrap();
        let mut naive = Ssd::new(config, 11).unwrap();
        naive.use_naive_mapping_for_benchmarks();
        let info = dense.geometry_info();
        let reqs = Workload::RandomWrite { span: 0.6, read_fraction: 0.1 }
            .generate(&info, (info.logical_pages * 3) as usize, workload_seed);
        let resume = drive_lockstep(&mut dense, &mut naive, &reqs)?;
        let ram: Vec<_> = (0..info.logical_pages).map(|l| dense.mapping().lookup(l)).collect();
        let dense_report = dense.recover().unwrap();
        let naive_report = naive.recover().unwrap();
        prop_assert_eq!(dense_report, naive_report);
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), ram[lpn as usize], "dense lpn {}", lpn);
            prop_assert_eq!(naive.mapping().lookup(lpn), ram[lpn as usize], "naive lpn {}", lpn);
        }
        // Every recovered page reads back under the right identity (the
        // device debug-asserts the OOB/backing tag on every read).
        for (lpn, mapped) in ram.iter().enumerate() {
            let got = dense.read(lpn as u64).unwrap();
            prop_assert_eq!(got.is_some(), mapped.is_some(), "readability of lpn {}", lpn);
        }
        // The parked job's cursors died with RAM; the device re-selects the
        // victim and keeps collecting through the rest of the workload.
        for req in &reqs[resume..] {
            apply(&mut dense, req).unwrap();
            apply(&mut naive, req).unwrap();
        }
        dense.flush().unwrap();
        naive.flush().unwrap();
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), naive.mapping().lookup(lpn));
        }
        prop_assert_eq!(dense.valid_pages(), naive.valid_pages());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole's SPOR contract for the scrubber: with integrity
    /// tracking, aggressive aging and patrol all active, the crash point
    /// can land *inside* a patrol pass — refreshes staged but not flushed,
    /// cursors parked in RAM. Cursors and the in-flight pass die with RAM
    /// (the pass merely restarts after boot); acknowledged data must still
    /// recover exactly to the RAM mapping, in lockstep with the naive
    /// oracle, and every live page must read back.
    #[test]
    fn recovery_survives_crashes_inside_a_patrol_pass(
        crash_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        interval_idx in 0usize..3,
    ) {
        // From "patrol runs constantly" down to "a pass is usually
        // mid-flight when the crash fires".
        let intervals = [2_000.0, 10_000.0, 40_000.0];
        let mut config = FtlConfig::small_test();
        config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
        config.gc_budget = GcBudget::Sliced { slice_us: 300.0 };
        config.spor.checkpoint_interval = 8;
        config.spor.crash = Some(CrashPoint::from_seed(crash_seed, 2500));
        config.integrity = IntegrityConfig {
            track: true,
            // Hot enough that pages cross the refresh threshold within the
            // run, so crashes land between a staged refresh and its flush.
            retention_hours_per_us: 0.05,
            patrol: PatrolConfig::On {
                interval_us: intervals[interval_idx],
                slice_us: 300.0,
                refresh_fraction: 0.5,
                order: PatrolOrder::SlowPoolFirst,
            },
        };
        let mut dense = Ssd::new(config.clone(), 11).unwrap();
        let mut naive = Ssd::new(config, 11).unwrap();
        naive.use_naive_mapping_for_benchmarks();
        let info = dense.geometry_info();
        let reqs = Workload::RandomWrite { span: 0.6, read_fraction: 0.1 }
            .generate(&info, (info.logical_pages * 3) as usize, workload_seed);
        let resume = drive_lockstep(&mut dense, &mut naive, &reqs)?;
        let ram: Vec<_> = (0..info.logical_pages).map(|l| dense.mapping().lookup(l)).collect();
        let dense_report = dense.recover().unwrap();
        let naive_report = naive.recover().unwrap();
        prop_assert_eq!(dense_report, naive_report);
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), ram[lpn as usize], "dense lpn {}", lpn);
            prop_assert_eq!(naive.mapping().lookup(lpn), ram[lpn as usize], "naive lpn {}", lpn);
        }
        // No silent data loss: every page mapped at the crash reads back
        // after recovery (reactively refreshed if it rotted meanwhile).
        for (lpn, mapped) in ram.iter().enumerate() {
            let got = dense.read(lpn as u64).unwrap();
            prop_assert_eq!(got.is_some(), mapped.is_some(), "readability of lpn {}", lpn);
        }
        // The scrubber re-arms from scratch and the pair stays in lockstep
        // through the rest of the workload. (The readability probe above
        // may have refreshed pages on dense only, so re-sync the oracle by
        // driving the same reads through it first.)
        for (lpn, mapped) in ram.iter().enumerate() {
            let got = naive.read(lpn as u64).unwrap();
            prop_assert_eq!(got.is_some(), mapped.is_some(), "naive readability of lpn {}", lpn);
        }
        for req in &reqs[resume..] {
            apply(&mut dense, req).unwrap();
            apply(&mut naive, req).unwrap();
        }
        dense.flush().unwrap();
        naive.flush().unwrap();
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), naive.mapping().lookup(lpn));
        }
        prop_assert_eq!(dense.valid_pages(), naive.valid_pages());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Parity SPOR contract: with the RAIN stripe active on faulty media,
    /// the crash point can land *mid-rebuild* — after an uncorrectable
    /// read's reactive restage but before the flush that makes the fresh
    /// copy durable. The acknowledged mapping must recover exactly (under
    /// the page's old identity when the refreshed copy never programmed),
    /// parity pages must never alias into the L2P, and the device stays in
    /// lockstep with the naive oracle through crash + recovery + resumed
    /// work.
    #[test]
    fn recovery_with_active_parity_crashes_mid_rebuild_safely(
        crash_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        scheme_idx in 0usize..3,
    ) {
        let mut config = FtlConfig::small_test();
        config.scheme = schemes()[scheme_idx];
        config.parity = ParityConfig::On;
        // Weak blocks whose elevation straddles the retry ladder across the
        // page-type spread: single-page losses (rebuildable) and double
        // failures both occur.
        config.fault = FaultConfig {
            weak_block_prob: 0.15,
            weak_ber_multiplier: 150.0,
            page_type_ber_spread: 0.35,
            ..FaultConfig::default()
        };
        config.spor.checkpoint_interval = 8;
        config.spor.crash = Some(CrashPoint::from_seed(crash_seed, 2500));
        let mut dense = Ssd::new(config.clone(), 11).unwrap();
        let mut naive = Ssd::new(config, 11).unwrap();
        naive.use_naive_mapping_for_benchmarks();
        let info = dense.geometry_info();
        let reqs = Workload::RandomWrite { span: 0.6, read_fraction: 0.2 }
            .generate(&info, (info.logical_pages * 3) as usize, workload_seed);
        let resume = drive_lockstep(&mut dense, &mut naive, &reqs)?;
        let ram: Vec<_> = (0..info.logical_pages).map(|l| dense.mapping().lookup(l)).collect();
        let dense_report = dense.recover().unwrap();
        let naive_report = naive.recover().unwrap();
        prop_assert_eq!(dense_report, naive_report);
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), ram[lpn as usize], "dense lpn {}", lpn);
            prop_assert_eq!(naive.mapping().lookup(lpn), ram[lpn as usize], "naive lpn {}", lpn);
        }
        // Every recovered page reads back under the right identity — the
        // device debug-asserts the OOB/backing tag on every read, so a
        // parity page aliased into the L2P cannot hide. Reads on this
        // media can restage (uncorrectable -> rebuild -> refresh), so the
        // same reads go through the oracle to keep the pair in lockstep.
        for (lpn, mapped) in ram.iter().enumerate() {
            let got = dense.read(lpn as u64).unwrap();
            prop_assert_eq!(got.is_some(), mapped.is_some(), "readability of lpn {}", lpn);
            let got = naive.read(lpn as u64).unwrap();
            prop_assert_eq!(got.is_some(), mapped.is_some(), "naive readability of lpn {}", lpn);
        }
        for req in &reqs[resume..] {
            apply(&mut dense, req).unwrap();
            apply(&mut naive, req).unwrap();
        }
        dense.flush().unwrap();
        naive.flush().unwrap();
        for lpn in 0..info.logical_pages {
            prop_assert_eq!(dense.mapping().lookup(lpn), naive.mapping().lookup(lpn));
        }
        prop_assert_eq!(dense.valid_pages(), naive.valid_pages());
        // Rebuild accounting stayed coherent through the crash: every
        // uncorrectable read produced exactly one attempt, every attempt
        // one verdict.
        let s = dense.stats();
        prop_assert_eq!(s.rebuilds_ok + s.rebuilds_failed, s.uncorrectable_reads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rebuild correctness under random fault injection × schemes: every
    /// uncorrectable read triggers exactly one stripe rebuild attempt and
    /// exactly one verdict. `rebuilds_ok` certifies the survivors' XOR
    /// reproduced the lost payload; a double failure inside one stripe
    /// lands in `rebuilds_failed` — reported, never absorbed into the ok
    /// count — while the reactive refresh still restages a readable copy,
    /// so no read ever returns the wrong payload (the device debug-asserts
    /// payload identity on every read).
    #[test]
    fn stripe_rebuilds_verify_payloads_and_report_double_failures(
        dev_seed in 0u64..1_000,
        scheme_idx in 0usize..3,
        weak in 0.05f64..0.35,
        mult in 50.0f64..1_000.0,
    ) {
        let mut config = FtlConfig::small_test();
        config.scheme = schemes()[scheme_idx];
        config.parity = ParityConfig::On;
        config.fault = FaultConfig {
            weak_block_prob: weak,
            weak_ber_multiplier: mult,
            page_type_ber_spread: 0.35,
            ..FaultConfig::default()
        };
        let mut dev = Ssd::new(config, dev_seed).unwrap();
        let info = dev.geometry_info();
        let span = info.logical_pages / 2;
        for lpn in 0..span {
            dev.write(lpn).unwrap();
        }
        dev.flush().unwrap();
        for lpn in 0..span {
            prop_assert!(dev.read(lpn).unwrap().is_some(), "lpn {} must stay readable", lpn);
        }
        let s = dev.stats();
        prop_assert_eq!(s.rebuilds_ok + s.rebuilds_failed, s.uncorrectable_reads);
        // Reactive refreshes come only from host reads here (no patrol);
        // GC-path uncorrectables rebuild without a separate refresh, so the
        // host-read refresh count never exceeds the uncorrectable total.
        prop_assert!(s.refresh_relocations <= s.uncorrectable_reads);
        if s.rebuilds_ok > 0 {
            prop_assert!(s.rebuild_us > 0.0, "successful rebuilds cost stripe-read time");
        }
        if s.uncorrectable_reads > 0 {
            prop_assert!(s.rebuild_reads > 0, "attempts must read stripe siblings");
        }
    }
}

#[test]
fn crash_and_recovery_replay_bit_for_bit() {
    let run = || {
        let mut config = FtlConfig::small_test();
        config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
        config.spor.checkpoint_interval = 16;
        config.spor.crash = Some(CrashPoint::from_seed(42, 1500));
        let mut dev = Ssd::new(config, 11).unwrap();
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
        let mut resume = reqs.len();
        for (i, req) in reqs.iter().enumerate() {
            match apply(&mut dev, req) {
                Ok(()) => {}
                Err(FtlError::PowerLoss) => {
                    resume = i;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(resume < reqs.len(), "the injected crash must fire");
        let report = dev.recover().unwrap();
        for req in &reqs[resume..] {
            apply(&mut dev, req).unwrap();
        }
        let s = dev.stats();
        (
            report,
            s.write_latency.mean_us().to_bits(),
            s.waf().to_bits(),
            s.recovery_time_us.to_bits(),
            s.gc_runs,
        )
    };
    assert_eq!(run(), run(), "identical seeds replay identically through a crash");
}

#[test]
fn seal_records_restore_gathered_qstr_state_without_recharacterizing() {
    let mut config = FtlConfig::small_test();
    config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
    // No boot-time characterization: everything the block manager knows
    // after recovery, it can only know from the persisted seal records.
    config.precharacterize = false;
    config.spor.crash = Some(CrashPoint::from_seed(9, 4000));
    let mut dev = Ssd::new(config, 11).unwrap();
    let info = dev.geometry_info();
    let reqs = Workload::random_write(0.5).generate(&info, (info.logical_pages * 4) as usize, 3);
    let mut resume = reqs.len();
    for (i, req) in reqs.iter().enumerate() {
        match apply(&mut dev, req) {
            Ok(()) => {}
            Err(FtlError::PowerLoss) => {
                resume = i;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(resume < reqs.len(), "the injected crash must fire inside 4x capacity");
    dev.recover().unwrap();
    let known = (0..info.logical_pages)
        .filter_map(|l| dev.mapping().lookup(l))
        .filter(|ppa| dev.block_manager().knows(ppa.wl.block))
        .count();
    assert!(known > 0, "gathered QSTR-MED summaries must survive the power loss");
    // And the device resumes QSTR-MED placement with that knowledge.
    for req in &reqs[resume..] {
        apply(&mut dev, req).unwrap();
    }
    assert!(dev.distance_checks() > 0);
}
