//! Property tests for the event core's scheduler primitives.
//!
//! The calendar queue is an amortized-O(1) priority queue whose bucket
//! rotation has real floating-point edge cases (bucket boundaries, cursor
//! rewinds on out-of-order pushes, resize thresholds). Its contract is
//! simple though: pop order equals a naive min-scan over the pending set,
//! with ties broken by insertion sequence — deterministically, because the
//! replay's bit-identity oracle depends on it. These properties drive the
//! queue through arbitrary interleavings and hold it to that contract.

use ftl::sched::{Arena, CalendarQueue, DepthTracker};
use proptest::prelude::*;

/// Naive oracle: linear min-scan over `(time, seq)` pairs.
#[derive(Debug, Default)]
struct NaiveQueue {
    pending: Vec<(f64, u64, u32)>,
    next_seq: u64,
}

impl NaiveQueue {
    fn push(&mut self, time: f64, payload: u32) {
        self.pending.push((time, self.next_seq, payload));
        self.next_seq += 1;
    }

    fn pop_min(&mut self) -> Option<(f64, u64, u32)> {
        let idx = self
            .pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(i, _)| i)?;
        Some(self.pending.remove(idx))
    }
}

/// Event times drawn from a coarse grid so duplicates (ties) are common,
/// plus occasional spread to force bucket resizes and rotation.
fn arb_times(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..400, 1u32..51), 1..len)
        .prop_map(|raw| raw.into_iter().map(|(t, q)| f64::from(t * q)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_queue_pops_in_naive_min_scan_order(times in arb_times(200)) {
        let mut cq = CalendarQueue::new();
        let mut naive = NaiveQueue::default();
        for (i, &t) in times.iter().enumerate() {
            cq.push(t, i as u32);
            naive.push(t, i as u32);
        }
        prop_assert_eq!(cq.len(), times.len());
        while let Some((t, seq, payload)) = naive.pop_min() {
            let ev = cq.pop_min().expect("calendar queue drained early");
            prop_assert_eq!(ev.time.to_bits(), t.to_bits(), "time order diverged");
            prop_assert_eq!(ev.seq, seq, "tie broken differently at t={}", t);
            prop_assert_eq!(ev.payload, payload);
        }
        prop_assert!(cq.is_empty(), "calendar queue has leftover events");
    }

    #[test]
    fn interleaved_pushes_and_pops_stay_in_lockstep(
        ops in proptest::collection::vec((any::<bool>(), 0u32..2000), 1..300),
    ) {
        // Pops interleave with pushes, including pushes *behind* the cursor
        // (an already-popped time), which is exactly the case the cursor
        // rewind guard exists for.
        let mut cq = CalendarQueue::new();
        let mut naive = NaiveQueue::default();
        for (i, &(pop, t)) in ops.iter().enumerate() {
            if pop {
                let got = cq.pop_min();
                let want = naive.pop_min();
                match (got, want) {
                    (None, None) => {}
                    (Some(ev), Some((t, seq, payload))) => {
                        prop_assert_eq!(ev.time.to_bits(), t.to_bits());
                        prop_assert_eq!(ev.seq, seq);
                        prop_assert_eq!(ev.payload, payload);
                    }
                    (got, want) => {
                        prop_assert!(false, "op {}: got {:?} want {:?}", i, got, want);
                    }
                }
            } else {
                cq.push(f64::from(t) * 0.25, i as u32);
                naive.push(f64::from(t) * 0.25, i as u32);
            }
            prop_assert_eq!(cq.len(), naive.pending.len());
        }
    }

    #[test]
    fn depth_tracking_matches_a_busy_until_min_scan(
        gaps in proptest::collection::vec((0u32..500, 1u32..900), 1..200),
    ) {
        // The replay uses the queue as an open-loop depth tracker: arrive()
        // retires completions <= arrival and returns the in-flight count.
        // Oracle: a plain vector of completion times, min-scanned per
        // arrival — the shape the stepper's binary heap implements.
        let mut cq = CalendarQueue::new();
        let mut outstanding: Vec<f64> = Vec::new();
        let mut now = 0.0_f64;
        for &(gap, service) in &gaps {
            now += f64::from(gap) * 0.5;
            outstanding.retain(|&c| c > now);
            let depth = cq.arrive(now);
            prop_assert_eq!(depth, outstanding.len(), "depth diverged at t={}", now);
            let completion = now + f64::from(service);
            cq.complete_at(completion);
            outstanding.push(completion);
        }
    }

    #[test]
    fn sorted_ring_depth_tracker_matches_the_same_oracle(
        gaps in proptest::collection::vec((0u32..500, 1u32..900), 1..200),
    ) {
        // The batched device path replaced the calendar queue with the
        // sorted-ring tracker; it must honor the identical busy-until
        // contract, including completions landing out of order when
        // per-chip clocks interleave (the `service < gap` case).
        let mut dt = DepthTracker::new();
        let mut outstanding: Vec<f64> = Vec::new();
        let mut now = 0.0_f64;
        for &(gap, service) in &gaps {
            now += f64::from(gap) * 0.5;
            outstanding.retain(|&c| c > now);
            let depth = dt.arrive(now);
            prop_assert_eq!(depth, outstanding.len(), "depth diverged at t={}", now);
            let completion = now + f64::from(service);
            dt.complete_at(completion);
            outstanding.push(completion);
        }
    }

    #[test]
    fn arena_round_trips_values_under_arbitrary_alloc_free(
        ops in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        // Oracle: a HashMap from handle to value. Alloc on `true` (or when
        // nothing is live), free the oldest live handle on `false`.
        let mut arena: Arena<u64> = Arena::new();
        let mut live: Vec<(u32, u64)> = Vec::new();
        let mut counter = 0u64;
        for &alloc in &ops {
            if alloc || live.is_empty() {
                counter += 1;
                let handle = arena.alloc(counter);
                prop_assert!(arena.get(handle) == Some(&counter));
                live.push((handle, counter));
            } else {
                let (handle, want) = live.remove(0);
                let got = arena.free(handle);
                prop_assert_eq!(got, want, "freed value diverged");
                prop_assert!(arena.get(handle).is_none(), "freed handle still readable");
            }
            prop_assert_eq!(arena.len(), live.len());
            for &(handle, value) in &live {
                prop_assert!(arena.get(handle) == Some(&value), "live handle lost");
            }
        }
    }
}
