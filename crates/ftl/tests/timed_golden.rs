//! Timed-replay golden tests.
//!
//! `queue_model = Single` must reproduce the pre-engine `run_timed` outputs
//! bit for bit: the per-chip timing engine, the dense mapping rewrite and
//! the O(1) GC victim selection all ride behind the same request stream, so
//! any float reordered, RNG draw added or victim choice changed shows up
//! here as a flipped bit.
//!
//! One documented exception: reads that miss used to drop their queueing
//! delay entirely (service 0.0 recorded nothing). They now record the wait
//! as a read-latency sample, so the read histogram fields carry post-fix
//! regression values while every other field pins the pre-change bits.

use ftl::{
    poisson_arrivals, EngineMode, FtlConfig, IntegrityConfig, IoOp, IoRequest, PatrolConfig,
    QueueModel, Ssd, Workload,
};

/// Mixed open-loop workload over the small-test device: 3x-capacity random
/// writes over half the LPNs with reads (hits and guaranteed misses) and
/// trims folded in, arriving Poisson at 800 µs mean.
fn workload(dev: &Ssd) -> Vec<(f64, IoRequest)> {
    let info = dev.geometry_info();
    let n = (info.logical_pages * 3) as usize;
    let mut reqs = Workload::random_write(0.5).generate(&info, n, 5);
    for (i, r) in reqs.iter_mut().enumerate() {
        match i % 7 {
            3 => r.op = IoOp::Read,
            5 => *r = IoRequest { op: IoOp::Read, lpn: info.logical_pages - 1 },
            6 if i % 14 == 6 => r.op = IoOp::Trim,
            _ => {}
        }
    }
    poisson_arrivals(&reqs, 800.0, 1)
}

fn run(idle_gc: bool, model: QueueModel) -> Ssd {
    run_with(idle_gc, model, EngineMode::Stepper)
}

fn run_with(idle_gc: bool, model: QueueModel, engine: EngineMode) -> Ssd {
    let mut config = FtlConfig::small_test();
    config.idle_gc = idle_gc;
    config.queue_model = model;
    config.engine = engine;
    let mut dev = Ssd::new(config, 3).unwrap();
    let timed = workload(&dev);
    dev.run_timed(&timed).unwrap();
    dev
}

/// Pre-engine golden bits of one `run_timed` replay (recorded before the
/// timing engine and mapping rewrite landed), plus post-fix read fields.
struct Golden {
    idle_gc: bool,
    host_writes: u64,
    host_reads: u64,
    host_trims: u64,
    gc_runs: u64,
    gc_relocations: u64,
    write_mean: u64,
    write_p99: u64,
    write_max: u64,
    write_len: usize,
    busy_us: u64,
    idle_gc_us: u64,
    waf: u64,
    extra_pgm: u64,
    // Post-fix regression values: misses now record their wait, so the read
    // histogram grew from the 2026 hit-only samples to hits + misses.
    read_len: usize,
    read_mean: u64,
}

const GOLDEN: [Golden; 2] = [
    Golden {
        idle_gc: false,
        host_writes: 13331,
        host_reads: 2026,
        host_trims: 1481,
        gc_runs: 16,
        gc_relocations: 543,
        write_mean: 0x407b_6a03_ed41_47e5,
        write_p99: 0x40b4_ff99_a64b_e300,
        write_max: 0x40de_91c7_f240_6b45,
        write_len: 13331,
        busy_us: 0x4143_5021_3a44_d903,
        idle_gc_us: 0x0000_0000_0000_0000,
        waf: 0x3ff0_a6d6_bb62_eaa0,
        extra_pgm: 0x4042_c7c5_c9c1_d1cf,
        read_len: 5924,
        read_mean: 0x4074_01a5_0ff1_5fcb,
    },
    Golden {
        idle_gc: true,
        host_writes: 13331,
        host_reads: 2026,
        host_trims: 1481,
        gc_runs: 16,
        gc_relocations: 579,
        write_mean: 0x4075_5df5_6361_69dd,
        write_p99: 0x40b0_2502_40be_3800,
        write_max: 0x40c3_e4f8_d63a_6800,
        write_len: 13331,
        busy_us: 0x4142_45cf_9339_c195,
        idle_gc_us: 0x4101_cf46_253a_af42,
        waf: 0x3ff0_b1e6_61f9_bd5d,
        extra_pgm: 0x4042_cd80_d023_dccb,
        read_len: 5924,
        read_mean: 0x406c_4350_6509_e626,
    },
];

#[test]
fn single_queue_model_reproduces_prechange_bits() {
    check_golden(EngineMode::Stepper);
}

#[test]
fn batched_engine_reproduces_the_same_golden_bits() {
    // The event-driven core is a drop-in twin: same GOLDEN table, no
    // batched-specific constants to maintain.
    check_golden(EngineMode::Batched);
}

#[test]
fn explicit_parity_off_and_zero_read_spread_reproduce_the_golden_bits() {
    // The parity subsystem must be inert when off: an explicit
    // `ParityConfig::Off` plus the zeroed knobs of its sibling channels —
    // per-block read spread (nonzero correlation but zero σ must not even
    // draw) and page-type BER spread — replays the pre-parity GOLDEN table
    // bit for bit.
    check_golden_with(EngineMode::Stepper, |config| {
        config.parity = ftl::ParityConfig::Off;
        config.flash.variation.read_block_sigma_us = 0.0;
        config.flash.variation.read_pgm_corr = 0.8;
        config.fault.page_type_ber_spread = 0.0;
    });
}

fn check_golden(engine: EngineMode) {
    check_golden_with(engine, |_| {});
}

fn check_golden_with(engine: EngineMode, mutate: impl Fn(&mut FtlConfig)) {
    for g in &GOLDEN {
        let dev = {
            let mut config = FtlConfig::small_test();
            config.idle_gc = g.idle_gc;
            config.queue_model = QueueModel::Single;
            config.engine = engine;
            mutate(&mut config);
            let mut dev = Ssd::new(config, 3).unwrap();
            let timed = workload(&dev);
            dev.run_timed(&timed).unwrap();
            dev
        };
        let s = dev.stats();
        let tag = format!("engine={} idle_gc={}", engine.label(), g.idle_gc);
        assert_eq!(s.host_writes, g.host_writes, "{tag} host_writes");
        assert_eq!(s.host_reads, g.host_reads, "{tag} host_reads");
        assert_eq!(s.host_trims, g.host_trims, "{tag} host_trims");
        assert_eq!(s.gc_runs, g.gc_runs, "{tag} gc_runs");
        assert_eq!(s.gc_relocations, g.gc_relocations, "{tag} gc_relocations");
        assert_eq!(s.write_latency.mean_us().to_bits(), g.write_mean, "{tag} write mean drifted");
        assert_eq!(
            s.write_latency.quantile_us(0.99).to_bits(),
            g.write_p99,
            "{tag} write p99 drifted"
        );
        assert_eq!(s.write_latency.max_us().to_bits(), g.write_max, "{tag} write max drifted");
        assert_eq!(s.write_latency.len(), g.write_len, "{tag} write sample count drifted");
        assert_eq!(s.busy_us.to_bits(), g.busy_us, "{tag} busy_us drifted");
        assert_eq!(s.idle_gc_us.to_bits(), g.idle_gc_us, "{tag} idle_gc_us drifted");
        assert_eq!(s.waf().to_bits(), g.waf, "{tag} WAF drifted");
        assert_eq!(s.extra_program_per_op_us().to_bits(), g.extra_pgm, "{tag} extra PGM drifted");
        assert_eq!(s.read_latency.len(), g.read_len, "{tag} read sample count drifted");
        assert_eq!(s.read_latency.mean_us().to_bits(), g.read_mean, "{tag} read mean drifted");
    }
}

/// Aged-run golden for the refresh-time split.
///
/// A reactive refresh — the read retry ladder failing and the device
/// relocating the page before serving it — used to be invisible; now its
/// relocation time is charged to `refresh_us` (and `busy_us`), *not* to the
/// read-latency histogram: the host observes the retry reads it actually
/// waited on, while the relocation is background work like GC. This test
/// pins an aged replay (tracking on, accelerated retention, no patrol) so
/// any future change that leaks relocation time back into read latency, or
/// stops charging it to `refresh_us`, flips a pinned bit.
#[test]
fn reactive_refresh_time_lands_in_refresh_us_not_read_latency() {
    for engine in [EngineMode::Stepper, EngineMode::Batched] {
        let mut config = FtlConfig::small_test();
        config.engine = engine;
        config.integrity = IntegrityConfig {
            track: true,
            retention_hours_per_us: 0.003,
            patrol: PatrolConfig::Off,
        };
        let mut dev = Ssd::new(config, 3).unwrap();
        let timed = workload(&dev);
        dev.run_timed(&timed).unwrap();
        let s = dev.stats();
        let tag = format!("engine={}", engine.label());
        assert!(s.uncorrectable_reads > 0, "{tag}: the aged run must exhaust retry ladders");
        assert_eq!(
            s.refresh_relocations, s.uncorrectable_reads,
            "{tag}: every uncorrectable read refreshes exactly once"
        );
        assert!(s.refresh_us > 0.0, "{tag}: relocation time is accounted");
        assert_eq!(s.uncorrectable_reads, AGED.uncorrectable, "{tag} uncorrectable drifted");
        assert_eq!(s.refresh_us.to_bits(), AGED.refresh_us, "{tag} refresh_us drifted");
        assert_eq!(s.busy_us.to_bits(), AGED.busy_us, "{tag} busy_us drifted");
        assert_eq!(s.read_latency.len(), AGED.read_len, "{tag} read sample count drifted");
        assert_eq!(
            s.read_latency.mean_us().to_bits(),
            AGED.read_mean,
            "{tag} read mean drifted — refresh time may be leaking into the histogram"
        );
        assert_eq!(
            s.read_latency.quantile_us(0.99).to_bits(),
            AGED.read_p99,
            "{tag} read p99 drifted"
        );
    }
}

/// Golden bits for the aged replay above; both engines must agree on them.
struct AgedGolden {
    uncorrectable: u64,
    refresh_us: u64,
    busy_us: u64,
    read_len: usize,
    read_mean: u64,
    read_p99: u64,
}

const AGED: AgedGolden = AgedGolden {
    uncorrectable: 533,
    refresh_us: 0x40f3_7233_3333_3334,
    busy_us: 0x4145_70e3_9d1f_c225,
    read_len: 5924,
    read_mean: 0x4075_e516_bae6_7d7b,
    read_p99: 0x40b4_b6b3_2229_2a0c,
};

#[test]
fn per_chip_model_changes_only_the_clocks() {
    // Without idle GC the flash-command sequence depends only on request
    // order, so the two models must do bit-identical work — only the waits
    // differ — and the event-driven clocks must finish no later than the
    // serial clock.
    let single = run(false, QueueModel::Single);
    let per_chip = run(false, QueueModel::PerChip);
    let (s, p) = (single.stats(), per_chip.stats());
    assert_eq!(s.host_writes, p.host_writes);
    assert_eq!(s.host_reads, p.host_reads);
    assert_eq!(s.host_trims, p.host_trims);
    assert_eq!(s.gc_runs, p.gc_runs);
    assert_eq!(s.gc_relocations, p.gc_relocations);
    assert_eq!(s.busy_us.to_bits(), p.busy_us.to_bits(), "service time is model-independent");
    assert_eq!(s.waf().to_bits(), p.waf().to_bits());
    assert!(
        p.makespan_us <= s.makespan_us,
        "per-chip makespan {} vs single {}",
        p.makespan_us,
        s.makespan_us
    );
    assert!(!p.chip_busy_us.is_empty(), "per-chip run reports group occupancy");
    assert!(s.chip_busy_us.is_empty(), "single run has no per-group clocks");
}

#[test]
fn per_chip_model_survives_idle_gc_with_comparable_work() {
    // With idle GC the background schedule follows the clocks, so the two
    // models legitimately collect at different instants — but both must
    // stay healthy and do the same order of work.
    let single = run(true, QueueModel::Single);
    let per_chip = run(true, QueueModel::PerChip);
    let (s, p) = (single.stats(), per_chip.stats());
    assert_eq!(s.host_writes, p.host_writes);
    assert!(p.gc_runs > 0, "idle gaps trigger background GC under PerChip too");
    assert!(p.idle_gc_us > 0.0);
    assert!(p.makespan_us > 0.0);
    let occupancy: f64 = p.chip_busy_us.iter().sum();
    assert!(occupancy > 0.0);
}
