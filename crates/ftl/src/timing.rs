//! Timing models for open-loop trace replay ([`crate::Ssd::run_timed`]).
//!
//! The device can be clocked two ways:
//!
//! * [`QueueModel::Single`] — one scalar `device_free_at` clock: every
//!   request serializes behind every other, as if the SSD had a single
//!   command queue. This is the original model and stays bit-identical.
//! * [`QueueModel::PerChip`] — one busy-until clock per chip/plane group
//!   plus one for the host channel: a request waits only for the resources
//!   it actually touches, so a superpage program occupies exactly its member
//!   chips until `max(tPROG)` while reads and programs on other chips
//!   proceed. This is the overlap QSTR-MED's superpage striping exploits.
//!
//! During a `PerChip` replay the device records every flash command into a
//! [`TouchLog`] as `(chip/plane group, duration)`; the replay loop turns the
//! log into per-group occupancy. The log is disabled outside `PerChip`
//! replays so the `Single` path stays untouched.

/// Which timing model [`crate::Ssd::run_timed`] uses. See the
/// [module docs](self) for the two models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueModel {
    /// One device-wide command queue (the original scalar clock).
    #[default]
    Single,
    /// Per-chip/plane busy-until clocks; requests overlap across chips.
    PerChip,
}

/// Which replay engine drives timed replays (orthogonal to [`QueueModel`]:
/// both engines implement both queue models).
///
/// `Stepper` is the original per-op loop, kept untouched as the golden
/// oracle; `Batched` is the event-driven core (see [`crate::sched`]) whose
/// entire stat set is asserted bit-identical to the stepper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Original one-op-at-a-time replay loop (golden oracle).
    #[default]
    Stepper,
    /// Event-driven core: calendar-queue completion tracking, batched
    /// admission, prefix-cached latency synthesis, incremental checkpoints,
    /// SoA stat accumulators folded at `timed_end`.
    Batched,
}

impl EngineMode {
    /// Short machine-readable label (used in CSV output and CLI flags).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Stepper => "stepper",
            EngineMode::Batched => "batched",
        }
    }
}

/// Sentinel group index for the host channel/controller resource (page
/// transfers); replay maps it to the slot after the last chip/plane group.
pub(crate) const CONTROLLER: usize = usize::MAX;

/// Where one [`crate::Ssd::timed_step`] landed on the device clocks.
///
/// All times are absolute simulation microseconds on the replay clock that
/// started at [`crate::Ssd::timed_begin`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedOutcome {
    /// Queueing delay: time between the request's arrival and its service
    /// starting, µs.
    pub wait_us: f64,
    /// Service time of the request itself, µs.
    pub service_us: f64,
    /// Absolute time service started, µs.
    pub start_us: f64,
    /// Absolute time the request completed, µs.
    pub completion_us: f64,
}

/// Live clock state of an in-progress timed replay — one variant per
/// [`QueueModel`]. Created by [`crate::Ssd::timed_begin`], advanced by
/// [`crate::Ssd::timed_step`], folded into the stats by
/// [`crate::Ssd::timed_end`].
#[derive(Debug)]
pub(crate) enum EngineState {
    /// One scalar device-wide clock.
    Single {
        /// When the single command queue drains.
        device_free_at: f64,
        /// Open-loop depth tracker.
        in_flight: InFlight,
    },
    /// Per chip/plane group busy-until clocks plus the host channel.
    PerChip {
        /// Busy-until clock per group; the last slot is the controller.
        busy: Vec<f64>,
        /// Scratch: summed occupancy per group for the current request.
        agg: Vec<f64>,
        /// Scratch: groups the current request touched.
        touched: Vec<usize>,
        /// Scratch: raw touch-log entries.
        buf: Vec<(usize, f64)>,
        /// Open-loop depth tracker.
        in_flight: InFlight,
        /// Latest completion seen so far.
        makespan: f64,
    },
    /// Event-driven scalar clock ([`EngineMode::Batched`] +
    /// [`QueueModel::Single`]): same math as `Single`, but completions live
    /// in a sorted-ring depth tracker and latency samples defer to SoA
    /// accumulators.
    BatchedSingle {
        /// When the single command queue drains.
        device_free_at: f64,
        /// Sorted-ring completion tracker (same counts as [`InFlight`]).
        in_flight: crate::sched::DepthTracker,
        /// Deferred latency samples, folded into the histograms at
        /// `timed_end`.
        samples: BatchedSamples,
    },
    /// Event-driven per-chip clocks ([`EngineMode::Batched`] +
    /// [`QueueModel::PerChip`]).
    BatchedPerChip {
        /// Busy-until clock per group; the last slot is the controller.
        busy: Vec<f64>,
        /// Scratch: summed occupancy per group for the current request.
        agg: Vec<f64>,
        /// Scratch: groups the current request touched.
        touched: Vec<usize>,
        /// Scratch: raw touch-log entries.
        buf: Vec<(usize, f64)>,
        /// Sorted-ring completion tracker (same counts as [`InFlight`]).
        in_flight: crate::sched::DepthTracker,
        /// Latest completion seen so far.
        makespan: f64,
        /// Deferred latency samples, folded into the histograms at
        /// `timed_end`.
        samples: BatchedSamples,
    },
}

/// Struct-of-arrays latency accumulators of a batched replay: per-op
/// samples pile up here in op order and fold into
/// [`crate::LatencyHistogram`]s in one `extend` at `timed_end`, skipping a
/// per-op cache invalidation and a `record`/`replace_last` pair while
/// keeping the final sample vectors — and so every derived statistic —
/// bit-identical to the stepper's.
#[derive(Debug, Default)]
pub(crate) struct BatchedSamples {
    /// Queue-inclusive write latencies, in write order.
    pub(crate) write: Vec<f64>,
    /// Queue-inclusive read latencies (hits) and bare waits (misses), in
    /// read order.
    pub(crate) read: Vec<f64>,
}

/// Records which chip/plane groups each request occupies and for how long.
///
/// Recording is off by default; [`crate::Ssd::run_timed`] enables it only
/// for `PerChip` replays, so untimed runs and the `Single` model pay one
/// branch per flash command and nothing else.
#[derive(Debug, Default)]
pub(crate) struct TouchLog {
    enabled: bool,
    entries: Vec<(usize, f64)>,
}

impl TouchLog {
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.entries.clear();
    }

    /// Records `us` of occupancy on a group (or [`CONTROLLER`]).
    pub(crate) fn record(&mut self, group: usize, us: f64) {
        if self.enabled {
            self.entries.push((group, us));
        }
    }

    /// Moves the recorded entries into `buf` (cleared first), leaving the
    /// log empty; buffers swap so neither side reallocates.
    pub(crate) fn take_into(&mut self, buf: &mut Vec<(usize, f64)>) {
        buf.clear();
        std::mem::swap(buf, &mut self.entries);
    }
}

/// Completion-time heap tracking how many requests are queued or in service
/// at each arrival (open-loop queue depth).
#[derive(Debug, Default)]
pub(crate) struct InFlight {
    /// Min-heap of completion times (reversed max-heap over total order).
    completions: std::collections::BinaryHeap<std::cmp::Reverse<TotalF64>>,
}

impl InFlight {
    /// Retires requests completed by `arrival`; returns how many are still
    /// in flight (excluding the arriving one).
    pub(crate) fn arrive(&mut self, arrival: f64) -> usize {
        while self.completions.peek().is_some_and(|c| c.0 .0 <= arrival) {
            self.completions.pop();
        }
        self.completions.len()
    }

    /// Registers a request completing at `at`.
    pub(crate) fn complete_at(&mut self, at: f64) {
        self.completions.push(std::cmp::Reverse(TotalF64(at)));
    }
}

/// `f64` wrapper ordered by `total_cmp` so it can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TouchLog::default();
        log.record(0, 5.0);
        let mut buf = Vec::new();
        log.take_into(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn enabled_log_round_trips_entries() {
        let mut log = TouchLog::default();
        log.set_enabled(true);
        log.record(2, 5.0);
        log.record(CONTROLLER, 1.0);
        let mut buf = Vec::new();
        log.take_into(&mut buf);
        assert_eq!(buf, vec![(2, 5.0), (CONTROLLER, 1.0)]);
        log.record(1, 3.0);
        log.take_into(&mut buf);
        assert_eq!(buf, vec![(1, 3.0)], "take_into drains the log");
    }

    #[test]
    fn in_flight_depth_tracks_overlapping_requests() {
        let mut q = InFlight::default();
        assert_eq!(q.arrive(0.0), 0);
        q.complete_at(10.0);
        q.complete_at(20.0);
        assert_eq!(q.arrive(5.0), 2, "both still running at t=5");
        assert_eq!(q.arrive(10.0), 1, "first completed exactly at t=10");
        assert_eq!(q.arrive(25.0), 0);
    }
}
