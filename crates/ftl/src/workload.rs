//! Synthetic workload generators.

use crate::device::GeometryInfo;
use crate::request::IoRequest;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A synthetic host workload.
///
/// ```
/// use ftl::{FtlConfig, Ssd, Workload};
///
/// # fn main() -> ftl::Result<()> {
/// let mut ssd = Ssd::new(FtlConfig::small_test(), 1)?;
/// let requests = Workload::hot_cold_80_20().generate(&ssd.geometry_info(), 1_000, 7);
/// ssd.run(&requests)?;
/// assert_eq!(ssd.stats().host_writes, 1_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum Workload {
    /// Sequential writes wrapping around the logical space.
    SequentialWrite,
    /// Uniform random writes over `span` of the logical space (0..1], with
    /// optional interleaved reads.
    RandomWrite {
        /// Fraction of the logical space touched.
        span: f64,
        /// Fraction of requests that are reads of previously written pages.
        read_fraction: f64,
    },
    /// Skewed writes: `hot_fraction` of the span receives
    /// `hot_access_fraction` of the accesses (e.g. 0.2/0.8).
    HotCold {
        /// Fraction of pages that are hot.
        hot_fraction: f64,
        /// Fraction of accesses hitting the hot set.
        hot_access_fraction: f64,
        /// Fraction of the logical space touched.
        span: f64,
    },
    /// Zipf-distributed writes over `span` of the logical space.
    Zipf {
        /// Skew parameter θ (0 = uniform; 0.99 = typical YCSB skew).
        theta: f64,
        /// Fraction of the logical space touched.
        span: f64,
    },
}

impl Workload {
    /// Uniform random writes over a fraction of the logical space.
    #[must_use]
    pub fn random_write(span: f64) -> Self {
        Workload::RandomWrite { span, read_fraction: 0.0 }
    }

    /// The classic 80/20 hot/cold writer over half the space.
    #[must_use]
    pub fn hot_cold_80_20() -> Self {
        Workload::HotCold { hot_fraction: 0.2, hot_access_fraction: 0.8, span: 0.5 }
    }

    /// Generates `count` requests for a device of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the device exports no logical pages.
    #[must_use]
    pub fn generate(&self, info: &GeometryInfo, count: usize, seed: u64) -> Vec<IoRequest> {
        let capacity = info.logical_pages;
        assert!(capacity > 0, "device exports no logical pages");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count);
        match *self {
            Workload::SequentialWrite => {
                for i in 0..count {
                    out.push(IoRequest::write(i as u64 % capacity));
                }
            }
            Workload::RandomWrite { span, read_fraction } => {
                let span_pages = span_pages(capacity, span);
                let mut written: Vec<u64> = Vec::new();
                for _ in 0..count {
                    if !written.is_empty() && rng.random_range(0.0..1.0) < read_fraction {
                        let idx = rng.random_range(0..written.len());
                        out.push(IoRequest::read(written[idx]));
                    } else {
                        let lpn = rng.random_range(0..span_pages);
                        if written.len() < 65_536 {
                            written.push(lpn);
                        }
                        out.push(IoRequest::write(lpn));
                    }
                }
            }
            Workload::HotCold { hot_fraction, hot_access_fraction, span } => {
                let span_pages = span_pages(capacity, span);
                let hot_pages = ((span_pages as f64 * hot_fraction) as u64).max(1);
                for _ in 0..count {
                    let lpn = if rng.random_range(0.0..1.0) < hot_access_fraction {
                        rng.random_range(0..hot_pages)
                    } else {
                        hot_pages + rng.random_range(0..(span_pages - hot_pages).max(1))
                    };
                    out.push(IoRequest::write(lpn.min(capacity - 1)));
                }
            }
            Workload::Zipf { theta, span } => {
                let span_pages = span_pages(capacity, span).min(1 << 20);
                let cdf = zipf_cdf(span_pages as usize, theta);
                for _ in 0..count {
                    let u = rng.random_range(0.0..1.0);
                    let rank = cdf.partition_point(|&c| c < u) as u64;
                    out.push(IoRequest::write(rank.min(span_pages - 1)));
                }
            }
        }
        out
    }
}

/// Attaches Poisson arrival times (exponential inter-arrivals with the
/// given mean, µs) to a request stream for [`Ssd::run_timed`].
///
/// [`Ssd::run_timed`]: crate::Ssd::run_timed
#[must_use]
pub fn poisson_arrivals(
    requests: &[IoRequest],
    mean_interarrival_us: f64,
    seed: u64,
) -> Vec<(f64, IoRequest)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0.0f64;
    requests
        .iter()
        .map(|&r| {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            now += -mean_interarrival_us * u.ln();
            (now, r)
        })
        .collect()
}

/// Observed mean inter-arrival time of a timed request stream, in µs.
///
/// Returns `None` for an empty stream: an empty workload has no arrival
/// spacing, and callers that divided by `timed.last().unwrap()` panicked
/// on it.
#[must_use]
pub fn mean_interarrival_us(timed: &[(f64, IoRequest)]) -> Option<f64> {
    let (last_arrival, _) = timed.last()?;
    Some(last_arrival / timed.len() as f64)
}

fn span_pages(capacity: u64, span: f64) -> u64 {
    ((capacity as f64 * span.clamp(0.0, 1.0)) as u64).clamp(1, capacity)
}

/// Cumulative Zipf distribution over `n` ranks with skew `theta`.
fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoOp;

    fn info(pages: u64) -> GeometryInfo {
        GeometryInfo { logical_pages: pages, physical_pages: pages * 2, pages_per_superblock: 48 }
    }

    #[test]
    fn sequential_wraps_around() {
        let reqs = Workload::SequentialWrite.generate(&info(4), 6, 0);
        let lpns: Vec<u64> = reqs.iter().map(|r| r.lpn).collect();
        assert_eq!(lpns, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn random_write_stays_in_span() {
        let reqs = Workload::random_write(0.5).generate(&info(100), 1000, 1);
        assert!(reqs.iter().all(|r| r.lpn < 50));
        assert!(reqs.iter().all(|r| r.op == IoOp::Write));
    }

    #[test]
    fn read_fraction_mixes_reads() {
        let w = Workload::RandomWrite { span: 1.0, read_fraction: 0.5 };
        let reqs = w.generate(&info(100), 2000, 2);
        let reads = reqs.iter().filter(|r| r.op == IoOp::Read).count();
        assert!((800..1200).contains(&reads), "{reads} reads");
    }

    #[test]
    fn hot_cold_skews_towards_hot_set() {
        let w = Workload::HotCold { hot_fraction: 0.2, hot_access_fraction: 0.8, span: 1.0 };
        let reqs = w.generate(&info(1000), 5000, 3);
        let hot = reqs.iter().filter(|r| r.lpn < 200).count();
        assert!(hot as f64 > 0.7 * 5000.0, "{hot} hot hits");
    }

    #[test]
    fn zipf_head_is_heavier_than_tail() {
        let w = Workload::Zipf { theta: 0.99, span: 1.0 };
        let reqs = w.generate(&info(1000), 5000, 4);
        let head = reqs.iter().filter(|r| r.lpn < 10).count();
        let tail = reqs.iter().filter(|r| r.lpn >= 500).count();
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let w = Workload::Zipf { theta: 0.0, span: 1.0 };
        let reqs = w.generate(&info(10), 10_000, 5);
        let zero = reqs.iter().filter(|r| r.lpn == 0).count();
        assert!((700..1300).contains(&zero), "{zero}");
    }

    #[test]
    fn poisson_arrivals_are_monotone_with_right_mean() {
        let reqs: Vec<IoRequest> = (0..5000).map(IoRequest::write).collect();
        let timed = poisson_arrivals(&reqs, 100.0, 3);
        assert!(timed.windows(2).all(|w| w[0].0 <= w[1].0));
        let mean = mean_interarrival_us(&timed).unwrap();
        assert!((mean - 100.0).abs() < 10.0, "mean interarrival {mean}");
    }

    #[test]
    fn empty_workload_yields_no_arrivals_and_no_mean() {
        // Regression: the mean used to be computed as
        // `timed.last().unwrap().0 / n`, which panics on an empty stream.
        let timed = poisson_arrivals(&[], 100.0, 3);
        assert!(timed.is_empty());
        assert_eq!(mean_interarrival_us(&timed), None);
        assert!(mean_interarrival_us(&poisson_arrivals(&[IoRequest::write(0)], 50.0, 1)).is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let w = Workload::random_write(1.0);
        assert_eq!(w.generate(&info(50), 100, 9), w.generate(&info(50), 100, 9));
    }
}
