//! Wear tracking and static wear-leveling policy.
//!
//! Superblock organization interacts with wear: QSTR-MED's fast superblocks
//! attract hot host data, so without leveling the fastest blocks also wear
//! fastest. This module tracks per-block erase counts and implements the
//! classic threshold rule: when `max(PE) - min(PE)` exceeds a threshold,
//! the FTL should steer cold (GC) data onto the least-worn free blocks.

use flash_model::BlockAddr;
use std::collections::HashMap;

/// Per-block erase counters plus the wear-leveling decision rule.
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    erases: HashMap<BlockAddr, u32>,
    threshold: u32,
}

impl WearTracker {
    /// A tracker that flags imbalance beyond `threshold` erase cycles.
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        WearTracker { erases: HashMap::new(), threshold }
    }

    /// The configured imbalance threshold.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records one erase of `addr`.
    pub fn record_erase(&mut self, addr: BlockAddr) {
        *self.erases.entry(addr).or_insert(0) += 1;
    }

    /// Overwrites the erase counter of one block (recovery re-seeding the
    /// tracker from the media's P/E cycle counts); a zero count removes the
    /// entry so `spread` keeps ignoring never-erased blocks.
    pub fn set_erases(&mut self, addr: BlockAddr, count: u32) {
        if count == 0 {
            self.erases.remove(&addr);
        } else {
            self.erases.insert(addr, count);
        }
    }

    /// Erase count of one block (0 if never erased).
    #[must_use]
    pub fn erases(&self, addr: BlockAddr) -> u32 {
        self.erases.get(&addr).copied().unwrap_or(0)
    }

    /// `(min, max)` erase counts over blocks seen so far.
    #[must_use]
    pub fn spread(&self) -> (u32, u32) {
        let min = self.erases.values().copied().min().unwrap_or(0);
        let max = self.erases.values().copied().max().unwrap_or(0);
        (min, max)
    }

    /// Mean erase count.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.erases.is_empty() {
            return 0.0;
        }
        self.erases.values().map(|&v| f64::from(v)).sum::<f64>() / self.erases.len() as f64
    }

    /// Whether the wear imbalance exceeds the threshold — time to level.
    #[must_use]
    pub fn needs_leveling(&self) -> bool {
        let (min, max) = self.spread();
        max - min > self.threshold
    }

    /// Among `candidates`, the least-worn block (ties by address) — where
    /// cold data should go when leveling.
    #[must_use]
    pub fn coldest_candidate(&self, candidates: &[BlockAddr]) -> Option<BlockAddr> {
        candidates.iter().copied().min_by_key(|&a| (self.erases(a), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockId, ChipId, PlaneId};

    fn blk(b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b))
    }

    #[test]
    fn records_and_reports_erases() {
        let mut w = WearTracker::new(10);
        w.record_erase(blk(0));
        w.record_erase(blk(0));
        w.record_erase(blk(1));
        assert_eq!(w.erases(blk(0)), 2);
        assert_eq!(w.erases(blk(1)), 1);
        assert_eq!(w.erases(blk(9)), 0);
    }

    #[test]
    fn spread_and_mean() {
        let mut w = WearTracker::new(10);
        for _ in 0..4 {
            w.record_erase(blk(0));
        }
        w.record_erase(blk(1));
        assert_eq!(w.spread(), (1, 4));
        assert!((w.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn leveling_triggers_beyond_threshold() {
        let mut w = WearTracker::new(2);
        for _ in 0..4 {
            w.record_erase(blk(0));
        }
        w.record_erase(blk(1));
        assert!(w.needs_leveling(), "spread 3 > threshold 2");
        let mut calm = WearTracker::new(5);
        calm.record_erase(blk(0));
        assert!(!calm.needs_leveling());
    }

    #[test]
    fn coldest_candidate_prefers_low_wear() {
        let mut w = WearTracker::new(1);
        w.record_erase(blk(0));
        w.record_erase(blk(0));
        w.record_erase(blk(1));
        assert_eq!(w.coldest_candidate(&[blk(0), blk(1), blk(2)]), Some(blk(2)));
        assert_eq!(w.coldest_candidate(&[]), None);
    }

    #[test]
    fn set_erases_overwrites_and_zero_clears() {
        let mut w = WearTracker::new(10);
        w.record_erase(blk(0));
        w.set_erases(blk(0), 7);
        assert_eq!(w.erases(blk(0)), 7);
        w.set_erases(blk(1), 3);
        assert_eq!(w.spread(), (3, 7));
        w.set_erases(blk(1), 0);
        assert_eq!(w.erases(blk(1)), 0);
        assert_eq!(w.spread(), (7, 7), "cleared block leaves the spread");
    }

    #[test]
    fn empty_tracker_is_quiet() {
        let w = WearTracker::new(0);
        assert_eq!(w.spread(), (0, 0));
        assert_eq!(w.mean(), 0.0);
        assert!(!w.needs_leveling());
    }
}
