//! Logical-to-physical page mapping with validity tracking.
//!
//! Two interchangeable stores implement the same semantics:
//!
//! * **Dense** (the default, [`Mapping::new`]) — the reverse map is a flat
//!   `Vec` indexed by [`Geometry::page_index`], with a per-block valid-page
//!   counter maintained incrementally on every map/unmap/trim. Validity
//!   queries ([`Mapping::valid_in_block_count`]) are O(1) counter reads and
//!   [`Mapping::valid_in_block`] walks only the block's contiguous index
//!   range, so garbage collection stops rescanning the whole device.
//! * **Naive** ([`Mapping::new_naive`]) — the original `HashMap`-backed
//!   reverse map whose per-block queries scan every mapped page. Retained as
//!   the reference implementation for oracle tests and the before/after
//!   benchmarks (`perf_replay`, `benches/gc.rs`); both stores make identical
//!   decisions, the dense one just answers in O(1).

use flash_model::{BlockAddr, Geometry, PageAddr};
use std::collections::HashMap;

/// Sentinel marking an invalid (unmapped) physical page in the dense store.
/// Safe because stored LPNs are always below the logical capacity.
const INVALID: u64 = u64::MAX;

#[derive(Debug, Clone)]
enum Store {
    Dense {
        /// Reverse map indexed by `Geometry::page_index`; `INVALID` = stale.
        p2l: Vec<u64>,
        /// Valid-page count per `Geometry::block_index`.
        block_valid: Vec<u32>,
        /// Total valid pages (sum of `block_valid`).
        valid: usize,
        /// Geometry defining the flattening.
        geo: Geometry,
    },
    Naive {
        p2l: HashMap<PageAddr, u64>,
    },
}

/// Page-level L2P/P2L mapping.
///
/// Invariant: `l2p[lpn] == Some(ppa)` iff the reverse store maps `ppa` to
/// `lpn`; a physical page absent from the reverse store is invalid (stale or
/// never written).
#[derive(Debug, Clone)]
pub struct Mapping {
    l2p: Vec<Option<PageAddr>>,
    store: Store,
}

impl Mapping {
    /// A dense mapping exporting `capacity` logical pages over `geo`'s
    /// physical space, all unmapped.
    #[must_use]
    pub fn new(capacity: u64, geo: &Geometry) -> Self {
        Mapping {
            l2p: vec![None; capacity as usize],
            store: Store::Dense {
                p2l: vec![INVALID; geo.total_pages() as usize],
                block_valid: vec![0; geo.total_blocks() as usize],
                valid: 0,
                geo: geo.clone(),
            },
        }
    }

    /// The `HashMap`-backed reference mapping (original implementation).
    ///
    /// Semantically identical to [`Mapping::new`] but every per-block query
    /// scans all mapped pages. Kept for oracle tests and the before/after
    /// GC benchmarks; not meant for production paths.
    #[must_use]
    pub fn new_naive(capacity: u64) -> Self {
        Mapping { l2p: vec![None; capacity as usize], store: Store::Naive { p2l: HashMap::new() } }
    }

    /// Exported logical capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Physical location of a logical page.
    #[must_use]
    pub fn lookup(&self, lpn: u64) -> Option<PageAddr> {
        self.l2p.get(lpn as usize).copied().flatten()
    }

    /// Logical page stored at a physical page, if it is valid.
    #[must_use]
    pub fn reverse(&self, ppa: PageAddr) -> Option<u64> {
        match &self.store {
            Store::Dense { p2l, geo, .. } => {
                let lpn = p2l[geo.page_index(ppa)];
                (lpn != INVALID).then_some(lpn)
            }
            Store::Naive { p2l } => p2l.get(&ppa).copied(),
        }
    }

    /// Whether a physical page holds valid data.
    #[must_use]
    pub fn is_valid(&self, ppa: PageAddr) -> bool {
        self.reverse(ppa).is_some()
    }

    /// Number of valid physical pages.
    #[must_use]
    pub fn valid_pages(&self) -> usize {
        match &self.store {
            Store::Dense { valid, .. } => *valid,
            Store::Naive { p2l } => p2l.len(),
        }
    }

    /// Maps `lpn` to `ppa`, invalidating any previous location.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range or `ppa` already holds another
    /// logical page (a physical page is written once per erase cycle).
    pub fn map(&mut self, lpn: u64, ppa: PageAddr) {
        assert!((lpn as usize) < self.l2p.len(), "lpn {lpn} out of range");
        if let Some(old) = self.l2p[lpn as usize].take() {
            self.clear_reverse(old);
        }
        match &mut self.store {
            Store::Dense { p2l, block_valid, valid, geo } => {
                let idx = geo.page_index(ppa);
                assert!(p2l[idx] == INVALID, "physical page written twice without erase");
                p2l[idx] = lpn;
                block_valid[geo.block_index(ppa.wl.block)] += 1;
                *valid += 1;
            }
            Store::Naive { p2l } => {
                let prev = p2l.insert(ppa, lpn);
                assert!(prev.is_none(), "physical page written twice without erase");
            }
        }
        self.l2p[lpn as usize] = Some(ppa);
    }

    /// Unmaps a logical page (trim); returns its old location.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn unmap(&mut self, lpn: u64) -> Option<PageAddr> {
        assert!((lpn as usize) < self.l2p.len(), "lpn {lpn} out of range");
        let old = self.l2p[lpn as usize].take();
        if let Some(ppa) = old {
            self.clear_reverse(ppa);
        }
        old
    }

    /// Drops the reverse-store record of one page, fixing the counters.
    fn clear_reverse(&mut self, ppa: PageAddr) {
        match &mut self.store {
            Store::Dense { p2l, block_valid, valid, geo } => {
                let idx = geo.page_index(ppa);
                if p2l[idx] != INVALID {
                    p2l[idx] = INVALID;
                    block_valid[geo.block_index(ppa.wl.block)] -= 1;
                    *valid -= 1;
                }
            }
            Store::Naive { p2l } => {
                p2l.remove(&ppa);
            }
        }
    }

    /// Drops validity records for every page of a block (after erase).
    pub fn invalidate_block(&mut self, block: BlockAddr) {
        // Erase only happens after relocation, so every page of the block
        // must already be invalid; this is a defensive sweep.
        match &mut self.store {
            Store::Dense { p2l, block_valid, valid, geo } => {
                let bi = geo.block_index(block);
                if block_valid[bi] == 0 {
                    return;
                }
                let ppb = geo.pages_per_block() as usize;
                let base = bi * ppb;
                for slot in &mut p2l[base..base + ppb] {
                    let lpn = std::mem::replace(slot, INVALID);
                    if lpn != INVALID {
                        self.l2p[lpn as usize] = None;
                        *valid -= 1;
                    }
                }
                block_valid[bi] = 0;
            }
            Store::Naive { p2l } => {
                let stale: Vec<PageAddr> =
                    p2l.keys().filter(|p| p.wl.block == block).copied().collect();
                for ppa in stale {
                    if let Some(lpn) = p2l.remove(&ppa) {
                        self.l2p[lpn as usize] = None;
                    }
                }
            }
        }
    }

    /// Number of valid pages currently stored in a block.
    ///
    /// Dense store: one O(1) counter read. Naive store: a scan over every
    /// mapped page (the original cost this counter replaces).
    #[must_use]
    pub fn valid_in_block_count(&self, block: BlockAddr) -> usize {
        match &self.store {
            Store::Dense { block_valid, geo, .. } => block_valid[geo.block_index(block)] as usize,
            Store::Naive { p2l } => p2l.keys().filter(|p| p.wl.block == block).count(),
        }
    }

    /// Valid logical pages currently stored in a block, with locations, in
    /// `(lwl, page)` program order. Alloc-free; collect into a reusable
    /// buffer when the mapping must be mutated while iterating.
    pub fn valid_in_block(&self, block: BlockAddr) -> impl Iterator<Item = (u64, PageAddr)> + '_ {
        let dense = match &self.store {
            Store::Dense { p2l, geo, .. } => {
                let ppb = geo.pages_per_block() as usize;
                let base = geo.block_index(block) * ppb;
                Some(
                    p2l[base..base + ppb]
                        .iter()
                        .enumerate()
                        .filter(|&(_, &lpn)| lpn != INVALID)
                        .map(move |(off, &lpn)| (lpn, geo.page_at_offset(block, off))),
                )
            }
            Store::Naive { .. } => None,
        };
        let naive = match &self.store {
            Store::Naive { p2l } => {
                let mut v: Vec<(u64, PageAddr)> = p2l
                    .iter()
                    .filter(|(p, _)| p.wl.block == block)
                    .map(|(p, &l)| (l, *p))
                    .collect();
                v.sort_by_key(|&(_, p)| (p.wl.lwl, p.page.index()));
                Some(v.into_iter())
            }
            Store::Dense { .. } => None,
        };
        dense.into_iter().flatten().chain(naive.into_iter().flatten())
    }

    /// Checks the L2P/P2L bijection invariant (for tests).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let forward_ok = self
            .l2p
            .iter()
            .enumerate()
            .filter_map(|(l, p)| p.map(|p| (l as u64, p)))
            .all(|(l, p)| self.reverse(p) == Some(l));
        if !forward_ok {
            return false;
        }
        match &self.store {
            Store::Dense { p2l, block_valid, valid, geo } => {
                let ppb = geo.pages_per_block() as usize;
                let mut total = 0usize;
                for (bi, &count) in block_valid.iter().enumerate() {
                    let base = bi * ppb;
                    let live = p2l[base..base + ppb].iter().filter(|&&l| l != INVALID).count();
                    if live != count as usize {
                        return false;
                    }
                    total += live;
                }
                if total != *valid {
                    return false;
                }
                p2l.iter().enumerate().filter(|(_, &l)| l != INVALID).all(|(i, &l)| {
                    match self.l2p[l as usize] {
                        Some(p) => geo.page_index(p) == i,
                        None => false,
                    }
                })
            }
            Store::Naive { p2l } => p2l.iter().all(|(p, &l)| self.l2p[l as usize] == Some(*p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockAddr, BlockId, CellType, ChipId, LwlId, PageType, PlaneId};

    fn geo() -> Geometry {
        Geometry::new(2, 1, 4, 2, 2, CellType::Tlc)
    }

    fn both(capacity: u64) -> [Mapping; 2] {
        [Mapping::new(capacity, &geo()), Mapping::new_naive(capacity)]
    }

    fn ppa(b: u32, lwl: u32, pt: PageType) -> PageAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b)).wl(LwlId(lwl)).page(pt)
    }

    #[test]
    fn map_and_lookup_roundtrip() {
        for mut m in both(10) {
            m.map(3, ppa(0, 0, PageType::Lsb));
            assert_eq!(m.lookup(3), Some(ppa(0, 0, PageType::Lsb)));
            assert_eq!(m.reverse(ppa(0, 0, PageType::Lsb)), Some(3));
            assert!(m.is_consistent());
        }
    }

    #[test]
    fn remap_invalidates_old_location() {
        for mut m in both(10) {
            m.map(3, ppa(0, 0, PageType::Lsb));
            m.map(3, ppa(1, 0, PageType::Lsb));
            assert!(!m.is_valid(ppa(0, 0, PageType::Lsb)));
            assert_eq!(m.lookup(3), Some(ppa(1, 0, PageType::Lsb)));
            assert!(m.is_consistent());
        }
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_to_same_ppa_panics() {
        let mut m = Mapping::new(10, &geo());
        m.map(1, ppa(0, 0, PageType::Lsb));
        m.map(2, ppa(0, 0, PageType::Lsb));
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn naive_double_write_to_same_ppa_panics() {
        let mut m = Mapping::new_naive(10);
        m.map(1, ppa(0, 0, PageType::Lsb));
        m.map(2, ppa(0, 0, PageType::Lsb));
    }

    #[test]
    fn unmap_clears_both_directions() {
        for mut m in both(10) {
            m.map(3, ppa(0, 0, PageType::Lsb));
            assert_eq!(m.unmap(3), Some(ppa(0, 0, PageType::Lsb)));
            assert_eq!(m.lookup(3), None);
            assert_eq!(m.valid_pages(), 0);
            assert!(m.is_consistent());
        }
    }

    #[test]
    fn valid_in_block_filters_and_sorts() {
        for mut m in both(10) {
            m.map(1, ppa(0, 1, PageType::Lsb));
            m.map(2, ppa(0, 0, PageType::Msb));
            m.map(3, ppa(1, 0, PageType::Lsb));
            let blk0 = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0));
            let v: Vec<_> = m.valid_in_block(blk0).collect();
            assert_eq!(v.len(), 2);
            assert_eq!(m.valid_in_block_count(blk0), 2);
            assert_eq!(v[0].0, 2, "WL0 before WL1");
        }
    }

    #[test]
    fn invalidate_block_sweeps_everything() {
        for mut m in both(10) {
            m.map(1, ppa(0, 0, PageType::Lsb));
            m.map(2, ppa(0, 1, PageType::Csb));
            m.invalidate_block(BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0)));
            assert_eq!(m.valid_pages(), 0);
            assert_eq!(m.lookup(1), None);
            assert!(m.is_consistent());
        }
    }

    #[test]
    fn block_counters_track_map_unmap_remap() {
        let mut m = Mapping::new(20, &geo());
        let blk0 = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0));
        let blk1 = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(1));
        m.map(1, ppa(0, 0, PageType::Lsb));
        m.map(2, ppa(0, 0, PageType::Csb));
        m.map(3, ppa(1, 0, PageType::Lsb));
        assert_eq!(m.valid_in_block_count(blk0), 2);
        assert_eq!(m.valid_in_block_count(blk1), 1);
        // Remap lpn 1 into block 1: counters move with it.
        m.map(1, ppa(1, 0, PageType::Csb));
        assert_eq!(m.valid_in_block_count(blk0), 1);
        assert_eq!(m.valid_in_block_count(blk1), 2);
        m.unmap(2);
        assert_eq!(m.valid_in_block_count(blk0), 0);
        assert!(m.is_consistent());
    }

    #[test]
    fn lookup_out_of_range_is_none() {
        let m = Mapping::new(4, &geo());
        assert_eq!(m.lookup(99), None);
    }
}
