//! Logical-to-physical page mapping with validity tracking.

use flash_model::{BlockAddr, PageAddr};
use std::collections::HashMap;

/// Page-level L2P/P2L mapping.
///
/// Invariant: `l2p[lpn] == Some(ppa)` iff `p2l[ppa] == lpn`; a physical page
/// not in `p2l` is invalid (stale or never written).
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    l2p: Vec<Option<PageAddr>>,
    p2l: HashMap<PageAddr, u64>,
}

impl Mapping {
    /// A mapping exporting `capacity` logical pages, all unmapped.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Mapping { l2p: vec![None; capacity as usize], p2l: HashMap::new() }
    }

    /// Exported logical capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Physical location of a logical page.
    #[must_use]
    pub fn lookup(&self, lpn: u64) -> Option<PageAddr> {
        self.l2p.get(lpn as usize).copied().flatten()
    }

    /// Logical page stored at a physical page, if it is valid.
    #[must_use]
    pub fn reverse(&self, ppa: PageAddr) -> Option<u64> {
        self.p2l.get(&ppa).copied()
    }

    /// Whether a physical page holds valid data.
    #[must_use]
    pub fn is_valid(&self, ppa: PageAddr) -> bool {
        self.p2l.contains_key(&ppa)
    }

    /// Number of valid physical pages.
    #[must_use]
    pub fn valid_pages(&self) -> usize {
        self.p2l.len()
    }

    /// Maps `lpn` to `ppa`, invalidating any previous location.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range or `ppa` already holds another
    /// logical page (a physical page is written once per erase cycle).
    pub fn map(&mut self, lpn: u64, ppa: PageAddr) {
        assert!((lpn as usize) < self.l2p.len(), "lpn {lpn} out of range");
        if let Some(old) = self.l2p[lpn as usize].take() {
            self.p2l.remove(&old);
        }
        let prev = self.p2l.insert(ppa, lpn);
        assert!(prev.is_none(), "physical page written twice without erase");
        self.l2p[lpn as usize] = Some(ppa);
    }

    /// Unmaps a logical page (trim); returns its old location.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn unmap(&mut self, lpn: u64) -> Option<PageAddr> {
        assert!((lpn as usize) < self.l2p.len(), "lpn {lpn} out of range");
        let old = self.l2p[lpn as usize].take();
        if let Some(ppa) = old {
            self.p2l.remove(&ppa);
        }
        old
    }

    /// Drops validity records for every page of a block (after erase).
    pub fn invalidate_block(&mut self, block: BlockAddr) {
        // Erase only happens after relocation, so every page of the block
        // must already be invalid; this is a defensive sweep.
        let stale: Vec<PageAddr> =
            self.p2l.keys().filter(|p| p.wl.block == block).copied().collect();
        for ppa in stale {
            if let Some(lpn) = self.p2l.remove(&ppa) {
                self.l2p[lpn as usize] = None;
            }
        }
    }

    /// Valid logical pages currently stored in a block, with locations.
    #[must_use]
    pub fn valid_in_block(&self, block: BlockAddr) -> Vec<(u64, PageAddr)> {
        let mut v: Vec<(u64, PageAddr)> =
            self.p2l.iter().filter(|(p, _)| p.wl.block == block).map(|(p, &l)| (l, *p)).collect();
        v.sort_by_key(|&(_, p)| (p.wl.lwl, p.page.index()));
        v
    }

    /// Checks the L2P/P2L bijection invariant (for tests).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let forward_ok = self
            .l2p
            .iter()
            .enumerate()
            .filter_map(|(l, p)| p.map(|p| (l as u64, p)))
            .all(|(l, p)| self.p2l.get(&p) == Some(&l));
        forward_ok && self.p2l.iter().all(|(p, &l)| self.l2p[l as usize] == Some(*p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockId, ChipId, LwlId, PageType, PlaneId};

    fn ppa(b: u32, lwl: u32, pt: PageType) -> PageAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b)).wl(LwlId(lwl)).page(pt)
    }

    #[test]
    fn map_and_lookup_roundtrip() {
        let mut m = Mapping::new(10);
        m.map(3, ppa(0, 0, PageType::Lsb));
        assert_eq!(m.lookup(3), Some(ppa(0, 0, PageType::Lsb)));
        assert_eq!(m.reverse(ppa(0, 0, PageType::Lsb)), Some(3));
        assert!(m.is_consistent());
    }

    #[test]
    fn remap_invalidates_old_location() {
        let mut m = Mapping::new(10);
        m.map(3, ppa(0, 0, PageType::Lsb));
        m.map(3, ppa(1, 0, PageType::Lsb));
        assert!(!m.is_valid(ppa(0, 0, PageType::Lsb)));
        assert_eq!(m.lookup(3), Some(ppa(1, 0, PageType::Lsb)));
        assert!(m.is_consistent());
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_to_same_ppa_panics() {
        let mut m = Mapping::new(10);
        m.map(1, ppa(0, 0, PageType::Lsb));
        m.map(2, ppa(0, 0, PageType::Lsb));
    }

    #[test]
    fn unmap_clears_both_directions() {
        let mut m = Mapping::new(10);
        m.map(3, ppa(0, 0, PageType::Lsb));
        assert_eq!(m.unmap(3), Some(ppa(0, 0, PageType::Lsb)));
        assert_eq!(m.lookup(3), None);
        assert_eq!(m.valid_pages(), 0);
        assert!(m.is_consistent());
    }

    #[test]
    fn valid_in_block_filters_and_sorts() {
        let mut m = Mapping::new(10);
        m.map(1, ppa(0, 1, PageType::Lsb));
        m.map(2, ppa(0, 0, PageType::Msb));
        m.map(3, ppa(1, 0, PageType::Lsb));
        let blk0 = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0));
        let v = m.valid_in_block(blk0);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, 2, "WL0 before WL1");
    }

    #[test]
    fn invalidate_block_sweeps_everything() {
        let mut m = Mapping::new(10);
        m.map(1, ppa(0, 0, PageType::Lsb));
        m.map(2, ppa(0, 1, PageType::Csb));
        m.invalidate_block(BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0)));
        assert_eq!(m.valid_pages(), 0);
        assert_eq!(m.lookup(1), None);
        assert!(m.is_consistent());
    }

    #[test]
    fn lookup_out_of_range_is_none() {
        let m = Mapping::new(4);
        assert_eq!(m.lookup(99), None);
    }
}
