//! Host I/O requests.

use std::fmt;

/// Operation type of a host request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Read one logical page.
    Read,
    /// Write one logical page.
    Write,
    /// Invalidate one logical page.
    Trim,
}

/// One page-granular host request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoRequest {
    /// Operation type.
    pub op: IoOp,
    /// Logical page number.
    pub lpn: u64,
}

impl IoRequest {
    /// A write request.
    #[must_use]
    pub fn write(lpn: u64) -> Self {
        IoRequest { op: IoOp::Write, lpn }
    }

    /// A read request.
    #[must_use]
    pub fn read(lpn: u64) -> Self {
        IoRequest { op: IoOp::Read, lpn }
    }

    /// A trim request.
    #[must_use]
    pub fn trim(lpn: u64) -> Self {
        IoRequest { op: IoOp::Trim, lpn }
    }
}

impl fmt::Display for IoRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            IoOp::Read => "R",
            IoOp::Write => "W",
            IoOp::Trim => "T",
        };
        write!(f, "{op}:{}", self.lpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_op() {
        assert_eq!(IoRequest::write(3).op, IoOp::Write);
        assert_eq!(IoRequest::read(3).op, IoOp::Read);
        assert_eq!(IoRequest::trim(3).op, IoOp::Trim);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(IoRequest::write(42).to_string(), "W:42");
    }
}
