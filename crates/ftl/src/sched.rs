//! Event-core primitives for the batched replay engine
//! ([`crate::EngineMode::Batched`]).
//!
//! Two allocation-free building blocks live here:
//!
//! * [`CalendarQueue`] — a ring-of-buckets priority queue over event
//!   timestamps (R. Brown, CACM 1988). Completion events are inserted in
//!   near-sorted order during a replay, which makes the calendar layout
//!   O(1) amortized for both insert and pop, versus `O(log n)` for the
//!   binary heap it replaces. Ties are broken by insertion sequence so
//!   event ordering is fully deterministic.
//! * [`Arena`] — a slab with an intrusive free-list handing out stable
//!   `u32` handles. In-flight request records live here so steady-state
//!   replay performs no per-op heap allocation.
//!
//! Both are exercised head-to-head against naive oracles by the proptest
//! suite (`crates/ftl/tests/sched_equivalence.rs`) and microbenched by
//! `crates/bench/benches/events.rs`.

use std::collections::VecDeque;

/// One scheduled event: a timestamp plus a caller-supplied payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Absolute simulation time of the event, µs.
    pub time: f64,
    /// Monotonic insertion sequence; breaks timestamp ties so pop order is
    /// deterministic (FIFO among equal timestamps).
    pub seq: u64,
    /// Caller payload (e.g. an [`Arena`] handle).
    pub payload: u32,
}

/// Calendar-queue scheduler: a ring of time buckets, each a small sorted-on-
/// demand vector. See the [module docs](self) for why this beats a heap on
/// replay workloads.
///
/// The queue orders events by `(time, seq)` using `f64::total_cmp`, so NaN
/// never panics and ties pop in insertion order. The calendar resizes itself
/// (doubling/halving bucket count, re-deriving bucket width from the observed
/// inter-event gap) when occupancy drifts outside the classic 0.5–2 events
/// per bucket band.
#[derive(Debug)]
pub struct CalendarQueue {
    /// `buckets[i]` holds events whose day number satisfies
    /// `day & mask == i` (the bucket count is always a power of two).
    /// Each bucket is kept sorted ascending by `(time, seq)`: the next
    /// event pops from the front and the common near-sorted insert is an
    /// O(1) `push_back`, so neither end of the hot path moves memory.
    buckets: Vec<VecDeque<Event>>,
    /// Width of one bucket, µs.
    width: f64,
    /// Cached `1.0 / width`; day numbers are `(time * inv_width) as u64`,
    /// and every placement/scan decision uses that one function so bucket
    /// membership and rotation stay mutually consistent.
    inv_width: f64,
    /// `buckets.len() - 1`; bucket counts are powers of two so the ring
    /// index is a mask, not a modulo.
    mask: usize,
    /// Total events across all buckets.
    len: usize,
    /// Index of the bucket the cursor is scanning.
    cursor: usize,
    /// Day number the cursor is scanning — no queued event has a smaller
    /// day (push rewinds the cursor to keep this invariant).
    cursor_day: u64,
    /// The current global minimum as `(bucket, day, event)`, when known.
    /// Pushes can only improve it and pops refill it from the same-day
    /// bucket tail, so the hot "probe but nothing due" path never touches
    /// the (cold) bucket memory at all — it compares against this cache.
    /// `None` means unknown; the next rotation scan recomputes it.
    min_cache: Option<(usize, u64, Event)>,
    /// Next insertion sequence number.
    next_seq: u64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// Creates an empty queue (two buckets of 1 ms until the first resize
    /// learns the real event spacing).
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            buckets: vec![VecDeque::new(), VecDeque::new()],
            width: 1_000.0,
            inv_width: 1.0 / 1_000.0,
            mask: 1,
            len: 0,
            cursor: 0,
            cursor_day: 0,
            min_cache: None,
            next_seq: 0,
        }
    }

    /// Number of events currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an event at absolute time `time`; returns the sequence
    /// number assigned (ties pop FIFO by this number).
    pub fn push(&mut self, time: f64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = self.day(time);
        if day < self.cursor_day {
            // Keep the invariant that no queued event predates the cursor's
            // day; the rotation scan in `scan_min` relies on it.
            self.cursor_day = day;
            self.cursor = (day as usize) & self.mask;
        }
        let ev = Event { time, seq, payload };
        let idx = (day as usize) & self.mask;
        insert_sorted(&mut self.buckets[idx], ev);
        self.len += 1;
        // A push can only improve a known minimum, never stale it.
        match self.min_cache {
            None if self.len == 1 => self.min_cache = Some((idx, day, ev)),
            Some((_, _, m)) if cmp_event(ev.time, ev.seq, m.time, m.seq).is_lt() => {
                self.min_cache = Some((idx, day, ev));
            }
            _ => {}
        }
        if self.len > self.buckets.len() * 2 {
            if self.buckets.len() >= 1024 {
                // Deep queues grow by splitting buckets in place; the full
                // rebuild (which re-derives the width) already ran on the
                // way up through the small sizes, so the width is a settled
                // estimate by the time splits take over.
                self.grow_split();
            } else {
                self.resize(self.buckets.len() * 2);
            }
        }
        seq
    }

    /// Doubles the bucket count by splitting every bucket in place, keeping
    /// the current width. Day numbers don't change, so bucket `i`'s events
    /// belong to new bucket `i` or `i + n` according to the next day bit,
    /// and a stable `retain` keeps both halves sorted. This avoids the
    /// full rebuild's collect/re-insert pass on the hot growth path.
    fn grow_split(&mut self) {
        let n = self.buckets.len();
        self.buckets.resize_with(n * 2, VecDeque::new);
        self.mask = n * 2 - 1;
        let bit = n as u64;
        let inv_width = self.inv_width;
        // Same day function as `Self::day`, restated so the closure does
        // not borrow `self` inside the split loop.
        let day = move |t: f64| (t.max(0.0) * inv_width) as u64;
        let (low, high) = self.buckets.split_at_mut(n);
        for (src, dst) in low.iter_mut().zip(high.iter_mut()) {
            src.retain(|ev| {
                if day(ev.time) & bit == 0 {
                    true
                } else {
                    dst.push_back(*ev);
                    false
                }
            });
        }
        self.cursor = (self.cursor_day as usize) & self.mask;
        // Day numbers are unchanged, so a cached minimum stays the minimum;
        // only its ring position moves.
        if let Some((idx, cached_day, _)) = self.min_cache.as_mut() {
            *idx = (*cached_day as usize) & (n * 2 - 1);
        }
    }

    /// Earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<Event> {
        self.scan_min().map(|(_, _, ev)| ev)
    }

    /// Removes and returns the earliest event (ties in insertion order).
    pub fn pop_min(&mut self) -> Option<Event> {
        let (idx, day, _) = self.scan_min()?;
        let ev = self.buckets[idx].pop_front().expect("scan_min found a non-empty bucket");
        self.len -= 1;
        // Advance the cursor to the popped event's day so future scans
        // start near it.
        self.cursor = idx;
        self.cursor_day = day;
        self.refill_min(idx, day);
        if self.len >= 4 && self.len < self.buckets.len() / 2 {
            self.resize((self.buckets.len() / 2).max(2));
        }
        Some(ev)
    }

    /// After popping the minimum from bucket `idx` (day `day`), the new
    /// global minimum is the bucket's new front iff that event is still in
    /// the same day (all events of one day share one bucket, and every
    /// other bucket's days are strictly later). Otherwise it's unknown.
    fn refill_min(&mut self, idx: usize, day: u64) {
        self.min_cache = match self.buckets[idx].front() {
            Some(t) if self.day(t.time) == day => Some((idx, day, *t)),
            _ => None,
        };
    }

    /// Day number owning `time`. Every placement, rewind, and scan decision
    /// funnels through this one function, so an event's bucket and the day
    /// the rotation visits it on can never disagree.
    fn day(&self, time: f64) -> u64 {
        (time.max(0.0) * self.inv_width) as u64
    }

    /// Finds the bucket holding the global minimum; returns its index, the
    /// minimum's day and the event. Walks at most one full calendar year;
    /// falls back to a direct scan when events are sparse.
    ///
    /// Why the accepted front is the global minimum: every queued event's day
    /// is `>= cursor_day` (push/pop maintain that), a bucket only holds days
    /// congruent to its index, and all events of one day share one bucket.
    /// So when the sweep at day `d` sees a front with `day(front) <= d`, any
    /// bucket later in the sweep can only hold strictly later days, and any
    /// earlier-skipped bucket's events are at least a full ring-rotation
    /// away.
    fn scan_min(&self) -> Option<(usize, u64, Event)> {
        if self.len == 0 {
            return None;
        }
        if self.min_cache.is_some() {
            return self.min_cache;
        }
        let mut idx = self.cursor;
        for day in self.cursor_day..self.cursor_day + self.buckets.len() as u64 {
            if let Some(ev) = self.buckets[idx].front() {
                if self.day(ev.time) <= day {
                    return Some((idx, day, *ev));
                }
            }
            idx = (idx + 1) & self.mask;
        }
        // Sparse case: direct scan across bucket fronts.
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|ev| (i, self.day(ev.time), *ev)))
            .min_by(|a, b| cmp_event(a.2.time, a.2.seq, b.2.time, b.2.seq))
    }

    /// Rebuilds the calendar with `nbuckets` buckets and a width derived
    /// from the observed event span.
    fn resize(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two(), "bucket counts double/halve from 2");
        let mut events: Vec<Event> = Vec::with_capacity(self.len);
        let old_n = self.buckets.len();
        for step in 0..old_n {
            // Walk the ring starting at the cursor: when the span fits one
            // calendar year (the common case) this collects events in
            // ascending-day order, so redistribution below streams through
            // destination buckets sequentially instead of at random.
            // `drain` empties the bucket but keeps its heap buffer, so a
            // grow-resize reuses every existing allocation instead of
            // dropping n buffers and re-allocating them on first push.
            let idx = (self.cursor + step) & self.mask;
            events.extend(self.buckets[idx].drain(..));
        }
        let (lo, hi) = events.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), e| {
            (lo.min(e.time), hi.max(e.time))
        });
        if events.len() >= 2 && hi > lo {
            // Aim for ~1 event per bucket across the occupied span.
            self.width = ((hi - lo) / events.len() as f64 * 2.0).max(f64::MIN_POSITIVE);
            self.inv_width = 1.0 / self.width;
        }
        self.buckets.resize_with(nbuckets, VecDeque::new);
        self.mask = nbuckets - 1;
        self.len = 0;
        // The width (and with it every day number) may have changed;
        // recompute the minimum lazily on the next scan.
        self.min_cache = None;
        self.cursor_day = if lo.is_finite() { self.day(lo) } else { 0 };
        self.cursor = (self.cursor_day as usize) & self.mask;
        for ev in events {
            let idx = (self.day(ev.time) as usize) & self.mask;
            insert_sorted(&mut self.buckets[idx], ev);
            self.len += 1;
        }
    }

    /// Retires events with `time <= arrival`; returns how many remain
    /// queued. Drop-in for the heap-based depth tracker's `arrive`.
    ///
    /// It fuses peek and pop into a single rotation scan per retired event
    /// and memoizes the cursor at the minimum's day even when nothing
    /// retires — the common "probe fails" call is then a one-bucket check,
    /// like a heap's O(1) peek. For the chip-completion backlog itself,
    /// prefer [`DepthTracker`]: its input is near-sorted by construction,
    /// which admits a flat sorted ring with no bucket indirection at all.
    pub fn arrive(&mut self, arrival: f64) -> usize {
        // Fast path: a known minimum later than the arrival means nothing
        // retires — no bucket memory is touched at all.
        if let Some((_, _, ev)) = self.min_cache {
            if ev.time > arrival {
                return self.len;
            }
        }
        while self.len > 0 {
            let Some((idx, day, ev)) = self.scan_min() else { break };
            self.cursor = idx;
            self.cursor_day = day;
            if ev.time > arrival {
                self.min_cache = Some((idx, day, ev));
                break;
            }
            self.buckets[idx].pop_front();
            self.len -= 1;
            self.refill_min(idx, day);
            if self.len >= 4 && self.len < self.buckets.len() / 2 {
                self.resize((self.buckets.len() / 2).max(2));
            }
        }
        self.len
    }

    /// Registers a completion event at `at` (depth-tracker compatible).
    pub fn complete_at(&mut self, at: f64) {
        self.push(at, 0);
    }
}

/// Orders `(time, seq)` pairs ascending: `total_cmp` on time (NaN-safe),
/// insertion sequence breaks ties.
fn cmp_event(at: f64, aseq: u64, bt: f64, bseq: u64) -> std::cmp::Ordering {
    at.total_cmp(&bt).then(aseq.cmp(&bseq))
}

/// Inserts `ev` into an ascending bucket. Near-sorted streams append at the
/// back in O(1); out-of-order events fall back to a binary search plus a
/// `VecDeque::insert`, which moves from whichever end is closer.
fn insert_sorted(bucket: &mut VecDeque<Event>, ev: Event) {
    match bucket.back() {
        Some(b) if cmp_event(ev.time, ev.seq, b.time, b.seq).is_lt() => {
            let pos = bucket.partition_point(|e| cmp_event(e.time, e.seq, ev.time, ev.seq).is_lt());
            bucket.insert(pos, ev);
        }
        _ => bucket.push_back(ev),
    }
}

/// Depth tracker specialized for the chip-completion streams a replay
/// emits.
///
/// Per-chip busy-until clocks only move forward, so completion times arrive
/// in near-sorted order; a single sorted ring with insert-from-the-back
/// makes both [`DepthTracker::complete_at`] and [`DepthTracker::arrive`]
/// O(1) amortized with strictly sequential memory traffic, where a binary
/// heap pays an O(log n) pointer-hopping sift per event on the same stream
/// and a calendar ring scatters a deep backlog across cold buckets. Depth
/// counting needs no tie-break: `arrive` retires every completion `<=
/// arrival`, so only the multiset of times matters.
#[derive(Debug, Default)]
pub struct DepthTracker {
    /// Completion times, ascending.
    completions: VecDeque<f64>,
}

impl DepthTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completions still outstanding.
    #[must_use]
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// True when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// Registers a completion event at `at`. Monotone (and equal-time)
    /// pushes append in O(1); a clock interleaving briefly out of order
    /// falls back to a binary search and a short move from the back.
    pub fn complete_at(&mut self, at: f64) {
        match self.completions.back() {
            Some(&back) if at.total_cmp(&back).is_lt() => {
                let pos = self.completions.partition_point(|c| c.total_cmp(&at).is_le());
                self.completions.insert(pos, at);
            }
            _ => self.completions.push_back(at),
        }
    }

    /// Retires events with `time <= arrival`; returns how many remain in
    /// flight.
    pub fn arrive(&mut self, arrival: f64) -> usize {
        while self.completions.front().is_some_and(|&c| c <= arrival) {
            self.completions.pop_front();
        }
        self.completions.len()
    }
}

/// Slab + free-list arena handing out stable `u32` handles.
///
/// `alloc` reuses the most recently freed slot (LIFO), so steady-state
/// replays with bounded in-flight depth never grow the slab after warm-up
/// and touch hot cache lines.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Head of the intrusive free list (`u32::MAX` = empty).
    free_head: u32,
    live: usize,
}

#[derive(Debug)]
enum Slot<T> {
    Occupied(T),
    /// Free slot; payload is the next free slot's index (`u32::MAX` ends
    /// the list).
    Free(u32),
}

/// Sentinel terminating the free list.
const NIL: u32 = u32::MAX;

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Arena { slots: Vec::new(), free_head: NIL, live: 0 }
    }

    /// Creates an arena with room for `cap` records before any reallocation.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Arena { slots: Vec::with_capacity(cap), free_head: NIL, live: 0 }
    }

    /// Number of live records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no records are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stores `value`, returning its handle. Reuses freed slots LIFO.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX - 1` records are live at once.
    pub fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Free(next) => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.slots[idx as usize] = Slot::Occupied(value);
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena overflow");
            assert!(idx != NIL, "arena overflow");
            self.slots.push(Slot::Occupied(value));
            idx
        }
    }

    /// Removes and returns the record behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is stale (already freed) or out of range.
    pub fn free(&mut self, handle: u32) -> T {
        let slot = std::mem::replace(&mut self.slots[handle as usize], Slot::Free(self.free_head));
        match slot {
            Slot::Occupied(value) => {
                self.free_head = handle;
                self.live -= 1;
                value
            }
            Slot::Free(prev) => {
                self.slots[handle as usize] = Slot::Free(prev);
                panic!("double free of arena handle {handle}");
            }
        }
    }

    /// Shared access to a live record.
    #[must_use]
    pub fn get(&self, handle: u32) -> Option<&T> {
        match self.slots.get(handle as usize) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutable access to a live record.
    #[must_use]
    pub fn get_mut(&mut self, handle: u32) -> Option<&mut T> {
        match self.slots.get_mut(handle as usize) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(30.0, 3);
        q.push(10.0, 1);
        q.push(20.0, 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_min().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn calendar_breaks_ties_by_insertion_order() {
        let mut q = CalendarQueue::new();
        q.push(5.0, 10);
        q.push(5.0, 11);
        q.push(5.0, 12);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_min().map(|e| e.payload)).collect();
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    fn calendar_survives_resize_cycles() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u32 {
            // Deterministic scatter across a wide span.
            q.push(f64::from((i * 7919) % 10_000), i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some(ev) = q.pop_min() {
            assert!(ev.time >= last, "pop order regressed: {} after {last}", ev.time);
            last = ev.time;
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    #[test]
    fn calendar_interleaves_push_and_pop() {
        let mut q = CalendarQueue::new();
        q.push(1.0, 1);
        q.push(3.0, 3);
        assert_eq!(q.pop_min().unwrap().payload, 1);
        q.push(2.0, 2);
        assert_eq!(q.pop_min().unwrap().payload, 2);
        assert_eq!(q.pop_min().unwrap().payload, 3);
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn calendar_depth_tracker_matches_heap_semantics() {
        // Mirrors timing.rs::in_flight_depth_tracks_overlapping_requests.
        let mut q = CalendarQueue::new();
        assert_eq!(q.arrive(0.0), 0);
        q.complete_at(10.0);
        q.complete_at(20.0);
        assert_eq!(q.arrive(5.0), 2, "both still running at t=5");
        assert_eq!(q.arrive(10.0), 1, "first completed exactly at t=10");
        assert_eq!(q.arrive(25.0), 0);
    }

    #[test]
    fn depth_tracker_matches_heap_semantics() {
        // Mirrors timing.rs::in_flight_depth_tracks_overlapping_requests.
        let mut q = DepthTracker::new();
        assert_eq!(q.arrive(0.0), 0);
        q.complete_at(10.0);
        q.complete_at(20.0);
        assert_eq!(q.arrive(5.0), 2, "both still running at t=5");
        assert_eq!(q.arrive(10.0), 1, "first completed exactly at t=10");
        assert_eq!(q.arrive(25.0), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn depth_tracker_accepts_out_of_order_completions() {
        // Per-chip clocks interleave: chip A's completion can land behind
        // chip B's already-registered one. The ring must stay sorted.
        let mut q = DepthTracker::new();
        q.complete_at(30.0);
        q.complete_at(10.0);
        q.complete_at(20.0);
        q.complete_at(20.0);
        assert_eq!(q.len(), 4);
        assert_eq!(q.arrive(10.0), 3);
        assert_eq!(q.arrive(20.0), 1);
        assert_eq!(q.arrive(29.999), 1);
        assert_eq!(q.arrive(30.0), 0);
    }

    #[test]
    fn arena_allocates_and_frees() {
        let mut a = Arena::new();
        let h1 = a.alloc("one");
        let h2 = a.alloc("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.free(h1), "one");
        assert_eq!(a.len(), 1);
        assert!(a.get(h1).is_none());
        // LIFO reuse of the freed slot.
        let h3 = a.alloc("three");
        assert_eq!(h3, h1);
        assert_eq!(a.get(h2), Some(&"two"));
        assert_eq!(a.get(h3), Some(&"three"));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn arena_rejects_double_free() {
        let mut a = Arena::new();
        let h = a.alloc(1u8);
        a.free(h);
        a.free(h);
    }

    #[test]
    fn arena_get_mut_updates_in_place() {
        let mut a = Arena::new();
        let h = a.alloc(41u64);
        *a.get_mut(h).unwrap() += 1;
        assert_eq!(a.free(h), 42);
    }
}
