//! # ftl
//!
//! An SSD / flash-translation-layer simulator built on [`flash_model`],
//! exercising the paper's QSTR-MED pipeline end to end (§V):
//!
//! * **gathering** — while superblocks are programmed, per-word-line
//!   latencies feed [`pvcheck::gather::BlockGatherer`]s, so every block that
//!   completes a program cycle leaves behind its 52-byte summary;
//! * **assembling** — free blocks live in per-chip pools; when the write
//!   path needs a new superblock the configured organization strategy
//!   (random, sequential, or QSTR-MED on demand) picks the members;
//! * **allocating** — function-based placement (§V-D) routes host writes to
//!   *fast* superblocks and garbage-collection relocations to *slow* ones.
//!
//! The device model is a serial-command SSD: host latency accrues from page
//! transfers, the multi-plane programs/erases they trigger, and any
//! foreground garbage collection. That is exactly the surface where the
//! paper's extra latency hurts, which is what the end-to-end experiment
//! (`repro ssd`) measures.
//!
//! # Example
//!
//! ```
//! use ftl::{FtlConfig, OrganizationScheme, Ssd, Workload};
//!
//! let mut config = FtlConfig::small_test();
//! config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
//! let mut ssd = Ssd::new(config, 42).expect("config is valid");
//! let requests = Workload::random_write(0.5).generate(&ssd.geometry_info(), 2_000, 7);
//! ssd.run(&requests).expect("workload fits the device");
//! assert!(ssd.stats().host_writes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod config;
mod device;
mod error;
mod gc;
mod manager;
mod mapping;
mod recovery;
mod request;
pub mod sched;
mod stats;
mod timing;
pub mod trace;
mod wear_level;
mod workload;

pub use config::{
    FtlConfig, IntegrityConfig, OrganizationScheme, ParityConfig, PatrolConfig, PatrolOrder,
    PlacementPolicy, QosClass,
};
pub use device::{GeometryInfo, Ssd};
pub use error::FtlError;
pub use gc::{GcBudget, GcPolicy};
pub use manager::BlockManager;
pub use mapping::Mapping;
pub use recovery::{CrashPoint, RecoveryReport, SporConfig};
pub use request::{IoOp, IoRequest};
pub use stats::{LatencyHistogram, SsdStats};
pub use timing::{EngineMode, QueueModel, TimedOutcome};
pub use wear_level::WearTracker;
pub use workload::{mean_interarrival_us, poisson_arrivals, Workload};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, FtlError>;
