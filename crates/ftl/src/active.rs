//! Open (actively written) superblocks: staging buffer, super word-line
//! write pointer and runtime gathering — plus the placement hook that maps
//! a write's purpose (tenant QoS class or GC) to its open-superblock slot.

use crate::config::{PlacementPolicy, QosClass};
use crate::error::FtlError;
use crate::recovery::SporState;
use crate::Result;
use flash_model::{BlockAddr, FlashArray, MpOutcome, PageAddr, PageOob, PageType, WlAddr};
use pvcheck::gather::BlockGatherer;
use pvcheck::BlockSummary;

/// Payload tag marking a padding page that stores no logical data.
pub(crate) const FILLER: u64 = u64::MAX;

/// Who generated a write — the placement key. Host writes carry their
/// tenant's QoS class; GC relocations form their own purpose so they stay
/// pinned to the slowest pool (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Purpose {
    /// A host write of the given latency class.
    Host(QosClass),
    /// A garbage-collection (or refresh) relocation.
    Gc,
}

/// Every purpose, in flush/checkpoint iteration order. The order is
/// append-only: `[standard-host, gc]` lead so a device that never uses the
/// QoS slots iterates exactly the pre-QoS `[host_active, gc_active]` pair
/// and stays bit-identical to it.
pub(crate) const PURPOSES: [Purpose; 4] = [
    Purpose::Host(QosClass::Standard),
    Purpose::Gc,
    Purpose::Host(QosClass::LatencyCritical),
    Purpose::Host(QosClass::Background),
];

/// The open-superblock slots, one per placement target.
///
/// This is the per-tenant half of the placement hook: [`ActiveSlots::slot`]
/// picks which open superblock a write streams into (so tenants of
/// different classes never interleave pages in one super word-line), while
/// [`crate::manager::speed_class_for`] picks which end of the
/// process-variation ranking that superblock is assembled from.
#[derive(Debug, Default)]
pub(crate) struct ActiveSlots {
    /// `Standard` host writes — and, under [`PlacementPolicy::Unified`],
    /// every write (the pre-QoS `host_active`).
    host: Option<ActiveSuperblock>,
    /// GC relocations under function-based placement.
    gc: Option<ActiveSuperblock>,
    /// `LatencyCritical` host writes under function-based placement.
    latency_critical: Option<ActiveSuperblock>,
    /// `Background` host writes under function-based placement.
    background: Option<ActiveSuperblock>,
}

impl ActiveSlots {
    /// The slot a write of `purpose` streams into under `placement`.
    pub(crate) fn slot(
        &mut self,
        placement: PlacementPolicy,
        purpose: Purpose,
    ) -> &mut Option<ActiveSuperblock> {
        match (placement, purpose) {
            (PlacementPolicy::Unified, _) | (_, Purpose::Host(QosClass::Standard)) => {
                &mut self.host
            }
            (_, Purpose::Gc) => &mut self.gc,
            (_, Purpose::Host(QosClass::LatencyCritical)) => &mut self.latency_critical,
            (_, Purpose::Host(QosClass::Background)) => &mut self.background,
        }
    }

    /// Open superblocks in the fixed [`PURPOSES`] order (checkpoints
    /// iterate this).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &ActiveSuperblock> {
        [&self.host, &self.gc, &self.latency_critical, &self.background].into_iter().flatten()
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = &mut ActiveSuperblock> {
        [&mut self.host, &mut self.gc, &mut self.latency_critical, &mut self.background]
            .into_iter()
            .flatten()
    }

    /// Whether any slot holds a staged (not yet programmed) copy of `lpn`.
    pub(crate) fn any_staged(&self, lpn: u64) -> bool {
        self.iter().any(|a| a.has_staged(lpn))
    }

    /// Replaces staged copies of `lpn` with filler in every slot (trim).
    pub(crate) fn discard_staged(&mut self, lpn: u64) {
        for a in self.iter_mut() {
            a.discard_staged(lpn);
        }
    }

    /// Drops every open superblock (RAM loss on power failure).
    pub(crate) fn clear(&mut self) {
        self.host = None;
        self.gc = None;
        self.latency_critical = None;
        self.background = None;
    }

    /// Whether no superblock is open in any slot.
    pub(crate) fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

/// A superblock member whose word-line program reported status fail.
#[derive(Debug)]
pub(crate) struct FailedMember {
    /// The failed block (now in phase `Failed`; earlier word-lines remain
    /// readable for relocation).
    pub addr: BlockAddr,
    /// The page payloads the failed program was carrying, in page order
    /// (may include [`FILLER`]).
    pub payload: Vec<u64>,
}

/// Result of programming one super word-line, fault-aware: the surviving
/// members' assignments and command outcome, plus any members lost to
/// program-status failures (already dropped from the superblock).
#[derive(Debug)]
pub(crate) struct SuperwlProgram {
    /// `(lpn, physical page)` for every non-filler page that programmed.
    pub assignments: Vec<(u64, PageAddr)>,
    /// Command outcome over the surviving members.
    pub outcome: MpOutcome,
    /// Surviving members' blocks, aligned with `outcome.member_us` — tells
    /// the per-chip timing model which chip each latency belongs to.
    pub member_blocks: Vec<BlockAddr>,
    /// Members that failed this program (empty on healthy media).
    pub failures: Vec<FailedMember>,
}

/// One open superblock being filled super-word-line by super-word-line.
#[derive(Debug)]
pub(crate) struct ActiveSuperblock {
    pub members: Vec<BlockAddr>,
    /// Superblock identity stamped into every page's OOB metadata.
    sb_id: u64,
    next_lwl: u32,
    lwls_per_block: u32,
    pages_per_lwl: u32,
    /// Whether the last page of every super word-line is reserved for XOR
    /// parity over its siblings (RAIN).
    parity: bool,
    staging: Vec<u64>,
    gatherers: Vec<BlockGatherer>,
}

impl ActiveSuperblock {
    pub(crate) fn new(
        members: Vec<BlockAddr>,
        sb_id: u64,
        strings: u16,
        layers: u16,
        pages_per_lwl: u32,
        parity: bool,
    ) -> Self {
        let gatherers = members.iter().map(|&a| BlockGatherer::new(a, strings, layers)).collect();
        ActiveSuperblock {
            members,
            sb_id,
            next_lwl: 0,
            lwls_per_block: u32::from(strings) * u32::from(layers),
            pages_per_lwl,
            parity,
            staging: Vec::new(),
            gatherers,
        }
    }

    /// Superblock identity (matches the OOB `sb_id` of its pages).
    pub(crate) fn sb_id(&self) -> u64 {
        self.sb_id
    }

    /// Pages one super word-line holds.
    pub(crate) fn superwl_pages(&self) -> usize {
        self.members.len() * self.pages_per_lwl as usize
    }

    /// Host-data pages one super word-line holds: all of them, minus the
    /// reserved parity slot when parity is on.
    pub(crate) fn data_pages(&self) -> usize {
        self.superwl_pages() - usize::from(self.parity)
    }

    /// Whether every word-line has been programmed.
    pub(crate) fn is_full(&self) -> bool {
        self.next_lwl == self.lwls_per_block
    }

    /// Whether a staged (not yet programmed) copy of `lpn` exists.
    pub(crate) fn has_staged(&self, lpn: u64) -> bool {
        self.staging.contains(&lpn)
    }

    /// Stages one logical page; returns `true` when a full super word-line
    /// is buffered and must be programmed.
    pub(crate) fn stage(&mut self, lpn: u64) -> bool {
        debug_assert!(!self.is_full(), "staging into a full superblock");
        self.staging.push(lpn);
        self.staging.len() >= self.data_pages()
    }

    /// Replaces any staged copies of `lpn` with filler (trim of a buffered
    /// page); returns whether anything was discarded.
    pub(crate) fn discard_staged(&mut self, lpn: u64) -> bool {
        let mut hit = false;
        for slot in &mut self.staging {
            if *slot == lpn {
                *slot = FILLER;
                hit = true;
            }
        }
        hit
    }

    /// Whether any pages await programming.
    pub(crate) fn has_staged_pages(&self) -> bool {
        !self.staging.is_empty()
    }

    /// Pads the staging buffer with filler pages up to one super word-line
    /// (less the parity slot, which [`Self::program_superwl`] fills).
    pub(crate) fn pad(&mut self) {
        let target = self.data_pages();
        while self.staging.len() < target {
            self.staging.push(FILLER);
        }
    }

    /// Programs the next super word-line from the staging buffer.
    ///
    /// Issues one word-line program per member (real multi-plane commands
    /// fail per-plane, so a member's program-status failure does not abort
    /// the others). Members that fail are dropped from the superblock —
    /// it keeps operating degraded — and returned in
    /// [`SuperwlProgram::failures`] so the caller can retire the block and
    /// remap the lost pages. On healthy media the latencies, outcome and
    /// assignments are bit-identical to a single multi-plane command.
    ///
    /// The staging buffer must hold exactly one super word-line (use
    /// [`Self::pad`]).
    ///
    /// When SPOR is on, every page carries OOB metadata (LPN, a sequence
    /// number drawn here in assignment order, the superblock identity)
    /// programmed atomically with the payload, and `spor`'s crash countdown
    /// ticks once per member program. A firing crash marks the current
    /// member's word-line *torn* — completed members of this super
    /// word-line stay readable, the torn one exposes nothing — and returns
    /// [`FtlError::PowerLoss`] before any assignment is applied.
    ///
    /// # Errors
    ///
    /// Propagates non-media flash errors (which indicate FTL invariant
    /// bugs) and reports injected power loss as [`FtlError::PowerLoss`].
    pub(crate) fn program_superwl(
        &mut self,
        array: &mut FlashArray,
        spor: &mut SporState,
    ) -> Result<SuperwlProgram> {
        debug_assert_eq!(self.staging.len(), self.data_pages());
        debug_assert!(!self.is_full());
        if self.parity {
            // The parity slot is the last staged position: last member, last
            // page type. Its payload is the XOR of every data/filler tag in
            // the stripe, so the XOR over the *whole* stripe is zero and any
            // one lost page equals the XOR of its survivors.
            let xor = self.staging.iter().fold(0u64, |acc, &tag| acc ^ tag);
            self.staging.push(xor);
        }
        debug_assert_eq!(self.staging.len(), self.superwl_pages());
        let ppl = self.pages_per_lwl as usize;
        let members = self.members.len();
        let lwl = flash_model::LwlId(self.next_lwl);
        let wls: Vec<WlAddr> = self.members.iter().map(|&m| m.wl(lwl)).collect();
        // Page-major striping: staged page `i` lands on member `i % members`
        // as page `i / members`, so consecutive host pages form a *superpage*
        // (one page per chip) and read back in parallel.
        let payloads: Vec<Vec<u64>> = (0..members)
            .map(|m| (0..ppl).map(|k| self.staging[k * members + m]).collect())
            .collect();
        let mut member_us = Vec::with_capacity(members);
        let mut survived = Vec::with_capacity(members);
        let mut failures = Vec::new();
        for (m, payload) in payloads.iter().enumerate() {
            if spor.op_fires() {
                // Power dies mid-program of this member: its word-line is
                // torn. Earlier members already completed — their pages
                // (with the newest sequence numbers) are readable, and
                // recovery must discard them because the host write that
                // spans this super word-line was never acknowledged.
                array.mark_torn(wls[m])?;
                return Err(FtlError::PowerLoss);
            }
            let programmed = if spor.enabled {
                let oob: Vec<PageOob> = payload
                    .iter()
                    .enumerate()
                    .map(|(k, &lpn)| {
                        // The parity slot is identified by position, never by
                        // value: its XOR payload can collide with any tag.
                        if self.parity && m == members - 1 && k == ppl - 1 {
                            PageOob {
                                lpn: PageOob::PARITY_LPN,
                                seq: 0,
                                sb_id: self.sb_id,
                                member_slot: m as u16,
                            }
                        } else {
                            PageOob {
                                lpn,
                                seq: if lpn == FILLER { 0 } else { spor.next_seq() },
                                sb_id: self.sb_id,
                                member_slot: m as u16,
                            }
                        }
                    })
                    .collect();
                array.program_wl_with_oob(wls[m], payload, &oob)
            } else {
                array.program_wl(wls[m], payload)
            };
            match programmed {
                Ok(t) => {
                    member_us.push(t);
                    survived.push(m);
                }
                Err(e) if e.is_media_failure() => {
                    let mut payload = payload.clone();
                    if self.parity && m == members - 1 {
                        // Never let the XOR tag be restaged as a logical page
                        // by the failure-relocation path.
                        *payload.last_mut().expect("ppl >= 1") = FILLER;
                    }
                    failures.push(FailedMember { addr: self.members[m], payload });
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Feed the surviving members' gatherers with observed latencies.
        for (&m, &lat) in survived.iter().zip(&member_us) {
            self.gatherers[m].record(self.next_lwl, lat).expect("gather follows program order");
        }
        // Compute page assignments for the pages that actually programmed.
        let cell = array.geometry().cell();
        let mut assignments = Vec::new();
        for &m in &survived {
            for k in 0..ppl {
                if self.parity && m == members - 1 && k == ppl - 1 {
                    continue; // parity page: never mapped
                }
                let lpn = self.staging[k * members + m];
                if lpn != FILLER {
                    let pt = PageType::from_index(cell, k as u32).expect("k < pages_per_lwl");
                    assignments.push((lpn, wls[m].page(pt)));
                }
            }
        }
        let member_blocks: Vec<BlockAddr> = survived.iter().map(|&m| self.members[m]).collect();
        // Drop failed members: the superblock continues degraded.
        for f in &failures {
            if let Some(i) = self.members.iter().position(|&m| m == f.addr) {
                self.members.remove(i);
                self.gatherers.remove(i);
            }
        }
        self.staging.clear();
        self.next_lwl += 1;
        Ok(SuperwlProgram {
            assignments,
            outcome: MpOutcome::from_members(member_us),
            member_blocks,
            failures,
        })
    }

    /// Consumes the superblock when full, yielding each member's gathered
    /// summary.
    pub(crate) fn finish(self) -> Vec<BlockSummary> {
        debug_assert!(self.is_full());
        self.gatherers
            .into_iter()
            .map(|g| g.finish().expect("full superblock implies complete gatherers"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockId, ChipId, FlashConfig, PlaneId};

    fn setup() -> (FlashArray, ActiveSuperblock) {
        let config =
            FlashConfig::builder().chips(4).blocks_per_plane(4).pwl_layers(2).strings(4).build();
        let mut array = FlashArray::new(config, 1);
        let members: Vec<BlockAddr> =
            (0..4).map(|c| BlockAddr::new(ChipId(c), PlaneId(0), BlockId(0))).collect();
        for &m in &members {
            array.erase_block(m).unwrap();
        }
        let active = ActiveSuperblock::new(members, 0, 4, 2, 3, false);
        (array, active)
    }

    fn setup_parity() -> (FlashArray, ActiveSuperblock) {
        let config =
            FlashConfig::builder().chips(4).blocks_per_plane(4).pwl_layers(2).strings(4).build();
        let mut array = FlashArray::new(config, 1);
        let members: Vec<BlockAddr> =
            (0..4).map(|c| BlockAddr::new(ChipId(c), PlaneId(0), BlockId(0))).collect();
        for &m in &members {
            array.erase_block(m).unwrap();
        }
        let active = ActiveSuperblock::new(members, 0, 4, 2, 3, true);
        (array, active)
    }

    #[test]
    fn stage_reports_full_superwl() {
        let (_, mut a) = setup();
        assert_eq!(a.superwl_pages(), 12);
        for i in 0..11 {
            assert!(!a.stage(i));
        }
        assert!(a.stage(11));
    }

    #[test]
    fn program_assigns_every_non_filler_page() {
        let (mut array, mut a) = setup();
        for i in 0..11 {
            a.stage(i);
        }
        a.stage(FILLER);
        a.pad();
        let result = a.program_superwl(&mut array, &mut SporState::disabled()).unwrap();
        assert_eq!(result.assignments.len(), 11);
        assert_eq!(result.outcome.member_us.len(), 4);
        assert!(result.outcome.extra_us >= 0.0);
        assert!(result.failures.is_empty(), "healthy media never fails");
        // Check one assignment is readable with the right tag.
        let (lpn, ppa) = result.assignments[5];
        let (tag, _) = array.read_page(ppa).unwrap();
        assert_eq!(tag, lpn);
    }

    #[test]
    fn failed_member_is_dropped_and_reported() {
        use flash_model::FaultConfig;
        let config =
            FlashConfig::builder().chips(4).blocks_per_plane(4).pwl_layers(2).strings(4).build();
        // A 5% per-word-line rate (no erase faults) so a short seed scan
        // reliably produces a mid-superblock program failure.
        let fault = FaultConfig { program_fail_prob: 0.05, ..FaultConfig::default() };
        'seeds: for seed in 0..64 {
            let mut array = FlashArray::with_faults(config.clone(), seed, fault.clone());
            let members: Vec<BlockAddr> =
                (0..4).map(|c| BlockAddr::new(ChipId(c), PlaneId(0), BlockId(0))).collect();
            for &m in &members {
                if array.erase_block(m).is_err() {
                    continue 'seeds;
                }
            }
            let mut a = ActiveSuperblock::new(members.clone(), 0, 4, 2, 3, false);
            let mut spor = SporState::disabled();
            for wl in 0..8u64 {
                for p in 0..a.superwl_pages() as u64 {
                    a.stage(wl * 100 + p);
                }
                let result = a.program_superwl(&mut array, &mut spor).unwrap();
                if result.failures.is_empty() {
                    continue;
                }
                // A member died: it is gone from the superblock, its payload
                // is reported, and the survivors carried their pages.
                let dead = result.failures[0].addr;
                assert!(members.contains(&dead));
                assert!(!a.members.contains(&dead));
                assert_eq!(a.members.len() + result.failures.len(), 4);
                assert_eq!(result.failures[0].payload.len(), 3);
                assert_eq!(result.outcome.member_us.len(), a.members.len());
                return;
            }
        }
        panic!("no seed under 64 produced a mid-superblock program failure at 5%");
    }

    #[test]
    fn full_superblock_finishes_with_summaries() {
        let (mut array, mut a) = setup();
        let mut spor = SporState::disabled();
        let wls = 8; // 2 layers x 4 strings
        for wl in 0..wls as u64 {
            for p in 0..12 {
                a.stage(wl * 12 + p);
            }
            a.program_superwl(&mut array, &mut spor).unwrap();
        }
        assert!(a.is_full());
        let summaries = a.finish();
        assert_eq!(summaries.len(), 4);
        for s in &summaries {
            assert_eq!(s.eigen.len(), 8);
            assert!(s.pgm_sum_us > 0.0);
        }
    }

    #[test]
    fn spor_programs_carry_oob_identity() {
        use crate::recovery::SporConfig;
        let config =
            FlashConfig::builder().chips(4).blocks_per_plane(4).pwl_layers(2).strings(4).build();
        let mut array = FlashArray::new(config, 1);
        let members: Vec<BlockAddr> =
            (0..4).map(|c| BlockAddr::new(ChipId(c), PlaneId(0), BlockId(0))).collect();
        for &m in &members {
            array.erase_block(m).unwrap();
        }
        let mut a = ActiveSuperblock::new(members, 7, 4, 2, 3, false);
        let mut spor =
            SporState::new(&SporConfig { enabled: true, checkpoint_interval: 0, crash: None });
        for i in 0..11 {
            a.stage(i);
        }
        a.stage(FILLER);
        let result = a.program_superwl(&mut array, &mut spor).unwrap();
        let mut seen_seqs = Vec::new();
        for &(lpn, ppa) in &result.assignments {
            let oob = array.read_oob(ppa).unwrap();
            assert_eq!(oob.lpn, lpn);
            assert_eq!(oob.sb_id, 7);
            assert!(oob.seq >= 1);
            assert_eq!(usize::from(oob.member_slot), usize::from(ppa.wl.block.chip.0));
            seen_seqs.push(oob.seq);
        }
        // Assignment order and sequence order agree: latest-wins recovery
        // resolves duplicates exactly like the RAM mapping does.
        let mut sorted = seen_seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seen_seqs, sorted);
        // The filler page's OOB reports filler.
        let filler_page = a.members[3].wl(flash_model::LwlId(0)).page(PageType::Msb);
        let oob = array.read_oob(filler_page).unwrap();
        assert!(oob.is_filler());
        assert_eq!(oob.seq, 0);
    }

    #[test]
    fn crash_mid_superwl_tears_the_interrupted_member() {
        use crate::recovery::{CrashPoint, SporConfig};
        let (mut array, mut a) = setup();
        // A 1-op fuse always fires on the first member program.
        let mut spor = SporState::new(&SporConfig {
            enabled: true,
            checkpoint_interval: 0,
            crash: Some(CrashPoint { seed: 0, max_ops: 1 }),
        });
        for i in 0..12 {
            a.stage(i);
        }
        let err = a.program_superwl(&mut array, &mut spor).unwrap_err();
        assert!(matches!(err, FtlError::PowerLoss));
        assert!(spor.crashed);
        // Member 0 was interrupted: its word-line is torn and unreadable,
        // and the block takes no further programs until erased.
        let torn = array.torn_lwl(a.members[0]).unwrap();
        assert_eq!(torn, Some(flash_model::LwlId(0)));
        let page = a.members[0].wl(flash_model::LwlId(0)).page(PageType::Lsb);
        assert!(array.read_page(page).is_err());
        // Later members were never reached.
        for &m in &a.members[1..] {
            assert_eq!(array.torn_lwl(m).unwrap(), None);
            assert!(array.read_page(m.wl(flash_model::LwlId(0)).page(PageType::Lsb)).is_err());
        }
    }

    #[test]
    fn parity_stripe_xors_to_zero_and_parity_page_is_unmapped() {
        use crate::recovery::SporConfig;
        let (mut array, mut a) = setup_parity();
        let mut spor =
            SporState::new(&SporConfig { enabled: true, checkpoint_interval: 0, crash: None });
        assert_eq!(a.superwl_pages(), 12);
        assert_eq!(a.data_pages(), 11);
        for i in 0..10 {
            assert!(!a.stage(100 + i), "trigger only at data_pages");
        }
        assert!(a.stage(110));
        let result = a.program_superwl(&mut array, &mut spor).unwrap();
        // All 11 data pages map; the parity page does not.
        assert_eq!(result.assignments.len(), 11);
        let parity_page = a.members[3].wl(flash_model::LwlId(0)).page(PageType::Msb);
        assert!(!result.assignments.iter().any(|&(_, p)| p == parity_page));
        let oob = array.read_oob(parity_page).unwrap();
        assert!(oob.is_parity());
        assert!(!oob.is_mapped());
        assert_eq!(oob.seq, 0, "parity never consumes a sequence number");
        // XOR over the whole stripe is zero: any one page equals the XOR
        // of its survivors.
        let mut acc = 0u64;
        for m in &a.members {
            for pt in [PageType::Lsb, PageType::Csb, PageType::Msb] {
                let (tag, _) = array.read_page(m.wl(flash_model::LwlId(0)).page(pt)).unwrap();
                acc ^= tag;
            }
        }
        assert_eq!(acc, 0);
        let (parity_tag, _) = array.read_page(parity_page).unwrap();
        let expected: u64 = (100..111u64).fold(0, |x, l| x ^ l);
        assert_eq!(parity_tag, expected);
    }

    #[test]
    fn parity_pad_leaves_room_for_the_parity_slot() {
        let (mut array, mut a) = setup_parity();
        a.stage(5);
        a.pad();
        let result = a.program_superwl(&mut array, &mut SporState::disabled()).unwrap();
        assert_eq!(result.assignments.len(), 1);
        // 1 data + 10 filler XOR to 5^(10 fillers): fillers cancel pairwise,
        // so the stored parity is FILLER-count-parity dependent — just check
        // the stripe XORs to zero.
        let mut acc = 0u64;
        for m in &a.members {
            for pt in [PageType::Lsb, PageType::Csb, PageType::Msb] {
                let (tag, _) = array.read_page(m.wl(flash_model::LwlId(0)).page(pt)).unwrap();
                acc ^= tag;
            }
        }
        assert_eq!(acc, 0);
    }

    #[test]
    fn has_staged_sees_buffered_pages() {
        let (_, mut a) = setup();
        a.stage(42);
        assert!(a.has_staged(42));
        assert!(!a.has_staged(43));
        assert!(a.has_staged_pages());
    }

    #[test]
    fn pad_fills_to_superwl_boundary() {
        let (_, mut a) = setup();
        a.stage(1);
        a.pad();
        assert_eq!(a.superwl_pages(), 12);
        assert!(a.has_staged(FILLER));
    }
}
