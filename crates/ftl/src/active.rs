//! Open (actively written) superblocks: staging buffer, super word-line
//! write pointer and runtime gathering.

use crate::Result;
use flash_model::{BlockAddr, FlashArray, MpOutcome, PageAddr, PageType, WlAddr};
use pvcheck::gather::BlockGatherer;
use pvcheck::BlockSummary;

/// Payload tag marking a padding page that stores no logical data.
pub(crate) const FILLER: u64 = u64::MAX;

/// One open superblock being filled super-word-line by super-word-line.
#[derive(Debug)]
pub(crate) struct ActiveSuperblock {
    pub members: Vec<BlockAddr>,
    next_lwl: u32,
    lwls_per_block: u32,
    pages_per_lwl: u32,
    staging: Vec<u64>,
    gatherers: Vec<BlockGatherer>,
}

impl ActiveSuperblock {
    pub(crate) fn new(
        members: Vec<BlockAddr>,
        strings: u16,
        layers: u16,
        pages_per_lwl: u32,
    ) -> Self {
        let gatherers = members.iter().map(|&a| BlockGatherer::new(a, strings, layers)).collect();
        ActiveSuperblock {
            members,
            next_lwl: 0,
            lwls_per_block: u32::from(strings) * u32::from(layers),
            pages_per_lwl,
            staging: Vec::new(),
            gatherers,
        }
    }

    /// Pages one super word-line holds.
    pub(crate) fn superwl_pages(&self) -> usize {
        self.members.len() * self.pages_per_lwl as usize
    }

    /// Whether every word-line has been programmed.
    pub(crate) fn is_full(&self) -> bool {
        self.next_lwl == self.lwls_per_block
    }

    /// Whether a staged (not yet programmed) copy of `lpn` exists.
    pub(crate) fn has_staged(&self, lpn: u64) -> bool {
        self.staging.contains(&lpn)
    }

    /// Stages one logical page; returns `true` when a full super word-line
    /// is buffered and must be programmed.
    pub(crate) fn stage(&mut self, lpn: u64) -> bool {
        debug_assert!(!self.is_full(), "staging into a full superblock");
        self.staging.push(lpn);
        self.staging.len() >= self.superwl_pages()
    }

    /// Replaces any staged copies of `lpn` with filler (trim of a buffered
    /// page); returns whether anything was discarded.
    pub(crate) fn discard_staged(&mut self, lpn: u64) -> bool {
        let mut hit = false;
        for slot in &mut self.staging {
            if *slot == lpn {
                *slot = FILLER;
                hit = true;
            }
        }
        hit
    }

    /// Whether any pages await programming.
    pub(crate) fn has_staged_pages(&self) -> bool {
        !self.staging.is_empty()
    }

    /// Pads the staging buffer with filler pages up to one super word-line.
    pub(crate) fn pad(&mut self) {
        let target = self.superwl_pages();
        while self.staging.len() < target {
            self.staging.push(FILLER);
        }
    }

    /// Programs the next super word-line from the staging buffer.
    ///
    /// Returns the page assignments `(lpn, physical page)` for every
    /// non-filler page plus the multi-plane command outcome. The staging
    /// buffer must hold exactly one super word-line (use [`Self::pad`]).
    ///
    /// # Errors
    ///
    /// Propagates flash errors (which indicate FTL invariant bugs).
    pub(crate) fn program_superwl(
        &mut self,
        array: &mut FlashArray,
    ) -> Result<(Vec<(u64, PageAddr)>, MpOutcome)> {
        debug_assert_eq!(self.staging.len(), self.superwl_pages());
        debug_assert!(!self.is_full());
        let ppl = self.pages_per_lwl as usize;
        let members = self.members.len();
        let lwl = flash_model::LwlId(self.next_lwl);
        let wls: Vec<WlAddr> = self.members.iter().map(|&m| m.wl(lwl)).collect();
        // Page-major striping: staged page `i` lands on member `i % members`
        // as page `i / members`, so consecutive host pages form a *superpage*
        // (one page per chip) and read back in parallel.
        let payloads_owned: Vec<Vec<u64>> = (0..members)
            .map(|m| (0..ppl).map(|k| self.staging[k * members + m]).collect())
            .collect();
        let payloads: Vec<&[u64]> = payloads_owned.iter().map(Vec::as_slice).collect();
        let outcome = array.mp_program(&wls, &payloads)?;
        // Feed the gatherers with each member's observed latency.
        for (g, &lat) in self.gatherers.iter_mut().zip(&outcome.member_us) {
            g.record(self.next_lwl, lat).expect("gather follows program order");
        }
        // Compute page assignments.
        let cell = array.geometry().cell();
        let mut assignments = Vec::new();
        for (m, &wl) in wls.iter().enumerate() {
            for k in 0..ppl {
                let lpn = self.staging[k * members + m];
                if lpn != FILLER {
                    let pt = PageType::from_index(cell, k as u32).expect("k < pages_per_lwl");
                    assignments.push((lpn, wl.page(pt)));
                }
            }
        }
        self.staging.clear();
        self.next_lwl += 1;
        Ok((assignments, outcome))
    }

    /// Consumes the superblock when full, yielding each member's gathered
    /// summary.
    pub(crate) fn finish(self) -> Vec<BlockSummary> {
        debug_assert!(self.is_full());
        self.gatherers
            .into_iter()
            .map(|g| g.finish().expect("full superblock implies complete gatherers"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockId, ChipId, FlashConfig, PlaneId};

    fn setup() -> (FlashArray, ActiveSuperblock) {
        let config =
            FlashConfig::builder().chips(4).blocks_per_plane(4).pwl_layers(2).strings(4).build();
        let mut array = FlashArray::new(config, 1);
        let members: Vec<BlockAddr> =
            (0..4).map(|c| BlockAddr::new(ChipId(c), PlaneId(0), BlockId(0))).collect();
        for &m in &members {
            array.erase_block(m).unwrap();
        }
        let active = ActiveSuperblock::new(members, 4, 2, 3);
        (array, active)
    }

    #[test]
    fn stage_reports_full_superwl() {
        let (_, mut a) = setup();
        assert_eq!(a.superwl_pages(), 12);
        for i in 0..11 {
            assert!(!a.stage(i));
        }
        assert!(a.stage(11));
    }

    #[test]
    fn program_assigns_every_non_filler_page() {
        let (mut array, mut a) = setup();
        for i in 0..11 {
            a.stage(i);
        }
        a.stage(FILLER);
        a.pad();
        let (assignments, outcome) = a.program_superwl(&mut array).unwrap();
        assert_eq!(assignments.len(), 11);
        assert_eq!(outcome.member_us.len(), 4);
        assert!(outcome.extra_us >= 0.0);
        // Check one assignment is readable with the right tag.
        let (lpn, ppa) = assignments[5];
        let (tag, _) = array.read_page(ppa).unwrap();
        assert_eq!(tag, lpn);
    }

    #[test]
    fn full_superblock_finishes_with_summaries() {
        let (mut array, mut a) = setup();
        let wls = 8; // 2 layers x 4 strings
        for wl in 0..wls as u64 {
            for p in 0..12 {
                a.stage(wl * 12 + p);
            }
            a.program_superwl(&mut array).unwrap();
        }
        assert!(a.is_full());
        let summaries = a.finish();
        assert_eq!(summaries.len(), 4);
        for s in &summaries {
            assert_eq!(s.eigen.len(), 8);
            assert!(s.pgm_sum_us > 0.0);
        }
    }

    #[test]
    fn has_staged_sees_buffered_pages() {
        let (_, mut a) = setup();
        a.stage(42);
        assert!(a.has_staged(42));
        assert!(!a.has_staged(43));
        assert!(a.has_staged_pages());
    }

    #[test]
    fn pad_fills_to_superwl_boundary() {
        let (_, mut a) = setup();
        a.stage(1);
        a.pad();
        assert_eq!(a.superwl_pages(), 12);
        assert!(a.has_staged(FILLER));
    }
}
