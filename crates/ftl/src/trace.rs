//! Block-trace parsing and replay.
//!
//! The format is a minimal CSV any real trace (MSR Cambridge, FIU, …) can
//! be converted to:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! W,128          # write LPN 128
//! R,128          # read LPN 128
//! T,128          # trim LPN 128
//! W,4096,8       # optional third column: run length in pages
//! ```

use crate::request::{IoOp, IoRequest};
use std::fmt;
use std::io::BufRead;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        reason: String,
    },
    /// The underlying reader failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a trace from any reader (a `&[u8]` literal works for tests; pass
/// a `BufReader<File>` for real traces).
///
/// ```
/// use ftl::trace::parse_trace;
///
/// let requests = parse_trace(b"W,10\nR,10\nW,20,2\n" as &[u8])?;
/// assert_eq!(requests.len(), 4);
/// # Ok::<(), ftl::trace::TraceError>(())
/// ```
///
/// # Errors
///
/// Returns [`TraceError`] on the first malformed line or I/O failure.
pub fn parse_trace<R: BufRead>(reader: R) -> Result<Vec<IoRequest>, TraceError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',').map(str::trim);
        let op = match parts.next() {
            Some("W") | Some("w") => IoOp::Write,
            Some("R") | Some("r") => IoOp::Read,
            Some("T") | Some("t") => IoOp::Trim,
            Some(other) => {
                return Err(TraceError::Malformed {
                    line: line_no,
                    reason: format!("unknown op {other:?} (expected W/R/T)"),
                })
            }
            None => unreachable!("split always yields one item"),
        };
        let lpn: u64 = parts
            .next()
            .ok_or_else(|| TraceError::Malformed {
                line: line_no,
                reason: "missing LPN column".to_string(),
            })?
            .parse()
            .map_err(|e| TraceError::Malformed {
                line: line_no,
                reason: format!("bad LPN: {e}"),
            })?;
        let len: u64 = match parts.next() {
            None | Some("") => 1,
            Some(n) => n.parse().map_err(|e| TraceError::Malformed {
                line: line_no,
                reason: format!("bad length: {e}"),
            })?,
        };
        if len == 0 {
            return Err(TraceError::Malformed {
                line: line_no,
                reason: "length must be at least 1".to_string(),
            });
        }
        if lpn.checked_add(len - 1).is_none() {
            return Err(TraceError::Malformed {
                line: line_no,
                reason: format!("run {lpn}+{len} overflows the LPN space"),
            });
        }
        for i in 0..len {
            out.push(IoRequest { op, lpn: lpn + i });
        }
    }
    Ok(out)
}

/// Folds trace LPNs into a device's logical capacity (`lpn % capacity`),
/// preserving access structure while guaranteeing replayability.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn fold_to_capacity(requests: &[IoRequest], capacity: u64) -> Vec<IoRequest> {
    assert!(capacity > 0, "capacity must be positive");
    requests.iter().map(|r| IoRequest { op: r.op, lpn: r.lpn % capacity }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ops_comments_and_runs() {
        let trace = b"# header\nW,10\nR,10\n\nT,10\nW,20,3\n" as &[u8];
        let reqs = parse_trace(trace).unwrap();
        assert_eq!(reqs.len(), 6);
        assert_eq!(reqs[0], IoRequest::write(10));
        assert_eq!(reqs[1], IoRequest::read(10));
        assert_eq!(reqs[2], IoRequest::trim(10));
        assert_eq!(reqs[3], IoRequest::write(20));
        assert_eq!(reqs[5], IoRequest::write(22));
    }

    #[test]
    fn rejects_unknown_op() {
        let err = parse_trace(b"X,1\n" as &[u8]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_missing_lpn() {
        let err = parse_trace(b"W\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("missing LPN"));
    }

    #[test]
    fn rejects_zero_length() {
        let err = parse_trace(b"W,5,0\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("length"));
    }

    #[test]
    fn rejects_run_overflowing_lpn_space() {
        // lpn + len - 1 must stay in u64: this run wraps around.
        let line = format!("W,{},3\n", u64::MAX - 1);
        let err = parse_trace(line.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
        assert!(err.to_string().contains("overflows"));
        // The largest legal run is accepted.
        let line = format!("W,{},2\n", u64::MAX - 1);
        let reqs = parse_trace(line.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].lpn, u64::MAX);
    }

    #[test]
    fn reports_correct_line_numbers() {
        let err = parse_trace(b"W,1\n# ok\nbogus,2\n" as &[u8]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 3, .. }));
    }

    #[test]
    fn fold_wraps_lpns() {
        let reqs = vec![IoRequest::write(105), IoRequest::read(7)];
        let folded = fold_to_capacity(&reqs, 100);
        assert_eq!(folded[0].lpn, 5);
        assert_eq!(folded[1].lpn, 7);
    }

    #[test]
    fn replay_on_device_works() {
        use crate::{FtlConfig, Ssd};
        let mut dev = Ssd::new(FtlConfig::small_test(), 1).unwrap();
        let trace = b"W,3\nW,4\nR,3\nT,4\n" as &[u8];
        let reqs =
            fold_to_capacity(&parse_trace(trace).unwrap(), dev.geometry_info().logical_pages);
        dev.run(&reqs).unwrap();
        assert_eq!(dev.stats().host_writes, 2);
        assert_eq!(dev.stats().host_reads, 1);
        assert_eq!(dev.stats().host_trims, 1);
    }
}
