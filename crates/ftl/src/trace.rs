//! Block-trace parsing and replay.
//!
//! The format is a minimal CSV any real trace (MSR Cambridge, FIU, …) can
//! be converted to:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! W,128          # write LPN 128
//! R,128          # read LPN 128
//! T,128          # trim LPN 128
//! W,4096,8       # optional third column: run length in pages
//! W,4096,8,2     # optional fourth column: tenant id (defaults to 0)
//! ```

use crate::request::{IoOp, IoRequest};
use std::fmt;
use std::io::BufRead;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        reason: String,
    },
    /// The underlying reader failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One parsed trace request together with the tenant that issued it
/// (the optional fourth trace column; tenant 0 when absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TracedRequest {
    /// Issuing tenant (submission-queue index of a multi-queue frontend).
    pub tenant: u32,
    /// The request itself.
    pub request: IoRequest,
}

/// Parses a trace from any reader (a `&[u8]` literal works for tests; pass
/// a `BufReader<File>` for real traces), discarding tenant ids.
///
/// ```
/// use ftl::trace::parse_trace;
///
/// let requests = parse_trace(b"W,10\nR,10\nW,20,2\n" as &[u8])?;
/// assert_eq!(requests.len(), 4);
/// # Ok::<(), ftl::trace::TraceError>(())
/// ```
///
/// # Errors
///
/// Returns [`TraceError`] on the first malformed line or I/O failure.
pub fn parse_trace<R: BufRead>(reader: R) -> Result<Vec<IoRequest>, TraceError> {
    Ok(parse_trace_tenants(reader)?.into_iter().map(|t| t.request).collect())
}

/// Parses a trace keeping the per-line tenant id (fourth column, default
/// tenant 0) so multi-queue frontends can route each request to its
/// submission queue.
///
/// ```
/// use ftl::trace::parse_trace_tenants;
///
/// let reqs = parse_trace_tenants(b"W,10\nW,20,2,3\n" as &[u8])?;
/// assert_eq!(reqs[0].tenant, 0, "tenant defaults to 0");
/// assert_eq!(reqs[1].tenant, 3);
/// assert_eq!(reqs[2].tenant, 3, "every page of a run keeps the tenant");
/// # Ok::<(), ftl::trace::TraceError>(())
/// ```
///
/// # Errors
///
/// Returns [`TraceError`] on the first malformed line or I/O failure.
pub fn parse_trace_tenants<R: BufRead>(reader: R) -> Result<Vec<TracedRequest>, TraceError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',').map(str::trim);
        let op = match parts.next() {
            Some("W") | Some("w") => IoOp::Write,
            Some("R") | Some("r") => IoOp::Read,
            Some("T") | Some("t") => IoOp::Trim,
            Some(other) => {
                return Err(TraceError::Malformed {
                    line: line_no,
                    reason: format!("unknown op {other:?} (expected W/R/T)"),
                })
            }
            None => unreachable!("split always yields one item"),
        };
        let lpn: u64 = parts
            .next()
            .ok_or_else(|| TraceError::Malformed {
                line: line_no,
                reason: "missing LPN column".to_string(),
            })?
            .parse()
            .map_err(|e| TraceError::Malformed {
                line: line_no,
                reason: format!("bad LPN: {e}"),
            })?;
        let len: u64 = match parts.next() {
            None | Some("") => 1,
            Some(n) => n.parse().map_err(|e| TraceError::Malformed {
                line: line_no,
                reason: format!("bad length: {e}"),
            })?,
        };
        if len == 0 {
            return Err(TraceError::Malformed {
                line: line_no,
                reason: "length must be at least 1".to_string(),
            });
        }
        if lpn.checked_add(len - 1).is_none() {
            return Err(TraceError::Malformed {
                line: line_no,
                reason: format!("run {lpn}+{len} overflows the LPN space"),
            });
        }
        let tenant: u32 = match parts.next() {
            None | Some("") => 0,
            Some(n) => n.parse().map_err(|e| TraceError::Malformed {
                line: line_no,
                reason: format!("bad tenant id: {e}"),
            })?,
        };
        if parts.next().is_some() {
            return Err(TraceError::Malformed {
                line: line_no,
                reason: "too many columns (expected op,lpn[,len[,tenant]])".to_string(),
            });
        }
        for i in 0..len {
            out.push(TracedRequest { tenant, request: IoRequest { op, lpn: lpn + i } });
        }
    }
    Ok(out)
}

/// Folds trace LPNs into a device's logical capacity (`lpn % capacity`),
/// preserving access structure while guaranteeing replayability.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn fold_to_capacity(requests: &[IoRequest], capacity: u64) -> Vec<IoRequest> {
    assert!(capacity > 0, "capacity must be positive");
    requests.iter().map(|r| IoRequest { op: r.op, lpn: r.lpn % capacity }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ops_comments_and_runs() {
        let trace = b"# header\nW,10\nR,10\n\nT,10\nW,20,3\n" as &[u8];
        let reqs = parse_trace(trace).unwrap();
        assert_eq!(reqs.len(), 6);
        assert_eq!(reqs[0], IoRequest::write(10));
        assert_eq!(reqs[1], IoRequest::read(10));
        assert_eq!(reqs[2], IoRequest::trim(10));
        assert_eq!(reqs[3], IoRequest::write(20));
        assert_eq!(reqs[5], IoRequest::write(22));
    }

    #[test]
    fn rejects_unknown_op() {
        let err = parse_trace(b"X,1\n" as &[u8]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_missing_lpn() {
        let err = parse_trace(b"W\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("missing LPN"));
    }

    #[test]
    fn rejects_zero_length() {
        let err = parse_trace(b"W,5,0\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("length"));
    }

    #[test]
    fn rejects_run_overflowing_lpn_space() {
        // lpn + len - 1 must stay in u64: this run wraps around.
        let line = format!("W,{},3\n", u64::MAX - 1);
        let err = parse_trace(line.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
        assert!(err.to_string().contains("overflows"));
        // The largest legal run is accepted.
        let line = format!("W,{},2\n", u64::MAX - 1);
        let reqs = parse_trace(line.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].lpn, u64::MAX);
    }

    #[test]
    fn tenant_column_defaults_to_zero_and_parses() {
        let trace = b"W,10\nR,11,1,0\nW,20,2,7\nT,30,,\n" as &[u8];
        let reqs = parse_trace_tenants(trace).unwrap();
        assert_eq!(reqs.len(), 5);
        assert_eq!(reqs[0], TracedRequest { tenant: 0, request: IoRequest::write(10) });
        assert_eq!(reqs[1], TracedRequest { tenant: 0, request: IoRequest::read(11) });
        assert_eq!(reqs[2], TracedRequest { tenant: 7, request: IoRequest::write(20) });
        assert_eq!(reqs[3], TracedRequest { tenant: 7, request: IoRequest::write(21) });
        // Empty len and tenant columns fall back to the defaults.
        assert_eq!(reqs[4], TracedRequest { tenant: 0, request: IoRequest::trim(30) });
        // The tenant-blind entry point agrees, minus the tenant ids.
        let blind = parse_trace(trace).unwrap();
        let stripped: Vec<IoRequest> = reqs.iter().map(|t| t.request).collect();
        assert_eq!(blind, stripped);
    }

    #[test]
    fn rejects_bad_tenant_id() {
        let err = parse_trace_tenants(b"W,5,1,alice\n" as &[u8]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
        assert!(err.to_string().contains("bad tenant id"));
        // Negative and overflowing ids are rejected by the u32 parse too.
        let err = parse_trace_tenants(b"W,5,1,-2\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("bad tenant id"));
        let err = parse_trace_tenants(b"W,5,1,4294967296\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("bad tenant id"));
        // The tenant-blind entry point rejects the same lines: a malformed
        // column is an error, not silently dropped data.
        assert!(parse_trace(b"W,5,1,alice\n" as &[u8]).is_err());
    }

    #[test]
    fn rejects_too_many_columns() {
        let err = parse_trace_tenants(b"W,5,1,0,9\n" as &[u8]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
        assert!(err.to_string().contains("too many columns"));
    }

    #[test]
    fn reports_correct_line_numbers() {
        let err = parse_trace(b"W,1\n# ok\nbogus,2\n" as &[u8]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 3, .. }));
    }

    #[test]
    fn fold_wraps_lpns() {
        let reqs = vec![IoRequest::write(105), IoRequest::read(7)];
        let folded = fold_to_capacity(&reqs, 100);
        assert_eq!(folded[0].lpn, 5);
        assert_eq!(folded[1].lpn, 7);
    }

    #[test]
    fn replay_on_device_works() {
        use crate::{FtlConfig, Ssd};
        let mut dev = Ssd::new(FtlConfig::small_test(), 1).unwrap();
        let trace = b"W,3\nW,4\nR,3\nT,4\n" as &[u8];
        let reqs =
            fold_to_capacity(&parse_trace(trace).unwrap(), dev.geometry_info().logical_pages);
        dev.run(&reqs).unwrap();
        assert_eq!(dev.stats().host_writes, 2);
        assert_eq!(dev.stats().host_reads, 1);
        assert_eq!(dev.stats().host_trims, 1);
    }
}
