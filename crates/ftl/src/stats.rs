//! Device statistics: latencies, write amplification, extra-latency
//! accounting.

use std::sync::OnceLock;

/// A simple latency sample collector with percentile queries.
///
/// Quantile queries sort lazily and cache the sorted order; the cache is
/// invalidated by [`LatencyHistogram::record`] and
/// [`LatencyHistogram::replace_last`], so repeated queries between
/// insertions cost one sort total instead of one sort each.
///
/// ```
/// use ftl::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for us in [120.0, 85.0, 310.0, 95.0] {
///     h.record(us);
/// }
/// assert_eq!(h.len(), 4);
/// assert_eq!(h.max_us(), 310.0);
/// assert!((h.mean_us() - 152.5).abs() < 1e-12);
/// assert_eq!(h.quantile_us(0.99), 310.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples_us: Vec<f64>,
    sorted: OnceLock<Vec<f64>>,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, us: f64) {
        self.sorted.take();
        self.samples_us.push(us);
    }

    /// Replaces the most recent sample (used to upgrade a service-time
    /// sample to a queue-inclusive one); no-op when empty.
    pub fn replace_last(&mut self, us: f64) {
        if let Some(last) = self.samples_us.last_mut() {
            *last = us;
            self.sorted.take();
        }
    }

    /// Appends a batch of samples in order, invalidating the sorted cache
    /// once for the whole batch. The struct-of-arrays accumulators of the
    /// batched replay engine collect per-op samples in plain `Vec<f64>`s and
    /// fold them in here at `timed_end`; appending the same values in the
    /// same order as per-op [`LatencyHistogram::record`] calls leaves the
    /// sample vector — and therefore every mean/quantile/max — bit-identical.
    pub fn extend(&mut self, samples_us: &[f64]) {
        if samples_us.is_empty() {
            return;
        }
        self.sorted.take();
        self.samples_us.extend_from_slice(samples_us);
    }

    /// Folds another histogram's samples into this one (append order:
    /// `self`'s samples first, then `other`'s). One sort happens lazily at
    /// the next quantile query — merging never re-sorts per insert.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.extend(&other.samples_us);
    }

    /// Builds one histogram from many parts in a single pass — the
    /// cross-device reduction primitive. Samples are concatenated in part
    /// order (so the sample vector is bit-identical to chaining
    /// [`LatencyHistogram::merge`] over the same parts), and the sorted
    /// order is produced up front by a k-way merge of each part's own
    /// sorted cache instead of re-sorting the concatenation: `O(n log k)`
    /// for `n` total samples over `k` parts, versus `O(n log n)` for the
    /// lazy full sort a `merge` chain would pay at its first quantile
    /// query. Parts whose caches are cold are sorted here once (the
    /// per-part sorts a fleet reduction already paid stay paid).
    ///
    /// Ties across parts break toward the earlier part, matching the
    /// stable sort of the concatenation, so every quantile answer is
    /// bit-identical to the `merge` path on NaN-free samples.
    ///
    /// Nearest-rank quantiles keep their semantics after a fold — which
    /// matters at the deep tail: `quantile_us(0.9999)` reads the sample at
    /// index `round((n - 1) * 0.9999)`, so with fewer than ~5 000 merged
    /// samples p9999 pins to the single maximum sample, and only around
    /// n ≥ 20 001 does it move off the top two. Fleet-level p9999 is
    /// therefore only meaningful on the *merged* population, never on a
    /// per-device histogram of a few thousand commands.
    #[must_use]
    pub fn fold<'a, I>(parts: I) -> LatencyHistogram
    where
        I: IntoIterator<Item = &'a LatencyHistogram>,
    {
        struct Head<'p> {
            value: f64,
            part: usize,
            rest: &'p [f64],
        }
        impl PartialEq for Head<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Head<'_> {}
        impl PartialOrd for Head<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Head<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // BinaryHeap is a max-heap; reverse so `pop` yields the
                // smallest value, breaking ties toward the earlier part
                // (stable with respect to part order, like the one-shot
                // stable sort of the concatenation).
                self.value.total_cmp(&other.value).then(self.part.cmp(&other.part)).reverse()
            }
        }

        let parts: Vec<&LatencyHistogram> = parts.into_iter().collect();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut samples_us = Vec::with_capacity(total);
        let mut heap = std::collections::BinaryHeap::with_capacity(parts.len());
        for (idx, part) in parts.iter().enumerate() {
            samples_us.extend_from_slice(&part.samples_us);
            let sorted = part.sorted_samples();
            if let Some((&value, rest)) = sorted.split_first() {
                heap.push(Head { value, part: idx, rest });
            }
        }
        let mut merged = Vec::with_capacity(total);
        while let Some(Head { value, part, rest }) = heap.pop() {
            merged.push(value);
            if let Some((&value, rest)) = rest.split_first() {
                heap.push(Head { value, part, rest });
            }
        }
        let sorted = OnceLock::new();
        sorted.set(merged).expect("fresh OnceLock accepts one set");
        LatencyHistogram { samples_us, sorted }
    }

    /// The samples in ascending order, sorting (and caching) on first use.
    fn sorted_samples(&self) -> &[f64] {
        self.sorted.get_or_init(|| {
            let mut s = self.samples_us.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            s
        })
    }

    /// The recorded samples in insertion order.
    #[must_use]
    pub fn samples_us(&self) -> &[f64] {
        &self.samples_us
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency, or 0 when empty.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
    }

    /// The `q`-quantile of the recorded samples by nearest-rank, or 0 when
    /// empty.
    ///
    /// The estimator is the conventional nearest-rank over the ascending
    /// sort: the returned value is the sample at index
    /// `round((len - 1) * q)`, so the answer is always an actual recorded
    /// sample (no interpolation). `q` outside `[0, 1]` is clamped rather
    /// than panicking — any negative `q` pins to the minimum sample and any
    /// `q > 1` pins to the maximum; a NaN `q` is treated as `0` (the
    /// minimum).
    ///
    /// ```
    /// use ftl::LatencyHistogram;
    ///
    /// let mut h = LatencyHistogram::new();
    /// for us in [10.0, 20.0, 30.0, 40.0] {
    ///     h.record(us);
    /// }
    /// // Nearest rank: index round(3 * 0.5) = 2 of the sorted samples.
    /// assert_eq!(h.quantile_us(0.5), 30.0);
    /// // Out-of-range quantiles clamp to the extremes instead of panicking.
    /// assert_eq!(h.quantile_us(-0.5), 10.0);
    /// assert_eq!(h.quantile_us(1.5), 40.0);
    /// assert_eq!(h.quantile_us(f64::NAN), 10.0);
    /// ```
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted_samples();
        // NaN must not reach the index arithmetic: `NaN as usize` happens
        // to saturate to 0, but that is an accident, not a contract.
        let q = if q.is_nan() { 0.0 } else { q };
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Maximum sample, or 0 when empty.
    #[must_use]
    pub fn max_us(&self) -> f64 {
        self.samples_us.iter().copied().fold(0.0, f64::max)
    }
}

/// Counters and histograms of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SsdStats {
    /// Host pages written.
    pub host_writes: u64,
    /// Host pages written per QoS class, indexed by
    /// [`crate::QosClass::index`] (latency-critical, standard, background).
    /// [`crate::Ssd::write`] counts as standard, so legacy runs land
    /// entirely in the middle slot.
    pub host_writes_by_class: [u64; 3],
    /// Host pages read.
    pub host_reads: u64,
    /// Host trims.
    pub host_trims: u64,
    /// Pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Garbage-collection passes.
    pub gc_runs: u64,
    /// Foreground GC slices executed (non-empty invocations that did
    /// relocation work under [`crate::GcBudget::Sliced`]). Stays zero under
    /// `Unbounded`.
    pub gc_slices: u64,
    /// Slices that hit their budget and parked the in-progress victim as a
    /// resumable job instead of running it to completion.
    pub gc_yield_count: u64,
    /// Distribution of per-slice relocation time, µs (sliced mode only).
    pub gc_slice_us: LatencyHistogram,
    /// Total GC time charged to foreground commands, µs — the collection
    /// component of write latencies. Recorded in both budget modes, so
    /// `write_latency` minus this is pure service + transfer time.
    pub gc_stall_us: f64,
    /// Per-command GC stalls (only commands that actually paid one). Under
    /// `Unbounded` each sample is a full multi-victim collection; under
    /// `Sliced` each is capped near the configured budget.
    pub gc_stall: LatencyHistogram,
    /// Super word-line programs issued.
    pub superwl_programs: u64,
    /// Superblock erases issued.
    pub superblock_erases: u64,
    /// Superblocks assembled, by class: (fast, slow).
    pub superblocks_assembled: (u64, u64),
    /// Total extra program latency across super word-line programs, µs.
    pub extra_program_us: f64,
    /// Total extra erase latency across superblock erases, µs.
    pub extra_erase_us: f64,
    /// Total busy time of the device, µs.
    pub busy_us: f64,
    /// Time spent on garbage collection in idle gaps of timed runs, µs
    /// (background work — kept out of `busy_us` so utilization and
    /// throughput reflect foreground service only).
    pub idle_gc_us: f64,
    /// Blocks permanently retired after a program/erase media failure.
    pub retired_blocks: u64,
    /// Pages rewritten elsewhere because their program reported status fail
    /// or their block failed with live data aboard.
    pub remapped_writes: u64,
    /// Pages relocated because a read found them beyond the retry ladder.
    pub refresh_relocations: u64,
    /// Host reads that found their page beyond the deepest retry level —
    /// each one is a (barely) averted data loss the patrol scrubber exists
    /// to prevent.
    pub uncorrectable_reads: u64,
    /// Relocation time spent refreshing at-risk pages, µs. Kept out of the
    /// read latency histogram: a read that triggers a refresh reports only
    /// its sensing + retry + transfer time, and the background rewrite is
    /// accounted here (it still advances `busy_us`).
    pub refresh_us: f64,
    /// Time spent patrol-scrubbing in idle gaps of timed runs, µs
    /// (background work, kept out of `busy_us` like `idle_gc_us`;
    /// foreground ladder payments land in `gc_stall_us` instead).
    pub patrol_us: f64,
    /// Live pages scanned by the patrol scrubber.
    pub patrol_scanned_pages: u64,
    /// Pages the patrol scrubber proactively refreshed (projected error
    /// bits crossed the refresh threshold).
    pub patrol_refreshes: u64,
    /// Completed patrol passes over the sealed superblocks.
    pub patrol_passes: u64,
    /// Superblocks that lost at least one member (operating degraded or
    /// born short-handed from a depleted pool).
    pub degraded_superblocks: u64,
    /// Total queueing delay across timed-run requests, µs (time between a
    /// request's arrival and its service starting).
    pub queue_wait_us: f64,
    /// Queueing delay suffered by trims in timed runs, µs. Trims take zero
    /// service time so their wait appears in no latency histogram; this
    /// counter keeps it from vanishing.
    pub trim_wait_us: f64,
    /// Largest number of requests simultaneously queued or in service
    /// during a timed run (including the arriving request).
    pub queue_depth_max: u64,
    /// Completion time of the last piece of work in a timed run, µs (the
    /// replay makespan). Under `PerChip` this drops below the sum of per-op
    /// service times when chips genuinely overlap.
    pub makespan_us: f64,
    /// Occupancy per chip/plane group in a `PerChip` timed run, µs; the
    /// final entry is the host channel/controller (page transfers).
    /// Includes idle-gap GC work. Empty until such a run executes.
    pub chip_busy_us: Vec<f64>,
    /// Host write latency distribution.
    pub write_latency: LatencyHistogram,
    /// Host read latency distribution.
    pub read_latency: LatencyHistogram,
    /// Physical pages read by the post-crash OOB recovery scan.
    pub recovery_scan_pages: u64,
    /// Logical mappings rebuilt by recovery.
    pub recovered_mappings: u64,
    /// Readable pages of torn super word-lines discarded by recovery
    /// (their host writes were never acknowledged).
    pub torn_writes_discarded: u64,
    /// Simulated time the recovery scan took, µs.
    pub recovery_time_us: f64,
    /// Sibling pages read while rebuilding uncorrectable pages from
    /// superpage parity.
    pub rebuild_reads: u64,
    /// Parity rebuilds that recovered the lost payload.
    pub rebuilds_ok: u64,
    /// Parity rebuilds that could not recover the payload (double failure
    /// in one super word-line, a dropped member, or missing parity) — true
    /// data loss, reported rather than silently absorbed.
    pub rebuilds_failed: u64,
    /// Time spent on parity rebuild reads, µs: the slowest-member critical
    /// path per rebuild. Charged like `refresh_us` — it advances `busy_us`
    /// but never lands in the read latency histogram.
    pub rebuild_us: f64,
    /// The `rebuild_us` share spent on *successful* rebuilds. Failed
    /// attempts read uncorrectable siblings at the full retry ladder, so
    /// per-attempt means mix two regimes; this isolates the clean one.
    pub rebuild_ok_us: f64,
    /// Total sibling-read work of successful rebuilds, µs: the sum over
    /// stripe members of each member's read chain. A rebuild's wall time
    /// is the slowest chain (`rebuild_ok_us`); the gap between that
    /// critical path and the mean chain (`rebuild_ok_fanout_us` / member
    /// count) is the straggler cost stripe assembly controls.
    pub rebuild_ok_fanout_us: f64,
    /// Super word-line stripes whose parity checked out during patrol scans.
    pub parity_verified: u64,
    /// Stripes whose parity no longer covers their live pages (degraded or
    /// corrupt); their pages are reactively refreshed like uncorrectable
    /// reads.
    pub parity_mismatch: u64,
}

impl SsdStats {
    /// Write amplification factor: total pages programmed per host page.
    #[must_use]
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            return 0.0;
        }
        (self.host_writes + self.gc_relocations) as f64 / self.host_writes as f64
    }

    /// Mean extra program latency per super word-line program, µs.
    #[must_use]
    pub fn extra_program_per_op_us(&self) -> f64 {
        if self.superwl_programs == 0 {
            return 0.0;
        }
        self.extra_program_us / self.superwl_programs as f64
    }

    /// Mean extra erase latency per superblock erase, µs.
    #[must_use]
    pub fn extra_erase_per_op_us(&self) -> f64 {
        if self.superblock_erases == 0 {
            return 0.0;
        }
        self.extra_erase_us / self.superblock_erases as f64
    }

    /// Per-group utilization of a `PerChip` timed run: occupancy divided by
    /// makespan, in `[0, 1]` per entry. Empty for `Single` runs.
    #[must_use]
    pub fn chip_utilization(&self) -> Vec<f64> {
        // A NaN makespan (a poisoned clock) must report zero utilization,
        // not NaN ratios — `<= 0.0` alone lets NaN through.
        if self.makespan_us.is_nan() || self.makespan_us <= 0.0 {
            return vec![0.0; self.chip_busy_us.len()];
        }
        self.chip_busy_us.iter().map(|&b| b / self.makespan_us).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let mut h = LatencyHistogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.quantile_us(0.0), 1.0);
        assert_eq!(h.quantile_us(0.5), 3.0);
        assert_eq!(h.quantile_us(1.0), 5.0);
        assert_eq!(h.max_us(), 5.0);
        assert!((h.mean_us() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_quantiles_clamp_to_the_extremes() {
        let mut h = LatencyHistogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        // Below 0 pins to the minimum; above 1 pins to the maximum.
        assert_eq!(h.quantile_us(-0.5), 1.0);
        assert_eq!(h.quantile_us(-1e300), 1.0);
        assert_eq!(h.quantile_us(f64::NEG_INFINITY), 1.0);
        assert_eq!(h.quantile_us(1.5), 4.0);
        assert_eq!(h.quantile_us(1e300), 4.0);
        assert_eq!(h.quantile_us(f64::INFINITY), 4.0);
        // NaN is treated as 0 (the minimum), never a panic.
        assert_eq!(h.quantile_us(f64::NAN), 1.0);
        // An empty histogram stays 0 for every out-of-range q.
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile_us(-1.0), 0.0);
        assert_eq!(empty.quantile_us(2.0), 0.0);
        assert_eq!(empty.quantile_us(f64::NAN), 0.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn replace_last_swaps_newest_sample() {
        let mut h = LatencyHistogram::new();
        h.record(5.0);
        h.replace_last(9.0);
        assert_eq!(h.max_us(), 9.0);
        let mut empty = LatencyHistogram::new();
        empty.replace_last(1.0); // must not panic
        assert!(empty.is_empty());
    }

    #[test]
    fn repeated_quantile_queries_agree_with_one_shot_values() {
        // Interleave queries with mutations: every answer must match a
        // freshly sorted histogram (the cache may never serve stale order).
        let samples = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0];
        let mut h = LatencyHistogram::new();
        for (i, &v) in samples.iter().enumerate() {
            h.record(v);
            for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
                // Repeated queries (cached after the first) ...
                let a = h.quantile_us(q);
                let b = h.quantile_us(q);
                // ... against a one-shot histogram built from scratch.
                let mut fresh = LatencyHistogram::new();
                for &w in &samples[..=i] {
                    fresh.record(w);
                }
                let expect = fresh.quantile_us(q);
                assert_eq!(a, expect, "q={q} after {} samples", i + 1);
                assert_eq!(b, expect, "repeat query q={q}");
            }
        }
        // replace_last must also invalidate the cached order.
        h.replace_last(0.5);
        assert_eq!(h.quantile_us(0.0), 0.5);
        assert_eq!(h.quantile_us(0.0), 0.5);
    }

    #[test]
    fn extend_matches_per_sample_records_bit_for_bit() {
        let batch = [120.0, 85.0, 310.0, 95.0, 85.0, 1e-300, 7.5e9];
        let mut one_by_one = LatencyHistogram::new();
        one_by_one.record(50.0);
        for &v in &batch {
            one_by_one.record(v);
        }
        let mut folded = LatencyHistogram::new();
        folded.record(50.0);
        folded.extend(&batch);
        assert_eq!(folded.samples_us(), one_by_one.samples_us());
        assert_eq!(folded.mean_us().to_bits(), one_by_one.mean_us().to_bits());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(folded.quantile_us(q).to_bits(), one_by_one.quantile_us(q).to_bits());
        }
        assert_eq!(folded.max_us().to_bits(), one_by_one.max_us().to_bits());
    }

    #[test]
    fn extend_invalidates_a_warm_sort_cache() {
        let mut h = LatencyHistogram::new();
        h.record(5.0);
        h.record(9.0);
        assert_eq!(h.quantile_us(0.0), 5.0); // warm the cache
        h.extend(&[1.0, 7.0]);
        assert_eq!(h.quantile_us(0.0), 1.0, "cache must not serve stale order");
        assert_eq!(h.quantile_us(1.0), 9.0);
        // An empty extend is a true no-op: the warm cache survives.
        h.extend(&[]);
        assert_eq!(h.quantile_us(0.0), 1.0);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn merge_appends_other_samples_in_order() {
        let mut a = LatencyHistogram::new();
        a.record(3.0);
        a.record(1.0);
        let mut b = LatencyHistogram::new();
        b.record(2.0);
        b.record(4.0);
        a.merge(&b);
        assert_eq!(a.samples_us(), &[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(a.quantile_us(0.5), 3.0, "nearest rank over the merged sort");
        assert_eq!(b.samples_us(), &[2.0, 4.0], "source histogram untouched");
        // Merging an empty histogram changes nothing.
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn nearest_rank_edges_pin_after_fold() {
        // The nearest-rank contract (index = round((len-1) * q)) must hold
        // identically whether samples arrived one at a time or in a fold.
        let mut h = LatencyHistogram::new();
        h.extend(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(h.quantile_us(0.5), 30.0, "round(3 * 0.5) = 2");
        assert_eq!(h.quantile_us(0.0), 10.0);
        assert_eq!(h.quantile_us(1.0), 40.0);
        assert_eq!(h.quantile_us(-0.5), 10.0);
        assert_eq!(h.quantile_us(1.5), 40.0);
        assert_eq!(h.quantile_us(f64::NAN), 10.0);
        // Single-sample histograms answer that sample for every q.
        let mut single = LatencyHistogram::new();
        single.extend(&[42.0]);
        for q in [0.0, 0.5, 1.0, f64::NAN, -3.0, 7.0] {
            assert_eq!(single.quantile_us(q), 42.0);
        }
    }

    #[test]
    fn fold_matches_a_merge_chain_bit_for_bit() {
        // Three "devices" with overlapping values, duplicates across parts,
        // and one cold cache — fold must agree with sequential merges on
        // samples, every quantile, mean, and max, bit for bit.
        let mut a = LatencyHistogram::new();
        a.extend(&[120.0, 85.0, 310.0, 85.0]);
        let mut b = LatencyHistogram::new();
        b.extend(&[85.0, 40.0, 310.0]);
        let _ = b.quantile_us(0.5); // warm one part's cache
        let c = LatencyHistogram::new(); // empty part
        let mut d = LatencyHistogram::new();
        d.extend(&[1e-300, 7.5e9, 95.0]);

        let folded = LatencyHistogram::fold([&a, &b, &c, &d]);
        let mut chained = LatencyHistogram::new();
        for part in [&a, &b, &c, &d] {
            chained.merge(part);
        }
        assert_eq!(folded.samples_us(), chained.samples_us());
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0] {
            assert_eq!(folded.quantile_us(q).to_bits(), chained.quantile_us(q).to_bits(), "q={q}");
        }
        assert_eq!(folded.mean_us().to_bits(), chained.mean_us().to_bits());
        assert_eq!(folded.max_us().to_bits(), chained.max_us().to_bits());
        assert_eq!(folded.len(), 10);
    }

    #[test]
    fn fold_of_no_parts_or_empty_parts_is_empty() {
        let folded = LatencyHistogram::fold(std::iter::empty());
        assert!(folded.is_empty());
        assert_eq!(folded.quantile_us(0.5), 0.0);
        let empties = [LatencyHistogram::new(), LatencyHistogram::new()];
        let folded = LatencyHistogram::fold(empties.iter());
        assert!(folded.is_empty());
    }

    #[test]
    fn fold_presorts_and_stays_mutable_afterwards() {
        // The pre-seeded cache must serve correct order immediately, and a
        // later record must invalidate it like any other histogram.
        let mut a = LatencyHistogram::new();
        a.extend(&[9.0, 5.0]);
        let mut b = LatencyHistogram::new();
        b.extend(&[7.0, 1.0]);
        let mut folded = LatencyHistogram::fold([&a, &b]);
        assert_eq!(folded.quantile_us(0.0), 1.0);
        assert_eq!(folded.quantile_us(1.0), 9.0);
        folded.record(0.5);
        assert_eq!(folded.quantile_us(0.0), 0.5, "post-fold record must invalidate the cache");
    }

    #[test]
    fn p9999_pins_to_max_on_small_populations() {
        // Documented nearest-rank semantics at the deep tail: below ~5 000
        // samples round((n-1) * 0.9999) is the last index, so p9999 == max.
        let mut small = LatencyHistogram::new();
        small.extend(&(0..4_999).map(f64::from).collect::<Vec<_>>());
        assert_eq!(small.quantile_us(0.9999), small.max_us());
        // At n = 20_001 the rank moves off the maximum: round(20000 * .9999)
        // = 19998, two below the top.
        let mut big = LatencyHistogram::new();
        big.extend(&(0..20_001).map(f64::from).collect::<Vec<_>>());
        assert_eq!(big.quantile_us(0.9999), 19_998.0);
        assert!(big.quantile_us(0.9999) < big.max_us());
    }

    #[test]
    fn cloned_histogram_answers_independently() {
        let mut h = LatencyHistogram::new();
        h.record(2.0);
        h.record(1.0);
        assert_eq!(h.quantile_us(0.0), 1.0); // warm the cache
        let mut c = h.clone();
        c.record(0.25);
        assert_eq!(c.quantile_us(0.0), 0.25);
        assert_eq!(h.quantile_us(0.0), 1.0, "original unaffected");
    }

    #[test]
    fn waf_counts_gc_traffic() {
        let stats = SsdStats { host_writes: 100, gc_relocations: 50, ..SsdStats::default() };
        assert!((stats.waf() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn waf_of_idle_device_is_zero() {
        assert_eq!(SsdStats::default().waf(), 0.0);
    }

    #[test]
    fn chip_utilization_of_empty_run_is_finite() {
        // A run that never executed has zero makespan; a poisoned clock
        // could even leave NaN. Either way the ratios must come back as
        // plain zeros, never NaN or infinity.
        let mut stats = SsdStats { chip_busy_us: vec![10.0, 20.0], ..SsdStats::default() };
        assert_eq!(stats.chip_utilization(), vec![0.0, 0.0]);
        stats.makespan_us = f64::NAN;
        let util = stats.chip_utilization();
        assert_eq!(util, vec![0.0, 0.0]);
        assert!(util.iter().all(|u| u.is_finite()));
    }

    #[test]
    fn per_op_extras() {
        let stats = SsdStats {
            superwl_programs: 4,
            extra_program_us: 100.0,
            superblock_erases: 2,
            extra_erase_us: 30.0,
            ..SsdStats::default()
        };
        assert!((stats.extra_program_per_op_us() - 25.0).abs() < 1e-12);
        assert!((stats.extra_erase_per_op_us() - 15.0).abs() < 1e-12);
    }
}
