//! The SSD facade: request dispatch, write path, foreground GC and timing.

use crate::active::{ActiveSlots, ActiveSuperblock, FailedMember, Purpose, FILLER, PURPOSES};
use crate::config::{FtlConfig, PatrolConfig, PatrolOrder, QosClass};
use crate::error::FtlError;
use crate::gc::{select_victim, GcBudget, GcJob, PatrolJob, SealedSuperblock};
use crate::manager::{speed_class_for, BlockManager};
use crate::mapping::Mapping;
use crate::recovery::{Checkpoint, JournalEntry, RecoveryReport, SporState};
use crate::request::{IoOp, IoRequest};
use crate::sched::DepthTracker;
use crate::stats::SsdStats;
use crate::timing::{
    BatchedSamples, EngineMode, EngineState, InFlight, QueueModel, TimedOutcome, TouchLog,
    CONTROLLER,
};
use crate::wear_level::WearTracker;
use crate::Result;
use flash_model::{
    BlockAddr, BlockSummaryRecord, FlashArray, FlashError, LwlId, MpOutcome, PageAddr, PageType,
    SealRecord,
};
use pvcheck::{BlockSummary, Characterizer, EigenSequence, SpeedClass};
use std::collections::{HashMap, HashSet};

/// Shape summary handed to workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometryInfo {
    /// Logical pages exported to the host.
    pub logical_pages: u64,
    /// Physical pages in the flash array.
    pub physical_pages: u64,
    /// Pages one superblock holds.
    pub pages_per_superblock: u64,
}

/// The simulated SSD.
///
/// See the [crate docs](crate) for the model; construct with [`Ssd::new`],
/// drive with [`Ssd::run`] or the per-request methods, then inspect
/// [`Ssd::stats`].
///
/// ```
/// use ftl::{FtlConfig, Ssd};
///
/// # fn main() -> ftl::Result<()> {
/// let mut ssd = Ssd::new(FtlConfig::small_test(), 7)?;
/// ssd.write(3)?;
/// assert!(ssd.read(3)?.is_some());
/// ssd.trim(3)?;
/// assert!(ssd.read(3)?.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Ssd {
    config: FtlConfig,
    array: FlashArray,
    mapping: Mapping,
    manager: BlockManager,
    actives: ActiveSlots,
    sealed: Vec<SealedSuperblock>,
    stats: SsdStats,
    logical_pages: u64,
    wear: WearTracker,
    seal_seq: u64,
    touches: TouchLog,
    scratch: Vec<(u64, PageAddr)>,
    /// Construction seed, kept so recovery can rebuild the block manager
    /// with the identical derived RNG stream.
    seed: u64,
    /// Next superblock identity to hand out.
    sb_seq: u64,
    /// SPOR machinery: crash countdown, journal, checkpoint, sequences.
    spor: SporState,
    /// Clock state of an in-progress incremental timed replay
    /// ([`Ssd::timed_begin`] … [`Ssd::timed_end`]); `None` outside one.
    engine: Option<EngineState>,
    /// True while a batched replay is live: the write/read paths skip their
    /// per-op histogram `record` and the replay step collects the sample in
    /// its struct-of-arrays accumulator instead (folded at `timed_end`).
    defer_hist: bool,
    /// Batched-engine checkpoint accelerator: `fast_ckpt[lpn]` mirrors the
    /// OOB write sequence of the page `lpn` currently maps to, maintained
    /// at `apply_assignments` time so `take_checkpoint` skips its per-page
    /// OOB read. `Some` only when `engine = Batched` and SPOR is enabled;
    /// checkpoint contents stay exactly equal to the stepper's.
    fast_ckpt: Option<Vec<u64>>,
    /// Partially collected victim parked between GC slices
    /// ([`GcBudget::Sliced`] only); `None` when no collection is mid-flight.
    gc_job: Option<GcJob>,
    /// Per-command cap on budgeted collection work, µs
    /// ([`Ssd::set_gc_allowance`]). Defaults to `INFINITY` (no cap), which
    /// leaves every code path bit-identical to a device without the field.
    /// Frontends with per-tenant SLO budgets set this before each command
    /// to the tenant's remaining debt for the current window; `0` skips the
    /// ladder slice entirely. The emergency floor ignores it — running out
    /// of assemblable superblocks trumps any SLO.
    gc_allowance_us: f64,
    /// Per-LPN write time on the device clock, µs
    /// ([`Ssd::device_clock_us`]); `Some` only when integrity tracking is
    /// on. Reset on every program of the LPN (a relocation rewrites the
    /// physical charge, so its retention clock restarts).
    birth_us: Option<Vec<f64>>,
    /// Partially completed patrol pass parked between slices; `None` when
    /// no pass is mid-flight. Cursors live only in RAM (crash-safe to drop:
    /// the pass merely restarts).
    patrol_job: Option<PatrolJob>,
    /// Device-clock time at which the next patrol pass is due, µs.
    patrol_due_at: f64,
    /// Wall time the device spent idle during timed replays, µs: the sum of
    /// gaps where the next arrival lay beyond all accrued work. Charge
    /// trapped in flash cells leaks during idle time exactly as during
    /// work, so the device clock counts both; untimed replays have no
    /// arrival schedule and leave this at zero (work is the only clock).
    idle_wall_us: f64,
}

/// Exact `floor(physical_pages * (1 - overprovision))` in integer
/// arithmetic: the f64 factor is decomposed into `mantissa * 2^exp` and the
/// product taken in `u128`, so huge geometries no longer lose low bits to
/// the double rounding of `(physical as f64 * frac) as u64`.
fn logical_capacity(physical_pages: u64, overprovision: f64) -> u64 {
    let frac = 1.0 - overprovision;
    if frac <= 0.0 {
        return 0;
    }
    if frac >= 1.0 {
        return physical_pages;
    }
    let bits = frac.to_bits();
    // frac in (0, 1) is normal, so the implicit leading bit is set and the
    // unbiased exponent is at most -1 (shift >= 53).
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1075;
    let mantissa = (bits & ((1u64 << 52) - 1)) | (1u64 << 52);
    let product = u128::from(physical_pages) * u128::from(mantissa);
    let shift = u32::try_from(-exp).expect("frac < 1 has a negative exponent");
    if shift >= 128 {
        0
    } else {
        u64::try_from(product >> shift).expect("floor of physical * frac fits u64 (frac < 1)")
    }
}

impl Ssd {
    /// Builds the device, optionally pre-characterizing every block so
    /// QSTR-MED starts warm (the paper's steady-state setting).
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] for inconsistent configurations.
    pub fn new(config: FtlConfig, seed: u64) -> Result<Ssd> {
        config.validate().map_err(|reason| FtlError::InvalidConfig { reason })?;
        let mut array = FlashArray::with_faults(config.flash.clone(), seed, config.fault.clone());
        if config.integrity.track {
            array.set_track_disturb(true);
        }
        if config.engine == EngineMode::Batched {
            // Bit-identical prefix memoization of program/erase synthesis;
            // kept off under the stepper so the oracle stays on the original
            // code path.
            array.set_fast_latency(true);
        }
        let geo = array.geometry().clone();
        let physical_pages = geo.total_blocks() * u64::from(geo.pages_per_block());
        // Parity first, then over-provisioning: the parity reserve (one page
        // per super word-line) is raw capacity the host can never address.
        let usable_pages = physical_pages - config.parity_reserve_pages(physical_pages);
        let logical_pages = logical_capacity(usable_pages, config.overprovision);
        let config_wear_threshold = config.wear_threshold;
        let mut manager = BlockManager::new(&geo, config.scheme, seed ^ 0x5eed);
        if config.precharacterize {
            let pool = Characterizer::new(&config.flash).snapshot(array.latency_model(), 0);
            let strings = geo.strings();
            for profile in pool.iter() {
                manager.learn(profile.summary(strings));
            }
            manager.promote_known();
        }
        let spor = SporState::new(&config.spor);
        let fast_ckpt = (config.engine == EngineMode::Batched && config.spor.enabled)
            .then(|| vec![0u64; usize::try_from(logical_pages).expect("capacity fits usize")]);
        let birth_us = config
            .integrity
            .track
            .then(|| vec![0.0f64; usize::try_from(logical_pages).expect("capacity fits usize")]);
        Ok(Ssd {
            config,
            array,
            mapping: Mapping::new(logical_pages, &geo),
            manager,
            actives: ActiveSlots::default(),
            sealed: Vec::new(),
            stats: SsdStats::default(),
            logical_pages,
            wear: WearTracker::new(config_wear_threshold),
            seal_seq: 0,
            touches: TouchLog::default(),
            scratch: Vec::new(),
            seed,
            sb_seq: 0,
            spor,
            engine: None,
            defer_hist: false,
            fast_ckpt,
            gc_job: None,
            gc_allowance_us: f64::INFINITY,
            birth_us,
            patrol_job: None,
            patrol_due_at: 0.0,
            idle_wall_us: 0.0,
        })
    }

    /// Swaps the page mapping for the original `HashMap`-backed reference
    /// implementation. Semantics are identical; per-block validity queries
    /// go back to scanning every mapped page, which is exactly what the
    /// before/after GC benchmarks (`perf_replay`, `benches/gc.rs`) measure.
    ///
    /// # Panics
    ///
    /// Panics if any page has been written already (the existing mapping
    /// state would be lost).
    pub fn use_naive_mapping_for_benchmarks(&mut self) {
        assert_eq!(self.mapping.valid_pages(), 0, "switch mappings only on a fresh device");
        assert!(self.actives.is_empty(), "switch mappings only on a fresh device");
        self.mapping = Mapping::new_naive(self.logical_pages);
    }

    /// Shape summary for workload generation.
    #[must_use]
    pub fn geometry_info(&self) -> GeometryInfo {
        let geo = self.array.geometry();
        let pools = u64::from(geo.chips()) * u64::from(geo.planes_per_chip());
        GeometryInfo {
            logical_pages: self.logical_pages,
            physical_pages: geo.total_blocks() * u64::from(geo.pages_per_block()),
            pages_per_superblock: pools * u64::from(geo.pages_per_block()),
        }
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// Total QSTR-MED eigen distance checks (0 for other schemes).
    #[must_use]
    pub fn distance_checks(&self) -> u64 {
        self.manager.distance_checks()
    }

    /// Which replay engine this device was configured with. External
    /// dispatchers (the host frontend) use this to pick their matching
    /// drain loop.
    #[must_use]
    pub fn engine(&self) -> EngineMode {
        self.config.engine
    }

    /// Executes an open-loop request stream with arrival times: recorded
    /// latencies include queueing delay, so GC pauses and slow superblocks
    /// show up in the tail percentiles. [`FtlConfig::queue_model`] selects
    /// the clock: `Single` serializes every request behind one device-wide
    /// queue (the original model, bit-identical outputs); `PerChip` gives
    /// each chip/plane group its own busy-until clock so a request waits
    /// only for the chips it touches and work overlaps across chips.
    ///
    /// `requests` must be sorted by arrival time (µs).
    ///
    /// # Errors
    ///
    /// Stops at the first failing request.
    pub fn run_timed(&mut self, requests: &[(f64, IoRequest)]) -> Result<()> {
        self.timed_begin();
        for &(arrival, r) in requests {
            if let Err(e) = self.timed_step(arrival, r, QosClass::Standard) {
                self.timed_end();
                return Err(e);
            }
        }
        self.timed_end();
        Ok(())
    }

    /// Starts an incremental timed replay: initializes the clock state for
    /// the configured [`FtlConfig::queue_model`] so individual requests can
    /// be fed through [`Ssd::timed_step`]. [`Ssd::run_timed`] is exactly
    /// `timed_begin` + one `timed_step` per request + [`Ssd::timed_end`];
    /// external dispatchers (a multi-queue host frontend arbitrating
    /// between tenants) use the same API so their single-queue degenerate
    /// case is structurally identical to the serial replay.
    ///
    /// Beginning a new replay while one is in progress resets the clocks.
    pub fn timed_begin(&mut self) {
        let engine = match (self.config.engine, self.config.queue_model) {
            (EngineMode::Stepper, QueueModel::Single) => {
                EngineState::Single { device_free_at: 0.0, in_flight: InFlight::default() }
            }
            (EngineMode::Stepper, QueueModel::PerChip) => {
                self.touches.set_enabled(true);
                let groups = self.array.geometry().chip_plane_groups();
                if self.stats.chip_busy_us.len() != groups + 1 {
                    self.stats.chip_busy_us = vec![0.0; groups + 1];
                }
                EngineState::PerChip {
                    busy: vec![0.0f64; groups + 1],
                    agg: vec![0.0f64; groups + 1],
                    touched: Vec::with_capacity(groups + 1),
                    buf: Vec::new(),
                    in_flight: InFlight::default(),
                    makespan: 0.0,
                }
            }
            (EngineMode::Batched, QueueModel::Single) => {
                self.defer_hist = true;
                EngineState::BatchedSingle {
                    device_free_at: 0.0,
                    in_flight: DepthTracker::new(),
                    samples: BatchedSamples::default(),
                }
            }
            (EngineMode::Batched, QueueModel::PerChip) => {
                self.defer_hist = true;
                self.touches.set_enabled(true);
                let groups = self.array.geometry().chip_plane_groups();
                if self.stats.chip_busy_us.len() != groups + 1 {
                    self.stats.chip_busy_us = vec![0.0; groups + 1];
                }
                EngineState::BatchedPerChip {
                    busy: vec![0.0f64; groups + 1],
                    agg: vec![0.0f64; groups + 1],
                    touched: Vec::with_capacity(groups + 1),
                    buf: Vec::new(),
                    in_flight: DepthTracker::new(),
                    makespan: 0.0,
                    samples: BatchedSamples::default(),
                }
            }
        };
        self.engine = Some(engine);
    }

    /// Executes one request of an incremental timed replay: the request
    /// arrives at `arrival` µs, waits for the device clocks per the
    /// configured queue model, and executes with its writes placed by
    /// `class`. Returns where the request landed on the clocks.
    ///
    /// Arrivals should be non-decreasing across calls (queue-depth
    /// accounting assumes it, like [`Ssd::run_timed`]'s sorted input).
    ///
    /// # Panics
    ///
    /// Panics if called outside a [`Ssd::timed_begin`] … [`Ssd::timed_end`]
    /// replay.
    ///
    /// # Errors
    ///
    /// Propagates the failing request's error; the replay stays live so the
    /// caller decides whether to continue or [`Ssd::timed_end`].
    pub fn timed_step(
        &mut self,
        arrival: f64,
        r: IoRequest,
        class: QosClass,
    ) -> Result<TimedOutcome> {
        // Credit idle wall time to the device clock: data retention decays
        // while the device sits idle waiting for this arrival, not just
        // while it works. (With integrity tracking off nothing reads the
        // clock, so the credit is inert.)
        let wall = self.device_clock_us();
        if arrival > wall {
            self.idle_wall_us += arrival - wall;
        }
        let mut engine = self.engine.take().expect("timed_step requires timed_begin");
        let result = match &mut engine {
            EngineState::Single { device_free_at, in_flight } => {
                self.timed_step_single(arrival, r, class, device_free_at, in_flight)
            }
            EngineState::PerChip { busy, agg, touched, buf, in_flight, makespan } => self
                .timed_step_per_chip(
                    arrival, r, class, busy, agg, touched, buf, in_flight, makespan,
                ),
            EngineState::BatchedSingle { device_free_at, in_flight, samples } => self
                .timed_step_batched_single(arrival, r, class, device_free_at, in_flight, samples),
            EngineState::BatchedPerChip {
                busy,
                agg,
                touched,
                buf,
                in_flight,
                makespan,
                samples,
            } => self.timed_step_batched_per_chip(
                arrival, r, class, busy, agg, touched, buf, in_flight, makespan, samples,
            ),
        };
        self.engine = Some(engine);
        result
    }

    /// Finishes an incremental timed replay: folds the final clock state
    /// into [`SsdStats::makespan_us`] and drops the engine. No-op when no
    /// replay is in progress.
    pub fn timed_end(&mut self) {
        match self.engine.take() {
            Some(EngineState::Single { device_free_at, .. }) => {
                self.stats.makespan_us = self.stats.makespan_us.max(device_free_at);
            }
            Some(EngineState::PerChip { busy, makespan, .. }) => {
                let busiest = busy.iter().fold(0.0f64, |a, &b| a.max(b));
                self.stats.makespan_us = self.stats.makespan_us.max(makespan.max(busiest));
                self.touches.set_enabled(false);
            }
            Some(EngineState::BatchedSingle { device_free_at, samples, .. }) => {
                self.stats.makespan_us = self.stats.makespan_us.max(device_free_at);
                self.fold_samples(samples);
            }
            Some(EngineState::BatchedPerChip { busy, makespan, samples, .. }) => {
                let busiest = busy.iter().fold(0.0f64, |a, &b| a.max(b));
                self.stats.makespan_us = self.stats.makespan_us.max(makespan.max(busiest));
                self.touches.set_enabled(false);
                self.fold_samples(samples);
            }
            None => {}
        }
    }

    /// Folds a batched replay's struct-of-arrays latency samples into the
    /// histograms (one bulk append per histogram, same values in the same
    /// order the stepper would have recorded them) and re-arms per-op
    /// recording.
    fn fold_samples(&mut self, samples: BatchedSamples) {
        self.stats.write_latency.extend(&samples.write);
        self.stats.read_latency.extend(&samples.read);
        self.defer_hist = false;
    }

    /// Upgrades the service-only latency sample of a timed request to the
    /// queue-inclusive one and maintains the wait counters. Reads that miss
    /// take zero service but the host still waited `wait` for the answer,
    /// so that wait is recorded as a read latency sample; trim waits land in
    /// [`SsdStats::trim_wait_us`] (trims record no histogram sample).
    fn record_timed_latency(&mut self, op: IoOp, wait: f64, service: f64) {
        self.stats.queue_wait_us += wait;
        match op {
            IoOp::Write => self.stats.write_latency.replace_last(wait + service),
            IoOp::Read if service > 0.0 => {
                self.stats.read_latency.replace_last(wait + service);
            }
            IoOp::Read => self.stats.read_latency.record(wait),
            IoOp::Trim => self.stats.trim_wait_us += wait,
        }
    }

    /// One step of the original scalar-clock replay: one device-wide
    /// command queue.
    fn timed_step_single(
        &mut self,
        arrival: f64,
        r: IoRequest,
        class: QosClass,
        device_free_at: &mut f64,
        in_flight: &mut InFlight,
    ) -> Result<TimedOutcome> {
        // Idle-time GC: use gaps before the next arrival to pre-free
        // space, shrinking foreground pauses.
        if self.config.idle_gc {
            match self.config.gc_budget {
                GcBudget::Unbounded => {
                    while *device_free_at < arrival
                        && self.manager.assemblable() < self.config.gc_high_watermark
                    {
                        match self.gc_once()? {
                            Some(t) => {
                                *device_free_at += t;
                                // Background work: accounted separately so
                                // utilization reflects foreground service
                                // only.
                                self.stats.idle_gc_us += t;
                            }
                            None => break,
                        }
                    }
                }
                GcBudget::Sliced { .. } => {
                    // The whole idle gap is the budget; the slice parks the
                    // victim when the gap runs out.
                    if *device_free_at < arrival
                        && self.manager.assemblable() < self.config.gc_high_watermark
                    {
                        let t = self.gc_slice(arrival - *device_free_at)?;
                        if t > 0.0 {
                            *device_free_at += t;
                            self.stats.idle_gc_us += t;
                        }
                    }
                }
            }
        }
        // Patrol scrubbing rides whatever idle gap is left after GC.
        if *device_free_at < arrival && self.patrol_due() {
            let t = self.patrol_slice(arrival - *device_free_at)?;
            if t > 0.0 {
                *device_free_at += t;
                self.stats.patrol_us += t;
            }
        }
        let start = device_free_at.max(arrival);
        let wait = start - arrival;
        let service = match r.op {
            IoOp::Write => self.write_with_class(r.lpn, class)?,
            IoOp::Read => self.read(r.lpn)?.unwrap_or(0.0),
            IoOp::Trim => {
                self.trim(r.lpn)?;
                0.0
            }
        };
        self.record_timed_latency(r.op, wait, service);
        let depth = in_flight.arrive(arrival) as u64 + 1;
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(depth);
        *device_free_at = start + service;
        in_flight.complete_at(*device_free_at);
        Ok(TimedOutcome {
            wait_us: wait,
            service_us: service,
            start_us: start,
            completion_us: *device_free_at,
        })
    }

    /// One step of the event-driven replay with per-chip busy-until clocks:
    /// the request starts once its arrival has passed and every resource it
    /// touches (member chips of its flash commands, plus the host channel
    /// for page transfers) is free; each touched resource then stays busy
    /// for its own recorded duration, so fast member chips free early and
    /// independent requests overlap. Host-visible latency keeps the same
    /// wait + service shape as the `Single` model — only the wait changes.
    #[allow(clippy::too_many_arguments)]
    fn timed_step_per_chip(
        &mut self,
        arrival: f64,
        r: IoRequest,
        class: QosClass,
        busy: &mut [f64],
        agg: &mut [f64],
        touched: &mut Vec<usize>,
        buf: &mut Vec<(usize, f64)>,
        in_flight: &mut InFlight,
        makespan: &mut f64,
    ) -> Result<TimedOutcome> {
        let groups = busy.len() - 1;
        if self.config.idle_gc {
            match self.config.gc_budget {
                GcBudget::Unbounded => {
                    // A gap exists when every clock runs out before the next
                    // arrival; background GC then charges only the groups it
                    // actually touches.
                    while busy.iter().fold(0.0f64, |a, &b| a.max(b)) < arrival
                        && self.manager.assemblable() < self.config.gc_high_watermark
                    {
                        match self.gc_once()? {
                            Some(t) => {
                                self.stats.idle_gc_us += t;
                                self.touches.take_into(buf);
                                Self::aggregate_touches(buf, groups, agg, touched);
                                let start = touched.iter().fold(0.0f64, |a, &g| a.max(busy[g]));
                                for &g in touched.iter() {
                                    busy[g] = start + agg[g];
                                    self.stats.chip_busy_us[g] += agg[g];
                                    agg[g] = 0.0;
                                }
                            }
                            None => break,
                        }
                    }
                }
                GcBudget::Sliced { .. } => {
                    let now = busy.iter().fold(0.0f64, |a, &b| a.max(b));
                    if now < arrival && self.manager.assemblable() < self.config.gc_high_watermark {
                        let t = self.gc_slice(arrival - now)?;
                        if t > 0.0 {
                            self.stats.idle_gc_us += t;
                            self.touches.take_into(buf);
                            Self::aggregate_touches(buf, groups, agg, touched);
                            let start = touched.iter().fold(0.0f64, |a, &g| a.max(busy[g]));
                            for &g in touched.iter() {
                                busy[g] = start + agg[g];
                                self.stats.chip_busy_us[g] += agg[g];
                                agg[g] = 0.0;
                            }
                        }
                    }
                }
            }
        }
        // Patrol scrubbing rides whatever idle gap is left after GC,
        // charging only the chip/plane groups its reads and refresh
        // programs actually touch.
        {
            let now = busy.iter().fold(0.0f64, |a, &b| a.max(b));
            if now < arrival && self.patrol_due() {
                let t = self.patrol_slice(arrival - now)?;
                if t > 0.0 {
                    self.stats.patrol_us += t;
                    self.touches.take_into(buf);
                    Self::aggregate_touches(buf, groups, agg, touched);
                    let start = touched.iter().fold(0.0f64, |a, &g| a.max(busy[g]));
                    for &g in touched.iter() {
                        busy[g] = start + agg[g];
                        self.stats.chip_busy_us[g] += agg[g];
                        agg[g] = 0.0;
                    }
                }
            }
        }
        let service = match r.op {
            IoOp::Write => self.write_with_class(r.lpn, class)?,
            IoOp::Read => self.read(r.lpn)?.unwrap_or(0.0),
            IoOp::Trim => {
                self.trim(r.lpn)?;
                0.0
            }
        };
        self.touches.take_into(buf);
        Self::aggregate_touches(buf, groups, agg, touched);
        let start = touched.iter().fold(arrival, |a, &g| a.max(busy[g]));
        let wait = start - arrival;
        for &g in touched.iter() {
            busy[g] = start + agg[g];
            self.stats.chip_busy_us[g] += agg[g];
            agg[g] = 0.0;
        }
        self.record_timed_latency(r.op, wait, service);
        let depth = in_flight.arrive(arrival) as u64 + 1;
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(depth);
        let completion = start + service;
        in_flight.complete_at(completion);
        *makespan = makespan.max(completion);
        Ok(TimedOutcome {
            wait_us: wait,
            service_us: service,
            start_us: start,
            completion_us: completion,
        })
    }

    /// Deferred twin of [`Ssd::record_timed_latency`]: scalar wait counters
    /// update inline (their running-sum order must match the stepper's), but
    /// the histogram sample lands in the replay's struct-of-arrays
    /// accumulator instead of the histogram — the write/read paths skipped
    /// their `record` under [`Ssd::defer_hist`], so pushing the final
    /// queue-inclusive value here reproduces the stepper's
    /// `record`-then-`replace_last` sequence exactly.
    fn record_timed_latency_deferred(
        &mut self,
        op: IoOp,
        wait: f64,
        service: f64,
        samples: &mut BatchedSamples,
    ) {
        self.stats.queue_wait_us += wait;
        match op {
            IoOp::Write => samples.write.push(wait + service),
            IoOp::Read if service > 0.0 => samples.read.push(wait + service),
            IoOp::Read => samples.read.push(wait),
            IoOp::Trim => self.stats.trim_wait_us += wait,
        }
    }

    /// One step of the batched scalar-clock replay. The clock arithmetic is
    /// the stepper's ([`Ssd::timed_step_single`]) operation for operation;
    /// only the bookkeeping around it changes (calendar-queue completions,
    /// deferred histogram samples), so every stat folds out bit-identical.
    fn timed_step_batched_single(
        &mut self,
        arrival: f64,
        r: IoRequest,
        class: QosClass,
        device_free_at: &mut f64,
        in_flight: &mut DepthTracker,
        samples: &mut BatchedSamples,
    ) -> Result<TimedOutcome> {
        if self.config.idle_gc {
            match self.config.gc_budget {
                GcBudget::Unbounded => {
                    while *device_free_at < arrival
                        && self.manager.assemblable() < self.config.gc_high_watermark
                    {
                        match self.gc_once()? {
                            Some(t) => {
                                *device_free_at += t;
                                self.stats.idle_gc_us += t;
                            }
                            None => break,
                        }
                    }
                }
                GcBudget::Sliced { .. } => {
                    if *device_free_at < arrival
                        && self.manager.assemblable() < self.config.gc_high_watermark
                    {
                        let t = self.gc_slice(arrival - *device_free_at)?;
                        if t > 0.0 {
                            *device_free_at += t;
                            self.stats.idle_gc_us += t;
                        }
                    }
                }
            }
        }
        // Patrol scrubbing rides whatever idle gap is left after GC —
        // identical clock arithmetic to the stepper's hook.
        if *device_free_at < arrival && self.patrol_due() {
            let t = self.patrol_slice(arrival - *device_free_at)?;
            if t > 0.0 {
                *device_free_at += t;
                self.stats.patrol_us += t;
            }
        }
        let start = device_free_at.max(arrival);
        let wait = start - arrival;
        let service = match r.op {
            IoOp::Write => self.write_with_class(r.lpn, class)?,
            IoOp::Read => self.read(r.lpn)?.unwrap_or(0.0),
            IoOp::Trim => {
                self.trim(r.lpn)?;
                0.0
            }
        };
        self.record_timed_latency_deferred(r.op, wait, service, samples);
        let depth = in_flight.arrive(arrival) as u64 + 1;
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(depth);
        *device_free_at = start + service;
        in_flight.complete_at(*device_free_at);
        Ok(TimedOutcome {
            wait_us: wait,
            service_us: service,
            start_us: start,
            completion_us: *device_free_at,
        })
    }

    /// One step of the batched per-chip replay; clock math mirrors
    /// [`Ssd::timed_step_per_chip`] exactly (including the direct per-op
    /// `chip_busy_us` adds — folding those at `timed_end` would reassociate
    /// the float sums and change bits).
    #[allow(clippy::too_many_arguments)]
    fn timed_step_batched_per_chip(
        &mut self,
        arrival: f64,
        r: IoRequest,
        class: QosClass,
        busy: &mut [f64],
        agg: &mut [f64],
        touched: &mut Vec<usize>,
        buf: &mut Vec<(usize, f64)>,
        in_flight: &mut DepthTracker,
        makespan: &mut f64,
        samples: &mut BatchedSamples,
    ) -> Result<TimedOutcome> {
        let groups = busy.len() - 1;
        if self.config.idle_gc {
            match self.config.gc_budget {
                GcBudget::Unbounded => {
                    while busy.iter().fold(0.0f64, |a, &b| a.max(b)) < arrival
                        && self.manager.assemblable() < self.config.gc_high_watermark
                    {
                        match self.gc_once()? {
                            Some(t) => {
                                self.stats.idle_gc_us += t;
                                self.touches.take_into(buf);
                                Self::aggregate_touches(buf, groups, agg, touched);
                                let start = touched.iter().fold(0.0f64, |a, &g| a.max(busy[g]));
                                for &g in touched.iter() {
                                    busy[g] = start + agg[g];
                                    self.stats.chip_busy_us[g] += agg[g];
                                    agg[g] = 0.0;
                                }
                            }
                            None => break,
                        }
                    }
                }
                GcBudget::Sliced { .. } => {
                    let now = busy.iter().fold(0.0f64, |a, &b| a.max(b));
                    if now < arrival && self.manager.assemblable() < self.config.gc_high_watermark {
                        let t = self.gc_slice(arrival - now)?;
                        if t > 0.0 {
                            self.stats.idle_gc_us += t;
                            self.touches.take_into(buf);
                            Self::aggregate_touches(buf, groups, agg, touched);
                            let start = touched.iter().fold(0.0f64, |a, &g| a.max(busy[g]));
                            for &g in touched.iter() {
                                busy[g] = start + agg[g];
                                self.stats.chip_busy_us[g] += agg[g];
                                agg[g] = 0.0;
                            }
                        }
                    }
                }
            }
        }
        // Patrol scrubbing rides whatever idle gap is left after GC —
        // identical clock arithmetic to the stepper's per-chip hook.
        {
            let now = busy.iter().fold(0.0f64, |a, &b| a.max(b));
            if now < arrival && self.patrol_due() {
                let t = self.patrol_slice(arrival - now)?;
                if t > 0.0 {
                    self.stats.patrol_us += t;
                    self.touches.take_into(buf);
                    Self::aggregate_touches(buf, groups, agg, touched);
                    let start = touched.iter().fold(0.0f64, |a, &g| a.max(busy[g]));
                    for &g in touched.iter() {
                        busy[g] = start + agg[g];
                        self.stats.chip_busy_us[g] += agg[g];
                        agg[g] = 0.0;
                    }
                }
            }
        }
        let service = match r.op {
            IoOp::Write => self.write_with_class(r.lpn, class)?,
            IoOp::Read => self.read(r.lpn)?.unwrap_or(0.0),
            IoOp::Trim => {
                self.trim(r.lpn)?;
                0.0
            }
        };
        self.touches.take_into(buf);
        Self::aggregate_touches(buf, groups, agg, touched);
        let start = touched.iter().fold(arrival, |a, &g| a.max(busy[g]));
        let wait = start - arrival;
        for &g in touched.iter() {
            busy[g] = start + agg[g];
            self.stats.chip_busy_us[g] += agg[g];
            agg[g] = 0.0;
        }
        self.record_timed_latency_deferred(r.op, wait, service, samples);
        let depth = in_flight.arrive(arrival) as u64 + 1;
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(depth);
        let completion = start + service;
        in_flight.complete_at(completion);
        *makespan = makespan.max(completion);
        Ok(TimedOutcome {
            wait_us: wait,
            service_us: service,
            start_us: start,
            completion_us: completion,
        })
    }

    /// Folds raw touch-log entries into per-group occupancy: `agg[g]` gets
    /// the summed duration and `touched` lists each group once. `CONTROLLER`
    /// touches map to slot `groups`.
    fn aggregate_touches(
        buf: &[(usize, f64)],
        groups: usize,
        agg: &mut [f64],
        touched: &mut Vec<usize>,
    ) {
        touched.clear();
        for &(g, d) in buf {
            let g = if g == CONTROLLER { groups } else { g };
            if !touched.contains(&g) {
                touched.push(g);
            }
            agg[g] += d;
        }
    }

    /// Executes a request stream.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request.
    pub fn run(&mut self, requests: &[IoRequest]) -> Result<()> {
        for r in requests {
            match r.op {
                IoOp::Write => {
                    self.write(r.lpn)?;
                }
                IoOp::Read => {
                    self.read(r.lpn)?;
                }
                IoOp::Trim => self.trim(r.lpn)?,
            }
        }
        Ok(())
    }

    /// Records a flash command's occupancy on its chip/plane group (no-op
    /// unless a `PerChip` replay is running).
    fn touch_block(&mut self, block: BlockAddr, us: f64) {
        let group = self.array.geometry().chip_plane_index(block);
        self.touches.record(group, us);
    }

    /// Records host-channel occupancy (a page transfer).
    fn touch_controller(&mut self, us: f64) {
        self.touches.record(CONTROLLER, us);
    }

    fn check_lpn(&self, lpn: u64) -> Result<()> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LpnOutOfRange { lpn, capacity: self.logical_pages });
        }
        Ok(())
    }

    /// Rejects requests on a crashed device until [`Ssd::recover`] runs.
    fn ensure_powered(&self) -> Result<()> {
        if self.spor.crashed {
            return Err(FtlError::PowerLoss);
        }
        Ok(())
    }

    /// Whether an injected crash has fired and [`Ssd::recover`] has not yet
    /// been called.
    #[must_use]
    pub fn has_crashed(&self) -> bool {
        self.spor.crashed
    }

    /// The page mapping (read access for verification and tests).
    #[must_use]
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The block manager (read access for verification and tests).
    #[must_use]
    pub fn block_manager(&self) -> &BlockManager {
        &self.manager
    }

    /// Writes one logical page, returning the host-visible latency in µs
    /// (transfer + any triggered program/erase/GC work). Equivalent to
    /// [`Ssd::write_with_class`] with [`QosClass::Standard`].
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] or [`FtlError::OutOfSpace`].
    pub fn write(&mut self, lpn: u64) -> Result<f64> {
        self.write_with_class(lpn, QosClass::Standard)
    }

    /// Writes one logical page on behalf of a tenant of the given QoS
    /// class; the class picks the open superblock via the placement hook
    /// (see [`QosClass`]). `Standard` is byte-identical to [`Ssd::write`].
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] or [`FtlError::OutOfSpace`].
    pub fn write_with_class(&mut self, lpn: u64, class: QosClass) -> Result<f64> {
        self.ensure_powered()?;
        self.check_lpn(lpn)?;
        self.touch_controller(self.config.transfer_us);
        let mut latency = self.config.transfer_us;
        let mut stall = self.maybe_gc(class)?;
        // Overdue patrol work is paid down the same QoS ladder and folded
        // into the same stall, so per-tenant GC-SLO frontends charge it to
        // the tenant's debt ledger without any extra plumbing.
        stall += self.maybe_patrol(class)?;
        if stall > 0.0 {
            self.stats.gc_stall_us += stall;
            self.stats.gc_stall.record(stall);
        }
        latency += stall;
        latency += self.stage_write(lpn, Purpose::Host(class))?;
        self.stats.host_writes += 1;
        self.stats.host_writes_by_class[class.index()] += 1;
        if !self.defer_hist {
            self.stats.write_latency.record(latency);
        }
        self.stats.busy_us += latency;
        self.maybe_checkpoint()?;
        Ok(latency)
    }

    /// Reads one logical page: `Ok(None)` if it was never written, else the
    /// host-visible latency in µs.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] for out-of-range pages.
    pub fn read(&mut self, lpn: u64) -> Result<Option<f64>> {
        self.ensure_powered()?;
        self.check_lpn(lpn)?;
        // Serve from the staging buffers first (write-back cache).
        let staged = self.actives.any_staged(lpn);
        let latency = if staged {
            self.touch_controller(self.config.transfer_us);
            self.config.transfer_us
        } else {
            match self.mapping.lookup(lpn) {
                None => return Ok(None),
                Some(ppa) => {
                    let (tag, t) = self.array.read_page(ppa)?;
                    debug_assert_eq!(tag, lpn, "mapping points at the right payload");
                    self.touch_controller(self.config.transfer_us);
                    if self.config.fault.enabled() || self.config.integrity.track {
                        // Consult the ECC model at the page's true data age;
                        // pages past the retry ladder are refreshed
                        // (rewritten elsewhere) before they rot into data
                        // loss. Without integrity tracking the age is 0 and
                        // the disturb count is 0, reproducing the fault-only
                        // path bit for bit.
                        let bits = self.array.expected_error_bits(ppa, self.data_age_hours(lpn));
                        let flash_us = self.config.retry.read_latency_us(t, bits);
                        self.touch_block(ppa.wl.block, flash_us);
                        if self.config.retry.is_uncorrectable(bits) {
                            // The relocation is background work: the host
                            // sees only the sensing + retry + transfer time,
                            // and the rewrite lands in `refresh_us` (still
                            // advancing `busy_us`).
                            self.stats.uncorrectable_reads += 1;
                            if self.config.parity.enabled() {
                                self.rebuild_page(lpn, ppa, None)?;
                            }
                            let mut slice = 0.0;
                            if self.manager.assemblable() <= 1 {
                                // A read-heavy phase stages refreshes with
                                // no host write in sight to trigger
                                // collection — reclaim the emergency floor
                                // so reactive refreshes can't drain the
                                // free pool into OutOfSpace.
                                slice = self.gc_slice_toward(f64::INFINITY, 2)?;
                            }
                            let restage = self.stage_write(lpn, Purpose::Gc)?;
                            if self.config.parity.enabled() && slice > 0.0 {
                                // Rebuild-triggered emergency collection is
                                // paid like a foreground GC stall so per-
                                // tenant GC-SLO frontends charge it to the
                                // tenant's debt ledger.
                                self.stats.gc_stall_us += slice;
                                self.stats.gc_stall.record(slice);
                                self.stats.busy_us += slice;
                                self.stats.refresh_us += restage;
                                self.stats.busy_us += restage;
                            } else {
                                let refresh = slice + restage;
                                self.stats.refresh_us += refresh;
                                self.stats.busy_us += refresh;
                            }
                            self.stats.refresh_relocations += 1;
                        }
                        flash_us + self.config.transfer_us
                    } else {
                        self.touch_block(ppa.wl.block, t);
                        t + self.config.transfer_us
                    }
                }
            }
        };
        self.stats.host_reads += 1;
        if !self.defer_hist {
            self.stats.read_latency.record(latency);
        }
        self.stats.busy_us += latency;
        // Refresh relocations on the fault path may have programmed.
        self.maybe_checkpoint()?;
        Ok(Some(latency))
    }

    /// Rebuilds the payload of an uncorrectable page from its super-word-line
    /// siblings plus parity (RAIN). Every surviving page of the stripe is
    /// read (`rebuild_reads`) and the tags XOR back to the lost LPN when the
    /// stripe is intact; the caller then restages the payload. Sibling reads
    /// proceed chip-parallel, so the charged critical path is the slowest
    /// *member* — the rebuild-latency channel where unified-tR superpages
    /// beat PV-blind assembly. Rebuild time lands in `rebuild_us` and
    /// `busy_us`, never the read histogram.
    ///
    /// A stripe that cannot produce the payload — a second uncorrectable
    /// sibling, a dropped member whose tags are gone, or a missing parity
    /// page — counts in `rebuilds_failed`: true data loss, reported, never
    /// silently absorbed.
    fn rebuild_page(
        &mut self,
        lpn: u64,
        ppa: PageAddr,
        stripe: Option<&[BlockAddr]>,
    ) -> Result<()> {
        debug_assert!(self.config.parity.enabled());
        // A GC caller hands the victim's members directly (the victim may
        // already be off the sealed list); otherwise locate the stripe.
        let members: Option<Vec<BlockAddr>> = match stripe {
            Some(m) => Some(m.to_vec()),
            None => self
                .sealed
                .iter()
                .find(|s| s.members.contains(&ppa.wl.block))
                .map(|s| s.members.clone())
                .or_else(|| {
                    self.actives
                        .iter()
                        .find(|a| a.members.contains(&ppa.wl.block))
                        .map(|a| a.members.clone())
                }),
        };
        let Some(members) = members else {
            self.stats.rebuilds_failed += 1;
            return Ok(());
        };
        // Stripe siblings were programmed in the same instant as the lost
        // page, so its retention age is theirs.
        let age = self.data_age_hours(lpn);
        let geo = self.array.geometry();
        let cell = geo.cell();
        let pages_per_lwl = geo.pages_per_lwl();
        let mut acc = 0u64;
        let mut intact = true;
        let mut saw_parity = false;
        let mut critical_us = 0.0f64;
        let mut fanout_us = 0.0f64;
        for &member in &members {
            let mut member_us = 0.0;
            for k in 0..pages_per_lwl {
                let pt = PageType::from_index(cell, k).expect("k < pages_per_lwl");
                let page = member.wl(ppa.wl.lwl).page(pt);
                if page == ppa {
                    continue;
                }
                match self.array.read_page(page) {
                    Ok((tag, t)) => {
                        let bits = self.array.expected_error_bits(page, age);
                        member_us += self.config.retry.read_latency_us(t, bits);
                        self.stats.rebuild_reads += 1;
                        if self.config.retry.is_uncorrectable(bits) {
                            // Double failure within one super word-line.
                            intact = false;
                        } else {
                            acc ^= tag;
                            if self.array.read_oob(page).is_ok_and(|o| o.is_parity()) {
                                saw_parity = true;
                            }
                        }
                    }
                    Err(FlashError::ReadUnwritten { .. } | FlashError::TornWordLine { .. }) => {
                        intact = false;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if member_us > 0.0 {
                self.touch_block(member, member_us);
            }
            critical_us = critical_us.max(member_us);
            fanout_us += member_us;
        }
        // The XOR over a whole stripe is zero, so the survivors' XOR equals
        // the lost page's tag exactly when the stripe is complete. A
        // degraded stripe (dropped member) or one whose parity page is gone
        // misses tags and fails the check.
        if intact && (saw_parity || !self.spor.enabled) && acc == lpn {
            self.stats.rebuilds_ok += 1;
            self.stats.rebuild_ok_us += critical_us;
            self.stats.rebuild_ok_fanout_us += fanout_us;
        } else {
            self.stats.rebuilds_failed += 1;
        }
        self.stats.rebuild_us += critical_us;
        self.stats.busy_us += critical_us;
        Ok(())
    }

    /// ECC check on a GC relocation read. With parity off this is the
    /// historical relocation path bit for bit (raw sense time, no ECC
    /// consult); with parity on the relocation pays the retry ladder and an
    /// uncorrectable source page is rebuilt from its stripe before the
    /// relocation's own restage replaces it. Returns the charged read time.
    fn gc_read_with_parity_check(
        &mut self,
        lpn: u64,
        ppa: PageAddr,
        t_read: f64,
        stripe: &[BlockAddr],
    ) -> Result<f64> {
        if !self.config.parity.enabled()
            || !(self.config.fault.enabled() || self.config.integrity.track)
        {
            return Ok(t_read);
        }
        let bits = self.array.expected_error_bits(ppa, self.data_age_hours(lpn));
        if self.config.retry.is_uncorrectable(bits) {
            self.stats.uncorrectable_reads += 1;
            self.rebuild_page(lpn, ppa, Some(stripe))?;
        }
        Ok(self.config.retry.read_latency_us(t_read, bits))
    }

    /// Reads a batch of logical pages exploiting chip parallelism: reads on
    /// different chips proceed concurrently (the superpage read of Figure 2),
    /// reads on the same chip serialize. Returns the batch completion
    /// latency; unwritten pages are skipped.
    ///
    /// Sequentially written pages stripe page-major across the superblock
    /// members, so reading `chips` consecutive LPNs costs roughly one page
    /// read, not `chips` of them.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] if any page is out of range.
    pub fn read_batch(&mut self, lpns: &[u64]) -> Result<f64> {
        self.ensure_powered()?;
        for &lpn in lpns {
            self.check_lpn(lpn)?;
        }
        let mut per_chip: std::collections::HashMap<(u16, u16), f64> =
            std::collections::HashMap::new();
        let mut transfer = 0.0;
        let mut served = 0u64;
        for &lpn in lpns {
            let staged = self.actives.any_staged(lpn);
            if staged {
                self.touch_controller(self.config.transfer_us);
                transfer += self.config.transfer_us;
                served += 1;
                continue;
            }
            if let Some(ppa) = self.mapping.lookup(lpn) {
                let (tag, t) = self.array.read_page(ppa)?;
                debug_assert_eq!(tag, lpn);
                self.touch_block(ppa.wl.block, t);
                self.touch_controller(self.config.transfer_us);
                let chip = (ppa.wl.block.chip.0, ppa.wl.block.plane.0);
                *per_chip.entry(chip).or_insert(0.0) += t;
                transfer += self.config.transfer_us;
                served += 1;
            }
        }
        let flash_us = per_chip.values().copied().fold(0.0, f64::max);
        let latency = flash_us + transfer;
        self.stats.host_reads += served;
        if served > 0 {
            self.stats.read_latency.record(latency);
        }
        self.stats.busy_us += latency;
        Ok(latency)
    }

    /// Invalidates one logical page.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] for out-of-range pages.
    pub fn trim(&mut self, lpn: u64) -> Result<()> {
        self.ensure_powered()?;
        self.check_lpn(lpn)?;
        self.mapping.unmap(lpn);
        self.actives.discard_staged(lpn);
        if self.spor.enabled {
            // Tombstone: any on-flash copy with a lower sequence number is
            // dead to recovery, even if its superblock is never scanned
            // again before the next checkpoint.
            let seq = self.spor.next_seq();
            self.spor.trim_seqs.insert(lpn, seq);
            self.spor.journal(JournalEntry::Trimmed { lpn, seq });
        }
        self.stats.host_trims += 1;
        Ok(())
    }

    /// Valid data pages currently on flash (excludes staged pages).
    #[must_use]
    pub fn valid_pages(&self) -> usize {
        self.mapping.valid_pages()
    }

    /// Wear statistics: `(min, max)` per-block erase counts so far.
    #[must_use]
    pub fn wear_spread(&self) -> (u32, u32) {
        self.wear.spread()
    }

    /// Whether wear imbalance exceeds the configured threshold.
    #[must_use]
    pub fn needs_wear_leveling(&self) -> bool {
        self.wear.needs_leveling()
    }

    fn class_for(&self, purpose: Purpose) -> SpeedClass {
        speed_class_for(self.config.placement, purpose)
    }

    fn slot(&mut self, purpose: Purpose) -> &mut Option<ActiveSuperblock> {
        self.actives.slot(self.config.placement, purpose)
    }

    /// Ensures an open superblock exists for `purpose`; returns time spent
    /// (allocation erase).
    ///
    /// A member whose erase fails is retired and replaced from its pool
    /// (the superblock is re-assembled); when the pool has nothing left the
    /// superblock starts degraded with fewer members.
    fn ensure_active(&mut self, purpose: Purpose) -> Result<f64> {
        if self.slot(purpose).is_some() {
            return Ok(0.0);
        }
        let class = self.class_for(purpose);
        let members = self.manager.allocate(class).ok_or(FtlError::OutOfSpace)?;
        let mut ok_members = Vec::with_capacity(members.len());
        let mut member_us = Vec::with_capacity(members.len());
        let mut degraded = false;
        for m in members {
            let mut candidate = Some(m);
            loop {
                let Some(addr) = candidate else {
                    degraded = true;
                    break;
                };
                if self.spor.op_fires() {
                    // Power died before this erase: the claimed blocks were
                    // never journaled as a superblock, so recovery simply
                    // finds them free again.
                    return Err(FtlError::PowerLoss);
                }
                match self.array.erase_block(addr) {
                    Ok(t) => {
                        ok_members.push(addr);
                        member_us.push(t);
                        break;
                    }
                    Err(e) if e.is_media_failure() => {
                        self.retire_block(addr);
                        candidate = self.manager.take_from_pool(self.manager.pool_of(addr));
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        if ok_members.is_empty() {
            return Err(FtlError::OutOfSpace);
        }
        if degraded {
            self.stats.degraded_superblocks += 1;
        }
        for (&m, &t) in ok_members.iter().zip(&member_us) {
            self.touch_block(m, t);
        }
        let outcome = MpOutcome::from_members(member_us);
        for &m in &ok_members {
            self.wear.record_erase(m);
        }
        self.stats.superblock_erases += 1;
        self.stats.extra_erase_us += outcome.extra_us;
        match class {
            SpeedClass::Fast => self.stats.superblocks_assembled.0 += 1,
            SpeedClass::Slow => self.stats.superblocks_assembled.1 += 1,
        }
        let sb_id = self.sb_seq;
        self.sb_seq += 1;
        self.spor.journal(JournalEntry::Opened { sb_id, members: ok_members.clone() });
        let geo = self.array.geometry();
        let active = ActiveSuperblock::new(
            ok_members,
            sb_id,
            geo.strings(),
            geo.pwl_layers(),
            geo.pages_per_lwl(),
            self.config.parity.enabled(),
        );
        *self.slot(purpose) = Some(active);
        Ok(outcome.total_us)
    }

    /// Moves a block to the bad-block table.
    fn retire_block(&mut self, addr: BlockAddr) {
        self.manager.retire(addr);
        self.spor.journal(JournalEntry::Retired { addr });
        self.stats.retired_blocks += 1;
    }

    /// Stages one page and programs/seals as needed; returns time spent.
    fn stage_write(&mut self, lpn: u64, purpose: Purpose) -> Result<f64> {
        let mut time = self.ensure_active(purpose)?;
        let mut active = self.slot(purpose).take().expect("ensure_active filled the slot");
        let mut failures = Vec::new();
        if active.stage(lpn) {
            let result = active.program_superwl(&mut self.array, &mut self.spor)?;
            for (&b, &t) in result.member_blocks.iter().zip(&result.outcome.member_us) {
                self.touch_block(b, t);
            }
            self.apply_assignments(&result.assignments);
            self.stats.superwl_programs += 1;
            self.spor.superwls_since_ckpt += 1;
            self.stats.extra_program_us += result.outcome.extra_us;
            time += result.outcome.total_us;
            failures = result.failures;
        }
        // Restore the slot before recovery: the remap writes recurse into
        // stage_write and must find the (possibly degraded) superblock open.
        self.retire_or_restore(active, purpose);
        if !failures.is_empty() {
            time += self.handle_program_failures(failures, purpose)?;
        }
        Ok(time)
    }

    /// Pads and programs any staged pages of `purpose`'s open superblock so
    /// everything buffered becomes durable; returns time spent.
    fn flush_purpose(&mut self, purpose: Purpose) -> Result<f64> {
        let Some(mut active) = self.slot(purpose).take() else {
            return Ok(0.0);
        };
        let mut time = 0.0;
        let mut failures = Vec::new();
        if active.has_staged_pages() {
            active.pad();
            let result = active.program_superwl(&mut self.array, &mut self.spor)?;
            for (&b, &t) in result.member_blocks.iter().zip(&result.outcome.member_us) {
                self.touch_block(b, t);
            }
            self.apply_assignments(&result.assignments);
            self.stats.superwl_programs += 1;
            self.spor.superwls_since_ckpt += 1;
            self.stats.extra_program_us += result.outcome.extra_us;
            time += result.outcome.total_us;
            failures = result.failures;
        }
        self.retire_or_restore(active, purpose);
        if !failures.is_empty() {
            time += self.handle_program_failures(failures, purpose)?;
            // The recovery writes may leave fresh pages staged; flush them
            // too so the durability contract of a flush holds.
            time += self.flush_purpose(purpose)?;
        }
        Ok(time)
    }

    /// Recovers from program-status failures: retires each failed block,
    /// rewrites the payload the failed program carried, and relocates any
    /// live pages stranded on the block's earlier word-lines (still readable
    /// in phase `Failed`). Returns time spent.
    fn handle_program_failures(
        &mut self,
        failures: Vec<FailedMember>,
        purpose: Purpose,
    ) -> Result<f64> {
        let mut time = 0.0;
        // The valid-page iterator borrows the mapping, which stage_write
        // mutates — collect into the reusable scratch buffer first.
        let mut scratch = std::mem::take(&mut self.scratch);
        for f in failures {
            self.retire_block(f.addr);
            self.stats.degraded_superblocks += 1;
            for lpn in f.payload {
                if lpn != FILLER {
                    time += self.stage_write(lpn, purpose)?;
                    self.stats.remapped_writes += 1;
                }
            }
            // Stranded live data: copy out before the block is abandoned.
            // Mapping::map self-cleans the old location when the new copy
            // programs, so no explicit invalidation is needed.
            scratch.clear();
            scratch.extend(self.mapping.valid_in_block(f.addr));
            for &(lpn, ppa) in &scratch {
                let (tag, t_read) = self.array.read_page(ppa)?;
                debug_assert_eq!(tag, lpn);
                self.touch_block(ppa.wl.block, t_read);
                time += t_read;
                time += self.stage_write(lpn, purpose)?;
                self.stats.remapped_writes += 1;
            }
        }
        scratch.clear();
        self.scratch = scratch;
        Ok(time)
    }

    /// Makes every buffered host/GC page durable.
    ///
    /// # Errors
    ///
    /// Propagates flash errors (internal invariant bugs).
    pub fn flush(&mut self) -> Result<f64> {
        self.ensure_powered()?;
        let mut time = 0.0;
        for purpose in PURPOSES {
            time += self.flush_purpose(purpose)?;
        }
        self.maybe_checkpoint()?;
        Ok(time)
    }

    fn apply_assignments(&mut self, assignments: &[(u64, flash_model::PageAddr)]) {
        let clock = self.device_clock_us();
        for &(lpn, ppa) in assignments {
            debug_assert_ne!(lpn, FILLER);
            self.mapping.map(lpn, ppa);
            if let Some(birth) = &mut self.birth_us {
                // A program resets the physical retention clock of the
                // logical page — host write, GC relocation and patrol
                // refresh alike.
                birth[usize::try_from(lpn).expect("lpn fits usize")] = clock;
            }
            if let Some(table) = &mut self.fast_ckpt {
                // Mirror the page's OOB write sequence so the next
                // checkpoint reads it from RAM instead of the spare area.
                // The table exists only when SPOR is on, so the OOB was
                // just programmed alongside the payload.
                let seq =
                    self.array.read_oob(ppa).expect("programmed page carries OOB metadata").seq;
                table[usize::try_from(lpn).expect("lpn fits usize")] = seq;
            }
        }
    }

    fn retire_or_restore(&mut self, active: ActiveSuperblock, purpose: Purpose) {
        if active.members.is_empty() {
            // Every member failed: there is nothing to seal or write into.
            // The staged payload travelled out via the failure report, so
            // dropping the shell loses nothing; the next write re-assembles.
            return;
        }
        if active.is_full() {
            let members = active.members.clone();
            let sb_id = active.sb_id();
            let summaries = active.finish();
            if self.spor.enabled {
                // Persist the gathered QSTR-MED stats to the capacitor-
                // backed region: after a crash they restore the learned
                // summaries without re-characterizing any block.
                let record = SealRecord {
                    sb_id,
                    members: members.clone(),
                    summaries: summaries
                        .iter()
                        .map(|s| BlockSummaryRecord {
                            addr: s.addr,
                            pgm_sum_us: s.pgm_sum_us,
                            eigen_bits: (0..s.eigen.len()).map(|i| s.eigen.get(i)).collect(),
                        })
                        .collect(),
                };
                self.array.persist_seal_record(record);
            }
            for summary in summaries {
                self.manager.learn(summary);
            }
            self.sealed.push(SealedSuperblock {
                sb_id,
                members,
                sealed_at: self.seal_seq,
                class: Some(self.class_for(purpose)),
            });
            self.seal_seq += 1;
        } else {
            *self.slot(purpose) = Some(active);
        }
    }

    /// Runs garbage collection if free space is low; returns time spent,
    /// which the caller charges to the triggering command as its GC stall.
    fn maybe_gc(&mut self, class: QosClass) -> Result<f64> {
        match self.config.gc_budget {
            GcBudget::Unbounded => {
                if self.manager.assemblable() >= self.config.gc_low_watermark {
                    return Ok(0.0);
                }
                let mut time = 0.0;
                while self.manager.assemblable() < self.config.gc_high_watermark {
                    match self.gc_once()? {
                        Some(t) => time += t,
                        None => break,
                    }
                }
                // The caller (the triggering write) folds this time into its
                // own latency, which is what updates busy_us — no double
                // counting here.
                Ok(time)
            }
            GcBudget::Sliced { slice_us } => {
                let mut time = 0.0;
                if self.gc_backlog() {
                    // Collection pressure maps onto the QoS ladder:
                    // background commands pay a slice on any backlog,
                    // standard ones only once free space dips under the low
                    // watermark, latency-critical ones never (beyond the
                    // emergency below).
                    let pays = match class {
                        QosClass::Background => true,
                        QosClass::Standard => {
                            self.manager.assemblable() < self.config.gc_low_watermark
                        }
                        QosClass::LatencyCritical => false,
                    };
                    // A per-tenant SLO allowance caps the budgeted slice:
                    // an exhausted window (`allowance == 0`) skips ladder
                    // payment entirely, a partial one shortens the slice.
                    // The default `INFINITY` allowance reduces both
                    // expressions to the plain ladder, bit for bit.
                    if pays && self.gc_allowance_us > 0.0 {
                        time += self.gc_slice(slice_us.min(self.gc_allowance_us))?;
                    }
                }
                if self.manager.assemblable() <= 1 {
                    // Pool nearly empty (GC staging itself may have taken a
                    // superblock): every class — latency-critical included —
                    // reclaims toward two, because relocation needs one
                    // assemblable superblock in reserve whenever the GC slot
                    // seals mid-victim, and the triggering write consumes
                    // another. No further: the budgeted ladder resumes from
                    // there instead of running a multi-victim burst to the
                    // high watermark.
                    time += self.gc_slice_toward(f64::INFINITY, 2)?;
                }
                Ok(time)
            }
        }
    }

    /// Whether sliced collection wants a slice: free space under the low
    /// watermark, or a parked victim still short of the high one.
    fn gc_backlog(&self) -> bool {
        let assemblable = self.manager.assemblable();
        assemblable < self.config.gc_low_watermark
            || (self.gc_job.is_some() && assemblable < self.config.gc_high_watermark)
    }

    /// Whether the device will run collection or overdue-patrol work on
    /// upcoming writes (sliced-GC backlog, or patrol starved past one full
    /// interval — the unbounded collector never reports pending). Frontends
    /// use this to drain latency-critical queues before granting
    /// lower-priority commands that would carry a slice.
    #[must_use]
    pub fn gc_slice_pending(&self) -> bool {
        (matches!(self.config.gc_budget, GcBudget::Sliced { .. }) && self.gc_backlog())
            || self.patrol_payment_pending()
    }

    /// Caps the budgeted collection work the *next* commands may be charged
    /// ([`GcBudget::Sliced`] only): each ladder slice runs for at most
    /// `min(slice_us, allowance)` µs, and an allowance of `0` skips ladder
    /// payment outright. Frontends enforcing per-tenant GC SLOs call this
    /// before each dispatch with the tenant's remaining debt budget for the
    /// current window. Negative and NaN values clamp to `0` (no slice);
    /// the default is `INFINITY` (uncapped — identical to pre-SLO
    /// behavior). The emergency floor (pool nearly empty) is exempt: media
    /// safety outranks an SLO.
    pub fn set_gc_allowance(&mut self, allowance_us: f64) {
        self.gc_allowance_us = if allowance_us.is_nan() { 0.0 } else { allowance_us.max(0.0) };
    }

    /// The device clock patrol scheduling and data ages run on: total
    /// foreground busy time plus background (idle-gap) GC and patrol time,
    /// plus idle wall time credited by timed replays (retention charge
    /// leaks whether or not the device is working, so an idle device still
    /// ages its data — and background scrubbing merely *uses* idle time
    /// rather than extending the clock). Monotone, simulated (never
    /// host wall-clock), and accumulated identically by the stepper and
    /// batched engines, so ages — and therefore every integrity decision —
    /// replay bit-identically.
    pub fn device_clock_us(&self) -> f64 {
        self.stats.busy_us + self.stats.idle_gc_us + self.stats.patrol_us + self.idle_wall_us
    }

    /// Data age of `lpn` in retention hours: device time since its last
    /// program, scaled by the configured aging acceleration. `0.0` whenever
    /// integrity tracking is off.
    fn data_age_hours(&self, lpn: u64) -> f64 {
        match &self.birth_us {
            Some(birth) => {
                let born = birth[usize::try_from(lpn).expect("lpn fits usize")];
                (self.device_clock_us() - born).max(0.0)
                    * self.config.integrity.retention_hours_per_us
            }
            None => 0.0,
        }
    }

    /// Whether patrol wants a slice right now: a pass is mid-flight, or the
    /// next one has come due on the device clock.
    fn patrol_due(&self) -> bool {
        matches!(self.config.integrity.patrol, PatrolConfig::On { .. })
            && (self.patrol_job.is_some() || self.device_clock_us() >= self.patrol_due_at)
    }

    /// Whether patrol is starved badly enough (a full interval past due)
    /// that foreground commands start paying for it down the QoS ladder.
    fn patrol_payment_pending(&self) -> bool {
        match self.config.integrity.patrol {
            PatrolConfig::On { interval_us, .. } => {
                self.device_clock_us() >= self.patrol_due_at + interval_us
            }
            PatrolConfig::Off => false,
        }
    }

    /// Runs overdue patrol work on a foreground command's time, down the
    /// same QoS ladder as sliced GC: background commands pay once patrol is
    /// one interval past due, standard ones at two intervals, and
    /// latency-critical ones never. The per-tenant GC allowance caps the
    /// slice exactly as it caps GC slices; the caller folds the returned
    /// time into the command's GC stall so SLO ledgers see it.
    fn maybe_patrol(&mut self, class: QosClass) -> Result<f64> {
        let PatrolConfig::On { interval_us, slice_us, .. } = self.config.integrity.patrol else {
            return Ok(0.0);
        };
        let pays = match class {
            QosClass::Background => self.patrol_payment_pending(),
            QosClass::Standard => self.device_clock_us() >= self.patrol_due_at + 2.0 * interval_us,
            QosClass::LatencyCritical => false,
        };
        if pays && self.gc_allowance_us > 0.0 {
            self.patrol_slice(slice_us.min(self.gc_allowance_us))
        } else {
            Ok(0.0)
        }
    }

    /// Runs up to `budget_us` of patrol scanning — further capped by the
    /// configured `slice_us`, which bounds patrol work per opportunity no
    /// matter how long the idle gap is (scrubbing is a trickle by design:
    /// it must never monopolize idle time other background work, or a
    /// power-conscious host, may want). Parks the in-progress pass when the
    /// budget runs out. Yields only between super word-line steps (the same
    /// quantum as a GC slice), so a slice may overrun by one word-line
    /// scan.
    fn patrol_slice(&mut self, budget_us: f64) -> Result<f64> {
        let budget = match self.config.integrity.patrol {
            PatrolConfig::On { slice_us, .. } => budget_us.min(slice_us),
            PatrolConfig::Off => return Ok(0.0),
        };
        let mut time = 0.0;
        while self.patrol_due() && time < budget {
            time += self.patrol_step()?;
        }
        Ok(time)
    }

    /// Sealed-superblock scan order for a new patrol pass.
    fn patrol_order(&self) -> Vec<u64> {
        match self.config.integrity.patrol {
            PatrolConfig::On { order: PatrolOrder::SlowPoolFirst, .. } => {
                // Slow pool first (GC/background data — the cold tail whose
                // retention ages worst on the worst media), unknown-class
                // superblocks next, fast ones last; oldest sealed first
                // within each group.
                let mut keyed: Vec<(u8, u64, u64)> = self
                    .sealed
                    .iter()
                    .map(|s| {
                        let rank = match s.class {
                            Some(SpeedClass::Slow) => 0u8,
                            None => 1,
                            Some(SpeedClass::Fast) => 2,
                        };
                        (rank, s.sealed_at, s.sb_id)
                    })
                    .collect();
                keyed.sort_unstable();
                keyed.into_iter().map(|(_, _, id)| id).collect()
            }
            _ => self.sealed.iter().map(|s| s.sb_id).collect(),
        }
    }

    /// One word-line-granularity step of the patrol pass: scans every live
    /// page of the next super word-line, refreshing those whose projected
    /// error bits crossed the refresh threshold. Completing the pass
    /// flushes the staged refreshes.
    ///
    /// The interval timer re-arms when a pass *starts*, and a pass still
    /// in flight when the next interval comes due is abandoned and
    /// restarted from the front of a freshly sorted order. `interval_us`
    /// is therefore a cadence, not a gap — and when idle bandwidth cannot
    /// cover the whole device per interval, the scan order decides which
    /// pages the scarce budget protects: the tail of the order starves.
    /// Abandonment is safe — staged refreshes stay staged (they flush as
    /// word lines fill or at the next completed pass) and a scanned-twice
    /// page merely costs a redundant read.
    fn patrol_step(&mut self) -> Result<f64> {
        let PatrolConfig::On { interval_us, refresh_fraction, .. } = self.config.integrity.patrol
        else {
            return Ok(0.0);
        };
        let mut job = match self.patrol_job.take() {
            Some(job) if self.device_clock_us() < self.patrol_due_at => job,
            _ => {
                self.patrol_due_at = self.device_clock_us() + interval_us;
                PatrolJob::new(self.patrol_order())
            }
        };
        let refresh_at = refresh_fraction * self.config.retry.uncorrectable_limit();
        loop {
            let Some(&sb_id) = job.order.get(job.sb_cursor) else {
                // Pass complete: make the staged refreshes durable so the
                // rotting copies actually stop being read.
                let t = self.flush_purpose(Purpose::Gc)?;
                self.stats.patrol_passes += 1;
                return Ok(t);
            };
            // The superblock may have been collected while the pass was
            // parked; its id then no longer resolves and the cursor skips.
            let Some(sb) = self.sealed.iter().find(|s| s.sb_id == sb_id) else {
                job.sb_cursor += 1;
                job.lwl_cursor = 0;
                continue;
            };
            let geo = self.array.geometry();
            if job.lwl_cursor >= geo.lwls_per_block() {
                job.sb_cursor += 1;
                job.lwl_cursor = 0;
                continue;
            }
            let lwl = LwlId(job.lwl_cursor);
            job.lwl_cursor += 1;
            let members = sb.members.clone();
            let cell = geo.cell();
            let pages_per_lwl = geo.pages_per_lwl();
            let mut time = 0.0;
            // Parity verification rides the existing scan for free: the OOB
            // reads below already visit every page of the stripe, so the
            // stripe XOR accumulates as a side effect and only the parity
            // payload itself costs one extra read. No second cursor.
            let parity_on = self.config.parity.enabled();
            let mut lwl_xor = 0u64;
            let mut parity_page: Option<PageAddr> = None;
            let mut live_pages = 0u64;
            let mut unrefreshed_live: Vec<u64> = Vec::new();
            for member in members {
                for k in 0..pages_per_lwl {
                    let pt = PageType::from_index(cell, k).expect("k < pages_per_lwl");
                    let page = member.wl(lwl).page(pt);
                    let oob = match self.array.read_oob(page) {
                        Ok(oob) => oob,
                        Err(FlashError::ReadUnwritten { .. } | FlashError::TornWordLine { .. }) => {
                            continue;
                        }
                        Err(e) => return Err(e.into()),
                    };
                    if parity_on {
                        if oob.is_parity() {
                            parity_page = Some(page);
                            continue;
                        }
                        // Every data/filler tag — live or stale — is part of
                        // the stripe XOR (payload tag == OOB lpn for both).
                        lwl_xor ^= oob.lpn;
                    }
                    if oob.is_filler() || self.mapping.lookup(oob.lpn) != Some(page) {
                        // Filler or a stale copy: nothing to protect.
                        continue;
                    }
                    let (tag, t_read) = self.array.read_page(page)?;
                    debug_assert_eq!(tag, oob.lpn);
                    self.touch_block(page.wl.block, t_read);
                    time += t_read;
                    self.stats.patrol_scanned_pages += 1;
                    live_pages += 1;
                    let bits = self.array.expected_error_bits(page, self.data_age_hours(oob.lpn));
                    if bits >= refresh_at {
                        if self.manager.assemblable() <= 1 {
                            // Same emergency floor as the read path: a
                            // refresh-heavy pass through aged media must
                            // not outrun collection and drain the pool.
                            time += self.gc_slice_toward(f64::INFINITY, 2)?;
                        }
                        time += self.stage_write(oob.lpn, Purpose::Gc)?;
                        self.stats.patrol_refreshes += 1;
                    } else if parity_on {
                        unrefreshed_live.push(oob.lpn);
                    }
                }
            }
            if parity_on && live_pages > 0 {
                let mut mismatch = false;
                match parity_page {
                    Some(page) => {
                        let (ptag, t_read) = self.array.read_page(page)?;
                        self.touch_block(page.wl.block, t_read);
                        time += t_read;
                        if ptag == lwl_xor {
                            self.stats.parity_verified += 1;
                        } else {
                            mismatch = true;
                        }
                    }
                    // Live data with no parity page (the parity-carrying
                    // member was dropped): the stripe is unprotected.
                    None => mismatch = true,
                }
                if mismatch {
                    // The stripe can no longer rebuild a lost page: feed its
                    // live pages through the same reactive-refresh path an
                    // uncorrectable read takes, so fresh protected copies
                    // replace the exposed ones.
                    self.stats.parity_mismatch += 1;
                    for lpn in unrefreshed_live {
                        if self.manager.assemblable() <= 1 {
                            time += self.gc_slice_toward(f64::INFINITY, 2)?;
                        }
                        time += self.stage_write(lpn, Purpose::Gc)?;
                        self.stats.refresh_relocations += 1;
                    }
                }
            }
            self.patrol_job = Some(job);
            return Ok(time);
        }
    }

    /// Runs up to `budget_us` of relocation work toward the high watermark,
    /// parking the in-progress victim when the budget runs out. Yields only
    /// between word-line steps, so a slice may overrun by one program.
    fn gc_slice(&mut self, budget_us: f64) -> Result<f64> {
        self.gc_slice_toward(budget_us, self.config.gc_high_watermark)
    }

    /// [`Ssd::gc_slice`] with an explicit free-space target (the emergency
    /// path reclaims toward 1, not the high watermark).
    fn gc_slice_toward(&mut self, budget_us: f64, target: usize) -> Result<f64> {
        let mut time = 0.0;
        let mut yielded = false;
        while self.manager.assemblable() < target {
            if time >= budget_us {
                yielded = self.gc_job.is_some();
                break;
            }
            if self.gc_job.is_none() && !self.gc_start_job() {
                break;
            }
            time += self.gc_job_step()?;
        }
        if time > 0.0 {
            self.stats.gc_slices += 1;
            self.stats.gc_slice_us.record(time);
        }
        if yielded {
            self.stats.gc_yield_count += 1;
        }
        Ok(time)
    }

    /// Pages per superblock that can hold host data: all of them, minus the
    /// one-parity-page-per-super-word-line reserve when parity is on.
    /// Victim scoring normalizes valid-page counts by this, so a full
    /// parity superblock still scores as full.
    fn data_pages_per_superblock(&self) -> usize {
        let all = self.geometry_info().pages_per_superblock as usize;
        if self.config.parity.enabled() {
            all - self.array.geometry().lwls_per_block() as usize
        } else {
            all
        }
    }

    /// Selects a victim and parks it as the resumable job. The victim stays
    /// in the sealed list — and therefore in every checkpoint — until the
    /// final flush + free, so a crash mid-collection recovers it under its
    /// old identity. Returns false when nothing is sealed.
    fn gc_start_job(&mut self) -> bool {
        let pages_per_sb = self.data_pages_per_superblock();
        let Some(victim_idx) = select_victim(
            self.config.gc_policy,
            &self.sealed,
            &self.mapping,
            pages_per_sb,
            self.seal_seq,
        ) else {
            return false;
        };
        let victim = &self.sealed[victim_idx];
        self.gc_job = Some(GcJob::new(victim.sb_id, victim.members.clone()));
        true
    }

    /// One word-line-granularity step of the parked job: relocate the next
    /// valid page, or — once every member has drained — flush the staged
    /// copies and free the victim. A step never splits a program, so it is
    /// the preemption quantum.
    fn gc_job_step(&mut self) -> Result<f64> {
        let mut job = self.gc_job.take().expect("caller started a job");
        loop {
            if let Some(&(lpn, ppa)) = job.pending.get(job.pending_cursor) {
                job.pending_cursor += 1;
                // The host may have overwritten or trimmed the page while
                // the job was parked; the mapping is the ground truth.
                if self.mapping.lookup(lpn) != Some(ppa) {
                    continue;
                }
                let (tag, t_read) = self.array.read_page(ppa)?;
                debug_assert_eq!(tag, lpn);
                let t_read = self.gc_read_with_parity_check(lpn, ppa, t_read, &job.members)?;
                self.touch_block(ppa.wl.block, t_read);
                let mut t = t_read;
                t += self.stage_write(lpn, Purpose::Gc)?;
                self.stats.gc_relocations += 1;
                job.staged.insert(lpn);
                self.gc_job = Some(job);
                return Ok(t);
            }
            if let Some(&member) = job.members.get(job.member_cursor) {
                job.member_cursor += 1;
                // Staged LPNs keep mapping into the victim until their GC
                // copy programs; filtering them out of the re-collection is
                // what keeps resumption from relocating a page twice.
                job.pending.clear();
                job.pending_cursor = 0;
                let staged = &job.staged;
                job.pending.extend(
                    self.mapping.valid_in_block(member).filter(|(lpn, _)| !staged.contains(lpn)),
                );
                continue;
            }
            // All members drained: make the staged copies durable, then free
            // the victim and retire its identity. Journaled only now — had
            // power died earlier, the victim still held its data and is
            // still recovered under its old identity.
            let t = self.flush_purpose(Purpose::Gc)?;
            for &member in &job.members {
                self.mapping.invalidate_block(member);
                self.manager.free(member, None);
            }
            let idx = self
                .sealed
                .iter()
                .position(|s| s.sb_id == job.sb_id)
                .expect("victim stays sealed until freed");
            self.sealed.swap_remove(idx);
            self.spor.journal(JournalEntry::Freed { sb_id: job.sb_id });
            self.stats.gc_runs += 1;
            return Ok(t);
        }
    }

    /// Collects one victim superblock; `None` when no sealed victim exists.
    fn gc_once(&mut self) -> Result<Option<f64>> {
        let pages_per_sb = self.data_pages_per_superblock();
        let Some(victim_idx) = select_victim(
            self.config.gc_policy,
            &self.sealed,
            &self.mapping,
            pages_per_sb,
            self.seal_seq,
        ) else {
            return Ok(None);
        };
        let victim = self.sealed.swap_remove(victim_idx);
        let mut time = 0.0;
        // The valid-page iterator borrows the mapping, which stage_write
        // mutates — collect into the reusable scratch buffer first.
        let mut scratch = std::mem::take(&mut self.scratch);
        for &member in &victim.members {
            scratch.clear();
            scratch.extend(self.mapping.valid_in_block(member));
            for &(lpn, ppa) in &scratch {
                let (tag, t_read) = self.array.read_page(ppa)?;
                debug_assert_eq!(tag, lpn);
                let t_read = self.gc_read_with_parity_check(lpn, ppa, t_read, &victim.members)?;
                self.touch_block(ppa.wl.block, t_read);
                time += t_read;
                time += self.stage_write(lpn, Purpose::Gc)?;
                self.stats.gc_relocations += 1;
            }
        }
        scratch.clear();
        self.scratch = scratch;
        // Everything staged must be durable before the old copies vanish.
        time += self.flush_purpose(Purpose::Gc)?;
        for &member in &victim.members {
            self.mapping.invalidate_block(member);
            self.manager.free(member, None);
        }
        // Journaled only now: had power died mid-relocation, the victim
        // would still hold its data and must still be recovered under its
        // old identity.
        self.spor.journal(JournalEntry::Freed { sb_id: victim.sb_id });
        self.stats.gc_runs += 1;
        Ok(Some(time))
    }

    /// Takes a checkpoint when the configured interval of super word-line
    /// programs has elapsed. Called at the end of the public operations, so
    /// every open superblock is parked in its slot.
    fn maybe_checkpoint(&mut self) -> Result<()> {
        if !self.spor.enabled || self.spor.crashed {
            return Ok(());
        }
        let interval = self.config.spor.checkpoint_interval;
        if interval == 0 || self.spor.superwls_since_ckpt < interval {
            return Ok(());
        }
        self.take_checkpoint()
    }

    /// Snapshots the FTL RAM state into the capacitor-backed checkpoint and
    /// clears the journal. Costs zero simulated time and zero RNG draws, so
    /// checkpointing never perturbs latency results.
    fn take_checkpoint(&mut self) -> Result<()> {
        let mut entries = Vec::new();
        for lpn in 0..self.logical_pages {
            if let Some(ppa) = self.mapping.lookup(lpn) {
                // The batched engine's sequence table mirrors the OOB at
                // apply_assignments time; reading it back here produces the
                // exact entries the OOB scan would.
                let seq = match &self.fast_ckpt {
                    Some(table) => table[usize::try_from(lpn).expect("lpn fits usize")],
                    None => self.array.read_oob(ppa)?.seq,
                };
                entries.push((lpn, seq, Some(ppa)));
            } else if let Some(&seq) = self.spor.trim_seqs.get(&lpn) {
                entries.push((lpn, seq, None));
            }
        }
        let sealed =
            self.sealed.iter().map(|s| (s.sb_id, s.members.clone(), s.sealed_at)).collect();
        let mut actives = Vec::new();
        for a in self.actives.iter() {
            actives.push((a.sb_id(), a.members.clone()));
        }
        let mut retired = self.spor.checkpoint.retired.clone();
        for e in &self.spor.journal {
            if let JournalEntry::Retired { addr } = e {
                retired.push(*addr);
            }
        }
        // Persist the seq → write-time table for the live entries so
        // recovery can rebuild data ages from its OOB scan. Bounded by the
        // live-entry count: stale sequences fall out at every checkpoint.
        let mut write_times = HashMap::new();
        if let Some(birth) = &self.birth_us {
            for &(lpn, seq, loc) in &entries {
                if loc.is_some() {
                    write_times.insert(seq, birth[usize::try_from(lpn).expect("lpn fits usize")]);
                }
            }
        }
        self.spor.checkpoint = Checkpoint {
            entries,
            sealed,
            actives,
            write_seq: self.spor.write_seq,
            sb_seq: self.sb_seq,
            seal_seq: self.seal_seq,
            retired,
            write_times,
        };
        self.spor.journal.clear();
        self.spor.superwls_since_ckpt = 0;
        Ok(())
    }

    /// Rebuilds all RAM state after a sudden power loss: replays the
    /// journal over the last checkpoint, scans the OOB metadata of every
    /// superblock dirtied since that checkpoint (highest write sequence
    /// wins; pages of a torn super word-line are discarded), restores the
    /// gathered QSTR-MED summaries from the persisted seal records, and
    /// re-seeds wear tracking from the media's P/E counters.
    ///
    /// The durability contract: a write is acknowledged durable only once
    /// its super word-line program completes, so the recovered mapping is
    /// exactly the RAM mapping at the instant of the crash — staged pages
    /// and torn word-lines (never acknowledged) are not recovered, and no
    /// phantom mappings appear.
    ///
    /// Also works on a healthy device (simulating a clean power cycle that
    /// lost RAM but flushed nothing).
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] when SPOR is disabled;
    /// propagates flash errors (internal invariant bugs).
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        if !self.spor.enabled {
            return Err(FtlError::InvalidConfig {
                reason: "recovery requires spor.enabled".to_string(),
            });
        }
        let geo = self.array.geometry().clone();
        // RAM died with the power: open superblocks, their staging buffers
        // and gatherers are gone. A parked GC job loses only its cursors —
        // the victim was never freed, so it comes back sealed and
        // re-selectable with its remaining valid pages intact. Likewise a
        // parked patrol pass: its cursors drop and the pass restarts, but
        // no mapping state ever depended on them.
        self.actives.clear();
        self.gc_job = None;
        self.patrol_job = None;
        // 1. Replay the journal over the checkpoint's block sets.
        let mut retired = self.spor.checkpoint.retired.clone();
        let mut freed: HashSet<u64> = HashSet::new();
        let mut dirty: Vec<(u64, Vec<BlockAddr>)> = self.spor.checkpoint.actives.clone();
        self.sb_seq = self.spor.checkpoint.sb_seq;
        for e in &self.spor.journal {
            match e {
                JournalEntry::Opened { sb_id, members } => {
                    self.sb_seq = self.sb_seq.max(sb_id + 1);
                    dirty.push((*sb_id, members.clone()));
                }
                JournalEntry::Freed { sb_id } => {
                    freed.insert(*sb_id);
                }
                JournalEntry::Retired { addr } => retired.push(*addr),
                JournalEntry::Trimmed { .. } => {}
            }
        }
        dirty.retain(|(id, _)| !freed.contains(id));
        let mut sealed: Vec<SealedSuperblock> = self
            .spor
            .checkpoint
            .sealed
            .iter()
            .filter(|(id, _, _)| !freed.contains(id))
            .map(|(id, members, at)| SealedSuperblock {
                sb_id: *id,
                members: members.clone(),
                sealed_at: *at,
                // The checkpoint does not persist the class; PV-aware
                // patrol ordering treats recovered superblocks as unknown.
                class: None,
            })
            .collect();
        // 2. Latest-wins merge, seeded with the checkpoint entries and the
        // journaled trim tombstones.
        let mut best: HashMap<u64, (u64, Option<PageAddr>)> =
            self.spor.checkpoint.entries.iter().map(|&(lpn, seq, loc)| (lpn, (seq, loc))).collect();
        let mut max_seq = self.spor.checkpoint.write_seq.saturating_sub(1);
        for e in &self.spor.journal {
            if let JournalEntry::Trimmed { lpn, seq } = *e {
                max_seq = max_seq.max(seq);
                let slot = best.entry(lpn).or_insert((0, None));
                if seq > slot.0 {
                    *slot = (seq, None);
                }
            }
        }
        // 3. OOB scan of the dirty superblocks — O(written since the last
        // checkpoint), not O(device).
        let mut report = RecoveryReport {
            scanned_pages: 0,
            recovered_mappings: 0,
            torn_writes_discarded: 0,
            scan_us: 0.0,
        };
        let cell = geo.cell();
        for (sb_id, members) in &dirty {
            // The super word-line that was mid-program at power loss: the
            // interrupted member reports it torn; members whose individual
            // program completed hold readable pages on that word-line which
            // must be discarded — their host writes were never acknowledged.
            let mut torn_wl: Option<LwlId> = None;
            for &m in members {
                if let Some(t) = self.array.torn_lwl(m)? {
                    torn_wl = Some(t);
                }
            }
            for &member in members {
                'lwls: for lwl in 0..geo.lwls_per_block() {
                    let lwl = LwlId(lwl);
                    for k in 0..geo.pages_per_lwl() {
                        let pt = PageType::from_index(cell, k).expect("k < pages_per_lwl");
                        let page = member.wl(lwl).page(pt);
                        let oob = match self.array.read_oob(page) {
                            Ok(oob) => oob,
                            Err(
                                FlashError::ReadUnwritten { .. } | FlashError::TornWordLine { .. },
                            ) => break 'lwls,
                            Err(e) => return Err(e.into()),
                        };
                        let (_, t_read) = self.array.read_page(page)?;
                        report.scanned_pages += 1;
                        report.scan_us += t_read;
                        if !oob.is_mapped() {
                            // Filler padding and parity pages never enter the
                            // L2P table — a parity payload is an XOR tag that
                            // can collide with any real LPN.
                            continue;
                        }
                        max_seq = max_seq.max(oob.seq);
                        if torn_wl == Some(lwl) {
                            report.torn_writes_discarded += 1;
                            continue;
                        }
                        debug_assert_eq!(oob.sb_id, *sb_id, "OOB names its superblock");
                        let slot = best.entry(oob.lpn).or_insert((0, None));
                        if oob.seq > slot.0 {
                            *slot = (oob.seq, Some(page));
                        }
                    }
                }
            }
        }
        // 4. Rebuild the mapping from the merge winners (sorted by LPN so
        // the rebuild is deterministic end to end).
        for lpn in 0..self.logical_pages {
            self.mapping.unmap(lpn);
        }
        self.spor.trim_seqs.clear();
        let mut winners: Vec<(u64, (u64, Option<PageAddr>))> = best.into_iter().collect();
        winners.sort_unstable_by_key(|&(lpn, _)| lpn);
        for (lpn, (seq, loc)) in winners {
            match loc {
                Some(ppa) => {
                    self.mapping.map(lpn, ppa);
                    if let Some(birth) = &mut self.birth_us {
                        // Rebuild the page's age from the checkpointed
                        // seq → time table. A sequence written after that
                        // checkpoint is missing and conservatively reports
                        // age since power-on — patrol re-examines it early
                        // rather than never.
                        birth[usize::try_from(lpn).expect("lpn fits usize")] =
                            self.spor.checkpoint.write_times.get(&seq).copied().unwrap_or(0.0);
                    }
                    report.recovered_mappings += 1;
                }
                None if seq > 0 => {
                    self.spor.trim_seqs.insert(lpn, seq);
                }
                None => {}
            }
        }
        // 5. Close every dirty superblock into the sealed list: partially
        // written ones take no further programs (their write pointers are
        // mid-block and the staging context is lost), so GC reclaims them.
        self.seal_seq = self.spor.checkpoint.seal_seq;
        for (sb_id, members) in &dirty {
            sealed.push(SealedSuperblock {
                sb_id: *sb_id,
                members: members.clone(),
                sealed_at: self.seal_seq,
                class: None,
            });
            self.seal_seq += 1;
        }
        self.sealed = sealed;
        // 6. Rebuild the block manager: bad blocks out, live members
        // claimed, then every persisted seal record restores the gathered
        // summaries — QSTR-MED resumes without re-characterizing anything.
        let mut manager = BlockManager::new(&geo, self.config.scheme, self.seed ^ 0x5eed);
        for &addr in &retired {
            manager.retire(addr);
        }
        for sb in &self.sealed {
            for &m in &sb.members {
                manager.claim(m);
            }
        }
        if self.config.precharacterize {
            let pool =
                Characterizer::new(&self.config.flash).snapshot(self.array.latency_model(), 0);
            let strings = geo.strings();
            for profile in pool.iter() {
                manager.learn(profile.summary(strings));
            }
        }
        for record in self.array.seal_records() {
            for s in &record.summaries {
                manager.learn(BlockSummary {
                    addr: s.addr,
                    pgm_sum_us: s.pgm_sum_us,
                    eigen: EigenSequence::from_bits(s.eigen_bits.iter().copied()),
                });
            }
        }
        manager.promote_known();
        self.manager = manager;
        // 7. Wear: the media's P/E counters are the ground truth.
        self.wear = WearTracker::new(self.config.wear_threshold);
        for addr in geo.blocks() {
            self.wear.set_erases(addr, self.array.pe_cycles(addr)?);
        }
        // Recovery rebuilt the mapping without going through
        // apply_assignments, so the batched engine's sequence table must be
        // refreshed from the recovered pages' OOB before the checkpoint
        // below trusts it.
        if self.fast_ckpt.is_some() {
            let mut table = self.fast_ckpt.take().expect("checked is_some");
            for lpn in 0..self.logical_pages {
                if let Some(ppa) = self.mapping.lookup(lpn) {
                    table[usize::try_from(lpn).expect("lpn fits usize")] =
                        self.array.read_oob(ppa)?.seq;
                }
            }
            self.fast_ckpt = Some(table);
        }
        // 8. Back to life: sequences continue past everything ever durably
        // assigned, and a fresh checkpoint bounds the next recovery's scan.
        self.spor.crashed = false;
        self.spor.journal.clear();
        self.spor.superwls_since_ckpt = 0;
        self.spor.write_seq = max_seq + 1;
        self.spor.checkpoint.retired = retired;
        self.stats.recovery_scan_pages += report.scanned_pages;
        self.stats.recovered_mappings += report.recovered_mappings;
        self.stats.torn_writes_discarded += report.torn_writes_discarded;
        self.stats.recovery_time_us += report.scan_us;
        self.take_checkpoint()?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrganizationScheme;
    use crate::workload::Workload;

    fn ssd(scheme: OrganizationScheme) -> Ssd {
        let mut config = FtlConfig::small_test();
        config.scheme = scheme;
        Ssd::new(config, 11).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut dev = ssd(OrganizationScheme::Random);
        let w = dev.write(5).unwrap();
        assert!(w > 0.0);
        let r = dev.read(5).unwrap().unwrap();
        assert!(r > 0.0);
        assert_eq!(dev.read(6).unwrap(), None, "unwritten page");
    }

    #[test]
    fn read_after_flush_hits_flash() {
        let mut dev = ssd(OrganizationScheme::Random);
        dev.write(5).unwrap();
        dev.flush().unwrap();
        let r = dev.read(5).unwrap().unwrap();
        // Flash read latency is much larger than the transfer time.
        assert!(r > dev.config.transfer_us, "latency {r}");
        assert_eq!(dev.valid_pages(), 1);
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut dev = ssd(OrganizationScheme::Random);
        let cap = dev.geometry_info().logical_pages;
        assert!(matches!(dev.write(cap), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(dev.read(cap), Err(FtlError::LpnOutOfRange { .. })));
    }

    #[test]
    fn trim_unmaps() {
        let mut dev = ssd(OrganizationScheme::Random);
        dev.write(5).unwrap();
        dev.flush().unwrap();
        dev.trim(5).unwrap();
        assert_eq!(dev.read(5).unwrap(), None);
        assert_eq!(dev.valid_pages(), 0);
    }

    #[test]
    fn overwrite_keeps_one_valid_copy() {
        let mut dev = ssd(OrganizationScheme::Random);
        for _ in 0..5 {
            dev.write(9).unwrap();
        }
        dev.flush().unwrap();
        assert_eq!(dev.valid_pages(), 1);
        assert!(dev.read(9).unwrap().is_some());
    }

    #[test]
    fn sustained_writes_trigger_gc_and_survive() {
        for scheme in [
            OrganizationScheme::Random,
            OrganizationScheme::Sequential,
            OrganizationScheme::QstrMed { candidates: 4 },
        ] {
            let mut dev = ssd(scheme);
            let info = dev.geometry_info();
            // Write 3x the logical space over half the LPNs.
            let reqs =
                Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
            dev.run(&reqs).unwrap();
            assert!(dev.stats().gc_runs > 0, "{scheme:?} should have collected garbage");
            assert!(dev.stats().waf() > 1.0);
            // All recently written pages still readable.
            for lpn in 0..(info.logical_pages / 2).min(50) {
                let _ = dev.read(lpn).unwrap();
            }
        }
    }

    #[test]
    fn qstr_scheme_performs_distance_checks() {
        let mut dev = ssd(OrganizationScheme::QstrMed { candidates: 4 });
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 2) as usize, 3);
        dev.run(&reqs).unwrap();
        assert!(dev.distance_checks() > 0);
    }

    #[test]
    fn qstr_reduces_extra_program_latency_vs_random() {
        let run = |scheme| {
            let mut dev = ssd(scheme);
            let info = dev.geometry_info();
            let reqs =
                Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
            dev.run(&reqs).unwrap();
            dev.stats().extra_program_per_op_us()
        };
        let random = run(OrganizationScheme::Random);
        let qstr = run(OrganizationScheme::QstrMed { candidates: 4 });
        assert!(qstr < random, "QSTR-MED {qstr} vs random {random}");
    }

    #[test]
    fn sequential_pages_stripe_across_chips() {
        let mut dev = ssd(OrganizationScheme::Random);
        for lpn in 0..12 {
            dev.write(lpn).unwrap();
        }
        dev.flush().unwrap();
        // The first four consecutive pages must sit on four distinct chips.
        let chips: std::collections::HashSet<u16> =
            (0..4).map(|lpn| dev.mapping.lookup(lpn).unwrap().wl.block.chip.0).collect();
        assert_eq!(chips.len(), 4, "page-major striping spreads chips");
    }

    #[test]
    fn batch_read_is_cheaper_than_serial_reads() {
        let mut dev = ssd(OrganizationScheme::Random);
        for lpn in 0..4 {
            dev.write(lpn).unwrap();
        }
        dev.flush().unwrap();
        let batch = dev.read_batch(&[0, 1, 2, 3]).unwrap();
        let serial: f64 = (0..4).map(|l| dev.read(l).unwrap().unwrap()).sum();
        assert!(batch < serial, "batch {batch} vs serial {serial}");
    }

    #[test]
    fn batch_read_skips_unwritten_pages() {
        let mut dev = ssd(OrganizationScheme::Random);
        dev.write(0).unwrap();
        let before = dev.stats().host_reads;
        dev.read_batch(&[0, 1, 2]).unwrap();
        assert_eq!(dev.stats().host_reads, before + 1);
    }

    #[test]
    fn wear_spread_is_tracked() {
        let mut dev = ssd(OrganizationScheme::Random);
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
        dev.run(&reqs).unwrap();
        let (min, max) = dev.wear_spread();
        assert!(max >= 1, "some block must have been erased");
        assert!(max >= min);
    }

    #[test]
    fn cost_benefit_gc_also_survives_sustained_writes() {
        let mut config = FtlConfig::small_test();
        config.gc_policy = crate::gc::GcPolicy::CostBenefit;
        let mut dev = Ssd::new(config, 3).unwrap();
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 9);
        dev.run(&reqs).unwrap();
        assert!(dev.stats().gc_runs > 0);
    }

    #[test]
    fn timed_run_adds_queueing_delay_under_load() {
        use crate::workload::poisson_arrivals;
        let reqs: Vec<crate::IoRequest> = Workload::random_write(0.5).generate(
            &ssd(OrganizationScheme::Random).geometry_info(),
            3000,
            5,
        );
        // Saturating load: arrivals far faster than service.
        let mut busy_dev = ssd(OrganizationScheme::Random);
        busy_dev.run_timed(&poisson_arrivals(&reqs, 1.0, 1)).unwrap();
        // Relaxed load: arrivals far slower than service.
        let mut idle_dev = ssd(OrganizationScheme::Random);
        idle_dev.run_timed(&poisson_arrivals(&reqs, 100_000.0, 1)).unwrap();
        let busy_p99 = busy_dev.stats().write_latency.quantile_us(0.99);
        let idle_p99 = idle_dev.stats().write_latency.quantile_us(0.99);
        assert!(busy_p99 > idle_p99 * 2.0, "busy {busy_p99} vs idle {idle_p99}");
    }

    #[test]
    fn idle_gc_reduces_foreground_pauses() {
        use crate::workload::poisson_arrivals;
        let make = |idle_gc: bool| {
            let mut config = FtlConfig::small_test();
            config.idle_gc = idle_gc;
            Ssd::new(config, 3).unwrap()
        };
        let n = (make(false).geometry_info().logical_pages * 3) as usize;
        let reqs = Workload::random_write(0.5).generate(&make(false).geometry_info(), n, 5);
        // Arrivals slow enough to leave idle gaps.
        let timed = poisson_arrivals(&reqs, 6000.0, 1);
        let mut fg = make(false);
        fg.run_timed(&timed).unwrap();
        let mut bg = make(true);
        bg.run_timed(&timed).unwrap();
        assert!(bg.stats().gc_runs > 0);
        let fg_p99 = fg.stats().write_latency.quantile_us(0.999);
        let bg_p99 = bg.stats().write_latency.quantile_us(0.999);
        assert!(bg_p99 <= fg_p99, "idle GC p99.9 {bg_p99} vs foreground {fg_p99}");
    }

    #[test]
    fn idle_gc_time_is_accounted_separately_from_busy_time() {
        use crate::workload::poisson_arrivals;
        let mut config = FtlConfig::small_test();
        config.idle_gc = true;
        let mut dev = Ssd::new(config, 3).unwrap();
        let info = dev.geometry_info();
        let n = (info.logical_pages * 3) as usize;
        let reqs = Workload::random_write(0.5).generate(&info, n, 5);
        // Gap-heavy arrivals: plenty of idle time for background GC.
        dev.run_timed(&poisson_arrivals(&reqs, 6000.0, 1)).unwrap();
        assert!(dev.stats().gc_runs > 0, "idle gaps must have triggered GC");
        let s = dev.stats();
        assert!(s.idle_gc_us > 0.0, "idle GC time must be recorded");
        // busy_us sums foreground service times only, while the histograms
        // hold wait + service (wait >= 0) — so busy_us can never exceed the
        // histogram totals. Folding idle-GC time into busy_us (the old bug)
        // breaks this bound in gap-heavy runs where waits are near zero.
        let histogram_total = s.write_latency.mean_us() * s.write_latency.len() as f64
            + s.read_latency.mean_us() * s.read_latency.len() as f64;
        assert!(
            s.busy_us <= histogram_total + 1e-6,
            "busy_us {} must exclude idle GC (histogram total {histogram_total})",
            s.busy_us
        );
    }

    #[test]
    fn faulty_device_survives_sustained_writes_and_degrades_gracefully() {
        use flash_model::FaultConfig;
        for scheme in [OrganizationScheme::Random, OrganizationScheme::QstrMed { candidates: 4 }] {
            let mut config = FtlConfig::small_test();
            config.scheme = scheme;
            config.fault = FaultConfig::with_rate(0.02);
            let mut dev = Ssd::new(config, 11).unwrap();
            let info = dev.geometry_info();
            let reqs =
                Workload::random_write(0.5).generate(&info, (info.logical_pages * 4) as usize, 7);
            dev.run(&reqs).unwrap();
            dev.flush().unwrap();
            let s = dev.stats();
            assert!(s.retired_blocks > 0, "{scheme:?}: 2% faults must retire blocks");
            assert!(s.remapped_writes > 0, "{scheme:?}: failed programs must remap");
            // Every recently written page is still readable (no data loss).
            for lpn in 0..(info.logical_pages / 2).min(50) {
                let _ = dev.read(lpn).unwrap();
            }
        }
    }

    #[test]
    fn faults_disabled_leaves_counters_untouched() {
        let mut dev = ssd(OrganizationScheme::Random);
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
        dev.run(&reqs).unwrap();
        let s = dev.stats();
        assert_eq!(s.retired_blocks, 0);
        assert_eq!(s.remapped_writes, 0);
        assert_eq!(s.refresh_relocations, 0);
        assert_eq!(s.degraded_superblocks, 0);
    }

    #[test]
    fn uncorrectable_pages_are_refreshed_on_read() {
        use flash_model::FaultConfig;
        let mut config = FtlConfig::small_test();
        // Every block weak, BER far past the retry ladder: the first read of
        // any flash-resident page must trigger a refresh relocation.
        config.fault = FaultConfig {
            weak_block_prob: 1.0,
            weak_ber_multiplier: 1e6,
            ..FaultConfig::default()
        };
        let mut dev = Ssd::new(config, 11).unwrap();
        dev.write(5).unwrap();
        dev.flush().unwrap();
        let healthy = {
            let mut d = ssd(OrganizationScheme::Random);
            d.write(5).unwrap();
            d.flush().unwrap();
            d.read(5).unwrap().unwrap()
        };
        let r = dev.read(5).unwrap().unwrap();
        assert_eq!(dev.stats().refresh_relocations, 1);
        assert!(r > healthy, "retry ladder + refresh must cost time: {r} vs {healthy}");
        // The refreshed copy is immediately readable again.
        assert!(dev.read(5).unwrap().is_some());
    }

    #[test]
    fn parity_reserve_shrinks_logical_capacity_exactly() {
        use crate::config::ParityConfig;
        // Parity off: the historical export, pinned.
        let dev = Ssd::new(FtlConfig::small_test(), 11).unwrap();
        assert_eq!(dev.geometry_info().logical_pages, logical_capacity(9216, 0.25));
        // Parity on: one page per super word-line comes off the top (9216 /
        // 12 = 768 pages), and overprovision applies to what remains.
        let mut config = FtlConfig::small_test();
        config.parity = ParityConfig::On;
        assert_eq!(config.parity_reserve_pages(9216), 768);
        let dev = Ssd::new(config, 11).unwrap();
        assert_eq!(dev.geometry_info().logical_pages, logical_capacity(9216 - 768, 0.25));
    }

    #[test]
    fn double_failure_in_a_stripe_is_reported_not_absorbed() {
        use crate::config::ParityConfig;
        use flash_model::FaultConfig;
        // Every block weak and far past the retry ladder: the read is
        // uncorrectable AND so is every stripe sibling, so the rebuild must
        // fail — loudly — while the reactive refresh still restages a copy.
        let mut config = FtlConfig::small_test();
        config.parity = ParityConfig::On;
        config.fault = FaultConfig {
            weak_block_prob: 1.0,
            weak_ber_multiplier: 1e6,
            ..FaultConfig::default()
        };
        let mut dev = Ssd::new(config, 11).unwrap();
        dev.write(5).unwrap();
        dev.flush().unwrap();
        dev.read(5).unwrap().unwrap();
        let s = dev.stats();
        assert_eq!(s.uncorrectable_reads, 1);
        assert_eq!(s.rebuilds_ok, 0, "no stripe with every member rotten can rebuild");
        assert_eq!(s.rebuilds_failed, 1, "the double failure is true data loss, reported");
        // All 11 surviving pages of the 12-wide stripe were still read.
        assert_eq!(s.rebuild_reads, 11);
        assert!(s.rebuild_us > 0.0, "the failed attempt still cost stripe reads");
        assert_eq!(s.refresh_relocations, 1);
    }

    #[test]
    fn parity_rebuilds_uncorrectable_pages_from_stripe_siblings() {
        use crate::config::ParityConfig;
        use flash_model::FaultConfig;
        // A sprinkling of weak blocks whose elevation straddles the retry
        // ladder across the page-type spread: the MSB page of a weak
        // word-line rots past the ladder while its LSB/CSB siblings stay
        // correctable — the single-page loss the stripe XOR can rebuild.
        // Seed-scan so the test doesn't hinge on one RNG block layout.
        for seed in 0..32u64 {
            let mut config = FtlConfig::small_test();
            config.parity = ParityConfig::On;
            config.fault = FaultConfig {
                weak_block_prob: 0.15,
                weak_ber_multiplier: 150.0,
                page_type_ber_spread: 0.35,
                ..FaultConfig::default()
            };
            let mut dev = Ssd::new(config, seed).unwrap();
            let info = dev.geometry_info();
            let span = info.logical_pages / 2;
            for lpn in 0..span {
                dev.write(lpn).unwrap();
            }
            dev.flush().unwrap();
            let reads_before = dev.stats().read_latency.len();
            for lpn in 0..span {
                dev.read(lpn).unwrap().unwrap();
            }
            let s = dev.stats();
            // Every uncorrectable read triggered exactly one rebuild attempt
            // and one reactive refresh.
            assert_eq!(s.rebuilds_ok + s.rebuilds_failed, s.uncorrectable_reads);
            assert_eq!(s.refresh_relocations, s.uncorrectable_reads);
            // Each attempt read the 11 surviving pages of its stripe.
            assert_eq!(s.rebuild_reads, 11 * s.uncorrectable_reads);
            // Rebuild time is charged out of band: the read histogram saw
            // exactly one sample per host read regardless of rebuilds.
            assert_eq!(s.read_latency.len() - reads_before, span as usize);
            if s.rebuilds_ok > 0 {
                assert!(s.rebuild_us > 0.0, "successful rebuilds cost stripe-read time");
                return;
            }
        }
        panic!("no seed in 0..32 produced a successful stripe rebuild");
    }

    #[test]
    fn logical_capacity_matches_float_path_on_shipped_configs() {
        // The goldens depend on these values: the integer rewrite must agree
        // with the old f64 computation wherever that computation was exact —
        // which covers every experiment config (all use overprovision 0.25).
        for (physical, op) in [(9216u64, 0.25), (55_296, 0.25), (4096, 0.5)] {
            let old = (physical as f64 * (1.0 - op)) as u64;
            assert_eq!(logical_capacity(physical, op), old, "physical={physical} op={op}");
        }
        // The paper platform under the default 15% overprovision is already
        // past f64: `1.0 - 0.15` is a hair under 0.85, so the true floor is
        // 6_266_879 — the old path rounded the product up and exported one
        // logical page that physically does not fit the reserve.
        assert_eq!(logical_capacity(7_372_800, 0.15), 6_266_879);
        assert_eq!((7_372_800.0_f64 * (1.0 - 0.15)) as u64, 6_266_880, "the old path");
    }

    #[test]
    fn logical_capacity_is_exact_where_f64_rounds() {
        // floor((2^64 - 1) * 3/4) = 3 * 2^62 - 1. The f64 path rounds
        // u64::MAX up to 2^64 and answers 3 * 2^62 — one page too many.
        let exact = (u128::from(u64::MAX) * 3 / 4) as u64;
        assert_eq!(logical_capacity(u64::MAX, 0.25), exact);
        assert_eq!(exact, 13_835_058_055_282_163_711);
        assert_ne!((u64::MAX as f64 * 0.75) as u64, exact, "the old path was wrong here");
        // Dyadic fractions are exact rationals after decomposition: check
        // against independent u128 arithmetic across magnitudes.
        for p in [0u64, 1, (1 << 53) + 1, (1 << 60) + 12_345, u64::MAX - 1] {
            assert_eq!(logical_capacity(p, 0.25), (u128::from(p) * 3 / 4) as u64);
            assert_eq!(logical_capacity(p, 0.5), p / 2);
        }
        assert_eq!(logical_capacity(1000, 0.9999), 0, "tiny fraction floors to zero sanely");
    }

    #[test]
    fn timed_run_records_read_miss_and_trim_waits() {
        use crate::workload::poisson_arrivals;
        // One long write burst, then a read miss and a trim that both arrive
        // while the device is still busy: their waits must not vanish.
        let mut dev = ssd(OrganizationScheme::Random);
        let reqs: Vec<crate::IoRequest> =
            Workload::random_write(0.5).generate(&dev.geometry_info(), 200, 5);
        let mut timed = poisson_arrivals(&reqs, 1.0, 1);
        let last = timed.last().unwrap().0;
        let miss_lpn = dev.geometry_info().logical_pages - 1;
        timed.push((last, IoRequest { op: IoOp::Read, lpn: miss_lpn }));
        timed.push((last, IoRequest { op: IoOp::Trim, lpn: miss_lpn }));
        dev.run_timed(&timed).unwrap();
        let s = dev.stats();
        assert_eq!(s.read_latency.len() as u64, 1, "miss wait recorded as a read sample");
        assert!(s.read_latency.max_us() > 0.0, "the device was busy, so the miss waited");
        assert!(s.trim_wait_us > 0.0, "trim wait recorded");
        assert!(s.queue_wait_us > 0.0);
        assert!(s.queue_depth_max >= 2, "saturating load queues requests");
        assert!(s.makespan_us > 0.0);
    }

    fn queue_model_run(model: crate::QueueModel, interarrival_us: f64) -> Ssd {
        use crate::workload::poisson_arrivals;
        let mut config = FtlConfig::small_test();
        config.queue_model = model;
        let mut dev = Ssd::new(config, 3).unwrap();
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 2) as usize, 5);
        dev.run_timed(&poisson_arrivals(&reqs, interarrival_us, 1)).unwrap();
        dev
    }

    #[test]
    fn per_chip_model_overlaps_work_across_chips() {
        use crate::QueueModel;
        let single = queue_model_run(QueueModel::Single, 40.0);
        let per_chip = queue_model_run(QueueModel::PerChip, 40.0);
        // Identical request outcomes: the timing model only changes clocks.
        assert_eq!(single.stats().host_writes, per_chip.stats().host_writes);
        assert_eq!(single.stats().gc_runs, per_chip.stats().gc_runs);
        let sum_service = per_chip.stats().busy_us;
        let makespan = per_chip.stats().makespan_us;
        assert!(
            makespan < sum_service,
            "chip overlap must compress the replay: makespan {makespan} vs serial {sum_service}"
        );
        assert!(
            per_chip.stats().makespan_us < single.stats().makespan_us,
            "per-chip replay finishes before the single-queue replay"
        );
        // Under saturating arrivals the single queue's waits dominate its
        // tail; overlap must strictly shrink it.
        let s99 = single.stats().write_latency.quantile_us(0.99);
        let p99 = per_chip.stats().write_latency.quantile_us(0.99);
        assert!(p99 < s99, "per-chip p99 {p99} vs single {s99}");
    }

    #[test]
    fn per_chip_model_reports_utilization_per_group() {
        use crate::QueueModel;
        let dev = queue_model_run(QueueModel::PerChip, 40.0);
        let geo_groups = 4; // small_test: 4 chips x 1 plane
        let s = dev.stats();
        assert_eq!(s.chip_busy_us.len(), geo_groups + 1, "chips plus the host channel");
        let util = s.chip_utilization();
        assert!(s.chip_busy_us.iter().all(|&b| b > 0.0), "every chip did work");
        assert!(util.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)), "utilization is a ratio");
        // Occupancy never exceeds the wall clock on any single resource.
        for &b in &s.chip_busy_us {
            assert!(b <= s.makespan_us + 1e-6, "busy {b} vs makespan {}", s.makespan_us);
        }
    }

    #[test]
    fn per_chip_idle_gc_charges_only_touched_chips() {
        use crate::workload::poisson_arrivals;
        use crate::QueueModel;
        let mut config = FtlConfig::small_test();
        config.idle_gc = true;
        config.queue_model = QueueModel::PerChip;
        let mut dev = Ssd::new(config, 3).unwrap();
        let info = dev.geometry_info();
        let n = (info.logical_pages * 3) as usize;
        let reqs = Workload::random_write(0.5).generate(&info, n, 5);
        dev.run_timed(&poisson_arrivals(&reqs, 6000.0, 1)).unwrap();
        let s = dev.stats();
        assert!(s.gc_runs > 0, "idle gaps must have triggered GC");
        assert!(s.idle_gc_us > 0.0);
        // Idle-GC occupancy lands on the chip clocks: total occupancy
        // exceeds foreground service alone.
        let occupancy: f64 = s.chip_busy_us.iter().sum();
        assert!(occupancy > 0.0);
    }

    #[test]
    fn naive_mapping_reproduces_dense_results_bit_for_bit() {
        // The HashMap reference implementation must make identical decisions
        // — this is what lets perf_replay time a genuine before/after on the
        // same binary.
        let run = |naive: bool| {
            let mut dev = ssd(OrganizationScheme::QstrMed { candidates: 4 });
            if naive {
                dev.use_naive_mapping_for_benchmarks();
            }
            let info = dev.geometry_info();
            let reqs =
                Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
            dev.run(&reqs).unwrap();
            (
                dev.stats().write_latency.mean_us().to_bits(),
                dev.stats().waf().to_bits(),
                dev.stats().busy_us.to_bits(),
                dev.stats().gc_relocations,
                dev.stats().gc_runs,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stats_track_host_operations() {
        let mut dev = ssd(OrganizationScheme::Random);
        dev.write(1).unwrap();
        dev.write(2).unwrap();
        dev.read(1).unwrap();
        dev.trim(2).unwrap();
        let s = dev.stats();
        assert_eq!(s.host_writes, 2);
        assert_eq!(s.host_reads, 1);
        assert_eq!(s.host_trims, 1);
        assert!(s.busy_us > 0.0);
    }

    fn apply(dev: &mut Ssd, req: &IoRequest) -> Result<()> {
        match req.op {
            IoOp::Write => dev.write(req.lpn).map(|_| ()),
            IoOp::Read => dev.read(req.lpn).map(|_| ()),
            IoOp::Trim => dev.trim(req.lpn),
        }
    }

    #[test]
    fn injected_crash_halts_the_device_and_recovery_restores_the_exact_mapping() {
        use crate::recovery::CrashPoint;
        let mut config = FtlConfig::small_test();
        config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
        config.spor.checkpoint_interval = 8;
        config.spor.crash = Some(CrashPoint::from_seed(3, 4000));
        let mut dev = Ssd::new(config, 11).unwrap();
        let info = dev.geometry_info();
        let reqs =
            Workload::random_write(0.5).generate(&info, (info.logical_pages * 3) as usize, 7);
        let mut resume_at = None;
        for (i, req) in reqs.iter().enumerate() {
            match apply(&mut dev, req) {
                Ok(()) => {}
                Err(FtlError::PowerLoss) => {
                    resume_at = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let crashed_at = resume_at.expect("the injected crash must fire inside 3x capacity");
        assert!(dev.has_crashed());
        // A halted device refuses every host op.
        assert!(matches!(dev.write(0), Err(FtlError::PowerLoss)));
        assert!(matches!(dev.read(0), Err(FtlError::PowerLoss)));
        // RAM state at the instant of the crash is the durability contract:
        // only acknowledged (programmed) writes are in the mapping.
        let ram: Vec<Option<PageAddr>> =
            (0..info.logical_pages).map(|l| dev.mapping.lookup(l)).collect();
        let ram_valid = dev.valid_pages();
        let report = dev.recover().unwrap();
        assert!(!dev.has_crashed());
        assert!(report.scanned_pages > 0, "dirty superblocks were scanned");
        assert_eq!(report.recovered_mappings, ram_valid as u64, "one mapping per valid page");
        for lpn in 0..info.logical_pages {
            assert_eq!(dev.mapping.lookup(lpn), ram[lpn as usize], "lpn {lpn}");
        }
        assert_eq!(dev.valid_pages(), ram_valid, "valid counters rebuilt");
        // Every recovered page is readable and the device keeps working.
        for lpn in 0..info.logical_pages {
            let got = dev.read(lpn).unwrap();
            assert_eq!(got.is_some(), ram[lpn as usize].is_some(), "lpn {lpn}");
        }
        for req in &reqs[crashed_at..] {
            apply(&mut dev, req).unwrap();
        }
        let s = dev.stats();
        assert_eq!(s.recovery_scan_pages, report.scanned_pages);
        assert_eq!(s.recovered_mappings, report.recovered_mappings);
        assert!(s.recovery_time_us > 0.0);
    }

    #[test]
    fn recovery_on_a_healthy_device_is_lossless() {
        let mut dev = ssd(OrganizationScheme::Random);
        for lpn in 0..20 {
            dev.write(lpn).unwrap();
        }
        dev.flush().unwrap();
        dev.trim(3).unwrap();
        let ram: Vec<Option<PageAddr>> = (0..24).map(|l| dev.mapping.lookup(l)).collect();
        let report = dev.recover().unwrap();
        for (lpn, &before) in ram.iter().enumerate() {
            assert_eq!(dev.mapping.lookup(lpn as u64), before, "lpn {lpn}");
        }
        assert_eq!(report.recovered_mappings, 19, "20 writes minus one trim");
        assert_eq!(report.torn_writes_discarded, 0);
        assert_eq!(dev.read(3).unwrap(), None, "trim tombstone survives recovery");
    }

    #[test]
    fn recovery_requires_spor() {
        let mut config = FtlConfig::small_test();
        config.spor.enabled = false;
        let mut dev = Ssd::new(config, 11).unwrap();
        dev.write(1).unwrap();
        assert!(matches!(dev.recover(), Err(FtlError::InvalidConfig { .. })));
    }

    #[test]
    fn qos_classes_route_to_the_ranked_pool_ends() {
        // Under function-based placement, latency-critical and standard
        // writes must open fast superblocks while background writes share
        // the slow end with GC (§V-D generalized to host tenants).
        let mut dev = ssd(OrganizationScheme::QstrMed { candidates: 4 });
        dev.write_with_class(1, QosClass::LatencyCritical).unwrap();
        dev.write_with_class(2, QosClass::Standard).unwrap();
        assert_eq!(dev.stats().superblocks_assembled, (2, 0), "LC + standard are both fast");
        dev.write_with_class(3, QosClass::Background).unwrap();
        assert_eq!(dev.stats().superblocks_assembled, (2, 1), "background is slow");
        assert_eq!(dev.stats().host_writes, 3);
        assert_eq!(dev.stats().host_writes_by_class, [1, 1, 1]);
        // Each class owns its open superblock: more writes of the same
        // classes keep filling them instead of assembling new ones.
        dev.write_with_class(4, QosClass::LatencyCritical).unwrap();
        dev.write_with_class(5, QosClass::Background).unwrap();
        assert_eq!(dev.stats().superblocks_assembled, (2, 1));
        assert_eq!(dev.stats().host_writes_by_class, [2, 1, 2]);
        // All staged data is readable and survives a flush.
        dev.flush().unwrap();
        for lpn in 1..=5 {
            assert!(dev.read(lpn).unwrap().is_some(), "lpn {lpn}");
        }
        assert_eq!(dev.valid_pages(), 5);
    }

    #[test]
    fn unified_placement_ignores_qos_class() {
        let mut config = FtlConfig::small_test();
        config.scheme = OrganizationScheme::QstrMed { candidates: 4 };
        config.placement = crate::config::PlacementPolicy::Unified;
        let mut dev = Ssd::new(config, 11).unwrap();
        dev.write_with_class(1, QosClass::LatencyCritical).unwrap();
        dev.write_with_class(2, QosClass::Standard).unwrap();
        dev.write_with_class(3, QosClass::Background).unwrap();
        // One shared fast superblock serves every class.
        assert_eq!(dev.stats().superblocks_assembled, (1, 0));
        assert_eq!(dev.stats().host_writes_by_class, [1, 1, 1]);
    }

    #[test]
    fn plain_write_counts_as_standard_class() {
        let mut dev = ssd(OrganizationScheme::Random);
        dev.write(5).unwrap();
        dev.write(6).unwrap();
        assert_eq!(dev.stats().host_writes_by_class, [0, 2, 0]);
    }

    #[test]
    fn crash_mid_run_discards_unacknowledged_staged_writes() {
        use crate::recovery::CrashPoint;
        let mut config = FtlConfig::small_test();
        config.spor.crash = Some(CrashPoint::from_seed(1, 200));
        let mut dev = Ssd::new(config, 11).unwrap();
        let info = dev.geometry_info();
        let reqs = Workload::random_write(0.9).generate(&info, info.logical_pages as usize, 5);
        for req in &reqs {
            match apply(&mut dev, req) {
                Ok(()) => {}
                Err(FtlError::PowerLoss) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // The durability contract: writes still sitting in the staging
        // buffer at power loss were never acknowledged, so recovery must
        // reproduce exactly the RAM mapping — no phantom mappings, no
        // resurrection of staged data.
        let ram: Vec<Option<PageAddr>> =
            (0..info.logical_pages).map(|l| dev.mapping.lookup(l)).collect();
        dev.recover().unwrap();
        for lpn in 0..info.logical_pages {
            assert_eq!(dev.mapping.lookup(lpn), ram[lpn as usize], "lpn {lpn}");
        }
    }
}
