//! Free-block pools and superblock organization strategies.

use crate::active::Purpose;
use crate::config::{OrganizationScheme, PlacementPolicy, QosClass};
use flash_model::{BlockAddr, Geometry};
use pvcheck::assembly::QstrMed;
use pvcheck::{BlockSummary, SpeedClass};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};

/// The pool-ranking half of the QoS placement hook: which end of the
/// process-variation-sorted free lists a write's open superblock is
/// assembled from ([`BlockManager::allocate`] takes the result).
///
/// Under function-based placement (§V-D generalized per tenant):
/// `LatencyCritical` and `Standard` host writes take fast-ranked
/// superblocks, `Background` host writes and GC relocations take the slow
/// end — GC stays pinned to the slowest pool exactly as in the paper.
/// Under [`PlacementPolicy::Unified`] everything is fast-ranked, matching
/// the single shared open superblock.
pub(crate) fn speed_class_for(placement: PlacementPolicy, purpose: Purpose) -> SpeedClass {
    match (placement, purpose) {
        (PlacementPolicy::FunctionBased, Purpose::Gc)
        | (PlacementPolicy::FunctionBased, Purpose::Host(QosClass::Background)) => SpeedClass::Slow,
        _ => SpeedClass::Fast,
    }
}

/// Owns the free blocks of every chip pool and assembles superblocks from
/// them according to the configured [`OrganizationScheme`].
///
/// Blocks whose process-variation summary is known (from pre-
/// characterization or a completed program cycle) live inside the QSTR-MED
/// state when that scheme is active; blocks never yet observed live in
/// plain per-pool lists and are grouped blindly until they earn a summary.
#[derive(Debug)]
pub struct BlockManager {
    scheme: OrganizationScheme,
    planes_per_chip: u16,
    pool_count: usize,
    /// Free blocks without a usable summary (or all free blocks for the
    /// non-QSTR schemes), kept sorted by block index.
    unknown: Vec<Vec<BlockAddr>>,
    /// QSTR-MED sorted lists + eigen store (used when the scheme is QstrMed).
    qstr: QstrMed,
    /// Last known summary of every block ever observed.
    summaries: HashMap<BlockAddr, BlockSummary>,
    /// Bad-block table: blocks permanently removed from service after a
    /// program/erase media failure. They are never handed out again and
    /// [`BlockManager::free`] silently drops them.
    retired: HashSet<BlockAddr>,
    rng: StdRng,
}

impl BlockManager {
    /// A manager with every block of the geometry free and unobserved.
    #[must_use]
    pub fn new(geo: &Geometry, scheme: OrganizationScheme, seed: u64) -> Self {
        let pool_count = usize::from(geo.chips()) * usize::from(geo.planes_per_chip());
        let candidates = match scheme {
            OrganizationScheme::QstrMed { candidates } => candidates,
            _ => 4,
        };
        let mut unknown = vec![Vec::new(); pool_count];
        for addr in geo.blocks() {
            let pool = usize::from(addr.chip.0) * usize::from(geo.planes_per_chip())
                + usize::from(addr.plane.0);
            unknown[pool].push(addr);
        }
        for pool in &mut unknown {
            pool.sort_by_key(|a| a.block);
        }
        BlockManager {
            scheme,
            planes_per_chip: geo.planes_per_chip(),
            pool_count,
            unknown,
            qstr: QstrMed::with_candidates(candidates),
            summaries: HashMap::new(),
            retired: HashSet::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured organization scheme.
    #[must_use]
    pub fn scheme(&self) -> OrganizationScheme {
        self.scheme
    }

    /// Pool index of a block.
    #[must_use]
    pub fn pool_of(&self, addr: BlockAddr) -> usize {
        usize::from(addr.chip.0) * usize::from(self.planes_per_chip) + usize::from(addr.plane.0)
    }

    fn uses_qstr(&self) -> bool {
        matches!(self.scheme, OrganizationScheme::QstrMed { .. })
    }

    /// Records what was learned about a block (its summary survives across
    /// free/claim cycles).
    pub fn learn(&mut self, summary: BlockSummary) {
        self.summaries.insert(summary.addr, summary);
    }

    /// Whether a block's traits are known.
    #[must_use]
    pub fn knows(&self, addr: BlockAddr) -> bool {
        self.summaries.contains_key(&addr)
    }

    /// Free blocks in pool `p` (both known and unknown).
    #[must_use]
    pub fn free_in_pool(&self, p: usize) -> usize {
        let known = if self.uses_qstr() { self.qstr.pool_len(p) } else { 0 };
        self.unknown[p].len() + known
    }

    /// How many whole superblocks can still be assembled from free blocks.
    ///
    /// This is a conservative count: pure-known and pure-unknown assemblies
    /// only (a mixed assembly is also possible but rare).
    #[must_use]
    pub fn assemblable(&self) -> usize {
        (0..self.pool_count).map(|p| self.free_in_pool(p)).min().unwrap_or(0)
    }

    /// Total free blocks across pools.
    #[must_use]
    pub fn total_free(&self) -> usize {
        (0..self.pool_count).map(|p| self.free_in_pool(p)).sum()
    }

    /// Permanently removes a block from service (bad-block table). The
    /// block is scrubbed from the free pools and every later
    /// [`BlockManager::free`] of it is ignored.
    pub fn retire(&mut self, addr: BlockAddr) {
        if !self.retired.insert(addr) {
            return;
        }
        // Blocks normally fail while claimed, but scrub the free lists
        // defensively in case a pooled block is retired directly.
        let pool = self.pool_of(addr);
        self.unknown[pool].retain(|&a| a != addr);
        self.summaries.remove(&addr);
    }

    /// Whether a block sits in the bad-block table.
    #[must_use]
    pub fn is_retired(&self, addr: BlockAddr) -> bool {
        self.retired.contains(&addr)
    }

    /// Blocks retired so far.
    #[must_use]
    pub fn retired_count(&self) -> usize {
        self.retired.len()
    }

    /// Claims a *specific* block out of the free pools (recovery rebuilding
    /// superblock membership from scanned OOB metadata). Returns whether
    /// the block was found free. Must run before any summaries are promoted
    /// into the QSTR-MED lists — on a freshly built manager every free
    /// block still sits in the unknown pools.
    pub fn claim(&mut self, addr: BlockAddr) -> bool {
        let pool = self.pool_of(addr);
        if let Some(i) = self.unknown[pool].iter().position(|&a| a == addr) {
            self.unknown[pool].remove(i);
            return true;
        }
        false
    }

    /// Claims one free block from pool `p` to replace a failed superblock
    /// member (re-assembly from the pool). Prefers unobserved blocks;
    /// under QSTR-MED falls back to the fastest characterized one.
    pub fn take_from_pool(&mut self, p: usize) -> Option<BlockAddr> {
        if !self.unknown[p].is_empty() {
            return Some(self.unknown[p].remove(0));
        }
        if self.uses_qstr() {
            return self.qstr.take_fastest(p);
        }
        None
    }

    /// Returns a block to the free state. Pass the latest summary when one
    /// was gathered; otherwise any previously learned summary is reused.
    /// Retired blocks are dropped, never re-pooled.
    pub fn free(&mut self, addr: BlockAddr, fresh_summary: Option<BlockSummary>) {
        if self.retired.contains(&addr) {
            return;
        }
        if let Some(s) = fresh_summary {
            self.learn(s);
        }
        let pool = self.pool_of(addr);
        if self.uses_qstr() {
            if let Some(s) = self.summaries.get(&addr) {
                self.qstr.insert(pool, s.clone());
                return;
            }
        }
        let pos = self.unknown[pool].partition_point(|a| a.block <= addr.block);
        self.unknown[pool].insert(pos, addr);
    }

    /// Assembles one superblock of the requested class, claiming its
    /// members. Returns `None` when some pool has no free block.
    pub fn allocate(&mut self, class: SpeedClass) -> Option<Vec<BlockAddr>> {
        match self.scheme {
            OrganizationScheme::Random => {
                if self.unknown.iter().any(Vec::is_empty) {
                    return None;
                }
                let mut members = Vec::with_capacity(self.pool_count);
                for pool in &mut self.unknown {
                    let idx = self.rng.random_range(0..pool.len());
                    members.push(pool.remove(idx));
                }
                Some(members)
            }
            OrganizationScheme::Sequential => {
                if self.unknown.iter().any(Vec::is_empty) {
                    return None;
                }
                Some(self.unknown.iter_mut().map(|pool| pool.remove(0)).collect())
            }
            OrganizationScheme::QstrMed { .. } => {
                if let Some(sb) = self.qstr.assemble_on_demand(class) {
                    return Some(sb.members);
                }
                // Warm-up: not enough characterized blocks everywhere; fall
                // back to blind grouping, mixing in known blocks where a
                // pool has no unobserved ones left.
                if (0..self.pool_count).all(|p| self.free_in_pool(p) > 0) {
                    let mut members = Vec::with_capacity(self.pool_count);
                    for p in 0..self.pool_count {
                        let addr = if self.unknown[p].is_empty() {
                            self.qstr.take_fastest(p).expect("pool has a known free block")
                        } else {
                            self.unknown[p].remove(0)
                        };
                        members.push(addr);
                    }
                    return Some(members);
                }
                None
            }
        }
    }

    /// Moves free "unknown" blocks whose summaries have since been learned
    /// into the QSTR-MED sorted lists (no-op for the other schemes).
    pub fn promote_known(&mut self) {
        if !self.uses_qstr() {
            return;
        }
        for p in 0..self.pool_count {
            let pool = std::mem::take(&mut self.unknown[p]);
            for addr in pool {
                if let Some(s) = self.summaries.get(&addr) {
                    self.qstr.insert(p, s.clone());
                } else {
                    self.unknown[p].push(addr);
                }
            }
        }
    }

    /// Total QSTR-MED eigen distance checks so far (computing overhead).
    #[must_use]
    pub fn distance_checks(&self) -> u64 {
        self.qstr.distance_checks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::FlashConfig;
    use pvcheck::Characterizer;

    fn geo() -> Geometry {
        Geometry::new(4, 1, 8, 4, 4, flash_model::CellType::Tlc)
    }

    #[test]
    fn qos_placement_maps_classes_onto_the_ranking_ends() {
        use PlacementPolicy::{FunctionBased, Unified};
        // Function-based: latency-critical and standard host writes take the
        // fast end; background host writes share the slow end with GC.
        assert_eq!(
            speed_class_for(FunctionBased, Purpose::Host(QosClass::LatencyCritical)),
            SpeedClass::Fast
        );
        assert_eq!(
            speed_class_for(FunctionBased, Purpose::Host(QosClass::Standard)),
            SpeedClass::Fast
        );
        assert_eq!(
            speed_class_for(FunctionBased, Purpose::Host(QosClass::Background)),
            SpeedClass::Slow
        );
        assert_eq!(speed_class_for(FunctionBased, Purpose::Gc), SpeedClass::Slow);
        // Unified placement ignores class entirely.
        for class in QosClass::ALL {
            assert_eq!(speed_class_for(Unified, Purpose::Host(class)), SpeedClass::Fast);
        }
        assert_eq!(speed_class_for(Unified, Purpose::Gc), SpeedClass::Fast);
    }

    #[test]
    fn starts_with_everything_free() {
        let m = BlockManager::new(&geo(), OrganizationScheme::Random, 0);
        assert_eq!(m.assemblable(), 8);
    }

    #[test]
    fn random_allocation_claims_one_per_pool() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Random, 0);
        let members = m.allocate(SpeedClass::Fast).unwrap();
        assert_eq!(members.len(), 4);
        let chips: std::collections::HashSet<u16> = members.iter().map(|a| a.chip.0).collect();
        assert_eq!(chips.len(), 4);
        assert_eq!(m.assemblable(), 7);
    }

    #[test]
    fn sequential_allocation_takes_lowest_indices() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Sequential, 0);
        let members = m.allocate(SpeedClass::Fast).unwrap();
        assert!(members.iter().all(|a| a.block.0 == 0));
        let members = m.allocate(SpeedClass::Fast).unwrap();
        assert!(members.iter().all(|a| a.block.0 == 1));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Sequential, 0);
        for _ in 0..8 {
            assert!(m.allocate(SpeedClass::Fast).is_some());
        }
        assert!(m.allocate(SpeedClass::Fast).is_none());
        assert_eq!(m.assemblable(), 0);
    }

    #[test]
    fn free_makes_blocks_allocatable_again() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Sequential, 0);
        let members = m.allocate(SpeedClass::Fast).unwrap();
        for a in members {
            m.free(a, None);
        }
        assert_eq!(m.assemblable(), 8);
    }

    #[test]
    fn retired_blocks_never_return_to_service() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Sequential, 0);
        let members = m.allocate(SpeedClass::Fast).unwrap();
        let dead = members[0];
        m.retire(dead);
        assert!(m.is_retired(dead));
        assert_eq!(m.retired_count(), 1);
        for a in members {
            m.free(a, None); // the retired one is silently dropped
        }
        while let Some(sb) = m.allocate(SpeedClass::Fast) {
            assert!(!sb.contains(&dead), "retired block was handed out again");
        }
        m.retire(dead); // idempotent
        assert_eq!(m.retired_count(), 1);
    }

    #[test]
    fn claim_removes_a_specific_block() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Sequential, 0);
        let target = BlockAddr::new(
            flash_model::ChipId(2),
            flash_model::PlaneId(0),
            flash_model::BlockId(5),
        );
        let before = m.free_in_pool(m.pool_of(target));
        assert!(m.claim(target));
        assert_eq!(m.free_in_pool(m.pool_of(target)), before - 1);
        assert!(!m.claim(target), "already claimed");
        m.free(target, None);
        assert!(m.claim(target), "free makes it claimable again");
    }

    #[test]
    fn take_from_pool_supplies_replacements_until_dry() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Sequential, 0);
        let r = m.take_from_pool(0).unwrap();
        assert_eq!(m.pool_of(r), 0);
        while m.take_from_pool(0).is_some() {}
        assert_eq!(m.free_in_pool(0), 0);
        assert!(m.allocate(SpeedClass::Fast).is_none(), "pool 0 is dry");
    }

    #[test]
    fn retire_scrubs_free_pools_defensively() {
        let mut m = BlockManager::new(&geo(), OrganizationScheme::Sequential, 0);
        let victim = m.take_from_pool(0).unwrap();
        m.free(victim, None);
        let before = m.free_in_pool(0);
        m.retire(victim);
        assert_eq!(m.free_in_pool(0), before - 1);
    }

    #[test]
    fn qstr_scheme_warms_up_blindly_then_uses_summaries() {
        let config =
            FlashConfig::builder().chips(4).blocks_per_plane(8).pwl_layers(4).strings(4).build();
        let mut m =
            BlockManager::new(&config.geometry, OrganizationScheme::QstrMed { candidates: 4 }, 0);
        // Cold: falls back to blind grouping.
        let first = m.allocate(SpeedClass::Fast).unwrap();
        assert_eq!(first.len(), 4);
        assert_eq!(m.distance_checks(), 0, "no summaries yet");

        // Teach it every remaining block via a characterization snapshot.
        let chr = Characterizer::new(&config);
        let array = flash_model::FlashArray::new(config.clone(), 3);
        let pool = chr.snapshot(array.latency_model(), 0);
        for p in pool.iter() {
            m.learn(p.summary(4));
        }
        // Return the first four and re-allocate: now goes through QSTR-MED.
        for a in first {
            m.free(a, None);
        }
        let second = m.allocate(SpeedClass::Fast).unwrap();
        assert_eq!(second.len(), 4);
        assert!(m.distance_checks() > 0, "eigen matching should have run");
    }

    #[test]
    fn learned_summary_survives_free_claim_cycle() {
        let config =
            FlashConfig::builder().chips(2).blocks_per_plane(4).pwl_layers(4).strings(4).build();
        let mut m =
            BlockManager::new(&config.geometry, OrganizationScheme::QstrMed { candidates: 2 }, 0);
        let chr = Characterizer::new(&config);
        let array = flash_model::FlashArray::new(config.clone(), 3);
        let pool = chr.snapshot(array.latency_model(), 0);
        let profile = pool.iter().next().unwrap();
        m.learn(profile.summary(4));
        assert!(m.knows(profile.addr()));
    }
}
