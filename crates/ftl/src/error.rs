//! Error type for the FTL simulator.

use std::fmt;

/// Errors from configuring or driving the simulated SSD.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FtlError {
    /// The configuration is inconsistent.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A request addressed a logical page beyond the exported capacity.
    LpnOutOfRange {
        /// Offending logical page number.
        lpn: u64,
        /// Exported logical pages.
        capacity: u64,
    },
    /// The device ran out of free blocks even after garbage collection —
    /// the workload overcommitted the physical capacity.
    OutOfSpace,
    /// Sudden power loss (injected via [`crate::CrashPoint`]): the device
    /// halted mid-operation and rejects further requests until
    /// [`crate::Ssd::recover`] is called.
    PowerLoss,
    /// An underlying flash operation failed (an internal invariant bug).
    Flash(flash_model::FlashError),
    /// A pvcheck operation failed (an internal invariant bug).
    Pv(pvcheck::PvError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            FtlError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "logical page {lpn} beyond capacity {capacity}")
            }
            FtlError::OutOfSpace => write!(f, "no free blocks left after garbage collection"),
            FtlError::PowerLoss => {
                write!(f, "sudden power loss: the device halted; call recover()")
            }
            FtlError::Flash(e) => write!(f, "flash operation failed: {e}"),
            FtlError::Pv(e) => write!(f, "gather/assembly failed: {e}"),
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Flash(e) => Some(e),
            FtlError::Pv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flash_model::FlashError> for FtlError {
    fn from(e: flash_model::FlashError) -> Self {
        FtlError::Flash(e)
    }
}

impl From<pvcheck::PvError> for FtlError {
    fn from(e: pvcheck::PvError) -> Self {
        FtlError::Pv(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FtlError::LpnOutOfRange { lpn: 100, capacity: 50 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FtlError>();
    }
}
