//! FTL configuration.

use crate::gc::{GcBudget, GcPolicy};
use crate::recovery::SporConfig;
use crate::timing::{EngineMode, QueueModel};
use flash_model::{FaultConfig, FlashConfig, RetryModel};

/// How free blocks are organized into superblocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrganizationScheme {
    /// Arbitrary grouping (the baseline FTL).
    #[default]
    Random,
    /// Same block offset on every chip (what many production FTLs do).
    Sequential,
    /// The paper's scheme: sorted lists + eigen matching, on demand.
    QstrMed {
        /// Candidate-list depth per other chip (the paper uses 4).
        candidates: usize,
    },
}

/// Where written data is placed (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// All writes share one open superblock class.
    Unified,
    /// Function-based placement: host writes → fast superblocks,
    /// garbage-collection relocations → slow superblocks.
    #[default]
    FunctionBased,
}

/// Latency class of a host write (multi-tenant QoS).
///
/// Generalizes the paper's host/GC allocation split (§V-D): instead of one
/// "host" class steered to fast superblocks, each tenant's class picks the
/// end of the process-variation ranking its open superblock is assembled
/// from. `LatencyCritical` and `Standard` writes land on fast-ranked
/// superblocks (each in its own open superblock); `Background` writes share
/// the slow end of the ranking with garbage-collection relocations, which
/// stay pinned to the slowest pool as in the paper. Under
/// [`PlacementPolicy::Unified`] the class is ignored and every write shares
/// one open superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QosClass {
    /// Tail-latency-sensitive tenant: fast superblocks, its own open
    /// superblock so no other stream's programs sit in front of it.
    LatencyCritical,
    /// The default class — byte-identical to the classic host write path
    /// ([`crate::Ssd::write`] uses it).
    #[default]
    Standard,
    /// Batch/throughput tenant: slow superblocks, sharing the slow end of
    /// the ranking with GC relocations.
    Background,
}

impl QosClass {
    /// Every class, in the order used by per-class counters.
    pub const ALL: [QosClass; 3] =
        [QosClass::LatencyCritical, QosClass::Standard, QosClass::Background];

    /// Stable index into per-class counter arrays (matches [`Self::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            QosClass::LatencyCritical => 0,
            QosClass::Standard => 1,
            QosClass::Background => 2,
        }
    }

    /// Short lowercase label for tables and CSVs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QosClass::LatencyCritical => "latency-critical",
            QosClass::Standard => "standard",
            QosClass::Background => "background",
        }
    }
}

/// Scan order of the background patrol scrubber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PatrolOrder {
    /// Sealed-list order: superblocks are scanned in the order they were
    /// sealed, blind to process variation.
    #[default]
    Blind,
    /// PV-aware: slow-pool superblocks first (the pages whose RBER grows
    /// fastest under retention and disturb are concentrated there by
    /// function-based placement), then superblocks of unknown class, then
    /// fast ones — oldest-sealed first within each group.
    SlowPoolFirst,
}

/// Background patrol-scrub configuration.
///
/// `Off` (the default) leaves every code path bit-identical to a device
/// without the subsystem. `On` schedules a resumable word-line-granular
/// scan of all sealed superblocks every `interval_us` of device time,
/// refreshing pages whose projected error bits cross
/// `refresh_fraction × uncorrectable_limit` before they rot past the retry
/// ladder.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PatrolConfig {
    /// No patrol scrubbing.
    #[default]
    Off,
    /// Periodic patrol scans.
    On {
        /// Device time between the end of one pass and the start of the
        /// next, µs. Must be finite and positive.
        interval_us: f64,
        /// Budget per patrol slice in idle gaps and ladder payments, µs.
        /// Must be finite and positive (a slice never splits a word-line
        /// step, so it may overrun by one).
        slice_us: f64,
        /// Refresh threshold as a fraction of the retry model's
        /// uncorrectable limit, in `(0, 1]`. Pages at or above it are
        /// proactively relocated.
        refresh_fraction: f64,
        /// Scan order over sealed superblocks.
        order: PatrolOrder,
    },
}

/// RAIN-style superpage parity configuration.
///
/// `Off` (the default) is bit-identical to a build without the subsystem.
/// `On` reserves the last member page of every super word-line as XOR
/// parity over its siblings: the parity page is computed and programmed
/// atomically with the data members, carries OOB marking it non-mapped
/// (recovery never aliases it into the L2P), shrinks exported logical
/// capacity by `1/superwl_pages`, and lets an uncorrectable read rebuild
/// its payload from the surviving siblings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParityConfig {
    /// No parity protection.
    #[default]
    Off,
    /// One XOR parity page per super word-line.
    On,
}

impl ParityConfig {
    /// Whether parity protection is active.
    #[must_use]
    pub fn enabled(self) -> bool {
        matches!(self, ParityConfig::On)
    }
}

/// Data-integrity model configuration: simulated-time retention aging,
/// read-disturb tracking, and the patrol scrubber.
///
/// The default (`track = false`, zero retention acceleration, patrol off)
/// is bit-identical to a build without the subsystem: reads compute error
/// bits at zero age with zero disturbs, and `exp(0) == 1.0` exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityConfig {
    /// Track per-page write times and per-block read-disturb counters, and
    /// have reads consult the ECC model at the page's true data age.
    pub track: bool,
    /// Retention hours accrued per µs of device time — the accelerated-aging
    /// knob. `0.0` means data never ages even when tracked.
    pub retention_hours_per_us: f64,
    /// Background patrol scrubber (requires `track` when `On`).
    pub patrol: PatrolConfig,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig { track: false, retention_hours_per_us: 0.0, patrol: PatrolConfig::Off }
    }
}

/// Full configuration of the simulated SSD.
#[derive(Debug, Clone)]
pub struct FtlConfig {
    /// Underlying flash array.
    pub flash: FlashConfig,
    /// Fraction of physical pages *not* exported as logical capacity.
    pub overprovision: f64,
    /// Run garbage collection when fewer than this many superblocks can
    /// still be assembled from free blocks.
    pub gc_low_watermark: usize,
    /// Stop garbage collection once this many superblocks are assemblable.
    pub gc_high_watermark: usize,
    /// Garbage-collection victim selection policy.
    pub gc_policy: GcPolicy,
    /// How much relocation work each foreground GC invocation may do
    /// before yielding ([`GcBudget::Unbounded`], the default, reproduces
    /// the legacy run-to-completion collector bit for bit).
    pub gc_budget: GcBudget,
    /// Wear-leveling alarm threshold (max-min erase count).
    pub wear_threshold: u32,
    /// Superblock organization strategy.
    pub scheme: OrganizationScheme,
    /// Data placement policy.
    pub placement: PlacementPolicy,
    /// Per-page host transfer time, µs (bus + controller overhead).
    pub transfer_us: f64,
    /// Seed QSTR-MED with profiles from a pre-characterization pass instead
    /// of warming up from runtime gathering only.
    pub precharacterize: bool,
    /// Run garbage collection in idle gaps of timed runs (reduces
    /// foreground GC pauses at the cost of background work).
    pub idle_gc: bool,
    /// Timing model for [`crate::Ssd::run_timed`]. `Single` (the default)
    /// clocks the device with one scalar queue and reproduces pre-engine
    /// outputs bit-for-bit; `PerChip` gives every chip/plane group its own
    /// busy-until clock so requests overlap across chips — a superpage
    /// program occupies exactly its member chips until `max(tPROG)` while
    /// operations on other chips proceed. Untimed [`crate::Ssd::run`] is
    /// unaffected.
    pub queue_model: QueueModel,
    /// Replay engine for [`crate::Ssd::run_timed`] and the host frontend.
    /// `Stepper` (the default) is the original one-op-at-a-time loop and
    /// stays byte-for-byte untouched; `Batched` drives the same request
    /// sequence through the event-driven core (calendar-queue completion
    /// tracking, batched admission, prefix-cached latency synthesis,
    /// incremental checkpoints, struct-of-arrays stat accumulators folded at
    /// `timed_end`). Every statistic the two engines produce is bit-identical
    /// — the stepper is the batched engine's golden oracle.
    pub engine: EngineMode,
    /// Media fault injection (disabled by default: perfect media, and the
    /// read path skips its ECC consult entirely so results stay
    /// bit-identical to a fault-free build).
    pub fault: FaultConfig,
    /// Read-retry/ECC model consulted by the read path when fault injection
    /// is enabled (uncorrectable pages trigger refresh relocation).
    pub retry: RetryModel,
    /// Sudden-power-off recovery: OOB metadata, checkpoints and optional
    /// crash injection. Enabled by default; it costs zero simulated time
    /// and zero RNG draws, so every result stays bit-identical.
    pub spor: SporConfig,
    /// Data integrity: retention aging, read disturb and patrol scrubbing.
    /// Disabled by default (bit-identical to a build without it).
    pub integrity: IntegrityConfig,
    /// RAIN-style superpage parity. Disabled by default (bit-identical to
    /// a build without it).
    pub parity: ParityConfig,
}

impl FtlConfig {
    /// A small, fast configuration for tests and examples.
    #[must_use]
    pub fn small_test() -> Self {
        FtlConfig {
            flash: FlashConfig::builder()
                .chips(4)
                .planes_per_chip(1)
                .blocks_per_plane(24)
                .pwl_layers(8)
                .strings(4)
                .build(),
            overprovision: 0.25,
            gc_low_watermark: 2,
            gc_high_watermark: 3,
            gc_policy: GcPolicy::Greedy,
            gc_budget: GcBudget::Unbounded,
            wear_threshold: 32,
            scheme: OrganizationScheme::Random,
            placement: PlacementPolicy::FunctionBased,
            transfer_us: 10.0,
            precharacterize: true,
            idle_gc: false,
            queue_model: QueueModel::Single,
            engine: EngineMode::Stepper,
            fault: FaultConfig::default(),
            retry: RetryModel::default(),
            spor: SporConfig::default(),
            integrity: IntegrityConfig::default(),
            parity: ParityConfig::Off,
        }
    }

    /// Pages per super word-line under this configuration: one page from
    /// every chip/plane pool at the same page-type index.
    #[must_use]
    pub fn superwl_pages(&self) -> u64 {
        let geo = &self.flash.geometry;
        u64::from(geo.chips()) * u64::from(geo.planes_per_chip()) * u64::from(geo.pages_per_lwl())
    }

    /// Physical pages reserved for parity out of `physical_pages`, before
    /// over-provisioning is applied. Zero when parity is off. The physical
    /// page count is always a whole number of super word-lines, so the
    /// reserve (one page per super word-line) divides exactly.
    #[must_use]
    pub fn parity_reserve_pages(&self, physical_pages: u64) -> u64 {
        if self.parity.enabled() {
            physical_pages / self.superwl_pages()
        } else {
            0
        }
    }

    /// Validates watermarks and ratios.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.05..0.9).contains(&self.overprovision) {
            return Err(format!(
                "overprovision must be in [0.05, 0.9), got {}",
                self.overprovision
            ));
        }
        if self.gc_low_watermark == 0 {
            return Err("gc_low_watermark must be at least 1".to_string());
        }
        if self.gc_high_watermark <= self.gc_low_watermark {
            return Err("gc_high_watermark must exceed gc_low_watermark".to_string());
        }
        if self.transfer_us < 0.0 {
            return Err("transfer_us must be non-negative".to_string());
        }
        for (name, p) in [
            ("fault.program_fail_prob", self.fault.program_fail_prob),
            ("fault.erase_fail_prob", self.fault.erase_fail_prob),
            ("fault.weak_block_prob", self.fault.weak_block_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        if self.fault.program_fail_prob > 0.2 || self.fault.erase_fail_prob > 0.2 {
            return Err("fault rates above 20% starve the free pools; lower them".to_string());
        }
        if self.spor.crash.is_some() && !self.spor.enabled {
            return Err("crash injection requires spor.enabled".to_string());
        }
        if let GcBudget::Sliced { slice_us } = self.gc_budget {
            if !slice_us.is_finite() || slice_us <= 0.0 {
                return Err(format!(
                    "gc_budget slice_us must be finite and positive, got {slice_us}"
                ));
            }
        }
        let accel = self.integrity.retention_hours_per_us;
        if !accel.is_finite() || accel < 0.0 {
            return Err(format!(
                "integrity.retention_hours_per_us must be finite and non-negative, got {accel}"
            ));
        }
        if let PatrolConfig::On { interval_us, slice_us, refresh_fraction, .. } =
            self.integrity.patrol
        {
            if !self.integrity.track {
                return Err("patrol scrubbing requires integrity.track".to_string());
            }
            for (name, v) in [("patrol interval_us", interval_us), ("patrol slice_us", slice_us)] {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("{name} must be finite and positive, got {v}"));
                }
            }
            if !refresh_fraction.is_finite() || refresh_fraction <= 0.0 || refresh_fraction > 1.0 {
                return Err(format!(
                    "patrol refresh_fraction must be in (0, 1], got {refresh_fraction}"
                ));
            }
        }
        if self.parity.enabled() && self.superwl_pages() < 2 {
            return Err(
                "parity needs super word-lines of at least 2 pages (1 data + 1 parity)".to_string()
            );
        }
        // Every plane must hold: the high watermark of assemblable
        // superblocks, one block per open-superblock slot (the four
        // `Purpose` placement targets, each pinning one block per plane
        // while open), and one for an in-flight GC victim whose blocks
        // are not freed until its relocations flush. The old `+ 2` bound
        // admitted configs that passed validation but OOM-looped once all
        // slots opened mid-collection.
        const OPEN_SLOTS: usize = 4;
        let min_blocks = (self.gc_high_watermark + OPEN_SLOTS + 1) as u32;
        if self.flash.geometry.blocks_per_plane() < min_blocks {
            return Err(format!(
                "need at least {min_blocks} blocks per plane for the configured watermarks \
                 (high watermark + {OPEN_SLOTS} open-superblock slots + 1 in-flight GC victim)"
            ));
        }
        Ok(())
    }
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            flash: FlashConfig::paper_platform(),
            overprovision: 0.15,
            gc_low_watermark: 4,
            gc_high_watermark: 8,
            gc_policy: GcPolicy::Greedy,
            gc_budget: GcBudget::Unbounded,
            wear_threshold: 32,
            scheme: OrganizationScheme::Random,
            placement: PlacementPolicy::FunctionBased,
            transfer_us: 10.0,
            precharacterize: true,
            idle_gc: false,
            queue_model: QueueModel::Single,
            engine: EngineMode::Stepper,
            fault: FaultConfig::default(),
            retry: RetryModel::default(),
            spor: SporConfig::default(),
            integrity: IntegrityConfig::default(),
            parity: ParityConfig::Off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_small_are_valid() {
        FtlConfig::default().validate().unwrap();
        FtlConfig::small_test().validate().unwrap();
    }

    #[test]
    fn bad_overprovision_rejected() {
        let cfg = FtlConfig { overprovision: 0.95, ..FtlConfig::small_test() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_watermarks_rejected() {
        let cfg =
            FtlConfig { gc_low_watermark: 3, gc_high_watermark: 3, ..FtlConfig::small_test() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_fault_rates_rejected() {
        let mut cfg = FtlConfig::small_test();
        cfg.fault.program_fail_prob = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FtlConfig::small_test();
        cfg.fault.erase_fail_prob = -0.1;
        assert!(cfg.validate().is_err());
        let mut cfg = FtlConfig::small_test();
        cfg.fault = FaultConfig::with_rate(0.5);
        assert!(cfg.validate().is_err(), "50% fault rate is unserviceable");
        let mut cfg = FtlConfig::small_test();
        cfg.fault = FaultConfig::with_rate(0.02);
        cfg.validate().unwrap();
    }

    #[test]
    fn crash_without_spor_rejected() {
        use crate::recovery::CrashPoint;
        let mut cfg = FtlConfig::small_test();
        cfg.spor.enabled = false;
        cfg.spor.crash = Some(CrashPoint::from_seed(1, 100));
        assert!(cfg.validate().is_err());
        cfg.spor.enabled = true;
        cfg.validate().unwrap();
    }

    #[test]
    fn too_few_blocks_rejected() {
        let mut cfg = FtlConfig::small_test();
        cfg.flash = FlashConfig::builder().chips(2).blocks_per_plane(3).pwl_layers(4).build();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn blocks_consumed_by_open_slots_and_gc_victim_are_reserved() {
        // high watermark 3 + 2 = 5 blocks per plane passed the old check,
        // but with all four Purpose slots open plus a GC victim in flight
        // the free pool hits zero and collection OOM-loops. The tightened
        // bound (high + 4 slots + 1 victim = 8) rejects it up front.
        let mut cfg = FtlConfig::small_test();
        cfg.flash =
            FlashConfig::builder().chips(4).blocks_per_plane(7).pwl_layers(8).strings(4).build();
        assert!(cfg.validate().is_err(), "7 < high(3) + slots(4) + victim(1)");
        cfg.flash =
            FlashConfig::builder().chips(4).blocks_per_plane(8).pwl_layers(8).strings(4).build();
        cfg.validate().unwrap();
    }

    #[test]
    fn patrol_fields_must_be_finite_positive_like_sliced_gc() {
        let on = |interval_us, slice_us, refresh_fraction| {
            let mut cfg = FtlConfig::small_test();
            cfg.integrity.track = true;
            cfg.integrity.patrol = PatrolConfig::On {
                interval_us,
                slice_us,
                refresh_fraction,
                order: PatrolOrder::Blind,
            };
            cfg
        };
        on(10_000.0, 250.0, 0.8).validate().unwrap();
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(on(bad, 250.0, 0.8).validate().is_err(), "interval_us={bad}");
            assert!(on(10_000.0, bad, 0.8).validate().is_err(), "slice_us={bad}");
        }
        for bad in [0.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(on(10_000.0, 250.0, bad).validate().is_err(), "refresh_fraction={bad}");
        }
        // Patrol without tracking has no ages to project against.
        let mut cfg = on(10_000.0, 250.0, 0.8);
        cfg.integrity.track = false;
        assert!(cfg.validate().is_err(), "patrol requires integrity.track");
        // The aging knob itself must be a finite non-negative rate.
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let mut cfg = FtlConfig::small_test();
            cfg.integrity.retention_hours_per_us = bad;
            assert!(cfg.validate().is_err(), "retention_hours_per_us={bad}");
        }
    }

    #[test]
    fn parity_reserve_is_one_page_per_super_word_line() {
        let mut cfg = FtlConfig::small_test();
        // 4 chips × 1 plane × 3 pages/lwl (TLC) = 12-page super word-lines.
        assert_eq!(cfg.superwl_pages(), 12);
        assert_eq!(cfg.parity_reserve_pages(9216), 0, "parity off reserves nothing");
        cfg.parity = ParityConfig::On;
        cfg.validate().unwrap();
        assert_eq!(cfg.parity_reserve_pages(9216), 768);
    }

    #[test]
    fn parity_configs_keep_the_min_blocks_bound() {
        // Parity shrinks logical capacity, not the free-block pool; the
        // OOM-loop bound must hold (and reject) exactly as without parity.
        let mut cfg = FtlConfig::small_test();
        cfg.parity = ParityConfig::On;
        cfg.flash =
            FlashConfig::builder().chips(4).blocks_per_plane(7).pwl_layers(8).strings(4).build();
        assert!(cfg.validate().is_err(), "7 < high(3) + slots(4) + victim(1), parity or not");
        cfg.flash =
            FlashConfig::builder().chips(4).blocks_per_plane(8).pwl_layers(8).strings(4).build();
        cfg.validate().unwrap();
    }

    #[test]
    fn sliced_budget_must_be_finite_and_positive() {
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let cfg = FtlConfig {
                gc_budget: GcBudget::Sliced { slice_us: bad },
                ..FtlConfig::small_test()
            };
            assert!(cfg.validate().is_err(), "slice_us={bad} must be rejected");
        }
        let cfg = FtlConfig {
            gc_budget: GcBudget::Sliced { slice_us: 250.0 },
            ..FtlConfig::small_test()
        };
        cfg.validate().unwrap();
    }
}
