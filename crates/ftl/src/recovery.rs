//! Sudden-power-off recovery (SPOR): crash injection, the allocation
//! journal + periodic checkpoint, and the latest-wins merge that rebuilds
//! the mapping from an OOB scan.
//!
//! The model follows real controller practice:
//!
//! * every page program carries OOB metadata (LPN, monotonic write sequence
//!   number, superblock identity) written atomically with the payload;
//! * a capacitor-backed metadata region holds per-superblock *seal records*
//!   (member list + gathered QSTR-MED stats) and the checkpoint/journal;
//! * after a crash, only superblocks dirtied since the last checkpoint are
//!   scanned — recovery cost is O(dirty), not O(device);
//! * duplicate LPNs resolve by highest sequence number (latest wins), and
//!   pages of a *torn* super word-line (interrupted mid-program) are
//!   discarded even on members whose individual program completed.

use flash_model::{BlockAddr, PageAddr};
use std::collections::HashMap;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to derive the crash
/// op index from a seed so a crash point is a pure function of its seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic crash point: the device loses power immediately before
/// its N-th flash program/erase operation, where N is a pure function of
/// `(seed, max_ops)`. Identical seeds always crash at the identical op, so
/// crash experiments replay bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Seed the op index is derived from.
    pub seed: u64,
    /// Exclusive upper bound on the crash op index (clamped to at least 1).
    pub max_ops: u64,
}

impl CrashPoint {
    /// Builds a crash point whose op index lies in `1..=max_ops`.
    #[must_use]
    pub fn from_seed(seed: u64, max_ops: u64) -> CrashPoint {
        CrashPoint { seed, max_ops: max_ops.max(1) }
    }

    /// The 1-based flash-op index at which power is lost.
    #[must_use]
    pub fn op_index(&self) -> u64 {
        1 + splitmix64(self.seed) % self.max_ops.max(1)
    }
}

/// Sudden-power-off-recovery configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SporConfig {
    /// Whether OOB metadata, seal records, the journal and checkpoints are
    /// maintained. Enabled by default; the machinery costs zero simulated
    /// time and zero RNG draws, so enabling it leaves every latency result
    /// bit-identical.
    pub enabled: bool,
    /// Take a checkpoint every this many super word-line programs
    /// (`0` = only the initial empty checkpoint, so recovery scans
    /// everything written since power-on).
    pub checkpoint_interval: u64,
    /// Optional injected crash (requires `enabled`).
    pub crash: Option<CrashPoint>,
}

impl Default for SporConfig {
    fn default() -> Self {
        SporConfig { enabled: true, checkpoint_interval: 256, crash: None }
    }
}

/// One allocation-journal entry, appended to the capacitor-backed region as
/// superblock membership changes between checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JournalEntry {
    /// A superblock was opened with these members (erases all succeeded).
    Opened {
        /// Superblock identifier.
        sb_id: u64,
        /// Member blocks in slot order.
        members: Vec<BlockAddr>,
    },
    /// A sealed superblock was garbage-collected; its blocks returned to
    /// the free pools and must not be scanned under this identity.
    Freed {
        /// Superblock identifier.
        sb_id: u64,
    },
    /// A block was retired to the bad-block table.
    Retired {
        /// Retired block.
        addr: BlockAddr,
    },
    /// A logical page was trimmed; the sequence number tombstones any
    /// on-flash copy with a lower sequence.
    Trimmed {
        /// Trimmed logical page.
        lpn: u64,
        /// Tombstone sequence number.
        seq: u64,
    },
}

/// A periodic snapshot of FTL RAM state. Recovery replays the journal and
/// scans only superblocks dirtied after this point.
#[derive(Debug, Clone, Default)]
pub(crate) struct Checkpoint {
    /// Sparse `(lpn, seq, location)` entries: `Some` locations carry the
    /// OOB sequence of the mapped page; `None` locations are trim
    /// tombstones. LPNs never written and never trimmed have no entry.
    pub entries: Vec<(u64, u64, Option<PageAddr>)>,
    /// Sealed superblocks at checkpoint time: `(sb_id, members, sealed_at)`.
    pub sealed: Vec<(u64, Vec<BlockAddr>, u64)>,
    /// Open superblocks at checkpoint time: `(sb_id, members)`.
    pub actives: Vec<(u64, Vec<BlockAddr>)>,
    /// Next write sequence number.
    pub write_seq: u64,
    /// Next superblock identifier.
    pub sb_seq: u64,
    /// Next seal ordinal (GC age clock).
    pub seal_seq: u64,
    /// Bad-block table.
    pub retired: Vec<BlockAddr>,
    /// Write times of the live entries, keyed by OOB write sequence:
    /// device-clock µs at program time. Lets recovery rebuild per-page data
    /// ages from the OOB scan (a recovered sequence missing here — written
    /// after this checkpoint — conservatively reports age since power-on,
    /// so patrol re-examines it early rather than never). Empty unless
    /// integrity tracking is on.
    pub write_times: HashMap<u64, f64>,
}

/// Live SPOR state inside the device: countdown to the injected crash, the
/// journal since the last checkpoint, and that checkpoint.
#[derive(Debug)]
pub(crate) struct SporState {
    /// Whether OOB/journal/checkpoint maintenance is on.
    pub enabled: bool,
    /// Flash ops remaining until the injected crash fires (`None` = never).
    countdown: Option<u64>,
    /// Whether power has been lost; cleared by recovery.
    pub crashed: bool,
    /// Journal entries since the last checkpoint.
    pub journal: Vec<JournalEntry>,
    /// The last checkpoint taken.
    pub checkpoint: Checkpoint,
    /// Super word-line programs since the last checkpoint.
    pub superwls_since_ckpt: u64,
    /// Next write sequence number. Sequences are drawn in OOB-build order
    /// (the order page assignments are applied to the mapping), so the
    /// highest sequence number of an LPN always names the copy the RAM
    /// mapping ended up pointing at — even when one LPN occurs several
    /// times inside a single super word-line.
    pub write_seq: u64,
    /// Per-LPN trim tombstone sequences (latest trim wins). Never pruned:
    /// an old on-flash copy can outlive many checkpoints inside a
    /// long-lived superblock and must still lose to its tombstone.
    pub trim_seqs: HashMap<u64, u64>,
}

impl SporState {
    pub(crate) fn new(config: &SporConfig) -> SporState {
        SporState {
            enabled: config.enabled,
            countdown: config.crash.map(|c| c.op_index()),
            crashed: false,
            journal: Vec::new(),
            checkpoint: Checkpoint::default(),
            superwls_since_ckpt: 0,
            write_seq: 1,
            trim_seqs: HashMap::new(),
        }
    }

    /// Draws the next monotonic write/trim sequence number (1-based; 0 is
    /// reserved for filler OOB).
    pub(crate) fn next_seq(&mut self) -> u64 {
        let s = self.write_seq;
        self.write_seq += 1;
        s
    }

    /// A disabled state for unit tests that drive `ActiveSuperblock`
    /// directly.
    #[cfg(test)]
    pub(crate) fn disabled() -> SporState {
        SporState::new(&SporConfig { enabled: false, checkpoint_interval: 0, crash: None })
    }

    /// Ticks the crash countdown before one flash program/erase op. Returns
    /// `true` when power is lost *now*: the op must not execute.
    pub(crate) fn op_fires(&mut self) -> bool {
        match self.countdown.as_mut() {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.countdown = None;
                    self.crashed = true;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Appends a journal entry (no-op when SPOR is disabled).
    pub(crate) fn journal(&mut self, entry: JournalEntry) {
        if self.enabled {
            self.journal.push(entry);
        }
    }
}

/// Post-recovery report, also folded into [`crate::SsdStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Physical pages read during the OOB scan.
    pub scanned_pages: u64,
    /// Logical mappings rebuilt.
    pub recovered_mappings: u64,
    /// Readable pages of torn super word-lines that were discarded.
    pub torn_writes_discarded: u64,
    /// Simulated time the scan took, µs.
    pub scan_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_point_is_a_pure_function_of_seed() {
        let a = CrashPoint::from_seed(42, 1000).op_index();
        let b = CrashPoint::from_seed(42, 1000).op_index();
        assert_eq!(a, b);
        assert!((1..=1000).contains(&a));
        // Different seeds spread over the range.
        let distinct: std::collections::HashSet<u64> =
            (0..64).map(|s| CrashPoint::from_seed(s, 1_000_000).op_index()).collect();
        assert!(distinct.len() > 60, "splitmix64 spreads seeds: {}", distinct.len());
    }

    #[test]
    fn crash_point_clamps_zero_ops() {
        assert_eq!(CrashPoint::from_seed(7, 0).op_index(), 1);
    }

    #[test]
    fn countdown_fires_exactly_once() {
        let config = SporConfig {
            enabled: true,
            checkpoint_interval: 0,
            crash: Some(CrashPoint { seed: 0, max_ops: 1 }),
        };
        let mut s = SporState::new(&config);
        assert!(s.op_fires(), "op index 1 fires on the first op");
        assert!(s.crashed);
        assert!(!s.op_fires(), "a crash fires once");
    }

    #[test]
    fn no_crash_configured_never_fires() {
        let mut s = SporState::new(&SporConfig::default());
        for _ in 0..10_000 {
            assert!(!s.op_fires());
        }
        assert!(!s.crashed);
    }
}
