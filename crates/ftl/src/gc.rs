//! Garbage-collection victim selection policies and the preemptible
//! collection budget/job machinery.

use crate::mapping::Mapping;
use flash_model::{BlockAddr, PageAddr};
use pvcheck::SpeedClass;
use std::collections::HashSet;

/// How GC picks its victim superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GcPolicy {
    /// Fewest valid pages (cheapest relocation, most space reclaimed now).
    #[default]
    Greedy,
    /// Cost-benefit: weigh reclaimed space against relocation cost and age,
    /// preferring older superblocks whose data has had time to go cold —
    /// `(1 - u) * age / (1 + u)` with `u` the valid-page ratio.
    CostBenefit,
}

/// How much relocation work a foreground-triggered GC invocation may do
/// before yielding back to host commands.
///
/// `Unbounded` is the legacy run-to-completion collector: the triggering
/// write synchronously collects whole victims until the high watermark is
/// restored, and the entire multi-victim time lands in that one command's
/// latency. `Sliced` caps each invocation at `slice_us` of relocation work
/// and parks the in-progress victim as a resumable [`GcJob`] on the device;
/// later slices (foreground or idle-gap) continue where the last one
/// stopped, yielding between word-line programs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GcBudget {
    /// Run every triggered collection to completion (legacy behavior,
    /// bit-identical to the pre-budget collector).
    #[default]
    Unbounded,
    /// Preemptible collection: at most `slice_us` microseconds of
    /// relocation per slice, at word-line granularity (a slice never
    /// splits a program, so it may overrun by one word-line step).
    Sliced {
        /// Budget per slice, µs. Must be finite and positive.
        slice_us: f64,
    },
}

/// Resumable state of a partially collected victim superblock.
///
/// The victim stays in the device's sealed list — and therefore in every
/// checkpoint — until the final flush + free, so a crash mid-collection
/// recovers it under its old identity with its remaining valid pages
/// intact. Cursors and the staged set live only in RAM; losing them merely
/// costs re-scanning the victim, never data.
#[derive(Debug)]
pub(crate) struct GcJob {
    /// Identity of the victim superblock (matches its `sb_id` in the
    /// sealed list; the `Freed` journal entry is written only at the end).
    pub sb_id: u64,
    /// The victim's member blocks, snapshot at selection time.
    pub members: Vec<BlockAddr>,
    /// Member currently being drained (index into `members`).
    pub member_cursor: usize,
    /// Valid pages collected from the current member, relocated one per
    /// step.
    pub pending: Vec<(u64, PageAddr)>,
    /// Next entry of `pending` to relocate.
    pub pending_cursor: usize,
    /// LPNs this job has staged into the GC slot. Invariant: an entry is
    /// either still staged (its copy flushes before the victim is freed)
    /// or its LPN no longer maps into the victim (programmed elsewhere, or
    /// trimmed) — so filtering re-collection by this set never strands a
    /// live page.
    pub staged: HashSet<u64>,
}

impl GcJob {
    pub(crate) fn new(sb_id: u64, members: Vec<BlockAddr>) -> Self {
        GcJob {
            sb_id,
            members,
            member_cursor: 0,
            pending: Vec::new(),
            pending_cursor: 0,
            staged: HashSet::new(),
        }
    }
}

/// Resumable state of an in-progress patrol pass, mirroring [`GcJob`]:
/// cursors live only in RAM, so a crash mid-pass merely restarts the pass —
/// no mapping state depends on them. Each step scans one super word-line
/// (the same quantum as a GC slice step), so patrol slices preempt at the
/// identical granularity.
#[derive(Debug)]
pub(crate) struct PatrolJob {
    /// Superblock identities in scan order, snapshot at pass start.
    /// Superblocks collected mid-pass are simply skipped when their id no
    /// longer resolves in the sealed list.
    pub order: Vec<u64>,
    /// Index into `order` of the superblock being scanned.
    pub sb_cursor: usize,
    /// Next logical word-line of the current superblock to scan.
    pub lwl_cursor: u32,
}

impl PatrolJob {
    pub(crate) fn new(order: Vec<u64>) -> Self {
        PatrolJob { order, sb_cursor: 0, lwl_cursor: 0 }
    }
}

/// A fully written superblock awaiting garbage collection.
#[derive(Debug, Clone)]
pub(crate) struct SealedSuperblock {
    /// Superblock identity (matches the OOB `sb_id` of its pages).
    pub sb_id: u64,
    pub members: Vec<BlockAddr>,
    /// Monotone sequence number at sealing time (a proxy for age).
    pub sealed_at: u64,
    /// Speed class the superblock was assembled from, when known (`None`
    /// after recovery — the checkpoint does not persist it). PV-aware
    /// patrol ordering scans `Slow` superblocks first.
    pub class: Option<SpeedClass>,
}

impl SealedSuperblock {
    /// Valid pages currently stored across the members. Alloc-free: each
    /// member is one counter read on the dense mapping store.
    pub(crate) fn valid_pages(&self, mapping: &Mapping) -> usize {
        self.members.iter().map(|&m| mapping.valid_in_block_count(m)).sum()
    }
}

/// Picks a victim index under the policy; `None` when nothing is sealed.
///
/// Greedy takes the min over `(valid_pages, index)` and stops early at the
/// first fully-invalid superblock — nothing can beat zero valid pages, and
/// the first zero has the smallest index among zeros, so the early exit
/// returns exactly what the full scan would.
pub(crate) fn select_victim(
    policy: GcPolicy,
    sealed: &[SealedSuperblock],
    mapping: &Mapping,
    pages_per_superblock: usize,
    now: u64,
) -> Option<usize> {
    match policy {
        GcPolicy::Greedy => {
            let mut best: Option<(usize, usize)> = None;
            for (i, sb) in sealed.iter().enumerate() {
                let valid = sb.valid_pages(mapping);
                if valid == 0 {
                    return Some(i);
                }
                if best.is_none_or(|(b, _)| valid < b) {
                    best = Some((valid, i));
                }
            }
            best.map(|(_, i)| i)
        }
        GcPolicy::CostBenefit => sealed
            .iter()
            .enumerate()
            .map(|(i, sb)| {
                let u = sb.valid_pages(mapping) as f64 / pages_per_superblock.max(1) as f64;
                let age = (now.saturating_sub(sb.sealed_at)) as f64 + 1.0;
                let score = (1.0 - u) * age / (1.0 + u);
                (score, i)
            })
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(_, i)| i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::{BlockId, CellType, ChipId, Geometry, LwlId, PageType, PlaneId};

    fn geo() -> Geometry {
        Geometry::new(2, 1, 4, 24, 4, CellType::Tlc)
    }

    fn blk(c: u16, b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(c), PlaneId(0), BlockId(b))
    }

    fn sealed(b: u32, sealed_at: u64) -> SealedSuperblock {
        SealedSuperblock {
            sb_id: u64::from(b),
            members: vec![blk(0, b), blk(1, b)],
            sealed_at,
            class: None,
        }
    }

    #[test]
    fn greedy_picks_the_emptiest_superblock() {
        let mut mapping = Mapping::new(100, &geo());
        mapping.map(1, blk(0, 0).wl(LwlId(0)).page(PageType::Lsb));
        mapping.map(2, blk(1, 0).wl(LwlId(0)).page(PageType::Lsb));
        mapping.map(3, blk(0, 1).wl(LwlId(0)).page(PageType::Lsb));
        let sbs = vec![sealed(0, 0), sealed(1, 1)];
        assert_eq!(select_victim(GcPolicy::Greedy, &sbs, &mapping, 48, 2), Some(1));
        assert_eq!(sbs[0].valid_pages(&mapping), 2);
    }

    #[test]
    fn greedy_ties_resolve_to_the_lowest_index() {
        let mut mapping = Mapping::new(100, &geo());
        // Both superblocks hold one valid page each: first wins the tie,
        // matching the old `min()` over `(count, index)` tuples.
        mapping.map(1, blk(0, 0).wl(LwlId(0)).page(PageType::Lsb));
        mapping.map(2, blk(0, 1).wl(LwlId(0)).page(PageType::Lsb));
        let sbs = vec![sealed(0, 0), sealed(1, 1)];
        assert_eq!(select_victim(GcPolicy::Greedy, &sbs, &mapping, 48, 2), Some(0));
    }

    #[test]
    fn greedy_early_exit_matches_full_scan_on_zero_valid() {
        let mut mapping = Mapping::new(100, &geo());
        // Superblock 0 holds data, 1 and 2 are empty: the first zero wins.
        mapping.map(1, blk(0, 0).wl(LwlId(0)).page(PageType::Lsb));
        let sbs = vec![sealed(0, 0), sealed(1, 1), sealed(2, 2)];
        assert_eq!(select_victim(GcPolicy::Greedy, &sbs, &mapping, 48, 3), Some(1));
    }

    #[test]
    fn cost_benefit_prefers_old_empty_superblocks() {
        let mut mapping = Mapping::new(100, &geo());
        // Both equally empty; the older one must win.
        mapping.map(1, blk(0, 0).wl(LwlId(0)).page(PageType::Lsb));
        mapping.map(2, blk(0, 1).wl(LwlId(0)).page(PageType::Lsb));
        let sbs = vec![sealed(0, 5), sealed(1, 1)];
        assert_eq!(select_victim(GcPolicy::CostBenefit, &sbs, &mapping, 48, 10), Some(1));
    }

    #[test]
    fn cost_benefit_avoids_full_superblocks() {
        let mut mapping = Mapping::new(1000, &geo());
        // Superblock 0: old but completely full. Superblock 1: young, empty.
        for lwl in 0..24 {
            mapping.map(u64::from(lwl) * 2, blk(0, 0).wl(LwlId(lwl)).page(PageType::Lsb));
            mapping.map(u64::from(lwl) * 2 + 1, blk(1, 0).wl(LwlId(lwl)).page(PageType::Lsb));
        }
        let sbs = vec![sealed(0, 0), sealed(1, 99)];
        assert_eq!(select_victim(GcPolicy::CostBenefit, &sbs, &mapping, 48, 100), Some(1));
    }

    #[test]
    fn no_sealed_superblocks_means_no_victim() {
        let mapping = Mapping::new(10, &geo());
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit] {
            assert_eq!(select_victim(policy, &[], &mapping, 48, 0), None);
        }
    }
}
