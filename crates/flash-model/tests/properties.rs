//! Property-based tests for the latency model's invariants.

use flash_model::{
    BlockAddr, BlockId, CellType, ChipId, FlashArray, FlashConfig, Geometry, LwlId, PlaneId,
    PwlLayer, Sampler, VariationConfig,
};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    (1u16..5, 1u16..3, 1u32..20, 1u16..12, prop_oneof![Just(2u16), Just(4u16)]).prop_map(
        |(chips, planes, blocks, layers, strings)| {
            Geometry::new(chips, planes, blocks, layers, strings, CellType::Tlc)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn latencies_are_deterministic_and_positive(seed in any::<u64>(), geo in arb_geometry()) {
        let m1 = flash_model::LatencyModel::new(geo.clone(), VariationConfig::default(), seed);
        let m2 = flash_model::LatencyModel::new(geo.clone(), VariationConfig::default(), seed);
        for addr in geo.blocks().take(8) {
            prop_assert_eq!(m1.erase_latency_us(addr, 0), m2.erase_latency_us(addr, 0));
            prop_assert!(m1.erase_latency_us(addr, 0) > 0.0);
            for lwl in geo.lwls().take(8) {
                let t1 = m1.program_latency_us(addr.wl(lwl), 0);
                prop_assert_eq!(t1, m2.program_latency_us(addr.wl(lwl), 0));
                prop_assert!(t1 > 0.0);
            }
        }
    }

    #[test]
    fn program_latency_is_quantized(seed in any::<u64>(), geo in arb_geometry()) {
        let m = flash_model::LatencyModel::new(geo.clone(), VariationConfig::default(), seed);
        let q = m.variation().pulse_us;
        for addr in geo.blocks().take(4) {
            for lwl in geo.lwls().take(8) {
                let t = m.program_latency_us(addr.wl(lwl), 0);
                let ratio = t / q;
                prop_assert!((ratio - ratio.round()).abs() < 1e-9, "{} not on grid", t);
            }
        }
    }

    #[test]
    fn fast_strings_mark_exactly_half((seed, geo) in (any::<u64>(), arb_geometry())) {
        let m = flash_model::LatencyModel::new(geo.clone(), VariationConfig::default(), seed);
        let expect = u32::from(geo.strings() / 2).max(1);
        for addr in geo.blocks().take(4) {
            for l in 0..geo.pwl_layers() {
                prop_assert_eq!(m.fast_strings(addr, PwlLayer(l)).count(), expect);
            }
        }
    }

    #[test]
    fn sampler_ranges_hold(seed in any::<u64>(), tags in proptest::collection::vec(any::<u64>(), 0..5), n in 1usize..100) {
        let s = Sampler::new(seed);
        let u = s.uniform(&tags);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert!(s.choice(n, &tags) < n);
        prop_assert!(s.normal(&tags).is_finite());
        prop_assert!(s.exponential(2.0, &tags) >= 0.0);
    }

    #[test]
    fn geometry_lwl_roundtrip(geo in arb_geometry(), lwl_idx in 0u32..100) {
        let lwl = LwlId(lwl_idx % geo.lwls_per_block());
        let layer = geo.layer_of(lwl);
        let string = geo.string_of(lwl);
        prop_assert_eq!(geo.lwl_of(layer, string), lwl);
    }

    #[test]
    fn erase_program_lifecycle_always_legal(seed in any::<u64>(), geo in arb_geometry()) {
        let mut array = FlashArray::new(
            FlashConfig { geometry: geo.clone(), variation: VariationConfig::default() },
            seed,
        );
        let addr = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0));
        let payload = vec![7u64; geo.pages_per_lwl() as usize];
        // Program before erase must fail; after erase the whole block must
        // program in order and then be fully readable.
        prop_assert!(array.program_wl(addr.wl(LwlId(0)), &payload).is_err());
        array.erase_block(addr).unwrap();
        for lwl in geo.lwls() {
            array.program_wl(addr.wl(lwl), &payload).unwrap();
        }
        prop_assert!(array.program_wl(addr.wl(LwlId(0)), &payload).is_err());
        let (data, _) = array
            .read_page(addr.wl(LwlId(geo.lwls_per_block() - 1)).page(flash_model::PageType::Lsb))
            .unwrap();
        prop_assert_eq!(data, 7);
    }

    #[test]
    fn uniform_variation_means_identical_blocks(seed in any::<u64>()) {
        let geo = Geometry::small_test();
        let m = flash_model::LatencyModel::new(geo.clone(), VariationConfig::uniform(), seed);
        let reference = m.block_program_sum_us(BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0)), 0);
        for addr in geo.blocks().take(16) {
            prop_assert_eq!(m.block_program_sum_us(addr, 0), reference);
        }
    }

    #[test]
    fn wear_speeds_programs_and_slows_erases_on_average(seed in any::<u64>()) {
        let geo = Geometry::small_test();
        let m = flash_model::LatencyModel::new(geo.clone(), VariationConfig::default(), seed);
        let sum = |pe: u32| -> (f64, f64) {
            let mut prog = 0.0;
            let mut ers = 0.0;
            for addr in geo.blocks().take(32) {
                prog += m.block_program_sum_us(addr, pe);
                ers += m.erase_latency_us(addr, pe);
            }
            (prog, ers)
        };
        let (p0, e0) = sum(0);
        let (p3, e3) = sum(3000);
        prop_assert!(p3 < p0, "programs should get faster with wear");
        prop_assert!(e3 > e0, "erases should get slower with wear");
    }
}
