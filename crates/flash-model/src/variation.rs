//! Process-variation parameters and the string-mask type.
//!
//! Every knob of the synthetic silicon lives here so experiments (and the
//! calibration harness) can ablate individual variation sources. Units are
//! microseconds unless stated otherwise. The defaults are calibrated so the
//! paper-platform geometry reproduces the paper's headline numbers (random
//! assembly: ≈13,084 µs extra program latency and ≈41.7 µs extra erase
//! latency per superblock; see `EXPERIMENTS.md`).

/// Bit mask over the strings of one physical word-line layer.
///
/// Bit `s` set means string `s` is *fast* on that layer. The paper's
/// STR-median quantization marks the fastest two of four strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StringMask(pub u8);

impl StringMask {
    /// Mask with the given strings set.
    #[must_use]
    pub fn from_strings(strings: &[u16]) -> Self {
        let mut m = 0u8;
        for &s in strings {
            assert!(s < 8, "StringMask supports up to 8 strings");
            m |= 1 << s;
        }
        StringMask(m)
    }

    /// Whether string `s` is marked fast.
    #[must_use]
    pub fn contains(self, s: u16) -> bool {
        s < 8 && self.0 & (1 << s) != 0
    }

    /// Number of fast strings.
    #[must_use]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

impl std::fmt::Display for StringMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04b}", self.0)
    }
}

/// All process-variation and timing knobs of the synthetic flash.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationConfig {
    // --- program path ---
    /// ISPP pulse quantum: program latencies land on this grid.
    pub pulse_us: f64,
    /// Mean word-line program latency at the center of the layer curve.
    pub prog_base_us: f64,
    /// Amplitude of the V-shaped layer curve (top layers slower than middle).
    pub layer_curve_amp_us: f64,
    /// Number of adjacent layers sharing one vendor parameter group.
    pub layer_group_size: u16,
    /// σ of the per-chip, per-layer-group operating-parameter offset.
    /// This is the chip-to-chip profile variation no assembly can remove.
    pub layer_group_sigma_us: f64,
    /// σ of the constant per-chip offset.
    pub chip_offset_sigma_us: f64,
    /// σ of the per-block speed deviation.
    pub block_sigma_us: f64,
    /// Correlation length (in block indices) of the smooth spatial component
    /// of block speed; produces Figure 5's flat runs.
    pub block_corr_len: u32,
    /// Fraction (0..1) of block-speed variance carried by the smooth term.
    pub block_corr_weight: f64,
    /// Fraction (0..1) of block-speed variance *shared across chips* at the
    /// same block index (manufacturing-position similarity). This is what the
    /// paper's sequential assembly exploits.
    pub block_shared_frac: f64,
    /// Probability a block is a slow outlier (Figure 5's spikes).
    pub outlier_prob: f64,
    /// Mean extra latency of outlier blocks (exponential tail).
    pub outlier_extra_us: f64,
    /// Number of string-pattern families blocks draw from.
    pub pattern_families: u32,
    /// Extra latency of a slow string relative to a fast string.
    pub pattern_penalty_us: f64,
    /// Per-layer probability that a block deviates from its family pattern.
    pub pattern_flip_prob: f64,
    /// Correlation length (block indices) of the family id along a plane.
    pub pattern_corr_len: u32,
    /// Probability (0..1) that a block's pattern family is the index-shared
    /// one rather than a chip-local one.
    pub pattern_shared_frac: f64,
    /// σ of per-word-line i.i.d. noise.
    pub noise_sigma_us: f64,

    // --- erase path ---
    /// Mean block erase latency.
    pub ers_base_us: f64,
    /// Erase-loop quantum: erase latencies land on this grid.
    pub ers_quantum_us: f64,
    /// σ of the per-chip erase offset.
    pub ers_chip_sigma_us: f64,
    /// σ of the per-block erase deviation.
    pub ers_block_sigma_us: f64,
    /// Correlation between a block's erase deviation and its program speed.
    /// Sorting by program latency partially unifies erase latency through
    /// this channel (the paper's Table V erase improvements).
    pub ers_pgm_corr: f64,
    /// σ of per-erase noise.
    pub ers_noise_sigma_us: f64,
    /// Probability of an erase outlier block.
    pub ers_outlier_prob: f64,
    /// Mean extra erase latency of outlier blocks.
    pub ers_outlier_extra_us: f64,

    // --- wear (P/E cycling) ---
    /// Program latency decrease per 1,000 P/E cycles (worn cells program faster).
    pub wear_prog_slope_us_per_kpe: f64,
    /// Erase latency increase per 1,000 P/E cycles.
    pub wear_ers_slope_us_per_kpe: f64,
    /// Multiplicative noise growth per 1,000 P/E cycles.
    pub wear_noise_growth_per_kpe: f64,

    // --- read path ---
    /// Base page read latency.
    pub read_base_us: f64,
    /// Extra read latency per page-significance step (LSB fastest).
    pub read_page_step_us: f64,
    /// σ of per-read noise.
    pub read_noise_sigma_us: f64,
    /// σ of the per-block read-latency deviation (tR spread). Zero by
    /// default: the base model treats tR as block-uniform, and experiments
    /// probing read-path process variation opt in explicitly.
    pub read_block_sigma_us: f64,
    /// Correlation between a block's read deviation and its program speed.
    /// With a positive value, sorting blocks by program latency (QSTR-MED)
    /// also unifies read latency — the channel that bounds a parity
    /// rebuild's slowest-sibling critical path.
    pub read_pgm_corr: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig {
            pulse_us: 18.4,
            prog_base_us: 1740.0,
            layer_curve_amp_us: 140.0,
            layer_group_size: 8,
            layer_group_sigma_us: 10.5,
            chip_offset_sigma_us: 6.0,
            block_sigma_us: 8.0,
            block_corr_len: 24,
            block_corr_weight: 0.55,
            block_shared_frac: 0.25,
            outlier_prob: 0.004,
            outlier_extra_us: 30.0,
            pattern_families: 4,
            pattern_penalty_us: 18.4,
            pattern_flip_prob: 0.04,
            pattern_corr_len: 32,
            pattern_shared_frac: 0.75,
            noise_sigma_us: 6.5,

            ers_base_us: 3500.0,
            ers_quantum_us: 6.0,
            ers_chip_sigma_us: 8.0,
            ers_block_sigma_us: 19.0,
            ers_pgm_corr: 0.97,
            ers_noise_sigma_us: 1.5,
            ers_outlier_prob: 0.004,
            ers_outlier_extra_us: 80.0,

            wear_prog_slope_us_per_kpe: 25.0,
            wear_ers_slope_us_per_kpe: 60.0,
            wear_noise_growth_per_kpe: 0.03,

            read_base_us: 58.0,
            read_page_step_us: 14.0,
            read_noise_sigma_us: 1.5,
            read_block_sigma_us: 0.0,
            read_pgm_corr: 0.0,
        }
    }
}

impl VariationConfig {
    /// A configuration with every variation source disabled: all blocks
    /// identical. Useful as an experimental control.
    #[must_use]
    pub fn uniform() -> Self {
        VariationConfig {
            layer_group_sigma_us: 0.0,
            chip_offset_sigma_us: 0.0,
            block_sigma_us: 0.0,
            outlier_prob: 0.0,
            pattern_penalty_us: 0.0,
            pattern_flip_prob: 0.0,
            noise_sigma_us: 0.0,
            ers_chip_sigma_us: 0.0,
            ers_block_sigma_us: 0.0,
            ers_noise_sigma_us: 0.0,
            ers_outlier_prob: 0.0,
            read_noise_sigma_us: 0.0,
            ..VariationConfig::default()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("outlier_prob", self.outlier_prob),
            ("pattern_flip_prob", self.pattern_flip_prob),
            ("ers_outlier_prob", self.ers_outlier_prob),
            ("block_corr_weight", self.block_corr_weight),
            ("block_shared_frac", self.block_shared_frac),
            ("pattern_shared_frac", self.pattern_shared_frac),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if !(-1.0..=1.0).contains(&self.ers_pgm_corr) {
            return Err(format!("ers_pgm_corr must be in [-1,1], got {}", self.ers_pgm_corr));
        }
        if !(-1.0..=1.0).contains(&self.read_pgm_corr) {
            return Err(format!("read_pgm_corr must be in [-1,1], got {}", self.read_pgm_corr));
        }
        if self.read_block_sigma_us < 0.0 {
            return Err(format!(
                "read_block_sigma_us must be non-negative, got {}",
                self.read_block_sigma_us
            ));
        }
        if self.pulse_us <= 0.0 || self.ers_quantum_us <= 0.0 {
            return Err("quantum sizes must be positive".to_string());
        }
        if self.layer_group_size == 0 {
            return Err("layer_group_size must be positive".to_string());
        }
        if self.pattern_families == 0 {
            return Err("pattern_families must be positive".to_string());
        }
        for (name, v) in [
            ("prog_base_us", self.prog_base_us),
            ("ers_base_us", self.ers_base_us),
            ("read_base_us", self.read_base_us),
        ] {
            if v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        VariationConfig::default().validate().unwrap();
        VariationConfig::uniform().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_probability() {
        let cfg = VariationConfig { outlier_prob: 1.5, ..VariationConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_correlation() {
        let cfg = VariationConfig { ers_pgm_corr: -2.0, ..VariationConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_quantum() {
        let cfg = VariationConfig { pulse_us: 0.0, ..VariationConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn string_mask_basics() {
        let m = StringMask::from_strings(&[0, 3]);
        assert!(m.contains(0));
        assert!(!m.contains(1));
        assert!(!m.contains(2));
        assert!(m.contains(3));
        assert_eq!(m.count(), 2);
        assert_eq!(m.to_string(), "1001");
    }

    #[test]
    #[should_panic(expected = "up to 8 strings")]
    fn string_mask_rejects_wide_strings() {
        let _ = StringMask::from_strings(&[8]);
    }
}
