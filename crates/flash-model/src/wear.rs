//! Per-block wear tracking.

/// Wear state of one block: how many program/erase cycles it has endured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WearState {
    pe_cycles: u32,
}

impl WearState {
    /// A fresh block with zero P/E cycles.
    #[must_use]
    pub fn new() -> Self {
        WearState::default()
    }

    /// A block pre-aged to the given cycle count.
    #[must_use]
    pub fn with_cycles(pe_cycles: u32) -> Self {
        WearState { pe_cycles }
    }

    /// Completed program/erase cycles.
    #[must_use]
    pub fn pe_cycles(&self) -> u32 {
        self.pe_cycles
    }

    /// Records one erase (one full P/E cycle boundary).
    pub fn record_erase(&mut self) {
        self.pe_cycles = self.pe_cycles.saturating_add(1);
    }

    /// Adds `cycles` of accelerated wear (the simulation counterpart of the
    /// paper's thermal-chamber cycling between measurement points).
    pub fn age(&mut self, cycles: u32) {
        self.pe_cycles = self.pe_cycles.saturating_add(cycles);
    }

    /// Whether the block has exceeded a nominal endurance budget.
    #[must_use]
    pub fn is_beyond(&self, endurance: u32) -> bool {
        self.pe_cycles > endurance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(WearState::new().pe_cycles(), 0);
    }

    #[test]
    fn erase_increments() {
        let mut w = WearState::new();
        w.record_erase();
        w.record_erase();
        assert_eq!(w.pe_cycles(), 2);
    }

    #[test]
    fn age_jumps() {
        let mut w = WearState::with_cycles(100);
        w.age(200);
        assert_eq!(w.pe_cycles(), 300);
    }

    #[test]
    fn endurance_check() {
        let w = WearState::with_cycles(3001);
        assert!(w.is_beyond(3000));
        assert!(!w.is_beyond(4000));
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut w = WearState::with_cycles(u32::MAX);
        w.record_erase();
        assert_eq!(w.pe_cycles(), u32::MAX);
    }
}
