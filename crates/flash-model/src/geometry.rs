//! Chip geometry: how many chips, planes, blocks, layers, strings and pages.

use crate::ids::{
    BlockAddr, BlockId, CellType, ChipId, LwlId, PageAddr, PageType, PlaneId, PwlLayer, StringId,
};

/// Static geometry of a flash array.
///
/// The defaults follow the paper's platform (§VI-A): 4 pools of TLC blocks,
/// 96 physical word-line layers × 4 strings = 384 logical word-lines and
/// 1,152 pages per block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Geometry {
    chips: u16,
    planes_per_chip: u16,
    blocks_per_plane: u32,
    pwl_layers: u16,
    strings: u16,
    cell: CellType,
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper_platform()
    }
}

impl Geometry {
    /// Creates a geometry after validating every dimension is non-zero.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(
        chips: u16,
        planes_per_chip: u16,
        blocks_per_plane: u32,
        pwl_layers: u16,
        strings: u16,
        cell: CellType,
    ) -> Self {
        assert!(chips > 0, "geometry needs at least one chip");
        assert!(planes_per_chip > 0, "geometry needs at least one plane per chip");
        assert!(blocks_per_plane > 0, "geometry needs at least one block per plane");
        assert!(pwl_layers > 0, "geometry needs at least one PWL layer");
        assert!(strings > 0, "geometry needs at least one string");
        Geometry { chips, planes_per_chip, blocks_per_plane, pwl_layers, strings, cell }
    }

    /// The paper's experimental shape: 4 chips × 1 plane × 1,600 blocks,
    /// 96 layers × 4 strings, TLC.
    #[must_use]
    pub fn paper_platform() -> Self {
        Geometry::new(4, 1, 1600, 96, 4, CellType::Tlc)
    }

    /// A small geometry for fast tests: 4 chips × 1 plane × 64 blocks,
    /// 8 layers × 4 strings, TLC.
    #[must_use]
    pub fn small_test() -> Self {
        Geometry::new(4, 1, 64, 8, 4, CellType::Tlc)
    }

    /// Number of chips in the array.
    #[must_use]
    pub fn chips(&self) -> u16 {
        self.chips
    }

    /// Number of planes per chip.
    #[must_use]
    pub fn planes_per_chip(&self) -> u16 {
        self.planes_per_chip
    }

    /// Number of blocks per plane.
    #[must_use]
    pub fn blocks_per_plane(&self) -> u32 {
        self.blocks_per_plane
    }

    /// Number of physical word-line layers per block.
    #[must_use]
    pub fn pwl_layers(&self) -> u16 {
        self.pwl_layers
    }

    /// Number of strings per block.
    #[must_use]
    pub fn strings(&self) -> u16 {
        self.strings
    }

    /// Cell technology.
    #[must_use]
    pub fn cell(&self) -> CellType {
        self.cell
    }

    /// Logical word-lines per block (`layers * strings`).
    #[must_use]
    pub fn lwls_per_block(&self) -> u32 {
        u32::from(self.pwl_layers) * u32::from(self.strings)
    }

    /// Pages per logical word-line (one per bit of the cell type).
    #[must_use]
    pub fn pages_per_lwl(&self) -> u32 {
        self.cell.bits_per_cell()
    }

    /// Pages per block.
    #[must_use]
    pub fn pages_per_block(&self) -> u32 {
        self.lwls_per_block() * self.pages_per_lwl()
    }

    /// Total number of blocks in the array.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.chips) * u64::from(self.planes_per_chip) * u64::from(self.blocks_per_plane)
    }

    /// Layer-major logical word-line index for `(layer, string)`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `string` is out of range.
    #[must_use]
    pub fn lwl_of(&self, layer: PwlLayer, string: StringId) -> LwlId {
        assert!(layer.0 < self.pwl_layers, "layer {layer} out of range");
        assert!(string.0 < self.strings, "string {string} out of range");
        LwlId(u32::from(layer.0) * u32::from(self.strings) + u32::from(string.0))
    }

    /// Physical word-line layer of a logical word-line.
    ///
    /// # Panics
    ///
    /// Panics if `lwl` is out of range.
    #[must_use]
    pub fn layer_of(&self, lwl: LwlId) -> PwlLayer {
        assert!(lwl.0 < self.lwls_per_block(), "lwl {lwl} out of range");
        PwlLayer((lwl.0 / u32::from(self.strings)) as u16)
    }

    /// String of a logical word-line.
    ///
    /// # Panics
    ///
    /// Panics if `lwl` is out of range.
    #[must_use]
    pub fn string_of(&self, lwl: LwlId) -> StringId {
        assert!(lwl.0 < self.lwls_per_block(), "lwl {lwl} out of range");
        StringId((lwl.0 % u32::from(self.strings)) as u16)
    }

    /// Whether a block address is within this geometry.
    #[must_use]
    pub fn contains_block(&self, addr: BlockAddr) -> bool {
        addr.chip.0 < self.chips
            && addr.plane.0 < self.planes_per_chip
            && addr.block.0 < self.blocks_per_plane
    }

    /// Iterator over every block address in the array, chip-major.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        let planes = self.planes_per_chip;
        let blocks = self.blocks_per_plane;
        (0..self.chips).flat_map(move |c| {
            (0..planes).flat_map(move |p| {
                (0..blocks).map(move |b| BlockAddr::new(ChipId(c), PlaneId(p), BlockId(b)))
            })
        })
    }

    /// Iterator over the blocks of one plane.
    pub fn plane_blocks(&self, chip: ChipId, plane: PlaneId) -> impl Iterator<Item = BlockAddr> {
        (0..self.blocks_per_plane).map(move |b| BlockAddr::new(chip, plane, BlockId(b)))
    }

    /// Iterator over every logical word-line index of a block, in program order.
    pub fn lwls(&self) -> impl Iterator<Item = LwlId> {
        (0..self.lwls_per_block()).map(LwlId)
    }

    /// Flat index of a block address, suitable for dense tables.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    #[must_use]
    pub fn block_index(&self, addr: BlockAddr) -> usize {
        assert!(self.contains_block(addr), "block address {addr} out of range");
        (usize::from(addr.chip.0) * usize::from(self.planes_per_chip) + usize::from(addr.plane.0))
            * self.blocks_per_plane as usize
            + addr.block.0 as usize
    }

    /// Total number of pages in the array.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * u64::from(self.pages_per_block())
    }

    /// Flat offset of a page within its block: `lwl * pages_per_lwl +
    /// page.index()`, i.e. program order within the block.
    ///
    /// # Panics
    ///
    /// Panics if the word-line or page type is out of range for this
    /// geometry's cell type.
    #[must_use]
    pub fn page_offset_in_block(&self, ppa: PageAddr) -> usize {
        assert!(ppa.wl.lwl.0 < self.lwls_per_block(), "lwl {} out of range", ppa.wl.lwl);
        let pt = ppa.page.index();
        assert!(pt < self.pages_per_lwl(), "page type {} invalid for {:?}", ppa.page, self.cell);
        ppa.wl.lwl.0 as usize * self.pages_per_lwl() as usize + pt as usize
    }

    /// Stable flat index of a page address, suitable for dense tables:
    /// `block_index * pages_per_block + page_offset_in_block`. Pages of one
    /// block are contiguous and ordered by `(lwl, page type)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    #[must_use]
    pub fn page_index(&self, ppa: PageAddr) -> usize {
        self.block_index(ppa.wl.block) * self.pages_per_block() as usize
            + self.page_offset_in_block(ppa)
    }

    /// Inverse of [`Geometry::page_offset_in_block`]: the page address at a
    /// flat in-block offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= pages_per_block()`.
    #[must_use]
    pub fn page_at_offset(&self, block: BlockAddr, offset: usize) -> PageAddr {
        assert!(offset < self.pages_per_block() as usize, "page offset {offset} out of range");
        let ppl = self.pages_per_lwl() as usize;
        let lwl = LwlId((offset / ppl) as u32);
        let pt = PageType::from_index(self.cell, (offset % ppl) as u32)
            .expect("offset % pages_per_lwl is a valid page type");
        block.wl(lwl).page(pt)
    }

    /// Number of independently schedulable chip/plane groups (one command
    /// queue per plane of every chip).
    #[must_use]
    pub fn chip_plane_groups(&self) -> usize {
        usize::from(self.chips) * usize::from(self.planes_per_chip)
    }

    /// Flat index of a block's chip/plane group, in `0..chip_plane_groups()`.
    #[must_use]
    pub fn chip_plane_index(&self, addr: BlockAddr) -> usize {
        usize::from(addr.chip.0) * usize::from(self.planes_per_chip) + usize::from(addr.plane.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_matches_section_vi() {
        let g = Geometry::paper_platform();
        assert_eq!(g.lwls_per_block(), 384);
        assert_eq!(g.pages_per_block(), 1152);
        assert_eq!(g.pages_per_lwl(), 3);
    }

    #[test]
    fn lwl_layer_string_roundtrip() {
        let g = Geometry::small_test();
        for layer in 0..g.pwl_layers() {
            for s in 0..g.strings() {
                let lwl = g.lwl_of(PwlLayer(layer), StringId(s));
                assert_eq!(g.layer_of(lwl), PwlLayer(layer));
                assert_eq!(g.string_of(lwl), StringId(s));
            }
        }
    }

    #[test]
    fn lwl_order_is_layer_major() {
        let g = Geometry::small_test();
        assert_eq!(g.lwl_of(PwlLayer(0), StringId(0)), LwlId(0));
        assert_eq!(g.lwl_of(PwlLayer(0), StringId(3)), LwlId(3));
        assert_eq!(g.lwl_of(PwlLayer(1), StringId(0)), LwlId(4));
    }

    #[test]
    fn blocks_iterator_covers_everything_once() {
        let g = Geometry::new(2, 2, 3, 4, 4, CellType::Tlc);
        let all: Vec<_> = g.blocks().collect();
        assert_eq!(all.len() as u64, g.total_blocks());
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "no duplicates");
        for b in &all {
            assert!(g.contains_block(*b));
        }
    }

    #[test]
    fn block_index_is_dense_and_unique() {
        let g = Geometry::new(2, 2, 3, 4, 4, CellType::Tlc);
        let mut seen = vec![false; g.total_blocks() as usize];
        for b in g.blocks() {
            let i = g.block_index(b);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn page_index_is_dense_unique_and_block_contiguous() {
        let g = Geometry::new(2, 2, 3, 2, 2, CellType::Tlc);
        let mut seen = vec![false; g.total_pages() as usize];
        for b in g.blocks() {
            let base = g.block_index(b) * g.pages_per_block() as usize;
            for (off, lwl) in g.lwls().enumerate() {
                for (pi, pt) in PageType::for_cell(g.cell()).iter().enumerate() {
                    let ppa = b.wl(lwl).page(*pt);
                    let idx = g.page_index(ppa);
                    // Contiguous within the block, ordered by (lwl, page).
                    assert_eq!(idx, base + off * g.pages_per_lwl() as usize + pi);
                    assert!(!seen[idx], "duplicate page index {idx}");
                    seen[idx] = true;
                    // Offset/address roundtrip.
                    assert_eq!(g.page_at_offset(b, g.page_offset_in_block(ppa)), ppa);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "page indices cover the whole array");
    }

    #[test]
    fn chip_plane_index_is_dense() {
        let g = Geometry::new(2, 3, 4, 2, 2, CellType::Slc);
        assert_eq!(g.chip_plane_groups(), 6);
        let mut seen = [false; 6];
        for b in g.blocks() {
            seen[g.chip_plane_index(b)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_index_rejects_out_of_range_lwl() {
        let g = Geometry::small_test();
        let b = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0));
        let _ = g.page_index(b.wl(LwlId(g.lwls_per_block())).page(PageType::Lsb));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_of_panics_out_of_range() {
        let g = Geometry::small_test();
        let _ = g.layer_of(LwlId(g.lwls_per_block()));
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_rejected() {
        let _ = Geometry::new(0, 1, 1, 1, 1, CellType::Slc);
    }

    #[test]
    fn contains_block_rejects_out_of_range() {
        let g = Geometry::small_test();
        assert!(!g.contains_block(BlockAddr::new(ChipId(4), PlaneId(0), BlockId(0))));
        assert!(!g.contains_block(BlockAddr::new(ChipId(0), PlaneId(1), BlockId(0))));
        assert!(!g.contains_block(BlockAddr::new(ChipId(0), PlaneId(0), BlockId(64))));
    }
}
