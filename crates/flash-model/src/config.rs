//! Top-level flash configuration: geometry + variation parameters.

use crate::geometry::Geometry;
use crate::ids::CellType;
use crate::variation::VariationConfig;

/// Complete configuration of a flash array.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlashConfig {
    /// Physical shape of the array.
    pub geometry: Geometry,
    /// Process-variation and timing parameters.
    pub variation: VariationConfig,
}

impl FlashConfig {
    /// Configuration mirroring the paper's experimental platform: 4 pools of
    /// 1,600 TLC blocks with 96 layers × 4 strings (§VI-A, Table IV).
    #[must_use]
    pub fn paper_platform() -> Self {
        FlashConfig { geometry: Geometry::paper_platform(), variation: VariationConfig::default() }
    }

    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn small_test() -> Self {
        FlashConfig { geometry: Geometry::small_test(), variation: VariationConfig::default() }
    }

    /// Starts a builder.
    #[must_use]
    pub fn builder() -> FlashConfigBuilder {
        FlashConfigBuilder::default()
    }
}

/// Builder for [`FlashConfig`].
///
/// ```
/// use flash_model::{FlashConfig, CellType};
///
/// let config = FlashConfig::builder()
///     .chips(4)
///     .blocks_per_plane(200)
///     .pwl_layers(48)
///     .strings(4)
///     .cell(CellType::Tlc)
///     .build();
/// assert_eq!(config.geometry.lwls_per_block(), 192);
/// ```
#[derive(Debug, Clone)]
pub struct FlashConfigBuilder {
    chips: u16,
    planes_per_chip: u16,
    blocks_per_plane: u32,
    pwl_layers: u16,
    strings: u16,
    cell: CellType,
    variation: VariationConfig,
}

impl Default for FlashConfigBuilder {
    fn default() -> Self {
        let g = Geometry::paper_platform();
        FlashConfigBuilder {
            chips: g.chips(),
            planes_per_chip: g.planes_per_chip(),
            blocks_per_plane: g.blocks_per_plane(),
            pwl_layers: g.pwl_layers(),
            strings: g.strings(),
            cell: g.cell(),
            variation: VariationConfig::default(),
        }
    }
}

impl FlashConfigBuilder {
    /// Sets the number of chips.
    #[must_use]
    pub fn chips(mut self, chips: u16) -> Self {
        self.chips = chips;
        self
    }

    /// Sets the number of planes per chip.
    #[must_use]
    pub fn planes_per_chip(mut self, planes: u16) -> Self {
        self.planes_per_chip = planes;
        self
    }

    /// Sets the number of blocks per plane.
    #[must_use]
    pub fn blocks_per_plane(mut self, blocks: u32) -> Self {
        self.blocks_per_plane = blocks;
        self
    }

    /// Sets the number of physical word-line layers.
    #[must_use]
    pub fn pwl_layers(mut self, layers: u16) -> Self {
        self.pwl_layers = layers;
        self
    }

    /// Sets the number of strings per block.
    #[must_use]
    pub fn strings(mut self, strings: u16) -> Self {
        self.strings = strings;
        self
    }

    /// Sets the cell technology.
    #[must_use]
    pub fn cell(mut self, cell: CellType) -> Self {
        self.cell = cell;
        self
    }

    /// Replaces the variation parameters.
    #[must_use]
    pub fn variation(mut self, variation: VariationConfig) -> Self {
        self.variation = variation;
        self
    }

    /// Builds the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any geometry dimension is zero (see [`Geometry::new`]).
    #[must_use]
    pub fn build(self) -> FlashConfig {
        FlashConfig {
            geometry: Geometry::new(
                self.chips,
                self.planes_per_chip,
                self.blocks_per_plane,
                self.pwl_layers,
                self.strings,
                self.cell,
            ),
            variation: self.variation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_platform() {
        assert_eq!(FlashConfig::builder().build(), FlashConfig::paper_platform());
    }

    #[test]
    fn builder_overrides_apply() {
        let c = FlashConfig::builder().chips(2).blocks_per_plane(10).build();
        assert_eq!(c.geometry.chips(), 2);
        assert_eq!(c.geometry.blocks_per_plane(), 10);
    }

    #[test]
    fn variation_override_applies() {
        let v = VariationConfig { noise_sigma_us: 0.0, ..VariationConfig::default() };
        let c = FlashConfig::builder().variation(v.clone()).build();
        assert_eq!(c.variation, v);
    }
}
