//! Raw bit error rate (RBER) model.
//!
//! The paper's §VI-C evaluates QSTR-MED "under high failure rates when an SSD
//! drive is subject to wear and tear". This small model supplies the failure
//! side: RBER grows exponentially with P/E cycles and retention time, and
//! differs by physical word-line layer (edge layers are worse, matching the
//! V-shaped channel-aperture structure).

use crate::geometry::Geometry;
use crate::ids::{BlockAddr, PwlLayer};
use crate::sampler::Sampler;

const TAG_BER_BLOCK: u64 = 0x70;

/// Raw bit error rate model.
#[derive(Debug, Clone)]
pub struct BerModel {
    base_rber: f64,
    pe_growth_per_kcycle: f64,
    retention_growth_per_khour: f64,
    layer_edge_factor: f64,
    block_sigma: f64,
    sampler: Sampler,
}

impl BerModel {
    /// Model with typical 3D-TLC parameters.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        BerModel {
            base_rber: 2e-4,
            pe_growth_per_kcycle: 0.9,
            retention_growth_per_khour: 0.5,
            layer_edge_factor: 0.6,
            block_sigma: 0.25,
            sampler: Sampler::new(seed).derive(0x8e5),
        }
    }

    /// Raw bit error rate of one layer of a block after `pe` cycles and
    /// `retention_hours` of data retention.
    #[must_use]
    pub fn rber(
        &self,
        geo: &Geometry,
        addr: BlockAddr,
        layer: PwlLayer,
        pe: u32,
        retention_hours: f64,
    ) -> f64 {
        let layers = f64::from(geo.pwl_layers());
        let x = if layers > 1.0 { 2.0 * f64::from(layer.0) / (layers - 1.0) - 1.0 } else { 0.0 };
        let layer_mult = 1.0 + self.layer_edge_factor * x * x;
        let block_mult = (self.block_sigma
            * self.sampler.normal(&[
                TAG_BER_BLOCK,
                u64::from(addr.chip.0),
                u64::from(addr.plane.0),
                u64::from(addr.block.0),
            ]))
        .exp();
        self.base_rber
            * (self.pe_growth_per_kcycle * f64::from(pe) / 1000.0).exp()
            * (self.retention_growth_per_khour * retention_hours / 1000.0).exp()
            * layer_mult
            * block_mult
    }

    /// Expected number of error bits when reading a page of `page_bytes`.
    #[must_use]
    pub fn expected_error_bits(
        &self,
        geo: &Geometry,
        addr: BlockAddr,
        layer: PwlLayer,
        pe: u32,
        retention_hours: f64,
        page_bytes: u32,
    ) -> f64 {
        self.rber(geo, addr, layer, pe, retention_hours) * f64::from(page_bytes) * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ChipId, PlaneId};

    fn addr(b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b))
    }

    #[test]
    fn rber_grows_with_pe() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let r0 = m.rber(&g, addr(0), PwlLayer(4), 0, 0.0);
        let r3k = m.rber(&g, addr(0), PwlLayer(4), 3000, 0.0);
        assert!(r3k > r0 * 5.0, "{r0} -> {r3k}");
    }

    #[test]
    fn rber_grows_with_retention() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let r0 = m.rber(&g, addr(0), PwlLayer(4), 1000, 0.0);
        let r1 = m.rber(&g, addr(0), PwlLayer(4), 1000, 2000.0);
        assert!(r1 > r0);
    }

    #[test]
    fn edge_layers_are_worse() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let edge = m.rber(&g, addr(0), PwlLayer(0), 0, 0.0);
        let mid = m.rber(&g, addr(0), PwlLayer(4), 0, 0.0);
        assert!(edge > mid);
    }

    #[test]
    fn blocks_differ_but_deterministically() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let a = m.rber(&g, addr(0), PwlLayer(2), 0, 0.0);
        let b = m.rber(&g, addr(1), PwlLayer(2), 0, 0.0);
        assert_ne!(a, b);
        assert_eq!(a, m.rber(&g, addr(0), PwlLayer(2), 0, 0.0));
    }

    #[test]
    fn expected_error_bits_scales_with_page_size() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let e16 = m.expected_error_bits(&g, addr(0), PwlLayer(2), 0, 0.0, 16384);
        let e4 = m.expected_error_bits(&g, addr(0), PwlLayer(2), 0, 0.0, 4096);
        assert!((e16 / e4 - 4.0).abs() < 1e-9);
    }
}
