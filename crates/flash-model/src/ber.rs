//! Raw bit error rate (RBER) model.
//!
//! The paper's §VI-C evaluates QSTR-MED "under high failure rates when an SSD
//! drive is subject to wear and tear". This small model supplies the failure
//! side: RBER grows exponentially with P/E cycles, retention time and
//! accumulated read disturb, and differs by physical word-line layer (edge
//! layers are worse, matching the V-shaped channel-aperture structure).

use crate::geometry::Geometry;
use crate::ids::{BlockAddr, PwlLayer};
use crate::sampler::Sampler;

const TAG_BER_BLOCK: u64 = 0x70;

/// Raw bit error rate model.
#[derive(Debug, Clone)]
pub struct BerModel {
    base_rber: f64,
    pe_growth_per_kcycle: f64,
    retention_growth_per_khour: f64,
    disturb_growth_per_kread: f64,
    layer_edge_factor: f64,
    block_sigma: f64,
    sampler: Sampler,
}

impl BerModel {
    /// Model with typical 3D-TLC parameters.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        BerModel {
            base_rber: 2e-4,
            pe_growth_per_kcycle: 0.9,
            retention_growth_per_khour: 0.5,
            disturb_growth_per_kread: 0.8,
            layer_edge_factor: 0.6,
            block_sigma: 0.25,
            sampler: Sampler::new(seed).derive(0x8e5),
        }
    }

    /// Clamps a garbage retention to "no aging": NaN (an uninitialized
    /// age), a negative (a skewed clock) and infinity all collapse to 0.0
    /// rather than poisoning the exponential with NaN/inf RBER.
    fn sanitize_retention(retention_hours: f64) -> f64 {
        if retention_hours.is_finite() {
            retention_hours.max(0.0)
        } else {
            0.0
        }
    }

    /// Raw bit error rate of one layer of a block after `pe` cycles,
    /// `retention_hours` of data retention and `read_disturbs` disturbing
    /// reads (reads of *sibling* pages since the block's last erase).
    ///
    /// `retention_hours` outside `[0, ∞)` is clamped to 0 (release builds)
    /// and flagged (debug builds) — callers own their clock arithmetic, but
    /// a bad age must degrade to "fresh data", never to NaN error bits.
    ///
    /// With zero disturbs and zero retention the disturb/retention factors
    /// are exactly 1.0, so enabling the bookkeeping without any accumulated
    /// aging leaves every RBER bit-identical.
    #[must_use]
    pub fn rber(
        &self,
        geo: &Geometry,
        addr: BlockAddr,
        layer: PwlLayer,
        pe: u32,
        retention_hours: f64,
        read_disturbs: u64,
    ) -> f64 {
        debug_assert!(
            retention_hours.is_finite() && retention_hours >= 0.0,
            "retention_hours must be finite and non-negative, got {retention_hours}"
        );
        let retention_hours = Self::sanitize_retention(retention_hours);
        let layers = f64::from(geo.pwl_layers());
        let x = if layers > 1.0 { 2.0 * f64::from(layer.0) / (layers - 1.0) - 1.0 } else { 0.0 };
        let layer_mult = 1.0 + self.layer_edge_factor * x * x;
        let block_mult = (self.block_sigma
            * self.sampler.normal(&[
                TAG_BER_BLOCK,
                u64::from(addr.chip.0),
                u64::from(addr.plane.0),
                u64::from(addr.block.0),
            ]))
        .exp();
        self.base_rber
            * (self.pe_growth_per_kcycle * f64::from(pe) / 1000.0).exp()
            * (self.retention_growth_per_khour * retention_hours / 1000.0).exp()
            * layer_mult
            * block_mult
            * (self.disturb_growth_per_kread * read_disturbs as f64 / 1000.0).exp()
    }

    /// Expected number of error bits when reading a page of `page_bytes`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn expected_error_bits(
        &self,
        geo: &Geometry,
        addr: BlockAddr,
        layer: PwlLayer,
        pe: u32,
        retention_hours: f64,
        read_disturbs: u64,
        page_bytes: u32,
    ) -> f64 {
        self.rber(geo, addr, layer, pe, retention_hours, read_disturbs)
            * f64::from(page_bytes)
            * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ChipId, PlaneId};

    fn addr(b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b))
    }

    #[test]
    fn rber_grows_with_pe() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let r0 = m.rber(&g, addr(0), PwlLayer(4), 0, 0.0, 0);
        let r3k = m.rber(&g, addr(0), PwlLayer(4), 3000, 0.0, 0);
        assert!(r3k > r0 * 5.0, "{r0} -> {r3k}");
    }

    #[test]
    fn rber_grows_with_retention() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let r0 = m.rber(&g, addr(0), PwlLayer(4), 1000, 0.0, 0);
        let r1 = m.rber(&g, addr(0), PwlLayer(4), 1000, 2000.0, 0);
        assert!(r1 > r0);
    }

    #[test]
    fn rber_grows_with_read_disturb() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let quiet = m.rber(&g, addr(0), PwlLayer(4), 1000, 0.0, 0);
        let hammered = m.rber(&g, addr(0), PwlLayer(4), 1000, 0.0, 5000);
        assert!(hammered > quiet * 5.0, "{quiet} -> {hammered}");
    }

    #[test]
    fn zero_disturbs_leave_rber_bit_identical() {
        // exp(0) == 1.0 exactly, so the disturb factor is a bitwise no-op
        // at zero count — the contract that lets disturb tracking default
        // on without perturbing any golden output.
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let a = m.rber(&g, addr(3), PwlLayer(2), 700, 12.5, 0);
        let b = a * 1.0f64;
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(
            m.expected_error_bits(&g, addr(3), PwlLayer(2), 700, 12.5, 0, 16384).to_bits(),
            (a * 16384.0 * 8.0).to_bits()
        );
    }

    #[test]
    fn garbage_retention_clamps_to_fresh_data() {
        // Satellite hardening: NaN / negative / infinite retention must
        // degrade to "no aging", never to NaN or infinite error bits. The
        // clamp itself is testable; debug builds additionally flag the
        // caller via debug_assert, so exercise the sanitizer directly.
        for garbage in [f64::NAN, -3.0, f64::NEG_INFINITY, f64::INFINITY] {
            assert_eq!(BerModel::sanitize_retention(garbage), 0.0, "{garbage}");
        }
        assert_eq!(BerModel::sanitize_retention(0.0), 0.0);
        assert_eq!(BerModel::sanitize_retention(17.25), 17.25);
    }

    #[test]
    fn edge_layers_are_worse() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let edge = m.rber(&g, addr(0), PwlLayer(0), 0, 0.0, 0);
        let mid = m.rber(&g, addr(0), PwlLayer(4), 0, 0.0, 0);
        assert!(edge > mid);
    }

    #[test]
    fn blocks_differ_but_deterministically() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let a = m.rber(&g, addr(0), PwlLayer(2), 0, 0.0, 0);
        let b = m.rber(&g, addr(1), PwlLayer(2), 0, 0.0, 0);
        assert_ne!(a, b);
        assert_eq!(a, m.rber(&g, addr(0), PwlLayer(2), 0, 0.0, 0));
    }

    #[test]
    fn expected_error_bits_scales_with_page_size() {
        let m = BerModel::new(1);
        let g = Geometry::small_test();
        let e16 = m.expected_error_bits(&g, addr(0), PwlLayer(2), 0, 0.0, 0, 16384);
        let e4 = m.expected_error_bits(&g, addr(0), PwlLayer(2), 0, 0.0, 0, 4096);
        assert!((e16 / e4 - 4.0).abs() < 1e-9);
    }
}
