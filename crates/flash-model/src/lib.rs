//! # flash-model
//!
//! A deterministic, seeded **process-variation model of 3D NAND flash
//! memory**, built as the hardware substrate for reproducing the HPCA 2024
//! paper *"Are Superpages Super-fast? Distilling Flash Blocks to Unify Flash
//! Pages of a Superpage in an SSD"*.
//!
//! The paper characterizes real SK hynix 3D-TLC chips; this crate replaces
//! that testbed with a synthetic chip whose latencies have the same
//! *statistical structure*:
//!
//! * **chip-to-chip variation** — each chip has its own word-line-layer
//!   latency profile (per-layer-group operating-parameter offsets plus a
//!   constant chip offset), so blocks from different chips never match
//!   perfectly (the irreducible floor the paper's "local optimal" hits);
//! * **layer-to-layer variation** — a V-shaped channel-aperture curve across
//!   the 96 physical word-line layers, grouped into vendor parameter groups;
//! * **block-to-block variation** — a per-block speed deviation with spatial
//!   correlation along the block index (the flat lines with occasional spikes
//!   of the paper's Figure 5) plus rare outlier blocks;
//! * **string patterns** — per physical-word-line layer, two of the four
//!   strings are "fast"; which two is a stable per-block trait drawn from a
//!   small set of pattern families. This is exactly the structure the paper's
//!   STR-rank / STR-median / QSTR-MED schemes learn and exploit;
//! * **ISPP quantization** — program latencies fall on a pulse grid
//!   (~18.4 µs), erase latencies on an erase-loop grid;
//! * **wear** — program latency drifts down and erase latency drifts up with
//!   P/E cycles, and noise grows, but the *structure* stays stable (the
//!   paper's Figure 15 robustness result).
//!
//! Latency is a *pure function* of `(seed, address, P/E cycle)`: observing a
//! block twice yields identical numbers, which is what makes online
//! characterization (the paper's "gathering" step) meaningful.
//!
//! # Example
//!
//! ```
//! use flash_model::{FlashArray, FlashConfig, BlockAddr, ChipId, PlaneId, BlockId};
//!
//! # fn main() -> Result<(), flash_model::FlashError> {
//! let config = FlashConfig::small_test();
//! let mut array = FlashArray::new(config, 7);
//! let block = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(3));
//!
//! let t_ers = array.erase_block(block)?;
//! let pages = vec![0u64; array.geometry().pages_per_lwl() as usize];
//! let t_pgm = array.program_wl(block.wl(flash_model::LwlId(0)), &pages)?;
//! assert!(t_ers > 0.0 && t_pgm > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod ber;
mod chip;
mod config;
mod error;
mod fault;
mod geometry;
mod ids;
mod latency;
mod retry;
mod sampler;
mod spor;
mod variation;
mod wear;

pub use array::{FlashArray, MpOutcome};
pub use ber::BerModel;
pub use chip::BlockPhase;
pub use config::{FlashConfig, FlashConfigBuilder};
pub use error::FlashError;
pub use fault::{FaultConfig, FaultInjector};
pub use geometry::Geometry;
pub use ids::{
    BlockAddr, BlockId, CellType, ChipId, LwlId, PageAddr, PageType, PlaneId, PwlLayer, StringId,
    WlAddr,
};
pub use latency::{LatencyCache, LatencyModel};
pub use retry::RetryModel;
pub use sampler::Sampler;
pub use spor::{BlockSummaryRecord, PageOob, SealRecord};
pub use variation::{StringMask, VariationConfig};
pub use wear::WearState;

/// Convenient result alias for flash operations.
pub type Result<T> = std::result::Result<T, FlashError>;
