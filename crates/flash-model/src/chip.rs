//! Stateful per-block bookkeeping: phases, write pointers and page data.

use crate::error::FlashError;
use crate::geometry::Geometry;
use crate::ids::{BlockAddr, LwlId, PageAddr};
use crate::spor::PageOob;
use crate::wear::WearState;
use crate::Result;
use std::cell::{Cell, RefCell};

/// Lifecycle phase of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockPhase {
    /// Never erased since power-on; must be erased before programming.
    #[default]
    Fresh,
    /// Erased and empty.
    Erased,
    /// Partially programmed; the next word-line is tracked.
    Open,
    /// Every word-line is programmed.
    Full,
    /// A program or erase on this block reported a media fault. Pages
    /// programmed before the failure stay readable (so live data can be
    /// relocated), but further programs and erases are rejected: the block
    /// must be retired.
    Failed,
}

/// Mutable state of one block.
#[derive(Debug, Clone)]
pub(crate) struct BlockState {
    pub phase: BlockPhase,
    pub next_lwl: LwlId,
    pub wear: WearState,
    /// Page payload tags, indexed by `lwl * pages_per_lwl + page_index`;
    /// allocated lazily on the first program.
    pages: Option<Box<[u64]>>,
    /// Out-of-band spare-area metadata, same indexing and lifetime as
    /// `pages`; allocated lazily on the first program that carries OOB.
    oob: Option<Box<[PageOob]>>,
    /// Word-line whose program was interrupted by a power loss. A torn
    /// word-line exposes neither payload nor OOB, and the block takes no
    /// further programs until erased.
    pub torn_lwl: Option<LwlId>,
    /// Payload reads of any page in this block since the last erase.
    /// Interior mutability because reads take `&self`; cleared by erase.
    block_reads: Cell<u64>,
    /// Per-page own-read counts, same indexing as `pages` and sized lazily
    /// on the first recorded read. A page's *disturb* count is
    /// `block_reads - own_reads[idx]`: reads of sibling word-lines stress
    /// a victim page's cells, reads of the page itself do not.
    own_reads: RefCell<Vec<u64>>,
}

impl Default for BlockState {
    fn default() -> Self {
        BlockState {
            phase: BlockPhase::Fresh,
            next_lwl: LwlId(0),
            wear: WearState::new(),
            pages: None,
            oob: None,
            torn_lwl: None,
            block_reads: Cell::new(0),
            own_reads: RefCell::new(Vec::new()),
        }
    }
}

impl BlockState {
    pub(crate) fn erase(&mut self) {
        self.phase = BlockPhase::Erased;
        self.next_lwl = LwlId(0);
        self.wear.record_erase();
        self.pages = None;
        self.oob = None;
        self.torn_lwl = None;
        self.block_reads.set(0);
        self.own_reads.borrow_mut().clear();
    }

    /// Records one disturbing payload read of page `idx` (of `total` pages
    /// in the block). Called by the array only when disturb tracking is on,
    /// so untracked runs never allocate the counter vector.
    pub(crate) fn record_read_disturb(&self, total: usize, idx: usize) {
        self.block_reads.set(self.block_reads.get() + 1);
        let mut own = self.own_reads.borrow_mut();
        if own.len() < total {
            own.resize(total, 0);
        }
        own[idx] += 1;
    }

    /// Accumulated read disturb of page `idx`: sibling reads since the
    /// block's last erase. Zero when tracking never recorded anything.
    pub(crate) fn read_disturbs(&self, idx: usize) -> u64 {
        let own = self.own_reads.borrow().get(idx).copied().unwrap_or(0);
        self.block_reads.get().saturating_sub(own)
    }

    /// Marks the block failed after a media fault, preserving already-
    /// programmed pages for relocation.
    pub(crate) fn mark_failed(&mut self) {
        self.phase = BlockPhase::Failed;
    }

    /// The legality checks of [`BlockState::program_wl`] without the
    /// mutation, so a fault draw can be taken on an operation known legal.
    pub(crate) fn check_program(
        &self,
        geo: &Geometry,
        addr: BlockAddr,
        lwl: LwlId,
        data: &[u64],
    ) -> Result<()> {
        let per_wl = geo.pages_per_lwl();
        if data.len() != per_wl as usize {
            return Err(FlashError::DataLengthMismatch { expected: per_wl, got: data.len() });
        }
        match self.phase {
            BlockPhase::Fresh => return Err(FlashError::ProgramOnUnerased { addr }),
            BlockPhase::Full => return Err(FlashError::BlockFull { addr }),
            BlockPhase::Failed => return Err(FlashError::ProgramFailed { wl: addr.wl(lwl) }),
            BlockPhase::Erased | BlockPhase::Open => {}
        }
        if let Some(torn) = self.torn_lwl {
            return Err(FlashError::TornWordLine { wl: addr.wl(torn) });
        }
        if lwl != self.next_lwl {
            return Err(FlashError::ProgramOutOfOrder { addr, expected: self.next_lwl, got: lwl });
        }
        Ok(())
    }

    pub(crate) fn program_wl(
        &mut self,
        geo: &Geometry,
        addr: BlockAddr,
        lwl: LwlId,
        data: &[u64],
        oob: Option<&[PageOob]>,
    ) -> Result<()> {
        self.check_program(geo, addr, lwl, data)?;
        let per_wl = geo.pages_per_lwl();
        let total = (geo.pages_per_block()) as usize;
        let pages = self.pages.get_or_insert_with(|| vec![0u64; total].into_boxed_slice());
        let base = (lwl.0 * per_wl) as usize;
        pages[base..base + per_wl as usize].copy_from_slice(data);
        if let Some(oob) = oob {
            let spare =
                self.oob.get_or_insert_with(|| vec![PageOob::default(); total].into_boxed_slice());
            spare[base..base + per_wl as usize].copy_from_slice(oob);
        }
        self.next_lwl = LwlId(lwl.0 + 1);
        self.phase = if self.next_lwl.0 == geo.lwls_per_block() {
            BlockPhase::Full
        } else {
            BlockPhase::Open
        };
        Ok(())
    }

    /// Marks `lwl` as torn by a power loss mid-program. The word-line's
    /// pages become unreadable and the block takes no further programs until
    /// erased; the write pointer is *not* advanced (the program never
    /// completed).
    pub(crate) fn mark_torn(&mut self, lwl: LwlId) {
        self.torn_lwl = Some(lwl);
    }

    fn check_readable(&self, page: PageAddr) -> Result<()> {
        let lwl = page.wl.lwl;
        if self.torn_lwl == Some(lwl) {
            return Err(FlashError::TornWordLine { wl: page.wl });
        }
        let programmed = match self.phase {
            BlockPhase::Full => true,
            BlockPhase::Open | BlockPhase::Failed => lwl < self.next_lwl,
            BlockPhase::Fresh | BlockPhase::Erased => false,
        };
        if !programmed {
            return Err(FlashError::ReadUnwritten { page });
        }
        Ok(())
    }

    pub(crate) fn read_page(&self, geo: &Geometry, page: PageAddr) -> Result<u64> {
        self.check_readable(page)?;
        let pages = self.pages.as_ref().ok_or(FlashError::ReadUnwritten { page })?;
        let idx = (page.wl.lwl.0 * geo.pages_per_lwl() + page.page.index()) as usize;
        Ok(pages[idx])
    }

    /// Reads the spare-area OOB metadata of one page, under the same
    /// readability rules as the payload. Pages programmed without OOB report
    /// the filler default.
    pub(crate) fn read_oob(&self, geo: &Geometry, page: PageAddr) -> Result<PageOob> {
        self.check_readable(page)?;
        let idx = (page.wl.lwl.0 * geo.pages_per_lwl() + page.page.index()) as usize;
        Ok(self.oob.as_ref().map_or_else(PageOob::default, |o| o[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ChipId, PageType, PlaneId};

    fn geo() -> Geometry {
        Geometry::small_test()
    }

    fn addr() -> BlockAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(0))
    }

    #[test]
    fn fresh_block_rejects_program() {
        let g = geo();
        let mut b = BlockState::default();
        let data = vec![1; g.pages_per_lwl() as usize];
        assert_eq!(
            b.program_wl(&g, addr(), LwlId(0), &data, None),
            Err(FlashError::ProgramOnUnerased { addr: addr() })
        );
    }

    #[test]
    fn program_must_be_sequential() {
        let g = geo();
        let mut b = BlockState::default();
        b.erase();
        let data = vec![1; g.pages_per_lwl() as usize];
        b.program_wl(&g, addr(), LwlId(0), &data, None).unwrap();
        let err = b.program_wl(&g, addr(), LwlId(2), &data, None).unwrap_err();
        assert!(matches!(
            err,
            FlashError::ProgramOutOfOrder { expected: LwlId(1), got: LwlId(2), .. }
        ));
    }

    #[test]
    fn full_block_rejects_more_programs() {
        let g = geo();
        let mut b = BlockState::default();
        b.erase();
        let data = vec![1; g.pages_per_lwl() as usize];
        for lwl in g.lwls() {
            b.program_wl(&g, addr(), lwl, &data, None).unwrap();
        }
        assert_eq!(b.phase, BlockPhase::Full);
        let err = b.program_wl(&g, addr(), LwlId(0), &data, None).unwrap_err();
        assert!(matches!(err, FlashError::BlockFull { .. }));
    }

    #[test]
    fn read_returns_programmed_data() {
        let g = geo();
        let mut b = BlockState::default();
        b.erase();
        b.program_wl(&g, addr(), LwlId(0), &[10, 20, 30], None).unwrap();
        let wl = addr().wl(LwlId(0));
        assert_eq!(b.read_page(&g, wl.page(PageType::Lsb)).unwrap(), 10);
        assert_eq!(b.read_page(&g, wl.page(PageType::Csb)).unwrap(), 20);
        assert_eq!(b.read_page(&g, wl.page(PageType::Msb)).unwrap(), 30);
    }

    #[test]
    fn read_of_unwritten_page_fails() {
        let g = geo();
        let mut b = BlockState::default();
        b.erase();
        b.program_wl(&g, addr(), LwlId(0), &[1, 2, 3], None).unwrap();
        let err = b.read_page(&g, addr().wl(LwlId(1)).page(PageType::Lsb)).unwrap_err();
        assert!(matches!(err, FlashError::ReadUnwritten { .. }));
    }

    #[test]
    fn erase_clears_data_and_counts_wear() {
        let g = geo();
        let mut b = BlockState::default();
        b.erase();
        b.program_wl(&g, addr(), LwlId(0), &[1, 2, 3], None).unwrap();
        b.erase();
        assert_eq!(b.wear.pe_cycles(), 2);
        assert_eq!(b.phase, BlockPhase::Erased);
        assert!(b.read_page(&g, addr().wl(LwlId(0)).page(PageType::Lsb)).is_err());
    }

    #[test]
    fn wrong_data_length_rejected() {
        let g = geo();
        let mut b = BlockState::default();
        b.erase();
        let err = b.program_wl(&g, addr(), LwlId(0), &[1, 2], None).unwrap_err();
        assert_eq!(err, FlashError::DataLengthMismatch { expected: 3, got: 2 });
    }

    #[test]
    fn sibling_reads_disturb_a_page_but_own_reads_do_not() {
        let g = geo();
        let total = g.pages_per_block() as usize;
        let b = BlockState::default();
        // Three reads of page 0, one of page 1: page 0 suffered exactly the
        // sibling read, page 1 the three reads of page 0, page 2 all four.
        for _ in 0..3 {
            b.record_read_disturb(total, 0);
        }
        b.record_read_disturb(total, 1);
        assert_eq!(b.read_disturbs(0), 1);
        assert_eq!(b.read_disturbs(1), 3);
        assert_eq!(b.read_disturbs(2), 4);
    }

    #[test]
    fn erase_resets_read_disturb() {
        let g = geo();
        let total = g.pages_per_block() as usize;
        let mut b = BlockState::default();
        b.erase();
        b.record_read_disturb(total, 0);
        b.record_read_disturb(total, 0);
        assert_eq!(b.read_disturbs(1), 2);
        b.erase();
        assert_eq!(b.read_disturbs(0), 0);
        assert_eq!(b.read_disturbs(1), 0);
    }

    #[test]
    fn untracked_blocks_report_zero_disturb() {
        let b = BlockState::default();
        assert_eq!(b.read_disturbs(0), 0);
        assert_eq!(b.read_disturbs(7), 0);
    }
}
