//! The stateful flash array: legal-operation enforcement plus latency
//! reporting, including multi-plane (MP) command semantics.

use crate::ber::BerModel;
use crate::chip::{BlockPhase, BlockState};
use crate::config::FlashConfig;
use crate::error::FlashError;
use crate::fault::{FaultConfig, FaultInjector};
use crate::geometry::Geometry;
use crate::ids::{BlockAddr, PageAddr, WlAddr};
use crate::latency::{LatencyCache, LatencyModel};
use crate::spor::{PageOob, SealRecord};
use crate::Result;

/// Outcome of a multi-plane command.
///
/// An MP command completes only when every member operation completes, so
/// the observable latency is the maximum; the *extra latency* (the paper's
/// optimization target) is `max - min`.
#[derive(Debug, Clone, PartialEq)]
pub struct MpOutcome {
    /// Latency of each member operation, in issue order, µs.
    pub member_us: Vec<f64>,
    /// Completion latency of the whole command (`max`), µs.
    pub total_us: f64,
    /// Extra latency (`max - min`), µs.
    pub extra_us: f64,
}

impl MpOutcome {
    /// Builds an outcome from individual member latencies. Exposed so an
    /// FTL issuing per-member operations (e.g. around a failed member) can
    /// report the identical command-level numbers. An empty slice yields an
    /// all-zero outcome.
    #[must_use]
    pub fn from_members(member_us: Vec<f64>) -> Self {
        if member_us.is_empty() {
            return MpOutcome { member_us, total_us: 0.0, extra_us: 0.0 };
        }
        let max = member_us.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = member_us.iter().copied().fold(f64::INFINITY, f64::min);
        MpOutcome { member_us, total_us: max, extra_us: max - min }
    }
}

/// A stateful flash array backed by the deterministic latency model.
///
/// Operations check NAND legality (erase-before-program, in-order word-line
/// programming, no reads of unwritten pages) and report synthesized
/// latencies that depend on each block's process-variation traits and wear.
///
/// ```
/// use flash_model::{FlashArray, FlashConfig, BlockAddr, ChipId, PlaneId, BlockId, LwlId};
///
/// # fn main() -> flash_model::Result<()> {
/// let mut array = FlashArray::new(FlashConfig::small_test(), 1);
/// // A multi-chip erase completes when its slowest member finishes.
/// let members: Vec<BlockAddr> =
///     (0..4).map(|c| BlockAddr::new(ChipId(c), PlaneId(0), BlockId(0))).collect();
/// let outcome = array.mp_erase(&members)?;
/// assert_eq!(outcome.total_us, outcome.member_us.iter().copied().fold(f64::MIN, f64::max));
/// assert!(outcome.extra_us >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlashArray {
    model: LatencyModel,
    ber: BerModel,
    fault: FaultInjector,
    blocks: Vec<BlockState>,
    /// Capacitor-backed metadata region holding per-superblock seal records;
    /// survives sudden power loss (the flush is covered by the SSD's
    /// power-loss-protection capacitors, as on real drives).
    seals: Vec<SealRecord>,
    /// Optional prefix memoization for program/erase latency synthesis
    /// ([`FlashArray::set_fast_latency`]); bit-identical to the uncached
    /// model, so enabling it never changes any reported latency.
    fast_latency: Option<LatencyCache>,
    /// Whether payload reads accumulate per-block read-disturb counters
    /// ([`FlashArray::set_track_disturb`]). Off by default: untracked runs
    /// never allocate counters, and a zero disturb count multiplies the
    /// RBER by exactly 1.0, so tracking state never perturbs latencies.
    track_disturb: bool,
}

impl FlashArray {
    /// Creates an array in the `Fresh` state for every block, with fault
    /// injection disabled (perfect media).
    #[must_use]
    pub fn new(config: FlashConfig, seed: u64) -> Self {
        Self::with_faults(config, seed, FaultConfig::default())
    }

    /// Creates an array whose media faults follow `fault` (seeded from the
    /// same master seed, decorrelated from latency and BER draws).
    #[must_use]
    pub fn with_faults(config: FlashConfig, seed: u64, fault: FaultConfig) -> Self {
        let model = LatencyModel::new(config.geometry.clone(), config.variation, seed);
        let blocks = vec![BlockState::default(); config.geometry.total_blocks() as usize];
        FlashArray {
            model,
            ber: BerModel::new(seed),
            fault: FaultInjector::new(fault, seed),
            blocks,
            seals: Vec::new(),
            fast_latency: None,
            track_disturb: false,
        }
    }

    /// Turns prefix memoization of program/erase latency synthesis on or
    /// off. The cache is an optimization only: every latency it returns is
    /// bit-identical to the uncached [`LatencyModel`] query, so this flag
    /// never changes simulation results — it trades a dense `f64` table per
    /// (block, word-line) for skipping the static sampler draws on every
    /// program and erase. Toggling clears the cache.
    pub fn set_fast_latency(&mut self, enabled: bool) {
        self.fast_latency = enabled.then(|| LatencyCache::new(self.model.geometry()));
    }

    /// Turns read-disturb tracking on or off. When on, every payload read
    /// bumps its block's disturb counters and
    /// [`FlashArray::expected_error_bits`] folds the victim page's
    /// accumulated sibling reads into the RBER. When off (the default) no
    /// counter is ever touched, and since a zero count contributes a factor
    /// of exactly `exp(0) == 1.0`, all reported error bits stay
    /// bit-identical to a build without the feature.
    pub fn set_track_disturb(&mut self, enabled: bool) {
        self.track_disturb = enabled;
    }

    /// The fault oracle this array draws media failures from.
    #[must_use]
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// The array geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        self.model.geometry()
    }

    /// The underlying latency model (read-only).
    #[must_use]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.model
    }

    /// The bit-error-rate model.
    #[must_use]
    pub fn ber_model(&self) -> &BerModel {
        &self.ber
    }

    fn check(&self, addr: BlockAddr) -> Result<usize> {
        if !self.geometry().contains_block(addr) {
            return Err(FlashError::AddressOutOfRange { addr });
        }
        Ok(self.geometry().block_index(addr))
    }

    fn check_wl(&self, wl: WlAddr) -> Result<usize> {
        let idx = self.check(wl.block)?;
        if wl.lwl.0 >= self.geometry().lwls_per_block() {
            return Err(FlashError::WlOutOfRange { wl });
        }
        Ok(idx)
    }

    /// Current lifecycle phase of a block.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for addresses outside the
    /// geometry.
    pub fn phase(&self, addr: BlockAddr) -> Result<BlockPhase> {
        Ok(self.blocks[self.check(addr)?].phase)
    }

    /// P/E cycles a block has endured.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for addresses outside the
    /// geometry.
    pub fn pe_cycles(&self, addr: BlockAddr) -> Result<u32> {
        Ok(self.blocks[self.check(addr)?].wear.pe_cycles())
    }

    /// Next word-line a block expects (its write pointer).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for addresses outside the
    /// geometry.
    pub fn next_lwl(&self, addr: BlockAddr) -> Result<crate::ids::LwlId> {
        Ok(self.blocks[self.check(addr)?].next_lwl)
    }

    /// Erases a block, returning the erase latency in µs.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for addresses outside the
    /// geometry, and [`FlashError::EraseFailed`] when the block is already
    /// failed or the fault injector fails this erase (the block then moves
    /// to [`BlockPhase::Failed`] and must be retired).
    pub fn erase_block(&mut self, addr: BlockAddr) -> Result<f64> {
        let idx = self.check(addr)?;
        let pe = self.blocks[idx].wear.pe_cycles();
        if self.blocks[idx].phase == BlockPhase::Failed {
            return Err(FlashError::EraseFailed { addr });
        }
        if self.fault.erase_fails(addr, pe) {
            self.blocks[idx].mark_failed();
            return Err(FlashError::EraseFailed { addr });
        }
        self.blocks[idx].erase();
        Ok(match &mut self.fast_latency {
            Some(cache) => cache.erase_latency_us(&self.model, addr, pe),
            None => self.model.erase_latency_us(addr, pe),
        })
    }

    /// Programs one logical word-line with one payload tag per page,
    /// returning the program latency in µs.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range, the block is not
    /// erased/open, the word-line is out of order, or the data length does
    /// not match the geometry's pages-per-word-line. Returns
    /// [`FlashError::ProgramFailed`] when the fault injector fails a legal
    /// program (the block then moves to [`BlockPhase::Failed`]: earlier
    /// word-lines stay readable but the block must be retired).
    pub fn program_wl(&mut self, wl: WlAddr, data: &[u64]) -> Result<f64> {
        self.program_wl_inner(wl, data, None)
    }

    /// Like [`FlashArray::program_wl`] but also stores one [`PageOob`] spare
    /// record per page, atomically with the payload. Latency, fault draws
    /// and legality are bit-identical to the plain program — the spare bytes
    /// ride along in the same program pulse on real NAND.
    ///
    /// # Errors
    ///
    /// As [`FlashArray::program_wl`], plus
    /// [`FlashError::DataLengthMismatch`] when `oob` and `data` differ in
    /// length.
    pub fn program_wl_with_oob(
        &mut self,
        wl: WlAddr,
        data: &[u64],
        oob: &[PageOob],
    ) -> Result<f64> {
        if oob.len() != data.len() {
            return Err(FlashError::DataLengthMismatch {
                expected: data.len() as u32,
                got: oob.len(),
            });
        }
        self.program_wl_inner(wl, data, Some(oob))
    }

    fn program_wl_inner(
        &mut self,
        wl: WlAddr,
        data: &[u64],
        oob: Option<&[PageOob]>,
    ) -> Result<f64> {
        let idx = self.check_wl(wl)?;
        let geo = self.geometry().clone();
        let pe = self.blocks[idx].wear.pe_cycles();
        if self.fault.program_fails(wl, pe) {
            self.blocks[idx].check_program(&geo, wl.block, wl.lwl, data)?;
            self.blocks[idx].mark_failed();
            return Err(FlashError::ProgramFailed { wl });
        }
        self.blocks[idx].program_wl(&geo, wl.block, wl.lwl, data, oob)?;
        Ok(match &mut self.fast_latency {
            Some(cache) => cache.program_latency_us(&self.model, wl, pe),
            None => self.model.program_latency_us(wl, pe),
        })
    }

    /// Marks a word-line torn by a sudden power loss mid-program: its pages
    /// become unreadable and the block rejects further programs until
    /// erased. The write pointer is not advanced.
    ///
    /// # Errors
    ///
    /// Returns an error if the word-line address is outside the geometry.
    pub fn mark_torn(&mut self, wl: WlAddr) -> Result<()> {
        let idx = self.check_wl(wl)?;
        self.blocks[idx].mark_torn(wl.lwl);
        Ok(())
    }

    /// The word-line of `addr` torn by a power loss, if any.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for addresses outside the
    /// geometry.
    pub fn torn_lwl(&self, addr: BlockAddr) -> Result<Option<crate::ids::LwlId>> {
        Ok(self.blocks[self.check(addr)?].torn_lwl)
    }

    /// Reads one page's spare-area OOB metadata under the same readability
    /// rules as [`FlashArray::read_page`]. Pages programmed without OOB
    /// report the filler default.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range, the page was never
    /// programmed, or its word-line is torn.
    pub fn read_oob(&self, page: PageAddr) -> Result<PageOob> {
        let idx = self.check_wl(page.wl)?;
        self.blocks[idx].read_oob(self.geometry(), page)
    }

    /// Appends a superblock seal record to the capacitor-backed metadata
    /// region. Records survive power loss; a later record for the same
    /// superblock id supersedes earlier ones.
    pub fn persist_seal_record(&mut self, record: SealRecord) {
        self.seals.push(record);
    }

    /// All persisted seal records, in append order.
    #[must_use]
    pub fn seal_records(&self) -> &[SealRecord] {
        &self.seals
    }

    /// Reads one page, returning `(payload tag, read latency µs)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the page was never
    /// programmed.
    pub fn read_page(&self, page: PageAddr) -> Result<(u64, f64)> {
        let idx = self.check_wl(page.wl)?;
        let data = self.blocks[idx].read_page(self.geometry(), page)?;
        if self.track_disturb {
            let total = self.geometry().pages_per_block() as usize;
            let pidx =
                (page.wl.lwl.0 * self.geometry().pages_per_lwl() + page.page.index()) as usize;
            self.blocks[idx].record_read_disturb(total, pidx);
        }
        let pe = self.blocks[idx].wear.pe_cycles();
        Ok((data, self.model.read_latency_us(page, pe)))
    }

    /// Accumulated read disturb of one page: payload reads of *sibling*
    /// pages in its block since the last erase. Zero unless
    /// [`FlashArray::set_track_disturb`] is on.
    ///
    /// # Panics
    ///
    /// Panics if the page address is outside the geometry.
    #[must_use]
    pub fn read_disturbs(&self, page: PageAddr) -> u64 {
        let idx = self.geometry().block_index(page.wl.block);
        let pidx = (page.wl.lwl.0 * self.geometry().pages_per_lwl() + page.page.index()) as usize;
        self.blocks[idx].read_disturbs(pidx)
    }

    fn check_mp_distinct(addrs: impl Iterator<Item = BlockAddr>) -> Result<()> {
        let mut seen = Vec::new();
        for a in addrs {
            let key = (a.chip, a.plane);
            if seen.contains(&key) {
                return Err(FlashError::MultiPlaneConflict { addr: a });
            }
            seen.push(key);
        }
        Ok(())
    }

    /// Multi-plane / multi-chip erase: erases every block and reports the
    /// command outcome (completion = slowest member).
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, addresses a plane twice, or any
    /// member address is invalid. On error no state is modified.
    pub fn mp_erase(&mut self, blocks: &[BlockAddr]) -> Result<MpOutcome> {
        if blocks.is_empty() {
            return Err(FlashError::EmptyMultiPlane);
        }
        Self::check_mp_distinct(blocks.iter().copied())?;
        for &b in blocks {
            self.check(b)?;
        }
        let mut member = Vec::with_capacity(blocks.len());
        for &b in blocks {
            member.push(self.erase_block(b)?);
        }
        Ok(MpOutcome::from_members(member))
    }

    /// Multi-plane / multi-chip word-line program (the super word-line
    /// operation of the paper's Figure 2). `data` is one payload slice per
    /// member word-line.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or mismatched with `data`,
    /// addresses a plane twice, or any member program is illegal. Members
    /// before the failing one remain programmed (matching real MP commands,
    /// which fail per-plane).
    pub fn mp_program(&mut self, wls: &[WlAddr], data: &[&[u64]]) -> Result<MpOutcome> {
        if wls.is_empty() {
            return Err(FlashError::EmptyMultiPlane);
        }
        if wls.len() != data.len() {
            return Err(FlashError::DataLengthMismatch {
                expected: wls.len() as u32,
                got: data.len(),
            });
        }
        Self::check_mp_distinct(wls.iter().map(|w| w.block))?;
        let mut member = Vec::with_capacity(wls.len());
        for (&wl, &d) in wls.iter().zip(data) {
            member.push(self.program_wl(wl, d)?);
        }
        Ok(MpOutcome::from_members(member))
    }

    /// Reads one page including read-retry overhead for a page aged by
    /// `retention_hours` of data retention: returns
    /// `(payload tag, latency µs, retry rounds)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the page was never
    /// programmed.
    pub fn read_page_with_retries(
        &self,
        page: PageAddr,
        retention_hours: f64,
        retry: &crate::retry::RetryModel,
    ) -> Result<(u64, f64, u32)> {
        let (data, base_us) = self.read_page(page)?;
        let error_bits = self.expected_error_bits(page, retention_hours);
        let retries = retry.retries(error_bits);
        Ok((data, retry.read_latency_us(base_us, error_bits), retries))
    }

    /// Expected error bits when reading `page` after `retention_hours` of
    /// data retention, including the page's accumulated read disturb (when
    /// tracked) and any injected weak-block elevation (16 KB user data per
    /// page, the paper's platform).
    ///
    /// # Panics
    ///
    /// Panics if the page address is outside the geometry.
    #[must_use]
    pub fn expected_error_bits(&self, page: PageAddr, retention_hours: f64) -> f64 {
        let idx = self.geometry().block_index(page.wl.block);
        let pe = self.blocks[idx].wear.pe_cycles();
        let layer = self.geometry().layer_of(page.wl.lwl);
        let pidx = (page.wl.lwl.0 * self.geometry().pages_per_lwl() + page.page.index()) as usize;
        let disturbs = self.blocks[idx].read_disturbs(pidx);
        let bits = self.ber.expected_error_bits(
            self.geometry(),
            page.wl.block,
            layer,
            pe,
            retention_hours,
            disturbs,
            16 * 1024,
        ) * self.fault.ber_multiplier(page.wl.block);
        // Page-type spread (LSB best, MSB worst) is the page-granular error
        // channel; the multiply is skipped at zero spread so the default
        // stays bit-identical to the block-granular model.
        let ptm = self.fault.page_type_ber_mult(page.page.index(), self.geometry().pages_per_lwl());
        if ptm == 1.0 {
            bits
        } else {
            bits * ptm
        }
    }

    /// Multi-plane / multi-chip page read.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, addresses a plane twice, or any
    /// page is unwritten.
    pub fn mp_read(&self, pages: &[PageAddr]) -> Result<(Vec<u64>, MpOutcome)> {
        if pages.is_empty() {
            return Err(FlashError::EmptyMultiPlane);
        }
        Self::check_mp_distinct(pages.iter().map(|p| p.wl.block))?;
        let mut member = Vec::with_capacity(pages.len());
        let mut payloads = Vec::with_capacity(pages.len());
        for &p in pages {
            let (d, t) = self.read_page(p)?;
            payloads.push(d);
            member.push(t);
        }
        Ok((payloads, MpOutcome::from_members(member)))
    }

    /// Adds accelerated wear to one block without data operations — the
    /// simulation counterpart of the paper's chamber cycling between
    /// measurement points.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for addresses outside the
    /// geometry.
    pub fn age_block(&mut self, addr: BlockAddr, cycles: u32) -> Result<()> {
        let idx = self.check(addr)?;
        self.blocks[idx].wear.age(cycles);
        Ok(())
    }

    /// Adds accelerated wear to every block.
    pub fn age_all(&mut self, cycles: u32) {
        for b in &mut self.blocks {
            b.wear.age(cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ChipId, LwlId, PageType, PlaneId};

    fn array() -> FlashArray {
        FlashArray::new(FlashConfig::small_test(), 17)
    }

    fn blk(c: u16, b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(c), PlaneId(0), BlockId(b))
    }

    #[test]
    fn fresh_array_reports_fresh_phase() {
        let a = array();
        assert_eq!(a.phase(blk(0, 0)).unwrap(), BlockPhase::Fresh);
        assert_eq!(a.pe_cycles(blk(0, 0)).unwrap(), 0);
    }

    #[test]
    fn erase_then_program_then_read_roundtrip() {
        let mut a = array();
        let b = blk(1, 2);
        a.erase_block(b).unwrap();
        a.program_wl(b.wl(LwlId(0)), &[7, 8, 9]).unwrap();
        let (d, t) = a.read_page(b.wl(LwlId(0)).page(PageType::Csb)).unwrap();
        assert_eq!(d, 8);
        assert!(t > 0.0);
    }

    #[test]
    fn program_latency_matches_model() {
        let mut a = array();
        let b = blk(0, 5);
        a.erase_block(b).unwrap();
        let t = a.program_wl(b.wl(LwlId(0)), &[0, 0, 0]).unwrap();
        assert_eq!(t, a.latency_model().program_latency_us(b.wl(LwlId(0)), 1));
    }

    #[test]
    fn mp_erase_total_is_max_of_members() {
        let mut a = array();
        let blocks = [blk(0, 0), blk(1, 0), blk(2, 0), blk(3, 0)];
        let out = a.mp_erase(&blocks).unwrap();
        assert_eq!(out.member_us.len(), 4);
        let max = out.member_us.iter().copied().fold(f64::MIN, f64::max);
        let min = out.member_us.iter().copied().fold(f64::MAX, f64::min);
        assert_eq!(out.total_us, max);
        assert!((out.extra_us - (max - min)).abs() < 1e-12);
    }

    #[test]
    fn mp_rejects_same_plane_twice() {
        let mut a = array();
        let err = a.mp_erase(&[blk(0, 0), blk(0, 1)]).unwrap_err();
        assert!(matches!(err, FlashError::MultiPlaneConflict { .. }));
    }

    #[test]
    fn mp_rejects_empty() {
        let mut a = array();
        assert_eq!(a.mp_erase(&[]).unwrap_err(), FlashError::EmptyMultiPlane);
    }

    #[test]
    fn mp_program_roundtrip_across_chips() {
        let mut a = array();
        let blocks = [blk(0, 1), blk(1, 1), blk(2, 1), blk(3, 1)];
        for &b in &blocks {
            a.erase_block(b).unwrap();
        }
        let wls: Vec<_> = blocks.iter().map(|b| b.wl(LwlId(0))).collect();
        let payloads = [[1u64, 2, 3], [4, 5, 6], [7, 8, 9], [10, 11, 12]];
        let refs: Vec<&[u64]> = payloads.iter().map(|p| p.as_slice()).collect();
        let out = a.mp_program(&wls, &refs).unwrap();
        assert!(out.extra_us >= 0.0);
        let pages: Vec<_> = wls.iter().map(|w| w.page(PageType::Lsb)).collect();
        let (data, _) = a.mp_read(&pages).unwrap();
        assert_eq!(data, vec![1, 4, 7, 10]);
    }

    #[test]
    fn aging_changes_reported_latency() {
        let mut a = array();
        let b = blk(0, 0);
        a.erase_block(b).unwrap();
        let before = a.latency_model().erase_latency_us(b, a.pe_cycles(b).unwrap());
        a.age_block(b, 3000).unwrap();
        let after = a.latency_model().erase_latency_us(b, a.pe_cycles(b).unwrap());
        assert!(after > before, "wear should slow erase: {before} -> {after}");
    }

    #[test]
    fn age_all_touches_every_block() {
        let mut a = array();
        a.age_all(500);
        assert_eq!(a.pe_cycles(blk(3, 63)).unwrap(), 500);
    }

    #[test]
    fn out_of_range_is_reported() {
        let a = array();
        let bad = BlockAddr::new(ChipId(9), PlaneId(0), BlockId(0));
        assert!(matches!(a.phase(bad), Err(FlashError::AddressOutOfRange { .. })));
    }

    #[test]
    fn wl_out_of_range_is_reported() {
        let mut a = array();
        let b = blk(0, 0);
        a.erase_block(b).unwrap();
        let bad = b.wl(LwlId(a.geometry().lwls_per_block()));
        assert!(matches!(a.program_wl(bad, &[0, 0, 0]), Err(FlashError::WlOutOfRange { .. })));
    }

    #[test]
    fn retries_appear_only_when_worn() {
        let mut a = array();
        let retry = crate::retry::RetryModel::default();
        let b = blk(0, 0);
        a.erase_block(b).unwrap();
        a.program_wl(b.wl(LwlId(0)), &[1, 2, 3]).unwrap();
        let page = b.wl(LwlId(0)).page(PageType::Lsb);
        let (_, fresh_lat, fresh_r) = a.read_page_with_retries(page, 0.0, &retry).unwrap();
        assert_eq!(fresh_r, 0, "fresh page needs no retries");
        // Age heavily plus long retention: retries must kick in and slow reads.
        a.age_block(b, 30_000).unwrap();
        let (_, worn_lat, worn_r) = a.read_page_with_retries(page, 50_000.0, &retry).unwrap();
        assert!(worn_r > 0, "worn page should retry");
        assert!(worn_lat > fresh_lat);
    }

    #[test]
    fn erase_increments_pe() {
        let mut a = array();
        let b = blk(2, 3);
        a.erase_block(b).unwrap();
        a.erase_block(b).unwrap();
        assert_eq!(a.pe_cycles(b).unwrap(), 2);
    }

    fn faulty_array(fault: crate::FaultConfig) -> FlashArray {
        FlashArray::with_faults(FlashConfig::small_test(), 17, fault)
    }

    /// High per-operation rates so the fixed-seed block scans below always
    /// find a victim (sweep-style `with_rate` spreads program risk across a
    /// whole block fill, far too thin for a 1-plane scan).
    fn harsh_faults() -> crate::FaultConfig {
        crate::FaultConfig {
            program_fail_prob: 0.3,
            erase_fail_prob: 0.2,
            weak_block_prob: 0.8,
            ..crate::FaultConfig::with_rate(0.1)
        }
    }

    #[test]
    fn disabled_faults_leave_latencies_bit_identical() {
        let mut plain = array();
        let mut gated = faulty_array(crate::FaultConfig::default());
        let b = blk(1, 4);
        assert_eq!(
            plain.erase_block(b).unwrap().to_bits(),
            gated.erase_block(b).unwrap().to_bits()
        );
        let wl = b.wl(LwlId(0));
        assert_eq!(
            plain.program_wl(wl, &[1, 2, 3]).unwrap().to_bits(),
            gated.program_wl(wl, &[1, 2, 3]).unwrap().to_bits()
        );
        let page = wl.page(PageType::Lsb);
        let retry = crate::retry::RetryModel::default();
        let (_, t0, _) = plain.read_page_with_retries(page, 100.0, &retry).unwrap();
        let (_, t1, _) = gated.read_page_with_retries(page, 100.0, &retry).unwrap();
        assert_eq!(t0.to_bits(), t1.to_bits());
    }

    #[test]
    fn erase_fault_marks_block_failed_and_sticky() {
        let mut a = faulty_array(harsh_faults());
        let geo = a.geometry().clone();
        // Find a block whose first erase fails.
        let victim = (0..geo.blocks_per_plane())
            .map(|b| blk(0, b))
            .find(|&b| a.fault_injector().erase_fails(b, 0))
            .expect("20% erase-fail rate must hit some block");
        assert_eq!(a.erase_block(victim).unwrap_err(), FlashError::EraseFailed { addr: victim });
        assert_eq!(a.phase(victim).unwrap(), BlockPhase::Failed);
        // Failed is sticky: later erases keep failing without a new draw.
        assert!(matches!(a.erase_block(victim), Err(FlashError::EraseFailed { .. })));
        assert!(a.erase_block(victim).unwrap_err().is_media_failure());
    }

    #[test]
    fn program_fault_keeps_earlier_wls_readable() {
        let mut a = faulty_array(harsh_faults());
        let geo = a.geometry().clone();
        // Find a block that erases fine and whose second WL program fails.
        let victim = (0..geo.blocks_per_plane())
            .map(|b| blk(1, b))
            .find(|&b| {
                !a.fault_injector().erase_fails(b, 0)
                    && !a.fault_injector().program_fails(b.wl(LwlId(0)), 1)
                    && a.fault_injector().program_fails(b.wl(LwlId(1)), 1)
            })
            .expect("30% program-fail rate must hit some block");
        a.erase_block(victim).unwrap();
        a.program_wl(victim.wl(LwlId(0)), &[7, 8, 9]).unwrap();
        let err = a.program_wl(victim.wl(LwlId(1)), &[1, 2, 3]).unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed { wl: victim.wl(LwlId(1)) });
        assert!(err.is_media_failure());
        assert_eq!(a.phase(victim).unwrap(), BlockPhase::Failed);
        // The WL programmed before the failure survives for relocation.
        let (d, _) = a.read_page(victim.wl(LwlId(0)).page(PageType::Csb)).unwrap();
        assert_eq!(d, 8);
        // But the block takes no further programs or erases.
        assert!(a.program_wl(victim.wl(LwlId(1)), &[1, 2, 3]).is_err());
        assert!(a.erase_block(victim).is_err());
    }

    #[test]
    fn oob_rides_along_with_programs_bit_identically() {
        let mut plain = array();
        let mut spare = array();
        let b = blk(0, 7);
        plain.erase_block(b).unwrap();
        spare.erase_block(b).unwrap();
        let wl = b.wl(LwlId(0));
        let oob: Vec<PageOob> = (0..3)
            .map(|i| PageOob { lpn: 100 + i, seq: 50 + i, sb_id: 9, member_slot: 2 })
            .collect();
        let t0 = plain.program_wl(wl, &[1, 2, 3]).unwrap();
        let t1 = spare.program_wl_with_oob(wl, &[1, 2, 3], &oob).unwrap();
        assert_eq!(t0.to_bits(), t1.to_bits(), "OOB must not change latency");
        let page = wl.page(PageType::Csb);
        assert_eq!(spare.read_oob(page).unwrap(), oob[1]);
        // Pages programmed without OOB report the filler default.
        assert!(plain.read_oob(page).unwrap().is_filler());
        // Erase clears the spare area too.
        spare.erase_block(b).unwrap();
        assert!(spare.read_oob(page).is_err());
    }

    #[test]
    fn oob_length_mismatch_is_rejected() {
        let mut a = array();
        let b = blk(0, 8);
        a.erase_block(b).unwrap();
        let err =
            a.program_wl_with_oob(b.wl(LwlId(0)), &[1, 2, 3], &[PageOob::default()]).unwrap_err();
        assert_eq!(err, FlashError::DataLengthMismatch { expected: 3, got: 1 });
    }

    #[test]
    fn torn_wl_is_unreadable_and_blocks_programs_until_erase() {
        let mut a = array();
        let b = blk(2, 5);
        a.erase_block(b).unwrap();
        a.program_wl(b.wl(LwlId(0)), &[1, 2, 3]).unwrap();
        a.mark_torn(b.wl(LwlId(1))).unwrap();
        assert_eq!(a.torn_lwl(b).unwrap(), Some(LwlId(1)));
        // The completed WL stays readable; the torn one exposes nothing.
        assert!(a.read_page(b.wl(LwlId(0)).page(PageType::Lsb)).is_ok());
        let err = a.read_page(b.wl(LwlId(1)).page(PageType::Lsb)).unwrap_err();
        assert!(matches!(err, FlashError::TornWordLine { .. }));
        assert!(a.read_oob(b.wl(LwlId(1)).page(PageType::Lsb)).is_err());
        // Programs are rejected until the block is erased.
        let err = a.program_wl(b.wl(LwlId(1)), &[4, 5, 6]).unwrap_err();
        assert!(matches!(err, FlashError::TornWordLine { .. }));
        a.erase_block(b).unwrap();
        assert_eq!(a.torn_lwl(b).unwrap(), None);
        a.program_wl(b.wl(LwlId(0)), &[4, 5, 6]).unwrap();
    }

    #[test]
    fn fast_latency_cache_is_bit_identical_end_to_end() {
        let mut plain = array();
        let mut fast = array();
        fast.set_fast_latency(true);
        for round in 0..3u64 {
            for c in 0..4 {
                let b = blk(c, 2);
                assert_eq!(
                    plain.erase_block(b).unwrap().to_bits(),
                    fast.erase_block(b).unwrap().to_bits(),
                    "erase chip {c} round {round}"
                );
                for lwl in 0..4 {
                    let wl = b.wl(LwlId(lwl));
                    assert_eq!(
                        plain.program_wl(wl, &[1, 2, 3]).unwrap().to_bits(),
                        fast.program_wl(wl, &[1, 2, 3]).unwrap().to_bits(),
                        "program {wl} round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn seal_records_persist_in_append_order() {
        let mut a = array();
        assert!(a.seal_records().is_empty());
        a.persist_seal_record(crate::SealRecord {
            sb_id: 0,
            members: vec![blk(0, 0)],
            summaries: vec![],
        });
        a.persist_seal_record(crate::SealRecord {
            sb_id: 1,
            members: vec![blk(1, 0)],
            summaries: vec![],
        });
        assert_eq!(a.seal_records().len(), 2);
        assert_eq!(a.seal_records()[1].sb_id, 1);
    }

    #[test]
    fn weak_blocks_elevate_expected_error_bits() {
        let mut a = faulty_array(harsh_faults());
        let geo = a.geometry().clone();
        let inj = a.fault_injector().clone();
        let weak = (0..geo.blocks_per_plane())
            .map(|b| blk(2, b))
            .find(|&b| inj.ber_multiplier(b) > 1.0 && !inj.erase_fails(b, 0))
            .expect("80% weak rate must hit some block");
        a.erase_block(weak).unwrap();
        let page = weak.wl(LwlId(0)).page(PageType::Lsb);
        let bits = a.expected_error_bits(page, 0.0);
        let retry = crate::retry::RetryModel::default();
        assert!(retry.is_uncorrectable(bits), "weak page must exceed the retry ladder: {bits}");
    }

    #[test]
    fn sibling_read_hammering_elevates_error_bits_until_erase() {
        let mut a = array();
        a.set_track_disturb(true);
        let b = blk(0, 3);
        a.erase_block(b).unwrap();
        a.program_wl(b.wl(LwlId(0)), &[1, 2, 3]).unwrap();
        let victim = b.wl(LwlId(0)).page(PageType::Lsb);
        let sibling = b.wl(LwlId(0)).page(PageType::Msb);
        let quiet = a.expected_error_bits(victim, 0.0);
        for _ in 0..5_000 {
            a.read_page(sibling).unwrap();
        }
        assert_eq!(a.read_disturbs(victim), 5_000);
        let hammered = a.expected_error_bits(victim, 0.0);
        assert!(hammered > quiet * 5.0, "{quiet} -> {hammered}");
        // Reads of the victim itself do not disturb it further.
        a.read_page(victim).unwrap();
        assert_eq!(a.read_disturbs(victim), 5_000);
        // Erase wipes the accumulated disturb with the data (the rewritten
        // page is one P/E cycle older, so compare against the hammered
        // level, not bitwise against the original).
        a.erase_block(b).unwrap();
        a.program_wl(b.wl(LwlId(0)), &[1, 2, 3]).unwrap();
        assert_eq!(a.read_disturbs(victim), 0);
        assert!(a.expected_error_bits(victim, 0.0) < hammered / 5.0);
    }

    #[test]
    fn untracked_reads_leave_error_bits_bit_identical() {
        // Hammer one array with tracking off: every expected-error-bit
        // answer must equal a never-read twin's, bit for bit.
        let mut a = array();
        let mut twin = array();
        let b = blk(1, 6);
        for arr in [&mut a, &mut twin] {
            arr.erase_block(b).unwrap();
            arr.program_wl(b.wl(LwlId(0)), &[1, 2, 3]).unwrap();
        }
        let victim = b.wl(LwlId(0)).page(PageType::Lsb);
        for _ in 0..1_000 {
            a.read_page(b.wl(LwlId(0)).page(PageType::Msb)).unwrap();
        }
        assert_eq!(a.read_disturbs(victim), 0, "tracking off records nothing");
        assert_eq!(
            a.expected_error_bits(victim, 3.5).to_bits(),
            twin.expected_error_bits(victim, 3.5).to_bits()
        );
    }
}
