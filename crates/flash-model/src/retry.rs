//! Read-retry model: how worn, retention-aged pages pay extra sensing
//! rounds.
//!
//! LDPC-based controllers re-read a page with shifted reference voltages
//! when the first sense fails to converge. The number of retries grows with
//! the raw bit error rate, which the paper's §VI-C sensitivity study drives
//! up via P/E cycling. This model maps expected error bits to a retry count
//! and a latency multiplier.

/// Maps raw-bit-error expectations to retry counts and read latency.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryModel {
    /// Error bits the hard-decision ECC corrects without retries.
    pub correctable_bits: f64,
    /// Fractional ECC headroom each retry level adds.
    pub gain_per_retry: f64,
    /// Hard cap on retry rounds (beyond this the page is failed/refreshed).
    pub max_retries: u32,
    /// Extra sensing latency per retry, µs.
    pub retry_step_us: f64,
}

impl Default for RetryModel {
    fn default() -> Self {
        // 16 KB page with ~1% correctable budget, seven retry levels.
        RetryModel {
            correctable_bits: 1300.0,
            gain_per_retry: 0.45,
            max_retries: 7,
            retry_step_us: 45.0,
        }
    }
}

impl RetryModel {
    /// Retry rounds needed for a page with `expected_error_bits`.
    ///
    /// Total (never panics, never exceeds `max_retries`): a NaN expectation
    /// or a degenerate model (`correctable_bits <= 0`, zero/negative gain)
    /// saturates at `max_retries` rather than dividing by zero.
    #[must_use]
    pub fn retries(&self, expected_error_bits: f64) -> u32 {
        if self.max_retries == 0 {
            return 0;
        }
        if expected_error_bits <= self.correctable_bits {
            return 0;
        }
        // A NaN expectation fails the comparison above and saturates here.
        if !expected_error_bits.is_finite()
            || self.correctable_bits <= 0.0
            || self.gain_per_retry <= 0.0
        {
            return self.max_retries;
        }
        let excess = expected_error_bits / self.correctable_bits - 1.0;
        let rounds = (excess / self.gain_per_retry).ceil();
        if !rounds.is_finite() || rounds >= f64::from(self.max_retries) {
            return self.max_retries;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        (rounds as u32).clamp(1, self.max_retries)
    }

    /// Error bits correctable at the deepest retry level — the budget
    /// [`RetryModel::is_uncorrectable`] compares against. Patrol scrubbers
    /// refresh pages before their projected error bits reach this limit.
    #[must_use]
    pub fn uncorrectable_limit(&self) -> f64 {
        self.correctable_bits * (1.0 + self.gain_per_retry * f64::from(self.max_retries))
    }

    /// Whether the page is beyond even the deepest retry level and must be
    /// refreshed or retired. A NaN expectation counts as uncorrectable (the
    /// conservative answer for the refresh path).
    #[must_use]
    pub fn is_uncorrectable(&self, expected_error_bits: f64) -> bool {
        let max_budget = self.uncorrectable_limit();
        match expected_error_bits.partial_cmp(&max_budget) {
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal) => false,
            // Greater — or incomparable (NaN), the conservative answer.
            _ => true,
        }
    }

    /// Total read latency including retries, µs.
    #[must_use]
    pub fn read_latency_us(&self, base_us: f64, expected_error_bits: f64) -> f64 {
        base_us + f64::from(self.retries(expected_error_bits)) * self.retry_step_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_pages_need_no_retries() {
        let m = RetryModel::default();
        assert_eq!(m.retries(100.0), 0);
        assert_eq!(m.read_latency_us(58.0, 100.0), 58.0);
        assert!(!m.is_uncorrectable(100.0));
    }

    #[test]
    fn retries_grow_with_error_bits() {
        let m = RetryModel::default();
        let r1 = m.retries(1500.0);
        let r2 = m.retries(3000.0);
        assert!(r1 >= 1);
        assert!(r2 > r1, "{r1} vs {r2}");
    }

    #[test]
    fn retries_are_capped() {
        let m = RetryModel::default();
        assert_eq!(m.retries(1e9), m.max_retries);
    }

    #[test]
    fn latency_adds_one_step_per_retry() {
        let m = RetryModel::default();
        let retries = m.retries(2000.0);
        let lat = m.read_latency_us(58.0, 2000.0);
        assert!((lat - 58.0 - f64::from(retries) * 45.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrectable_beyond_deepest_retry() {
        let m = RetryModel::default();
        let edge = m.uncorrectable_limit();
        assert!((edge - m.correctable_bits * (1.0 + m.gain_per_retry * 7.0)).abs() < 1e-12);
        assert!(!m.is_uncorrectable(edge * 0.99));
        assert!(m.is_uncorrectable(edge * 1.01));
    }

    #[test]
    fn zero_max_retries_never_panics_or_retries() {
        let m = RetryModel { max_retries: 0, ..RetryModel::default() };
        assert_eq!(m.retries(0.0), 0);
        assert_eq!(m.retries(1e12), 0);
        assert_eq!(m.retries(f64::NAN), 0);
        assert_eq!(m.read_latency_us(58.0, 1e12), 58.0);
        // With no retry ladder, anything above the hard-decision budget is
        // uncorrectable.
        assert!(m.is_uncorrectable(m.correctable_bits * 1.01));
    }

    #[test]
    fn zero_correctable_bits_saturates_instead_of_dividing_by_zero() {
        let m = RetryModel { correctable_bits: 0.0, ..RetryModel::default() };
        assert_eq!(m.retries(1.0), m.max_retries);
        assert_eq!(m.retries(0.0), 0, "zero errors on a zero-budget ECC need no retries");
        assert!(m.retries(500.0) <= m.max_retries);
        assert!(m.is_uncorrectable(1.0));
    }

    #[test]
    fn non_finite_error_bits_are_handled_conservatively() {
        let m = RetryModel::default();
        assert_eq!(m.retries(f64::NAN), m.max_retries);
        assert_eq!(m.retries(f64::INFINITY), m.max_retries);
        assert_eq!(m.retries(f64::NEG_INFINITY), 0);
        assert!(m.is_uncorrectable(f64::NAN), "NaN must trigger refresh, not pass silently");
        assert!(m.is_uncorrectable(f64::INFINITY));
        assert!(!m.is_uncorrectable(f64::NEG_INFINITY));
        let lat = m.read_latency_us(58.0, f64::NAN);
        assert!(lat.is_finite() && lat >= 58.0);
    }

    #[test]
    fn zero_gain_saturates() {
        let m = RetryModel { gain_per_retry: 0.0, ..RetryModel::default() };
        assert_eq!(m.retries(m.correctable_bits * 2.0), m.max_retries);
        assert!(m.is_uncorrectable(m.correctable_bits * 1.01));
    }
}
