//! Deterministic, stateless random sampling keyed by address tuples.
//!
//! Process variation is a *trait* of silicon: the same block measured twice
//! shows the same deviation. We therefore derive every random quantity by
//! hashing a `(seed, domain-tag, indices...)` tuple with splitmix64 instead
//! of drawing from a stateful RNG. This makes latency a pure function of the
//! address and lets the model skip materializing multi-gigabyte tables.

/// Stateless sampler: all draws are pure functions of `(seed, tags)`.
///
/// ```
/// use flash_model::Sampler;
///
/// let s = Sampler::new(42);
/// // Same tags, same draw — process variation is a trait, not a dice roll.
/// assert_eq!(s.normal(&[1, 2, 3]), s.normal(&[1, 2, 3]));
/// assert_ne!(s.normal(&[1, 2, 3]), s.normal(&[1, 2, 4]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sampler {
    seed: u64,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Sampler {
    /// Creates a sampler for the given master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Sampler { seed }
    }

    /// The master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A derived sampler whose draws are independent of this one's.
    #[must_use]
    pub fn derive(&self, tag: u64) -> Sampler {
        Sampler { seed: splitmix64(self.seed ^ splitmix64(tag)) }
    }

    /// Uniform `u64` keyed by the tag tuple.
    #[must_use]
    pub fn hash(&self, tags: &[u64]) -> u64 {
        let mut acc = splitmix64(self.seed);
        for &t in tags {
            acc = splitmix64(acc ^ splitmix64(t.wrapping_add(0xa076_1d64_78bd_642f)));
        }
        acc
    }

    /// Uniform draw in `[0, 1)`.
    #[must_use]
    pub fn uniform(&self, tags: &[u64]) -> f64 {
        // 53 high bits -> [0,1) double.
        (self.hash(tags) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal draw (Box-Muller over two decorrelated uniforms).
    #[must_use]
    pub fn normal(&self, tags: &[u64]) -> f64 {
        let h = self.hash(tags);
        let u1 = ((h >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        let h2 = splitmix64(h ^ 0xd6e8_feb8_6659_fd93);
        let u2 = (h2 >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential draw with the given mean.
    #[must_use]
    pub fn exponential(&self, mean: f64, tags: &[u64]) -> f64 {
        let u = 1.0 - self.uniform(tags); // (0, 1]
        -mean * u.ln()
    }

    /// Uniform choice of an index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn choice(&self, n: usize, tags: &[u64]) -> usize {
        assert!(n > 0, "cannot choose from an empty range");
        // Multiply-shift keeps the bias negligible for the small n used here.
        ((u128::from(self.hash(tags)) * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[must_use]
    pub fn bernoulli(&self, p: f64, tags: &[u64]) -> bool {
        self.uniform(tags) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_tags() {
        let s = Sampler::new(42);
        assert_eq!(s.hash(&[1, 2, 3]), s.hash(&[1, 2, 3]));
        assert_eq!(s.uniform(&[9]), s.uniform(&[9]));
        assert_eq!(s.normal(&[9, 9]), s.normal(&[9, 9]));
    }

    #[test]
    fn different_tags_give_different_draws() {
        let s = Sampler::new(42);
        assert_ne!(s.hash(&[1, 2, 3]), s.hash(&[1, 2, 4]));
        assert_ne!(s.hash(&[1, 2, 3]), s.hash(&[1, 3, 2]), "order matters");
        assert_ne!(s.hash(&[0]), s.hash(&[0, 0]), "length matters");
    }

    #[test]
    fn different_seeds_give_different_draws() {
        assert_ne!(Sampler::new(1).hash(&[5]), Sampler::new(2).hash(&[5]));
    }

    #[test]
    fn derive_decorrelates() {
        let s = Sampler::new(7);
        let a = s.derive(1);
        let b = s.derive(2);
        assert_ne!(a.hash(&[0]), b.hash(&[0]));
        assert_ne!(a.hash(&[0]), s.hash(&[0]));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let s = Sampler::new(3);
        for i in 0..10_000u64 {
            let u = s.uniform(&[i]);
            assert!((0.0..1.0).contains(&u), "{u} out of [0,1)");
        }
    }

    #[test]
    fn uniform_mean_is_about_half() {
        let s = Sampler::new(11);
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| s.uniform(&[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_standard() {
        let s = Sampler::new(5);
        let n = 40_000u64;
        let draws: Vec<f64> = (0..n).map(|i| s.normal(&[i])).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_matches() {
        let s = Sampler::new(6);
        let n = 40_000u64;
        let mean: f64 = (0..n).map(|i| s.exponential(3.0, &[i])).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn choice_covers_range_roughly_evenly() {
        let s = Sampler::new(8);
        let mut counts = [0usize; 5];
        for i in 0..50_000u64 {
            counts[s.choice(5, &[i])] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let s = Sampler::new(9);
        let hits = (0..50_000u64).filter(|&i| s.bernoulli(0.2, &[i])).count();
        assert!((hits as f64 / 50_000.0 - 0.2).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn choice_of_zero_panics() {
        let _ = Sampler::new(1).choice(0, &[0]);
    }
}
