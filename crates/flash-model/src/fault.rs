//! Deterministic media-fault injection.
//!
//! The paper's §VI-C studies QSTR-MED "under high failure rates when an SSD
//! drive is subject to wear and tear". Real NAND fails in three observable
//! ways a controller must survive: a *program-status failure* (the ISPP loop
//! exhausts its pulse budget), an *erase failure* (the block never verifies
//! erased), and *weak pages* whose raw bit error rate exceeds what the retry
//! ladder can correct. This module injects all three deterministically: like
//! [`crate::LatencyModel`], every fault is a pure function of
//! `(seed, address, P/E cycle)`, so a run is exactly reproducible and a
//! disabled injector (the default) draws nothing at all.

use crate::ids::{BlockAddr, WlAddr};
use crate::sampler::Sampler;

const TAG_PROGRAM_FAIL: u64 = 0x80;
const TAG_ERASE_FAIL: u64 = 0x81;
const TAG_WEAK_BLOCK: u64 = 0x82;

/// Fault-injection rates. The default is fully disabled: no draws are made
/// and the array behaves exactly as perfect media.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a word-line program reports status fail.
    pub program_fail_prob: f64,
    /// Probability that a block erase fails to verify.
    pub erase_fail_prob: f64,
    /// Exponential growth of both failure probabilities per 1000 P/E cycles
    /// (worn blocks fail more often).
    pub fail_growth_per_kpe: f64,
    /// Probability that a block is *weak*: its pages carry an elevated raw
    /// bit error rate. A stable per-block trait, not a per-read dice roll.
    pub weak_block_prob: f64,
    /// RBER multiplier applied to weak blocks' pages.
    pub weak_ber_multiplier: f64,
    /// Linear RBER spread across the page types sharing one word-line:
    /// the LSB page reads `1 - spread` of the nominal rate, the last page
    /// (MSB) `1 + spread`. `0.0` (the default) keeps every page type at
    /// exactly the nominal rate — and is the physical channel that lets a
    /// superpage parity stripe lose its worst page type while the same
    /// word-line's better pages stay correctable.
    pub page_type_ber_spread: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            fail_growth_per_kpe: 0.0,
            weak_block_prob: 0.0,
            weak_ber_multiplier: 1.0,
            page_type_ber_spread: 0.0,
        }
    }
}

impl FaultConfig {
    /// A one-knob configuration for sweep experiments. `rate` is the
    /// probability that a block *dies during one P/E cycle*, split evenly
    /// between erase failures and program failures; the per-word-line
    /// program probability is scaled down by a nominal 64 word-lines per
    /// block so a full block fill contributes about as much risk as its
    /// erase. Weak blocks appear at four times `rate` with an error
    /// elevation deep enough that weak pages exceed the retry ladder.
    #[must_use]
    pub fn with_rate(rate: f64) -> Self {
        if rate <= 0.0 {
            return FaultConfig::default();
        }
        const NOMINAL_WLS_PER_BLOCK: f64 = 64.0;
        FaultConfig {
            program_fail_prob: rate / (2.0 * NOMINAL_WLS_PER_BLOCK),
            erase_fail_prob: rate / 2.0,
            fail_growth_per_kpe: 0.25,
            weak_block_prob: (4.0 * rate).min(1.0),
            weak_ber_multiplier: 300.0,
            page_type_ber_spread: 0.0,
        }
    }

    /// Whether any fault source is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.program_fail_prob > 0.0 || self.erase_fail_prob > 0.0 || self.weak_block_prob > 0.0
    }
}

/// Stateless fault oracle: answers "does this operation fail?" as a pure
/// function of `(seed, address, P/E cycle)`.
///
/// ```
/// use flash_model::{BlockAddr, BlockId, ChipId, FaultConfig, FaultInjector, PlaneId};
///
/// let inj = FaultInjector::new(FaultConfig::with_rate(0.01), 7);
/// let addr = BlockAddr::new(ChipId(0), PlaneId(0), BlockId(3));
/// // Deterministic: asking twice gives the same answer.
/// assert_eq!(inj.erase_fails(addr, 100), inj.erase_fails(addr, 100));
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    sampler: Sampler,
}

impl FaultInjector {
    /// Creates an injector whose draws are decorrelated from the latency and
    /// BER models sharing the same master seed.
    #[must_use]
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultInjector { config, sampler: Sampler::new(seed).derive(0xfa17) }
    }

    /// The configured rates.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether any fault source is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    fn effective(&self, base: f64, pe: u32) -> f64 {
        base * (self.config.fail_growth_per_kpe * f64::from(pe) / 1000.0).exp()
    }

    /// Whether programming `wl` at `pe` cycles reports status fail.
    #[must_use]
    pub fn program_fails(&self, wl: WlAddr, pe: u32) -> bool {
        let p = self.effective(self.config.program_fail_prob, pe);
        p > 0.0
            && self.sampler.bernoulli(
                p,
                &[
                    TAG_PROGRAM_FAIL,
                    u64::from(wl.block.chip.0),
                    u64::from(wl.block.plane.0),
                    u64::from(wl.block.block.0),
                    u64::from(wl.lwl.0),
                    u64::from(pe),
                ],
            )
    }

    /// Whether erasing `addr` at `pe` cycles fails to verify.
    #[must_use]
    pub fn erase_fails(&self, addr: BlockAddr, pe: u32) -> bool {
        let p = self.effective(self.config.erase_fail_prob, pe);
        p > 0.0
            && self.sampler.bernoulli(
                p,
                &[
                    TAG_ERASE_FAIL,
                    u64::from(addr.chip.0),
                    u64::from(addr.plane.0),
                    u64::from(addr.block.0),
                    u64::from(pe),
                ],
            )
    }

    /// RBER multiplier for a block: [`FaultConfig::weak_ber_multiplier`] if
    /// the block drew the weak trait, `1.0` otherwise.
    #[must_use]
    pub fn ber_multiplier(&self, addr: BlockAddr) -> f64 {
        let p = self.config.weak_block_prob;
        if p > 0.0
            && self.sampler.bernoulli(
                p,
                &[
                    TAG_WEAK_BLOCK,
                    u64::from(addr.chip.0),
                    u64::from(addr.plane.0),
                    u64::from(addr.block.0),
                ],
            )
        {
            self.config.weak_ber_multiplier
        } else {
            1.0
        }
    }

    /// RBER factor for the page at `page_index` within its word-line
    /// (TLC: 0 = LSB … `pages_per_lwl - 1` = MSB). Exactly `1.0` at zero
    /// spread or for single-page (SLC) word-lines.
    #[must_use]
    pub fn page_type_ber_mult(&self, page_index: u32, pages_per_lwl: u32) -> f64 {
        let s = self.config.page_type_ber_spread;
        if s == 0.0 || pages_per_lwl < 2 {
            return 1.0;
        }
        let x = 2.0 * f64::from(page_index) / f64::from(pages_per_lwl - 1) - 1.0;
        1.0 + s * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ChipId, LwlId, PlaneId};

    fn addr(b: u32) -> BlockAddr {
        BlockAddr::new(ChipId(0), PlaneId(0), BlockId(b))
    }

    #[test]
    fn page_type_spread_orders_lsb_below_msb_and_is_exact_at_zero() {
        let spread = FaultInjector::new(
            FaultConfig { page_type_ber_spread: 0.35, ..FaultConfig::default() },
            1,
        );
        // TLC: LSB reads below nominal, CSB at it, MSB above it.
        assert!((spread.page_type_ber_mult(0, 3) - 0.65).abs() < 1e-12);
        assert!((spread.page_type_ber_mult(1, 3) - 1.0).abs() < 1e-12);
        assert!((spread.page_type_ber_mult(2, 3) - 1.35).abs() < 1e-12);
        // SLC word-lines have nothing to spread over.
        assert_eq!(spread.page_type_ber_mult(0, 1), 1.0);
        // Zero spread is exactly 1.0 for every page type — the gate that
        // keeps the default error model bit-identical.
        let flat = FaultInjector::new(FaultConfig::default(), 1);
        for k in 0..3 {
            assert_eq!(flat.page_type_ber_mult(k, 3), 1.0);
        }
    }

    #[test]
    fn disabled_injector_never_fails() {
        let inj = FaultInjector::new(FaultConfig::default(), 1);
        assert!(!inj.enabled());
        for b in 0..200 {
            assert!(!inj.erase_fails(addr(b), 0));
            assert!(!inj.program_fails(addr(b).wl(LwlId(0)), 0));
            assert_eq!(inj.ber_multiplier(addr(b)), 1.0);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let cfg = FaultConfig { erase_fail_prob: 0.1, ..FaultConfig::with_rate(0.1) };
        let inj = FaultInjector::new(cfg, 2);
        let n = 20_000u32;
        let fails = (0..n).filter(|&b| inj.erase_fails(addr(b), 0)).count();
        let rate = fails as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.01, "erase fail rate {rate}");
    }

    #[test]
    fn with_rate_splits_risk_between_erase_and_block_fill() {
        let cfg = FaultConfig::with_rate(0.02);
        assert!((cfg.erase_fail_prob - 0.01).abs() < 1e-12);
        // A nominal 64-word-line fill carries the same total risk.
        assert!((cfg.program_fail_prob * 64.0 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn draws_are_deterministic_and_tag_separated() {
        let cfg = FaultConfig { program_fail_prob: 0.5, ..FaultConfig::with_rate(0.5) };
        let inj = FaultInjector::new(cfg, 3);
        let wl = addr(9).wl(LwlId(2));
        assert_eq!(inj.program_fails(wl, 50), inj.program_fails(wl, 50));
        // Same address, different P/E -> an independent draw exists.
        let differs = (0..64).any(|pe| inj.program_fails(wl, pe) != inj.program_fails(wl, pe + 1));
        assert!(differs, "P/E must participate in the draw");
    }

    #[test]
    fn wear_growth_raises_failure_rate() {
        let cfg = FaultConfig { fail_growth_per_kpe: 1.0, ..FaultConfig::with_rate(0.02) };
        let inj = FaultInjector::new(cfg, 4);
        let n = 20_000u32;
        let fresh = (0..n).filter(|&b| inj.erase_fails(addr(b), 0)).count();
        let worn = (0..n).filter(|&b| inj.erase_fails(addr(b), 3000)).count();
        assert!(worn > fresh * 5, "{fresh} fresh vs {worn} worn");
    }

    #[test]
    fn weak_blocks_are_a_stable_trait() {
        let inj = FaultInjector::new(FaultConfig::with_rate(0.05), 5);
        let weak: Vec<u32> = (0..500).filter(|&b| inj.ber_multiplier(addr(b)) > 1.0).collect();
        assert!(!weak.is_empty(), "some blocks should be weak at 20%");
        for &b in &weak {
            assert_eq!(inj.ber_multiplier(addr(b)), 300.0);
        }
    }

    #[test]
    fn with_rate_zero_is_disabled() {
        assert!(!FaultConfig::with_rate(0.0).enabled());
        assert_eq!(FaultConfig::with_rate(0.0), FaultConfig::default());
    }
}
