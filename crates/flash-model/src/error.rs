//! Error type for flash operations.

use crate::ids::{BlockAddr, LwlId, PageAddr, WlAddr};
use std::fmt;

/// Errors returned by stateful flash operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// The address does not exist in the configured geometry.
    AddressOutOfRange {
        /// Offending block address.
        addr: BlockAddr,
    },
    /// The logical word-line index exceeds the block size.
    WlOutOfRange {
        /// Offending word-line address.
        wl: WlAddr,
    },
    /// A program was issued to a block that is not erased/open.
    ProgramOnUnerased {
        /// Offending block address.
        addr: BlockAddr,
    },
    /// Word-lines must be programmed in order within a block.
    ProgramOutOfOrder {
        /// Offending block address.
        addr: BlockAddr,
        /// Next word-line the block expects.
        expected: LwlId,
        /// Word-line that was requested.
        got: LwlId,
    },
    /// The block is already fully programmed.
    BlockFull {
        /// Offending block address.
        addr: BlockAddr,
    },
    /// A read was issued to a page that was never programmed.
    ReadUnwritten {
        /// Offending page address.
        page: PageAddr,
    },
    /// The data slice length does not match pages-per-word-line.
    DataLengthMismatch {
        /// Pages per word-line the geometry requires.
        expected: u32,
        /// Length of the provided slice.
        got: usize,
    },
    /// A multi-plane command was issued with no operations.
    EmptyMultiPlane,
    /// A multi-plane command addressed the same plane twice.
    MultiPlaneConflict {
        /// Address that collided with an earlier one in the same command.
        addr: BlockAddr,
    },
    /// The word-line program reported status fail (media fault); the block
    /// must be retired.
    ProgramFailed {
        /// Word-line whose program failed.
        wl: WlAddr,
    },
    /// The block erase failed to verify (media fault); the block must be
    /// retired.
    EraseFailed {
        /// Block whose erase failed.
        addr: BlockAddr,
    },
    /// The word-line program was interrupted by a sudden power loss: its
    /// pages are unreadable and the block takes no further programs until
    /// erased.
    TornWordLine {
        /// Word-line that was mid-program at power loss.
        wl: WlAddr,
    },
}

impl FlashError {
    /// Whether this error is an injected media fault (as opposed to an
    /// illegal request): the caller should retire the block and remap, not
    /// treat it as a bug.
    #[must_use]
    pub fn is_media_failure(&self) -> bool {
        matches!(self, FlashError::ProgramFailed { .. } | FlashError::EraseFailed { .. })
    }
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::AddressOutOfRange { addr } => {
                write!(f, "block address {addr} is outside the configured geometry")
            }
            FlashError::WlOutOfRange { wl } => {
                write!(f, "word-line {wl} is outside the block")
            }
            FlashError::ProgramOnUnerased { addr } => {
                write!(f, "program issued to unerased block {addr}")
            }
            FlashError::ProgramOutOfOrder { addr, expected, got } => {
                write!(f, "block {addr} expects {expected} next but {got} was programmed")
            }
            FlashError::BlockFull { addr } => write!(f, "block {addr} is fully programmed"),
            FlashError::ReadUnwritten { page } => {
                write!(f, "read of unwritten page {page}")
            }
            FlashError::DataLengthMismatch { expected, got } => {
                write!(f, "word-line takes {expected} pages of data but {got} were provided")
            }
            FlashError::EmptyMultiPlane => write!(f, "multi-plane command with no operations"),
            FlashError::MultiPlaneConflict { addr } => {
                write!(f, "multi-plane command addresses plane of {addr} more than once")
            }
            FlashError::ProgramFailed { wl } => {
                write!(f, "program status fail on {wl}: block must be retired")
            }
            FlashError::EraseFailed { addr } => {
                write!(f, "erase failure on block {addr}: block must be retired")
            }
            FlashError::TornWordLine { wl } => {
                write!(f, "word-line {wl} was torn by a sudden power loss")
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ChipId, PlaneId};

    #[test]
    fn display_is_informative() {
        let addr = BlockAddr::new(ChipId(1), PlaneId(0), BlockId(3));
        let e = FlashError::ProgramOutOfOrder { addr, expected: LwlId(4), got: LwlId(9) };
        let s = e.to_string();
        assert!(s.contains("WL4") && s.contains("WL9"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlashError>();
    }
}
