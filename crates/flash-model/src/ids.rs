//! Newtype identifiers and physical addresses for the 3D NAND hierarchy.
//!
//! The hierarchy mirrors the paper's Figure 1: a package has chips, a chip
//! has planes, a plane has blocks, a block has physical word-line (PWL)
//! layers crossed with strings, and a (layer, string) pair is one logical
//! word-line (LWL) holding one page per bit of the cell type.

use std::fmt;

/// Index of a flash chip (chip-enable) within the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipId(pub u16);

/// Index of a plane within a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PlaneId(pub u16);

/// Index of a block within a plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

/// Index of a physical word-line layer within a block (0..layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PwlLayer(pub u16);

/// Index of a string within a block (0..strings, typically 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StringId(pub u16);

/// Index of a logical word-line within a block (0..layers*strings).
///
/// The programming order is layer-major: `lwl = layer * strings + string`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LwlId(pub u32);

/// NAND cell technology, which determines the number of pages per LWL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellType {
    /// Single-level cell: one page per word-line.
    Slc,
    /// Multi-level cell: two pages (LSB, MSB).
    Mlc,
    /// Triple-level cell: three pages (LSB, CSB, MSB). The paper's platform.
    #[default]
    Tlc,
    /// Quad-level cell: four pages.
    Qlc,
}

impl CellType {
    /// Number of bits stored per cell, i.e. pages per logical word-line.
    #[must_use]
    pub fn bits_per_cell(self) -> u32 {
        match self {
            CellType::Slc => 1,
            CellType::Mlc => 2,
            CellType::Tlc => 3,
            CellType::Qlc => 4,
        }
    }
}

/// Page significance within a logical word-line (LSB is read fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageType {
    /// Least significant bit page.
    Lsb,
    /// Central significant bit page (TLC and denser).
    Csb,
    /// Most significant bit page (MLC and denser).
    Msb,
    /// Top page (QLC only).
    Top,
}

impl PageType {
    /// All page types valid for a cell technology, in read order.
    #[must_use]
    pub fn for_cell(cell: CellType) -> &'static [PageType] {
        match cell {
            CellType::Slc => &[PageType::Lsb],
            CellType::Mlc => &[PageType::Lsb, PageType::Msb],
            CellType::Tlc => &[PageType::Lsb, PageType::Csb, PageType::Msb],
            CellType::Qlc => &[PageType::Lsb, PageType::Csb, PageType::Msb, PageType::Top],
        }
    }

    /// Index of this page type within a word-line (0-based).
    #[must_use]
    pub fn index(self) -> u32 {
        match self {
            PageType::Lsb => 0,
            PageType::Csb => 1,
            PageType::Msb => 2,
            PageType::Top => 3,
        }
    }

    /// Inverse of [`PageType::index`] for a given cell type.
    ///
    /// Returns `None` when the index is out of range for the cell type.
    #[must_use]
    pub fn from_index(cell: CellType, index: u32) -> Option<PageType> {
        PageType::for_cell(cell).get(index as usize).copied()
    }
}

/// Physical address of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr {
    /// Owning chip.
    pub chip: ChipId,
    /// Owning plane within the chip.
    pub plane: PlaneId,
    /// Block index within the plane.
    pub block: BlockId,
}

impl BlockAddr {
    /// Creates a block address from its components.
    #[must_use]
    pub fn new(chip: ChipId, plane: PlaneId, block: BlockId) -> Self {
        BlockAddr { chip, plane, block }
    }

    /// Address of a logical word-line within this block.
    #[must_use]
    pub fn wl(self, lwl: LwlId) -> WlAddr {
        WlAddr { block: self, lwl }
    }
}

/// Physical address of one logical word-line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WlAddr {
    /// Owning block.
    pub block: BlockAddr,
    /// Logical word-line within the block.
    pub lwl: LwlId,
}

impl WlAddr {
    /// Address of one page on this word-line.
    #[must_use]
    pub fn page(self, page: PageType) -> PageAddr {
        PageAddr { wl: self, page }
    }
}

/// Physical address of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr {
    /// Owning word-line.
    pub wl: WlAddr,
    /// Page significance on the word-line.
    pub page: PageType,
}

macro_rules! display_newtype {
    ($t:ty, $prefix:expr) => {
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

display_newtype!(ChipId, "CE");
display_newtype!(PlaneId, "P");
display_newtype!(BlockId, "BLK");
display_newtype!(PwlLayer, "PWL");
display_newtype!(StringId, "STR");
display_newtype!(LwlId, "WL");

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.chip, self.plane, self.block)
    }
}

impl fmt::Display for WlAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.block, self.lwl)
    }
}

impl fmt::Display for PageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageType::Lsb => "LSB",
            PageType::Csb => "CSB",
            PageType::Msb => "MSB",
            PageType::Top => "TOP",
        };
        f.write_str(s)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.wl, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_type_page_counts() {
        assert_eq!(CellType::Slc.bits_per_cell(), 1);
        assert_eq!(CellType::Mlc.bits_per_cell(), 2);
        assert_eq!(CellType::Tlc.bits_per_cell(), 3);
        assert_eq!(CellType::Qlc.bits_per_cell(), 4);
    }

    #[test]
    fn page_types_match_cell_density() {
        for cell in [CellType::Slc, CellType::Mlc, CellType::Tlc, CellType::Qlc] {
            assert_eq!(PageType::for_cell(cell).len() as u32, cell.bits_per_cell());
        }
    }

    #[test]
    fn page_type_index_roundtrip() {
        for cell in [CellType::Slc, CellType::Mlc, CellType::Tlc, CellType::Qlc] {
            for (i, pt) in PageType::for_cell(cell).iter().enumerate() {
                assert_eq!(PageType::from_index(cell, i as u32), Some(*pt));
            }
            assert_eq!(PageType::from_index(cell, cell.bits_per_cell()), None);
        }
    }

    #[test]
    fn tlc_page_order_is_lsb_csb_msb() {
        assert_eq!(
            PageType::for_cell(CellType::Tlc),
            &[PageType::Lsb, PageType::Csb, PageType::Msb]
        );
    }

    #[test]
    fn address_constructors_chain() {
        let b = BlockAddr::new(ChipId(1), PlaneId(2), BlockId(3));
        let wl = b.wl(LwlId(7));
        let pg = wl.page(PageType::Csb);
        assert_eq!(pg.wl.block.chip, ChipId(1));
        assert_eq!(pg.wl.lwl, LwlId(7));
        assert_eq!(pg.page, PageType::Csb);
    }

    #[test]
    fn display_formats_are_compact() {
        let b = BlockAddr::new(ChipId(0), PlaneId(1), BlockId(25));
        assert_eq!(b.to_string(), "CE0/P1/BLK25");
        assert_eq!(b.wl(LwlId(3)).to_string(), "CE0/P1/BLK25/WL3");
        assert_eq!(b.wl(LwlId(3)).page(PageType::Msb).to_string(), "CE0/P1/BLK25/WL3/MSB");
    }

    #[test]
    fn ordering_is_lexicographic_by_fields() {
        let a = BlockAddr::new(ChipId(0), PlaneId(1), BlockId(9));
        let b = BlockAddr::new(ChipId(1), PlaneId(0), BlockId(0));
        assert!(a < b);
    }
}
